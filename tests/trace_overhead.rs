//! Regression: with the `merctrace/enabled` feature off (the default,
//! and what tier-1 `cargo test` builds), the probes cost exactly
//! nothing — the macros expand to empty blocks, never evaluate their
//! arguments, and mode-switch cycle counts are bit-identical to an
//! uninstrumented build.

use mercury::SwitchOutcome;
use mercury_workloads::configs::{SysKind, TestBed};

// Gated on the umbrella `trace` feature, not on `merctrace/enabled`
// directly: the CI feature matrix builds `--features trace`, which is
// precisely the configuration where probes being live is *intended*.
#[cfg(not(feature = "trace"))]
#[test]
// The constancy of the asserted expression is the point: the test
// pins which build configurations resolve `ENABLED` to false.
#[allow(clippy::assertions_on_constants)]
fn tracing_is_compiled_out_in_default_builds() {
    // Feature unification must not leak `merctrace/enabled` into the
    // root package's dependency graph (only mercury-bench turns it on,
    // and nothing here depends on mercury-bench).
    assert!(
        !merctrace::ENABLED,
        "merctrace/enabled leaked into the default feature set"
    );
}

/// The inverse gate for the feature matrix: asking for `trace` must
/// actually light the probes up.
#[cfg(feature = "trace")]
#[test]
#[allow(clippy::assertions_on_constants)]
fn trace_feature_turns_probes_on() {
    assert!(
        merctrace::ENABLED,
        "--features trace did not forward to merctrace/enabled"
    );
}

#[test]
fn disabled_macros_do_not_evaluate_arguments() {
    if merctrace::ENABLED {
        // Someone built the test suite with tracing on; non-evaluation
        // is only promised for the disabled expansion.
        return;
    }
    let evaluated = std::cell::Cell::new(0u32);
    // Underscored: never called when the probes are compiled out.
    let _bump = || -> u64 {
        evaluated.set(evaluated.get() + 1);
        0
    };
    merctrace::span_begin!(_bump(), "overhead.test", _bump());
    merctrace::span_end!(_bump(), "overhead.test", _bump());
    merctrace::counter!(_bump(), "overhead.test", _bump(), _bump());
    merctrace::hist!(_bump(), "overhead.test", _bump(), _bump());
    assert_eq!(
        evaluated.get(),
        0,
        "a disabled probe macro evaluated its arguments"
    );
}

#[test]
fn switch_cycles_identical_with_probe_storm() {
    // Two identical systems; one runs a storm of (compiled-out) probe
    // macros around its switches.  Simulated cycle counts must match
    // exactly — the probes may not perturb the §7.4 numbers.
    fn run(storm: bool) -> (u64, u64) {
        let bed = TestBed::build(SysKind::MN, 1);
        let mercury = bed.mercury.as_ref().unwrap();
        let cpu = bed.machine.boot_cpu();
        if storm {
            for _i in 0..10_000u64 {
                merctrace::counter!(cpu.id, "overhead.storm", _i, cpu.cycles());
                merctrace::hist!(cpu.id, "overhead.storm", _i, cpu.cycles());
            }
        }
        let SwitchOutcome::Completed { cycles: attach } = mercury.switch_to_virtual(cpu).unwrap()
        else {
            panic!("attach did not complete")
        };
        if storm {
            merctrace::span_begin!(cpu.id, "overhead.span", cpu.cycles());
        }
        let SwitchOutcome::Completed { cycles: detach } = mercury.switch_to_native(cpu).unwrap()
        else {
            panic!("detach did not complete")
        };
        if storm {
            merctrace::span_end!(cpu.id, "overhead.span", cpu.cycles());
        }
        (attach, detach)
    }
    let baseline = run(false);
    let stormed = run(true);
    assert_eq!(
        baseline, stormed,
        "disabled probes changed simulated switch cycles"
    );
}
