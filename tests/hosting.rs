//! Multi-tenant hosting: the self-virtualized OS (partial-virtual mode)
//! hosts two paravirtual guests, schedules them with the hypervisor's
//! run queue, and keeps them isolated.

use mercury::ModeDetail;
use mercury_workloads::configs::{SysKind, TestBed};
use nimbus::drivers::blkback::BlkBackend;
use nimbus::drivers::block::{FrontendBlockDriver, NativeBlockDriver};
use nimbus::kernel::{BootMode, KernelConfig, MmapBacking, ReadOutcome};
use nimbus::mm::Prot;
use nimbus::{Kernel, Session};
use std::sync::Arc;
use xenon::Hypervisor;

/// World switch: route reflection to `dom` and load its kernel's
/// current address space — what the hypervisor's scheduler does when it
/// gives the physical CPU to a vCPU.
fn enter_tenant(hv: &Arc<Hypervisor>, dom: &Arc<Domain>, kernel: &Arc<Kernel>, sess: &Session) {
    hv.set_current(0, Some(dom.id));
    let pgd = kernel
        .current_pgd(sess.cpu())
        .expect("tenant has a process");
    kernel
        .pv()
        .load_base_table(sess.cpu(), pgd)
        .expect("cr3 load");
}
use xenon::sched::SchedUnit;
use xenon::Domain;

/// Boot a PV tenant with a frontend block driver served by the host.
fn boot_tenant(bed: &TestBed, name: &str, fs_first_block: u64) -> (Arc<Kernel>, Arc<Domain>) {
    let hv = bed.hv.as_ref().unwrap();
    let host_dom = bed.mercury.as_ref().unwrap().dom0().clone();
    let cpu = bed.machine.boot_cpu();
    let quota = bed.machine.allocator.alloc_many(cpu, 2048).unwrap();
    let dom = hv.create_domain(cpu, name, quota.clone(), 0).unwrap();
    let kernel = Kernel::boot(
        Arc::clone(&bed.machine),
        KernelConfig {
            pool: quota,
            mode: BootMode::Guest {
                hv: Arc::clone(hv),
                dom: Arc::clone(&dom),
            },
            fs_blocks: 512,
            fs_first_block,
        },
    )
    .unwrap();
    let ring = hv.take_reserved(1).unwrap()[0];
    bed.machine.mem.zero_frame(cpu, ring).unwrap();
    let bounce = bed.machine.allocator.alloc(cpu).unwrap();
    let lower = NativeBlockDriver::new(Arc::clone(&bed.machine), bounce);
    let back = BlkBackend::new(Arc::clone(hv), Arc::clone(&host_dom), dom.id, lower, ring);
    let p = hv.evtchn_alloc(cpu, &host_dom).unwrap();
    let pf = hv.evtchn_bind(cpu, &dom, host_dom.id, p).unwrap();
    let buf = dom.frames()[dom.frames().len() - 1];
    kernel.set_block_driver(FrontendBlockDriver::new(
        Arc::clone(hv),
        Arc::clone(&dom),
        back,
        buf,
        pf,
    ));
    (kernel, dom)
}

#[test]
fn two_tenants_scheduled_and_isolated() {
    // M-N base: native OS with Mercury installed; self-virtualize to
    // host tenants (partial-virtual mode, §6.3's hosting role).
    let bed = TestBed::build(SysKind::MN, 1);
    let mercury = bed.mercury.as_ref().unwrap();
    let hv = bed.hv.as_ref().unwrap();
    let cpu = bed.machine.boot_cpu();
    mercury.switch_to_virtual(cpu).unwrap();

    let (k_a, dom_a) = boot_tenant(&bed, "tenant-a", 9_000);
    let (k_b, dom_b) = boot_tenant(&bed, "tenant-b", 10_000);
    assert_eq!(
        mercury.mode_detail(),
        ModeDetail::PartialVirtual { guests: 2 }
    );

    // Alternate the tenants with the hypervisor's scheduler, running a
    // slice of work in whichever is picked.
    let sess_a = Session::new(Arc::clone(&k_a), 0);
    let sess_b = Session::new(Arc::clone(&k_b), 0);
    let va = sess_a.mmap(2, Prot::RW, MmapBacking::Anon).unwrap();
    let vb = sess_b.mmap(2, Prot::RW, MmapBacking::Anon).unwrap();
    // (Same guest-virtual address on purpose: isolation must come from
    // the per-domain page tables, not from address disjointness.)
    assert_eq!(va, vb);

    let mut slices = std::collections::HashMap::new();
    for i in 0..12u64 {
        let unit = hv
            .sched
            .pick_next(0, |id| hv.domain(id))
            .expect("a runnable vcpu");
        // Skip the host's own unit; we only drive tenants here.
        let (sess, kernel, dom, tag) = if unit
            == (SchedUnit {
                dom: dom_a.id,
                vcpu: 0,
            }) {
            (&sess_a, &k_a, &dom_a, "a")
        } else if unit
            == (SchedUnit {
                dom: dom_b.id,
                vcpu: 0,
            })
        {
            (&sess_b, &k_b, &dom_b, "b")
        } else {
            continue;
        };
        enter_tenant(hv, dom, kernel, sess);
        sess.poke(va, i).unwrap();
        assert_eq!(sess.peek(va).unwrap(), i);
        let fd = sess.open("slice.log", true).unwrap();
        sess.write(fd, tag.as_bytes()).unwrap();
        sess.close(fd).unwrap();
        *slices.entry(tag).or_insert(0u32) += 1;
    }
    assert!(
        slices["a"] >= 3 && slices["b"] >= 3,
        "unfair schedule: {slices:?}"
    );

    // Isolation: each tenant sees only its own files and memory.
    enter_tenant(hv, &dom_a, &k_a, &sess_a);
    sess_a.poke(va, 0xA).unwrap();
    enter_tenant(hv, &dom_b, &k_b, &sess_b);
    sess_b.poke(vb, 0xB).unwrap();
    enter_tenant(hv, &dom_a, &k_a, &sess_a);
    assert_eq!(sess_a.peek(va).unwrap(), 0xA);
    let fd = sess_a.open("slice.log", false).unwrap();
    if let ReadOutcome::Data(d) = sess_a.read(fd, 64).unwrap() {
        assert!(
            d.iter().all(|&c| c == b'a'),
            "tenant-a sees tenant-b writes"
        );
    }
    // Cross-domain grant abuse is rejected: tenant-a cannot grant a
    // frame belonging to tenant-b.
    let theirs = dom_b.frames()[10];
    assert!(hv.grant(cpu, &dom_a, dom_b.id, theirs, false).is_err());

    // Tear down and return the host to native speed.
    for dom in [dom_a, dom_b] {
        let frames = hv.destroy_domain(cpu, &dom).unwrap();
        for f in frames {
            bed.machine.allocator.free(f);
        }
    }
    assert_eq!(mercury.mode_detail(), ModeDetail::FullVirtual);
    // Give the CPU back to the host OS before it detaches.
    hv.set_current(0, Some(mercury.dom0().id));
    let host_pgd = bed.kernel.current_pgd(cpu).unwrap();
    bed.kernel.pv().load_base_table(cpu, host_pgd).unwrap();
    mercury.switch_to_native(cpu).unwrap();
    assert_eq!(mercury.mode_detail(), ModeDetail::Native);
}
