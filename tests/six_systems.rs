//! Cross-crate integration: the six measured system configurations all
//! execute an identical mixed workload with identical observable
//! results — the behaviour-consistency requirement (§4.3) underlying
//! every relative measurement in the paper.

use mercury_workloads::configs::{SysKind, TestBed, ALL_SYSTEMS};
use nimbus::kernel::{MmapBacking, ReadOutcome, RecvOutcome};
use nimbus::mm::Prot;
use simx86::paging::{VirtAddr, PAGE_SIZE};

/// A workload touching every subsystem; returns a transcript of
/// observable results that must be identical across systems.
fn mixed_workload(bed: &TestBed) -> Vec<String> {
    let sess = bed.session(0);
    let mut log = Vec::new();

    // Processes.
    sess.exec("lat_proc").unwrap();
    let child = sess.fork().unwrap();
    log.push(format!("forked relative pid offset {}", child.0 - 1));
    assert!(sess.waitpid().unwrap().is_none());
    sess.exec("hello").unwrap();
    sess.exit(3).unwrap();
    let (reaped, code) = sess.waitpid().unwrap().unwrap();
    log.push(format!("reaped offset {} code {}", reaped.0 - 1, code));

    // Memory: COW + protection.
    let va = sess.mmap(4, Prot::RW, MmapBacking::Anon).unwrap();
    for p in 0..4u64 {
        sess.poke(VirtAddr(va.0 + p * PAGE_SIZE), p + 100).unwrap();
    }
    let c2 = sess.fork().unwrap();
    sess.poke(va, 555).unwrap(); // parent COW break
    sess.sched_yield().unwrap();
    assert_eq!(sess.current_pid(), Some(c2));
    log.push(format!("child view {}", sess.peek(va).unwrap()));
    sess.mprotect(va, 1, Prot::RO).unwrap();
    let denied = sess.touch(va, true).is_err();
    sess.clear_signal();
    log.push(format!("write denied {denied}"));

    // Filesystem.
    let fd = sess.open("mix.dat", true).unwrap();
    sess.write(fd, b"0123456789abcdef").unwrap();
    sess.lseek(fd, 8).unwrap();
    let data = match sess.read(fd, 8).unwrap() {
        ReadOutcome::Data(d) => d,
        other => panic!("{other:?}"),
    };
    log.push(format!("file tail {}", String::from_utf8_lossy(&data)));
    log.push(format!("file size {}", sess.stat("mix.dat").unwrap().size));
    sess.sync().unwrap();

    // Pipes.
    let (r, w) = sess.pipe().unwrap();
    sess.write(w, b"through the pipe").unwrap();
    if let ReadOutcome::Data(d) = sess.read(r, 64).unwrap() {
        log.push(format!("pipe {}", String::from_utf8_lossy(&d)));
    }

    // Network (echo peer).
    let s = sess.socket(7777).unwrap();
    sess.sendto(s, 8888, b"net probe").unwrap();
    match sess.recvfrom(s).unwrap() {
        RecvOutcome::Datagram(src, d) => {
            log.push(format!("echo from {src}: {}", String::from_utf8_lossy(&d)))
        }
        RecvOutcome::Blocked => log.push("echo lost".into()),
    }

    // File-backed mmap.
    let ino = sess.stat("mix.dat").unwrap().ino;
    let mva = sess
        .mmap(1, Prot::RO, MmapBacking::File { ino, offset: 0 })
        .unwrap();
    log.push(format!("mmap word {:#x}", sess.peek(mva).unwrap()));

    log
}

#[test]
fn identical_results_on_all_six_systems() {
    let baseline = mixed_workload(&TestBed::build(SysKind::NL, 1));
    assert!(!baseline.is_empty());
    for kind in ALL_SYSTEMS.into_iter().skip(1) {
        let log = mixed_workload(&TestBed::build(kind, 1));
        assert_eq!(log, baseline, "observable behaviour differs on {kind:?}");
    }
}

#[test]
fn identical_results_on_smp_beds() {
    let baseline = mixed_workload(&TestBed::build(SysKind::NL, 2));
    for kind in [SysKind::MN, SysKind::X0] {
        let log = mixed_workload(&TestBed::build(kind, 2));
        assert_eq!(log, baseline, "SMP behaviour differs on {kind:?}");
    }
}

#[test]
fn costs_are_ordered_native_fastest() {
    // The performance *shape* must hold on any workload: N-L ≤ M-N ≪
    // the virtualized columns, for a syscall-heavy loop.
    let mut cycles = Vec::new();
    for kind in [SysKind::NL, SysKind::MN, SysKind::X0] {
        let bed = TestBed::build(kind, 1);
        let sess = bed.session(0);
        let t0 = sess.cpu().cycles();
        let va = sess.mmap(32, Prot::RW, MmapBacking::Anon).unwrap();
        for p in 0..32u64 {
            sess.poke(VirtAddr(va.0 + p * PAGE_SIZE), p).unwrap();
        }
        sess.fork().unwrap();
        sess.munmap(va, 32).unwrap();
        cycles.push((kind, sess.cpu().cycles() - t0));
    }
    assert!(cycles[0].1 <= cycles[1].1, "{cycles:?}");
    assert!(cycles[1].1 * 2 < cycles[2].1, "{cycles:?}");
}

#[test]
fn console_collects_kernel_messages() {
    let bed = TestBed::build(SysKind::MV, 1);
    let sess = bed.session(0);
    sess.kernel()
        .pv()
        .console_write(sess.cpu(), "integration says hi");
    assert!(bed.machine.console.contains("integration says hi"));
}
