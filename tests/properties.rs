//! Property-based integration tests: randomized workload sequences
//! against the mode-switch and checkpoint machinery.
//!
//! The central invariants:
//! * **Switch transparency** — interleaving mode switches anywhere in a
//!   workload never changes its observable results (§4.3).
//! * **Accounting idempotence** — every attach rebuilds the identical
//!   `page_info` state for identical kernel state.
//! * **Checkpoint fidelity** — restore reproduces exactly the kernel
//!   state at capture, regardless of what ran before.

use mercury::TrackingStrategy;
use mercury_workloads::configs::{switch_with_peers, SysKind, TestBed};
use nimbus::kernel::{MmapBacking, ReadOutcome};
use nimbus::mm::Prot;
use nimbus::Session;
use proptest::prelude::*;
use simx86::paging::{VirtAddr, PAGE_SIZE};

/// A step of the randomized workload.
#[derive(Debug, Clone)]
enum Op {
    Poke { page: u8, value: u64 },
    ForkExitWait,
    FileAppend { bytes: u8 },
    PipeRoundtrip { len: u8 },
    Mprotect { ro: bool },
    Switch, // toggle execution mode (no-op for beds without Mercury)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8, any::<u64>()).prop_map(|(page, value)| Op::Poke { page, value }),
        Just(Op::ForkExitWait),
        (1u8..64).prop_map(|bytes| Op::FileAppend { bytes }),
        (1u8..32).prop_map(|len| Op::PipeRoundtrip { len }),
        any::<bool>().prop_map(|ro| Op::Mprotect { ro }),
        Just(Op::Switch),
    ]
}

/// Run the op sequence; returns the observable transcript.
fn run_ops(bed: &TestBed, ops: &[Op]) -> Vec<String> {
    let sess = bed.session(0);
    let mut log = Vec::new();
    let va = sess.mmap(8, Prot::RW, MmapBacking::Anon).unwrap();
    let fd = sess.open("prop.dat", true).unwrap();
    let (pr, pw) = sess.pipe().unwrap();
    let cpu = bed.machine.boot_cpu();

    for op in ops {
        match op {
            Op::Poke { page, value } => {
                let addr = VirtAddr(va.0 + (*page as u64) * PAGE_SIZE);
                if sess.poke(addr, *value).is_ok() {
                    log.push(format!("poke {}", sess.peek(addr).unwrap()));
                } else {
                    sess.clear_signal();
                    log.push("poke denied".into());
                }
            }
            Op::ForkExitWait => {
                sess.fork().unwrap();
                assert!(sess.waitpid().unwrap().is_none());
                sess.exit(7).unwrap();
                let (_, code) = sess.waitpid().unwrap().unwrap();
                log.push(format!("child exit {code}"));
            }
            Op::FileAppend { bytes } => {
                let data = vec![0x41u8; *bytes as usize];
                sess.write(fd, &data).unwrap();
                log.push(format!("size {}", sess.stat("prop.dat").unwrap().size));
            }
            Op::PipeRoundtrip { len } => {
                let data = vec![0x42u8; *len as usize];
                sess.write(pw, &data).unwrap();
                match sess.read(pr, *len as usize).unwrap() {
                    ReadOutcome::Data(d) => log.push(format!("pipe {}", d.len())),
                    other => panic!("{other:?}"),
                }
            }
            Op::Mprotect { ro } => {
                sess.mprotect(va, 8, if *ro { Prot::RO } else { Prot::RW })
                    .unwrap();
                log.push(format!("prot ro={ro}"));
            }
            Op::Switch => {
                if let Some(m) = &bed.mercury {
                    let out = if m.mode() == mercury::ExecMode::Native {
                        m.switch_to_virtual(cpu)
                    } else {
                        m.switch_to_native(cpu)
                    }
                    .unwrap();
                    assert!(!matches!(out, mercury::SwitchOutcome::Deferred { .. }));
                }
                // The transcript deliberately does NOT record the mode:
                // switches must be invisible.
            }
        }
    }
    log
}

/// Ops exercising the address-space *shape* — mmap/fork/munmap
/// interleavings, with pokes so tables actually fault in — used by the
/// strategy-equivalence properties below.
#[derive(Debug, Clone)]
enum MemOp {
    Mmap { pages: u8 },
    Poke { area: u8, page: u8, value: u64 },
    Munmap { area: u8 },
    ForkExitWait,
}

fn mem_op_strategy() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        (1u8..8).prop_map(|pages| MemOp::Mmap { pages }),
        (any::<u8>(), 0u8..8, any::<u64>())
            .prop_map(|(area, page, value)| MemOp::Poke { area, page, value }),
        any::<u8>().prop_map(|area| MemOp::Munmap { area }),
        Just(MemOp::ForkExitWait),
    ]
}

fn run_mem_ops(bed: &TestBed, ops: &[MemOp]) {
    let sess = bed.session(0);
    let mut areas: Vec<(VirtAddr, u8)> = Vec::new();
    for op in ops {
        match op {
            MemOp::Mmap { pages } => {
                let va = sess
                    .mmap(*pages as usize, Prot::RW, MmapBacking::Anon)
                    .unwrap();
                areas.push((va, *pages));
            }
            MemOp::Poke { area, page, value } => {
                let Some(&(va, pages)) = areas.get(*area as usize % areas.len().max(1)) else {
                    continue;
                };
                let addr = VirtAddr(va.0 + u64::from(page % pages) * PAGE_SIZE);
                if sess.poke(addr, *value).is_err() {
                    sess.clear_signal();
                }
            }
            MemOp::Munmap { area } => {
                if areas.is_empty() {
                    continue;
                }
                let (va, pages) = areas.remove(*area as usize % areas.len());
                let _ = sess.munmap(va, pages as u64);
            }
            MemOp::ForkExitWait => {
                sess.fork().unwrap();
                assert!(sess.waitpid().unwrap().is_none());
                sess.exit(0).unwrap();
                sess.waitpid().unwrap().unwrap();
            }
        }
    }
}

/// Dirty bits are the tracking instrument itself (they legitimately
/// differ by strategy); everything else must be bit-identical.
fn strip_dirty(v: Vec<xenon::PageInfo>) -> Vec<xenon::PageInfo> {
    v.into_iter()
        .map(|mut r| {
            r.dirty = false;
            r
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case boots three machines — keep it affordable
        .. ProptestConfig::default()
    })]

    /// §5.1.2 equivalence: whichever way the VMM regains its frame
    /// accounting — full recompute, active mirroring, or dirty-bit
    /// incremental revalidation — the rebuilt `page_info` is
    /// bit-identical after any mmap/fork/munmap interleaving.  The ops
    /// run in the *native* window between a detach and a re-attach, so
    /// the dirty/mirror paths do real work.
    #[test]
    fn all_strategies_rebuild_identical_accounting(
        ops in proptest::collection::vec(mem_op_strategy(), 1..20)
    ) {
        let mut snaps = Vec::new();
        for strategy in [
            TrackingStrategy::RecomputeOnSwitch,
            TrackingStrategy::ActiveTracking,
            TrackingStrategy::DirtyRecompute,
        ] {
            let bed = TestBed::build_mn_with_strategy(1, strategy);
            let mercury = bed.mercury.as_ref().unwrap();
            let cpu = bed.machine.boot_cpu();
            // Establish a detach baseline, mutate natively, re-attach.
            mercury.switch_to_virtual(cpu).unwrap();
            mercury.switch_to_native(cpu).unwrap();
            run_mem_ops(&bed, &ops);
            mercury.switch_to_virtual(cpu).unwrap();
            snaps.push(strip_dirty(bed.hv.as_ref().unwrap().page_info.snapshot()));
        }
        prop_assert_eq!(&snaps[0], &snaps[1], "active mirror diverged from recompute");
        prop_assert_eq!(&snaps[0], &snaps[2], "dirty recompute diverged from recompute");
    }

    /// The §5.4 work-phase recompute, sharded across rendezvoused
    /// peers, rebuilds exactly the serial walk's snapshot.
    #[test]
    fn sharded_recompute_matches_serial_snapshot(
        ops in proptest::collection::vec(mem_op_strategy(), 1..16)
    ) {
        let bed = TestBed::build_mn_with_strategy(4, TrackingStrategy::RecomputeOnSwitch);
        run_mem_ops(&bed, &ops);
        let mercury = bed.mercury.as_ref().unwrap();
        let hv = bed.hv.as_ref().unwrap();
        prop_assert!(mercury.sharded_recompute());
        switch_with_peers(&bed.machine, mercury, true);
        let sharded = strip_dirty(hv.page_info.snapshot());
        switch_with_peers(&bed.machine, mercury, false);
        mercury.set_sharded_recompute(false);
        switch_with_peers(&bed.machine, mercury, true);
        let serial = strip_dirty(hv.page_info.snapshot());
        prop_assert_eq!(sharded, serial, "sharded validation diverged from the serial walk");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case boots two machines — keep it affordable
        .. ProptestConfig::default()
    })]

    /// Mode switches anywhere in a random workload never change its
    /// observable behaviour: M-N with switches ≡ N-L without.
    #[test]
    fn switches_are_transparent_to_random_workloads(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        let native = run_ops(&TestBed::build(SysKind::NL, 1), &ops);
        let switching = run_ops(&TestBed::build(SysKind::MN, 1), &ops);
        prop_assert_eq!(native, switching);
    }

    /// After any random workload, attach → page_info snapshot is a pure
    /// function of kernel state: two consecutive attach/detach cycles
    /// produce identical accounting.
    #[test]
    fn frame_accounting_is_idempotent_after_random_work(
        ops in proptest::collection::vec(op_strategy(), 1..16)
    ) {
        let bed = TestBed::build(SysKind::MN, 1);
        run_ops(&bed, &ops);
        let mercury = bed.mercury.as_ref().unwrap();
        let hv = bed.hv.as_ref().unwrap();
        let cpu = bed.machine.boot_cpu();
        if mercury.mode() == mercury::ExecMode::Virtual {
            mercury.switch_to_native(cpu).unwrap();
        }
        let strip = |v: Vec<xenon::page_info::PageInfo>| -> Vec<_> {
            v.into_iter().map(|mut r| { r.dirty = false; r }).collect::<Vec<_>>()
        };
        mercury.switch_to_virtual(cpu).unwrap();
        let first = strip(hv.page_info.snapshot());
        mercury.switch_to_native(cpu).unwrap();
        mercury.switch_to_virtual(cpu).unwrap();
        let second = strip(hv.page_info.snapshot());
        mercury.switch_to_native(cpu).unwrap();
        prop_assert_eq!(first, second);
    }

    /// Checkpoint → restore reproduces the captured state exactly.
    #[test]
    fn checkpoint_restore_roundtrip_after_random_work(
        ops in proptest::collection::vec(op_strategy(), 1..12),
        probe_page in 0u8..8,
    ) {
        let bed = TestBed::build(SysKind::MN, 1);
        run_ops(&bed, &ops);
        let mercury = bed.mercury.as_ref().unwrap();
        let cpu = bed.machine.boot_cpu();
        if mercury.mode() == mercury::ExecMode::Virtual {
            mercury.switch_to_native(cpu).unwrap();
        }

        // Probe state at capture time.
        let sess = bed.session(0);
        let va = sess.mmap(8, Prot::RW, MmapBacking::Anon).unwrap();
        let addr = VirtAddr(va.0 + probe_page as u64 * PAGE_SIZE);
        sess.poke(addr, 0xC0FFEE).unwrap();
        let files_at_capture = sess.stat("prop.dat").map(|s| s.size).unwrap_or(0);

        let ckpt = mercury::scenarios::checkpoint::take(mercury, cpu).unwrap();

        // Diverge.
        sess.poke(addr, 1).unwrap();

        // Restore elsewhere and verify.
        let healthy = simx86::Machine::new(simx86::MachineConfig {
            num_cpus: 1,
            mem_frames: 16 * 1024,
            disk_sectors: 96 * 1024,
        });
        let restored = mercury::scenarios::checkpoint::restore(&healthy, &ckpt).unwrap();
        let sess2 = Session::new(std::sync::Arc::clone(&restored.kernel), 0);
        prop_assert_eq!(sess2.peek(addr).unwrap(), 0xC0FFEE);
        let restored_size = sess2.stat("prop.dat").map(|s| s.size).unwrap_or(0);
        prop_assert_eq!(restored_size, files_at_capture);
    }
}
