//! Integration: mode switches interleaved with live kernel work.
//!
//! The paper's headline claim is that switches happen "without
//! disturbing the running applications"; these tests hammer that from
//! several angles, including failure injection.

use mercury::{ExecMode, SwitchOutcome};
use mercury_workloads::configs::{SysKind, TestBed};
use nimbus::kernel::{MmapBacking, ReadOutcome};
use nimbus::mm::Prot;
use simx86::paging::{VirtAddr, PAGE_SIZE};
use simx86::PrivLevel;

fn mn_bed() -> TestBed {
    TestBed::build(SysKind::MN, 1)
}

#[test]
fn fifty_round_trips_under_running_workload() {
    let bed = mn_bed();
    let mercury = bed.mercury.as_ref().unwrap();
    let cpu = bed.machine.boot_cpu();
    let sess = bed.session(0);

    let va = sess.mmap(8, Prot::RW, MmapBacking::Anon).unwrap();
    let fd = sess.open("churn.dat", true).unwrap();
    let mut expected_size = 0u64;

    for round in 0..50u64 {
        // Work in the current mode.
        sess.poke(VirtAddr(va.0 + (round % 8) * PAGE_SIZE), round)
            .unwrap();
        sess.write(fd, b"x").unwrap();
        expected_size += 1;
        if round % 7 == 0 {
            let child = sess.fork().unwrap();
            assert!(sess.waitpid().unwrap().is_none());
            assert_eq!(sess.current_pid(), Some(child));
            sess.exit(0).unwrap();
            sess.waitpid().unwrap().unwrap();
        }
        // Switch.
        let out = if round % 2 == 0 {
            mercury.switch_to_virtual(cpu).unwrap()
        } else {
            mercury.switch_to_native(cpu).unwrap()
        };
        assert!(
            matches!(out, SwitchOutcome::Completed { .. }),
            "round {round}: {out:?}"
        );
        // Verify state.
        assert_eq!(
            sess.peek(VirtAddr(va.0 + (round % 8) * PAGE_SIZE)).unwrap(),
            round,
            "memory corrupted at round {round}"
        );
        assert_eq!(sess.stat("churn.dat").unwrap().size, expected_size);
    }
    assert_eq!(
        mercury
            .stats
            .attaches
            .load(std::sync::atomic::Ordering::Relaxed),
        25
    );
    assert_eq!(
        mercury
            .stats
            .detaches
            .load(std::sync::atomic::Ordering::Relaxed),
        25
    );
}

#[test]
fn switch_requested_from_timer_path_while_busy() {
    let bed = mn_bed();
    let mercury = bed.mercury.as_ref().unwrap();
    let cpu = bed.machine.boot_cpu();
    let sess = bed.session(0);

    // Hold the VO busy, request, then release and let the session's own
    // service points (which poll the timer) commit the switch.
    let guard = mercury.vo_refcount().enter();
    assert!(matches!(
        mercury.switch_to_virtual(cpu).unwrap(),
        SwitchOutcome::Deferred { .. }
    ));
    assert_eq!(mercury.mode(), ExecMode::Native);
    drop(guard);

    // Ordinary workload continues; the retry timer fires at a service
    // point within a few ticks.
    let mut committed = false;
    for _ in 0..5 {
        sess.compute(simx86::costs::SWITCH_RETRY_PERIOD + 1);
        sess.service();
        if mercury.mode() == ExecMode::Virtual {
            committed = true;
            break;
        }
    }
    assert!(committed, "retry timer never committed the deferred switch");
}

#[test]
fn failure_injection_stale_selectors_fault_without_fixup() {
    // Re-enact the §5.1.2 hazard directly: a context saved under the
    // native GDT popped under the virtualized GDT must #GP.
    use simx86::cpu::Gdt;
    let native_ctx = Gdt::NATIVE.kernel_cs();
    assert!(Gdt::VIRTUALIZED.check_selector(native_ctx).is_err());
    // And the fixed-up selector passes — which is what Mercury's stack
    // stub produces.
    let mut fixed = native_ctx;
    fixed.rpl = PrivLevel::Pl1;
    assert!(Gdt::VIRTUALIZED.check_selector(fixed).is_ok());
}

#[test]
fn blocked_processes_survive_switches() {
    let bed = mn_bed();
    let mercury = bed.mercury.as_ref().unwrap();
    let cpu = bed.machine.boot_cpu();
    let sess = bed.session(0);

    let (r, w) = sess.pipe().unwrap();
    let child = sess.fork().unwrap();
    // Parent blocks reading the empty pipe; child becomes current.
    assert!(matches!(sess.read(r, 4).unwrap(), ReadOutcome::Blocked));
    assert_eq!(sess.current_pid(), Some(child));

    // Switch modes with a process parked on a wait queue.
    mercury.switch_to_virtual(cpu).unwrap();

    // Child writes; parent wakes in the new mode and reads.
    sess.write(w, b"ping").unwrap();
    sess.sched_yield().unwrap();
    match sess.read(r, 4).unwrap() {
        ReadOutcome::Data(d) => assert_eq!(d, b"ping"),
        other => panic!("{other:?}"),
    }
    mercury.switch_to_native(cpu).unwrap();
}

#[test]
fn guests_created_in_virtual_mode_block_detach_until_destroyed() {
    let bed = mn_bed();
    let mercury = bed.mercury.as_ref().unwrap();
    let hv = bed.hv.as_ref().unwrap();
    let cpu = bed.machine.boot_cpu();
    mercury.switch_to_virtual(cpu).unwrap();
    let quota = bed.machine.allocator.alloc_many(cpu, 32).unwrap();
    let dom = hv.create_domain(cpu, "tenant", quota, 0).unwrap();
    assert!(mercury.switch_to_native(cpu).is_err());
    let frames = hv.destroy_domain(cpu, &dom).unwrap();
    for f in frames {
        bed.machine.allocator.free(f);
    }
    assert!(matches!(
        mercury.switch_to_native(cpu).unwrap(),
        SwitchOutcome::Completed { .. }
    ));
}

#[test]
fn failed_attach_rolls_back_and_native_execution_continues() {
    // The paper's §8 future work: "An OS not in a correct state might
    // make the mode switch fail.  Hence, a failure-resistant mode
    // switch will be necessary."  Our attach rejects tainted page
    // tables; this test verifies the rejection leaves the kernel fully
    // operational in native mode (transfer compensation).
    let bed = mn_bed();
    let mercury = bed.mercury.as_ref().unwrap();
    let cpu = bed.machine.boot_cpu();
    let sess = bed.session(0);

    let va = sess.mmap(2, Prot::RW, MmapBacking::Anon).unwrap();
    sess.poke(va, 11).unwrap();

    mercury::scenarios::healing::inject_taint(mercury, cpu).unwrap();
    assert!(mercury.switch_to_virtual(cpu).is_err());
    assert_eq!(mercury.mode(), ExecMode::Native);
    assert_eq!(cpu.pl(), PrivLevel::Pl0);
    assert!(!bed.hv.as_ref().unwrap().is_active());

    // Page-table frames are writable again in the direct map ...
    let kmap = mercury.kernel().kmap();
    for f in mercury.kernel().all_table_frames() {
        if let Some((l1, idx)) = kmap.locate(f) {
            assert!(
                bed.machine.mem.read_pte(cpu, l1, idx).unwrap().writable(),
                "direct-map entry for {f:?} left read-only after rollback"
            );
        }
    }
    // ... and the full process machinery still works (context switches
    // pop kernel-stack selectors that must have been restored to PL0).
    sess.clear_signal();
    let child = sess.fork().unwrap();
    assert!(sess.waitpid().unwrap().is_none());
    assert_eq!(sess.current_pid(), Some(child));
    sess.exit(0).unwrap();
    assert!(sess.waitpid().unwrap().is_some());
    sess.poke(va, 12).unwrap();
    assert_eq!(sess.peek(va).unwrap(), 12);

    // After healing, the attach succeeds.
    mercury::scenarios::healing::heal(mercury, cpu).unwrap();
    assert!(matches!(
        mercury.switch_to_virtual(cpu).unwrap(),
        SwitchOutcome::Completed { .. }
    ));
}
