//! SMP stress: two host threads drive the two simulated CPUs with
//! independent kernel work while the control processor attaches and
//! detaches the VMM.  Exercises the §5.4 rendezvous, the big kernel
//! lock, per-frame memory locks and the VO reference count under real
//! concurrency.

use mercury::{ExecMode, SwitchOutcome};
use mercury_workloads::configs::{SysKind, TestBed};
use nimbus::kernel::MmapBacking;
use nimbus::mm::Prot;
use nimbus::Session;
use simx86::paging::{VirtAddr, PAGE_SIZE};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn smp_switches_under_concurrent_load() {
    let bed = TestBed::build(SysKind::MN, 2);
    let mercury = Arc::clone(bed.mercury.as_ref().unwrap());
    let kernel = Arc::clone(&bed.kernel);

    // CPU 0 forks workers so CPU 1 has something to run.
    let sess0 = bed.session(0);
    for _ in 0..3 {
        sess0.fork().unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let peer_rounds = Arc::new(AtomicU64::new(0));

    // Thread B: drives CPU 1 — adopts a runnable process, then loops
    // doing memory and file work with regular service points (the
    // rendezvous depends on those).
    let peer = {
        let kernel = Arc::clone(&kernel);
        let stop = Arc::clone(&stop);
        let rounds = Arc::clone(&peer_rounds);
        std::thread::spawn(move || {
            let sess = Session::new(kernel, 1);
            // Adopt a process.
            while sess.current_pid().is_none() {
                sess.idle().unwrap();
                std::thread::yield_now();
            }
            let va = sess.mmap(4, Prot::RW, MmapBacking::Anon).unwrap();
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                let addr = VirtAddr(va.0 + (i % 4) * PAGE_SIZE);
                sess.poke(addr, i).expect("peer poke");
                assert_eq!(sess.peek(addr).expect("peer peek"), i);
                if i.is_multiple_of(16) {
                    let name = format!("peer_{}.dat", i % 4);
                    let fd = sess.open(&name, true).expect("peer open");
                    sess.write(fd, b"smp").expect("peer write");
                    sess.close(fd).expect("peer close");
                }
                sess.service();
                rounds.fetch_add(1, Ordering::Relaxed);
                i += 1;
                std::thread::yield_now();
            }
        })
    };

    // Thread A (this thread): CPU 0 runs its own work and flips modes.
    let cpu0 = bed.machine.boot_cpu();
    let va = sess0.mmap(4, Prot::RW, MmapBacking::Anon).unwrap();
    let mut switches = 0;
    for round in 0..12u64 {
        sess0.poke(va, round).unwrap();
        let target_virtual = round % 2 == 0;
        let out = if target_virtual {
            mercury.switch_to_virtual(cpu0)
        } else {
            mercury.switch_to_native(cpu0)
        }
        .unwrap_or_else(|e| panic!("switch failed at round {round}: {e}"));
        match out {
            SwitchOutcome::Completed { .. } => switches += 1,
            SwitchOutcome::AlreadyInMode => {}
            SwitchOutcome::Deferred { .. } => {
                // Peer was mid-VO-op; let the retry timer handle it.
                for _ in 0..5 {
                    sess0.compute(simx86::costs::SWITCH_RETRY_PERIOD + 1);
                    sess0.service();
                    let now_virtual = mercury.mode() == ExecMode::Virtual;
                    if now_virtual == target_virtual {
                        switches += 1;
                        break;
                    }
                }
            }
        }
        // Both CPUs agree on the mode's hardware state.
        let expect_pl = if mercury.mode() == ExecMode::Virtual {
            simx86::PrivLevel::Pl1
        } else {
            simx86::PrivLevel::Pl0
        };
        assert_eq!(cpu0.pl(), expect_pl, "cpu0 wrong at round {round}");
        assert_eq!(sess0.peek(va).unwrap(), round);
    }
    assert!(switches >= 8, "only {switches} switches completed");

    // Let the peer accumulate work in the final mode before stopping.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while peer_rounds.load(Ordering::Relaxed) < 100 {
        assert!(std::time::Instant::now() < deadline, "peer CPU stalled");
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Release);
    peer.join().expect("peer thread panicked");
    // End in native mode with both CPUs consistent.
    if mercury.mode() == ExecMode::Virtual {
        // Peer thread is gone; drive cpu1's rendezvous from here.
        let stop2 = Arc::new(AtomicBool::new(false));
        let cpu1 = Arc::clone(&bed.machine.cpus[1]);
        let helper = {
            let stop2 = Arc::clone(&stop2);
            std::thread::spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    cpu1.service_pending();
                    std::thread::yield_now();
                }
            })
        };
        mercury.switch_to_native(cpu0).unwrap();
        stop2.store(true, Ordering::Release);
        helper.join().unwrap();
    }
    assert_eq!(kernel.exec_mode(), ExecMode::Native);
    for cpu in &bed.machine.cpus {
        assert_eq!(cpu.pl(), simx86::PrivLevel::Pl0);
        assert_eq!(cpu.current_idt().unwrap().owner, "nimbus");
    }
    // With the happens-before checker compiled in, every rendezvous
    // round and every sharded work phase above ran under the
    // vector-clock monitors: any missing release/acquire edge (a chunk
    // completion not ordered before signal_go, a check-in not ordered
    // before the CP's decision) would have been recorded.
    #[cfg(feature = "dyncheck")]
    {
        let reports = mercury::dyncheck::take_reports();
        assert!(
            reports.is_empty(),
            "dyncheck found happens-before violations:\n{}",
            reports.join("\n")
        );
    }
}
