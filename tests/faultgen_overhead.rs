//! Regression: with the `faultgen/enabled` feature off (the default,
//! and what tier-1 `cargo test` builds), the fault hooks cost exactly
//! nothing — the macros expand to constants, never evaluate their
//! arguments, and execution is cycle- and state-identical to an
//! uninstrumented build even with a full campaign armed.

use faultgen::{FaultSpec, FaultTarget};
use mercury::SwitchOutcome;
use mercury_workloads::configs::{SysKind, TestBed};
use simx86::PhysAddr;

// Gated on the umbrella `faults` feature, not on `faultgen/enabled`
// directly: the CI feature matrix builds `--features faults`, which is
// precisely the configuration where live hooks are *intended*.
#[cfg(not(feature = "faults"))]
#[test]
// The constancy of the asserted expression is the point: the test
// pins which build configurations resolve `ENABLED` to false.
#[allow(clippy::assertions_on_constants)]
fn fault_hooks_are_compiled_out_in_default_builds() {
    // Feature unification must not leak `faultgen/enabled` into the
    // root package's dependency graph (only mercury-bench turns it on,
    // and nothing here depends on mercury-bench).
    assert!(
        !faultgen::ENABLED,
        "faultgen/enabled leaked into the default feature set"
    );
}

/// The inverse gate for the feature matrix: asking for `faults` must
/// actually arm the hooks.
#[cfg(feature = "faults")]
#[test]
#[allow(clippy::assertions_on_constants)]
fn faults_feature_turns_hooks_on() {
    assert!(
        faultgen::ENABLED,
        "--features faults did not forward to faultgen/enabled"
    );
}

#[test]
fn disabled_hook_macros_do_not_evaluate_arguments() {
    if faultgen::ENABLED {
        // Someone built the test suite with fault injection on;
        // non-evaluation is only promised for the disabled expansion.
        return;
    }
    let evaluated = std::cell::Cell::new(0u32);
    // Underscored: never called when the hooks are compiled out.
    let _bump = || -> u64 {
        evaluated.set(evaluated.get() + 1);
        0
    };
    let flip = faultgen::mem_read_site!(_bump() as usize, _bump(), _bump() as u32, _bump() as usize);
    assert_eq!(flip, 0);
    assert!(!faultgen::disk_site!(_bump()));
    assert!(faultgen::irq_site!(_bump() as usize, _bump()).is_none());
    assert!(!faultgen::gate_site!(_bump() as usize, _bump(), _bump() as u8));
    assert_eq!(faultgen::hypercall_site!(_bump() as usize, _bump()), 0);
    assert_eq!(
        evaluated.get(),
        0,
        "a disabled fault hook evaluated its arguments"
    );
}

#[test]
fn armed_campaign_is_cycle_and_state_identical_when_disabled() {
    if faultgen::ENABLED {
        return;
    }
    // Two identical systems; one has a full fault plan armed.  With the
    // hooks compiled out nothing can fire, so memory contents, switch
    // cycle counts, and end state must be bit-identical — faultgen
    // compiled-in-but-disabled may not perturb the §7.4 numbers.
    fn run(armed: bool) -> (u64, u64, Vec<u64>) {
        let bed = TestBed::build(SysKind::MN, 1);
        let mercury = bed.mercury.as_ref().unwrap();
        let cpu = bed.machine.boot_cpu();
        if armed {
            faultgen::reset();
            faultgen::arm(
                (0..64)
                    .map(|i| FaultSpec {
                        id: i,
                        due_cycle: 0,
                        target: FaultTarget::MemWord {
                            frame: 15_000 + i as u32,
                            word: (i % 512) as u16,
                            bit: (i % 64) as u8,
                        },
                    })
                    .collect(),
            );
        }
        // Sweep the words the plan targets: armed or not, every read
        // must return pristine zeros when the hooks are compiled out.
        let mut words = Vec::new();
        for i in 0..64u64 {
            let pa = PhysAddr(((15_000 + i) << 12) + (i % 512) * 8);
            words.push(bed.machine.mem.read_word(cpu, pa).unwrap());
        }
        let SwitchOutcome::Completed { cycles: attach } = mercury.switch_to_virtual(cpu).unwrap()
        else {
            panic!("attach did not complete")
        };
        let SwitchOutcome::Completed { cycles: detach } = mercury.switch_to_native(cpu).unwrap()
        else {
            panic!("detach did not complete")
        };
        if armed {
            // The armed plan is still fully pending: nothing fired.
            assert_eq!(faultgen::outstanding(), 64);
            assert!(faultgen::drain_signals().is_empty());
            faultgen::reset();
        }
        (attach, detach, words)
    }
    let baseline = run(false);
    let armed = run(true);
    assert_eq!(
        baseline, armed,
        "disabled fault hooks perturbed cycles or memory state"
    );
}
