//! Property-based tests for the hypervisor's core structures: the
//! shared-memory ring against a FIFO model, and the page_info
//! validation machinery against randomly generated page-table trees.

use proptest::prelude::*;
use simx86::mem::{FrameNum, PhysMemory};
use simx86::paging::Pte;
use simx86::Cpu;
use std::collections::VecDeque;
use std::sync::Arc;
use xenon::page_info::{PageInfo, PageInfoTable, PageType};
use xenon::ring::{Ring, SlotPayload, RING_SLOTS};
use xenon::DomId;

proptest! {
    /// The ring is a lossless FIFO under arbitrary push/pop
    /// interleavings of a full request/response cycle.
    #[test]
    fn ring_is_a_lossless_fifo(ops in proptest::collection::vec(any::<bool>(), 1..300)) {
        let mem = PhysMemory::new(2);
        let cpu = Arc::new(Cpu::new(0));
        let ring = Ring::attach(FrameNum(1));
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next_id = 0u64;
        for push in ops {
            if push {
                let payload: SlotPayload = [next_id, 0, 0, 0, 0, 0, 0, 0];
                match ring.push_request(&cpu, &mem, &payload) {
                    Ok(()) => {
                        model.push_back(next_id);
                        next_id += 1;
                    }
                    Err(_) => prop_assert!(model.len() as u64 >= RING_SLOTS),
                }
            } else {
                // Full cycle: backend pops + responds, frontend reaps.
                match ring.pop_request(&cpu, &mem).unwrap() {
                    Some(got) => {
                        let expect = model.pop_front().unwrap();
                        prop_assert_eq!(got[0], expect);
                        ring.push_response(&cpu, &mem, &got).unwrap();
                        let rsp = ring.pop_response(&cpu, &mem).unwrap().unwrap();
                        prop_assert_eq!(rsp[0], expect);
                    }
                    None => prop_assert!(model.is_empty()),
                }
            }
        }
    }

    /// For a randomly shaped (valid) two-level tree, incremental
    /// pin-validation and Mercury-style recompute produce identical
    /// accounting, and unpin returns the table to all-untyped.
    #[test]
    fn recompute_equals_incremental_validation(
        // map[l2_slot] = list of (l1_slot, writable) leaves
        shape in proptest::collection::btree_map(
            0usize..8,
            proptest::collection::btree_map(0usize..16, any::<bool>(), 0..8),
            0..4
        )
    ) {
        let frames = 64usize;
        let mem = PhysMemory::new(frames);
        let cpu = Arc::new(Cpu::new(0));
        let table = PageInfoTable::new(frames);
        let dom = DomId(0);
        for f in 0..frames {
            table.set_owner(FrameNum(f as u32), Some(dom));
        }
        // Build: pgd at frame 1; L1s at 8+l2; data pages at 24 + slot.
        let pgd = FrameNum(1);
        for (l2, leaves) in &shape {
            let l1 = FrameNum(8 + *l2 as u32);
            mem.write_pte(&cpu, pgd, *l2, Pte::new(l1.0, Pte::WRITABLE | Pte::USER)).unwrap();
            for (slot, writable) in leaves {
                let data = FrameNum(24 + *slot as u32);
                let flags = if *writable { Pte::WRITABLE | Pte::USER } else { Pte::USER };
                mem.write_pte(&cpu, l1, *slot, Pte::new(data.0, flags)).unwrap();
            }
        }

        let strip = |v: Vec<PageInfo>| -> Vec<PageInfo> {
            v.into_iter().map(|mut r| { r.dirty = false; r }).collect()
        };

        // Incremental path.
        table.pin_l2(&cpu, &mem, pgd, dom).unwrap();
        let incremental = strip(table.snapshot());
        prop_assert_eq!(table.type_of(pgd), (PageType::L2, 1));

        // Recompute path.
        table.clear_types_for(dom);
        table.recompute_for(&cpu, &mem, dom, frames, &[pgd]).unwrap();
        let recomputed = strip(table.snapshot());
        prop_assert_eq!(&incremental, &recomputed);

        // Unpin restores the pristine state.
        table.unpin_l2(&cpu, &mem, pgd).unwrap();
        for f in 0..frames {
            prop_assert_eq!(table.type_of(FrameNum(f as u32)), (PageType::None, 0));
        }
    }

    /// Dirty-bit traffic — native-mode marks, scrubber pops, lazy-
    /// window drains — never perturbs the validation accounting.  This
    /// is the invariant that makes `LazyValidate` a *strategy* rather
    /// than a semantics change: the stripped snapshot stays
    /// bit-identical to the pinned baseline no matter how the dirty
    /// set churns, and a cold recompute afterwards agrees too.
    #[test]
    fn lazy_dirty_traffic_preserves_validation_accounting(
        shape in proptest::collection::btree_map(
            0usize..8,
            proptest::collection::btree_map(0usize..16, any::<bool>(), 0..8),
            0..4
        ),
        // (frame, op): op 0 = mark_dirty, 1 = scrubber-style pop of
        // some dirty frame, 2 = targeted take_dirty (the attach path's
        // per-frame consume).
        ops in proptest::collection::vec((0u32..64, 0u8..3), 0..96)
    ) {
        let frames = 64usize;
        let mem = PhysMemory::new(frames);
        let cpu = Arc::new(Cpu::new(0));
        let table = PageInfoTable::new(frames);
        let dom = DomId(0);
        for f in 0..frames {
            table.set_owner(FrameNum(f as u32), Some(dom));
        }
        let pgd = FrameNum(1);
        for (l2, leaves) in &shape {
            let l1 = FrameNum(8 + *l2 as u32);
            mem.write_pte(&cpu, pgd, *l2, Pte::new(l1.0, Pte::WRITABLE | Pte::USER)).unwrap();
            for (slot, writable) in leaves {
                let data = FrameNum(24 + *slot as u32);
                let flags = if *writable { Pte::WRITABLE | Pte::USER } else { Pte::USER };
                mem.write_pte(&cpu, l1, *slot, Pte::new(data.0, flags)).unwrap();
            }
        }

        let strip = |v: Vec<PageInfo>| -> Vec<PageInfo> {
            v.into_iter().map(|mut r| { r.dirty = false; r }).collect()
        };

        table.pin_l2(&cpu, &mem, pgd, dom).unwrap();
        let baseline = strip(table.snapshot());

        for (frame, op) in ops {
            match op {
                0 => table.mark_dirty(FrameNum(frame)),
                1 => { table.take_dirty_frame_for(dom); }
                _ => { table.take_dirty(FrameNum(frame)); }
            }
        }
        prop_assert_eq!(&strip(table.snapshot()), &baseline);

        // A cold recompute of the (untouched) tables reproduces the
        // same accounting, so nothing the dirty traffic did can leak
        // into what a later attach rebuilds.
        table.recompute_for(&cpu, &mem, dom, frames, &[pgd]).unwrap();
        prop_assert_eq!(&strip(table.snapshot()), &baseline);
    }

    /// Type references never allow a writable mapping of a typed page
    /// table, under any interleaving.
    #[test]
    fn type_exclusion_invariant(ops in proptest::collection::vec((any::<bool>(), 0u8..3), 1..64)) {
        let table = PageInfoTable::new(4);
        table.set_owner(FrameNum(1), Some(DomId(0)));
        let mut l1_refs = 0u32;
        let mut w_refs = 0u32;
        for (get, kind) in ops {
            let typ = if kind == 0 { PageType::L1 } else { PageType::Writable };
            if get {
                match table.get_type_ref(FrameNum(1), typ) {
                    Ok(()) => {
                        if typ == PageType::L1 { l1_refs += 1 } else { w_refs += 1 }
                    }
                    Err(_) => {
                        // Must only fail on a genuine conflict.
                        if typ == PageType::L1 {
                            prop_assert!(w_refs > 0);
                        } else {
                            prop_assert!(l1_refs > 0);
                        }
                    }
                }
            } else if typ == PageType::L1 && l1_refs > 0 {
                table.put_type_ref(FrameNum(1), PageType::L1);
                l1_refs -= 1;
            } else if typ == PageType::Writable && w_refs > 0 {
                table.put_type_ref(FrameNum(1), PageType::Writable);
                w_refs -= 1;
            }
            prop_assert!(l1_refs == 0 || w_refs == 0, "both type kinds live at once");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Live migration with arbitrary dirty patterns between rounds
    /// delivers memory that is bit-identical to the source at
    /// finalization time.
    #[test]
    fn migration_preserves_memory_under_random_dirtying(
        // Sequence of (page index, value) writes, partitioned into
        // inter-round batches.
        batches in proptest::collection::vec(
            proptest::collection::vec((0usize..6, any::<u64>()), 0..8),
            1..4
        )
    ) {
        use simx86::{Machine, MachineConfig};
        use simx86::mem::PhysAddr;
        use xenon::migrate::LiveMigration;
        use xenon::Hypervisor;

        let node = || {
            let m = Machine::new(MachineConfig {
                num_cpus: 1,
                mem_frames: 2048,
                disk_sectors: 64,
            });
            let hv = Hypervisor::warm_up(&m);
            hv.activate();
            (m, hv)
        };
        let (m_src, hv_src) = node();
        let (m_dst, hv_dst) = node();
        let cpu = m_src.boot_cpu();

        // Guest: pgd f[0], L1 f[1], six data pages f[2..8].
        let q = m_src.allocator.alloc_many(cpu, 16).unwrap();
        let dom = hv_src.create_domain(cpu, "g", q, 0).unwrap();
        let f = dom.frames();
        m_src.mem.write_pte(cpu, f[0], 0, Pte::new(f[1].0, Pte::WRITABLE | Pte::USER)).unwrap();
        for i in 0..6 {
            m_src.mem.write_pte(cpu, f[1], i, Pte::new(f[2 + i].0, Pte::WRITABLE | Pte::USER)).unwrap();
        }
        hv_src.pin_l2(cpu, &dom, f[0]).unwrap();
        *dom.guest_state.lock() = Some(serde_json::json!({"k": 1}));

        let mut mig = LiveMigration::new(Arc::clone(&hv_src), Arc::clone(&dom));
        let mut model = [0u64; 6];
        for batch in &batches {
            mig.round(cpu).unwrap();
            // Guest dirties pages between rounds (hardware-style: set
            // the PTE dirty bit + write the word).
            for (page, value) in batch {
                let pte = m_src.mem.read_pte(cpu, f[1], *page).unwrap();
                m_src.mem.write_pte(cpu, f[1], *page, pte.with_flags(Pte::DIRTY)).unwrap();
                m_src.mem.write_word(cpu, PhysAddr(FrameNum(pte.frame()).base().0), *value).unwrap();
                model[*page] = *value;
            }
        }
        let (new_dom, report) = mig.finalize(cpu, &hv_dst, 0).unwrap();

        // Every page on the target matches the final source state.
        let dst_cpu = m_dst.boot_cpu();
        let pgd = new_dom.pgds()[0];
        let pde = m_dst.mem.read_pte(dst_cpu, pgd, 0).unwrap();
        for (i, item) in model.iter().enumerate() {
            let pte = m_dst.mem.read_pte(dst_cpu, FrameNum(pde.frame()), i).unwrap();
            let word = m_dst
                .mem
                .read_word(dst_cpu, FrameNum(pte.frame()).base())
                .unwrap();
            prop_assert_eq!(word, *item, "page {} diverged", i);
        }
        prop_assert!(report.total_frames >= 16);
        prop_assert!(hv_src.domain(dom.id).is_none(), "source must release the domain");
    }
}
