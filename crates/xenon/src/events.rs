//! Event channels: the hypervisor's virtual interrupt fabric.
//!
//! A pair of bound ports lets two domains notify each other; the
//! receiving domain's pending bit is set in its shared-info word and the
//! `EVTCHN_UPCALL` vector is asserted on the CPU running its vCPU 0.
//! The split device model (§5.2) rides on these: frontends kick
//! backends after posting ring requests and vice versa.

use crate::domain::{DomId, Domain};
use crate::error::HvError;
use parking_lot::Mutex;
use simx86::costs;
use simx86::{Cpu, InterruptController};
use std::sync::atomic::Ordering;

/// Maximum ports per machine (pending bits fit one u64 per domain).
pub const MAX_PORTS: usize = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PortState {
    /// Allocated, waiting for a peer to bind.
    Unbound,
    /// Connected to `(peer domain, peer port)`.
    Bound { peer_dom: DomId, peer_port: u32 },
}

#[derive(Debug, Clone, Copy)]
struct Channel {
    owner: DomId,
    state: PortState,
}

/// The machine-wide event-channel table.
pub struct EventChannels {
    ports: Mutex<Vec<Option<Channel>>>,
}

impl EventChannels {
    /// An empty table.
    pub fn new() -> Self {
        EventChannels {
            ports: Mutex::new(vec![None; MAX_PORTS]),
        }
    }

    /// Allocate an unbound port owned by `dom`.
    pub fn alloc_unbound(&self, dom: DomId) -> Result<u32, HvError> {
        let mut ports = self.ports.lock();
        let slot = ports
            .iter()
            .position(|p| p.is_none())
            .ok_or(HvError::OutOfMemory)?;
        ports[slot] = Some(Channel {
            owner: dom,
            state: PortState::Unbound,
        });
        Ok(slot as u32)
    }

    /// Bind a new local port for `dom` to `(peer_dom, peer_port)`.
    /// The peer port must be an unbound port owned by `peer_dom`; both
    /// ends become bound to each other.
    pub fn bind_interdomain(
        &self,
        dom: DomId,
        peer_dom: DomId,
        peer_port: u32,
    ) -> Result<u32, HvError> {
        let mut ports = self.ports.lock();
        // Validate the peer end first.
        match ports.get(peer_port as usize).and_then(|p| *p) {
            Some(ch) if ch.owner == peer_dom && ch.state == PortState::Unbound => {}
            _ => return Err(HvError::BadPort),
        }
        let slot = ports
            .iter()
            .position(|p| p.is_none())
            .ok_or(HvError::OutOfMemory)?;
        ports[slot] = Some(Channel {
            owner: dom,
            state: PortState::Bound {
                peer_dom,
                peer_port,
            },
        });
        ports[peer_port as usize] = Some(Channel {
            owner: peer_dom,
            state: PortState::Bound {
                peer_dom: dom,
                peer_port: slot as u32,
            },
        });
        Ok(slot as u32)
    }

    /// Notify through `port` (owned by `dom`): set the peer's pending
    /// bit and assert the upcall vector on the peer's home CPU.
    pub fn send(
        &self,
        cpu: &Cpu,
        intc: &InterruptController,
        dom: &Domain,
        port: u32,
        resolve_peer: impl FnOnce(DomId) -> Option<std::sync::Arc<Domain>>,
    ) -> Result<(), HvError> {
        cpu.tick(costs::EVTCHN_NOTIFY);
        let ch = self
            .ports
            .lock()
            .get(port as usize)
            .and_then(|p| *p)
            .ok_or(HvError::BadPort)?;
        if ch.owner != dom.id {
            return Err(HvError::NotPrivileged("send on foreign port"));
        }
        let PortState::Bound {
            peer_dom,
            peer_port,
        } = ch.state
        else {
            return Err(HvError::BadPort);
        };
        let peer = resolve_peer(peer_dom).ok_or(HvError::BadDomain)?;
        peer.evt_pending
            .fetch_or(1u64 << peer_port, Ordering::AcqRel);
        let masked = peer.evt_masked.load(Ordering::Acquire) & (1u64 << peer_port) != 0;
        if !masked {
            intc.raise(peer.home_pcpu(), simx86::cpu::vectors::EVTCHN_UPCALL);
        }
        // A notification also wakes a blocked peer vCPU.
        peer.set_runnable(0, true);
        Ok(())
    }

    /// Close a port (and unbind its peer end, which reverts to unbound).
    pub fn close(&self, dom: DomId, port: u32) -> Result<(), HvError> {
        let mut ports = self.ports.lock();
        let ch = ports
            .get(port as usize)
            .and_then(|p| *p)
            .ok_or(HvError::BadPort)?;
        if ch.owner != dom {
            return Err(HvError::NotPrivileged("close of foreign port"));
        }
        if let PortState::Bound { peer_port, .. } = ch.state {
            if let Some(Some(peer)) = ports.get_mut(peer_port as usize).map(|p| p.as_mut()) {
                peer.state = PortState::Unbound;
            }
        }
        ports[port as usize] = None;
        Ok(())
    }

    /// Number of allocated ports (diagnostics).
    pub fn allocated(&self) -> usize {
        self.ports.lock().iter().filter(|p| p.is_some()).count()
    }

    /// Adopt the complete port table of `other` (hypervisor
    /// live-update re-binding): every owner, binding and slot index is
    /// preserved bit-for-bit, so port numbers held by guest frontends
    /// and backends stay valid across the hv-v1 → hv-v2 swap.
    pub fn transfer_from(&self, other: &EventChannels) {
        let theirs = other.ports.lock().clone();
        *self.ports.lock() = theirs;
    }

    /// Clear every port in place.  The live-update discard path uses
    /// this to return a failed successor's table to pristine without
    /// entering the allocator (the slot vector keeps its capacity).
    pub fn reset(&self) {
        let mut ports = self.ports.lock();
        // volint::bound(64) — MAX_PORTS slots
        for p in ports.iter_mut() {
            *p = None;
        }
    }
}

impl Default for EventChannels {
    fn default() -> Self {
        Self::new()
    }
}

/// Drain a domain's pending event bits (the guest's upcall handler does
/// this to find which ports fired).
pub fn take_pending(dom: &Domain) -> u64 {
    dom.evt_pending.swap(0, Ordering::AcqRel)
}

/// Mask or unmask a port's delivery for `dom`.
pub fn set_mask(dom: &Domain, port: u32, masked: bool) {
    if masked {
        dom.evt_masked.fetch_or(1u64 << port, Ordering::AcqRel);
    } else {
        dom.evt_masked.fetch_and(!(1u64 << port), Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx86::cpu::vectors;
    use std::sync::Arc;

    fn rig() -> (
        EventChannels,
        Arc<Domain>,
        Arc<Domain>,
        Arc<Cpu>,
        InterruptController,
    ) {
        let cpu = Arc::new(Cpu::new(0));
        let intc = InterruptController::new(vec![cpu.clone()]);
        let d0 = Domain::new(DomId(0), "dom0", true, 0);
        let d1 = Domain::new(DomId(1), "domU", false, 0);
        (EventChannels::new(), d0, d1, cpu, intc)
    }

    #[test]
    fn alloc_bind_send_roundtrip() {
        let (ev, d0, d1, cpu, intc) = rig();
        let p1 = ev.alloc_unbound(d1.id).unwrap();
        let p0 = ev.bind_interdomain(d0.id, d1.id, p1).unwrap();
        assert_ne!(p0, p1);

        // dom0 kicks domU.
        let d1c = d1.clone();
        ev.send(&cpu, &intc, &d0, p0, move |id| {
            (id == d1c.id).then(|| d1c.clone())
        })
        .unwrap();
        assert!(cpu.is_pending(vectors::EVTCHN_UPCALL));
        let bits = take_pending(&d1);
        assert_eq!(bits, 1u64 << p1);
        // Second take is empty.
        assert_eq!(take_pending(&d1), 0);
    }

    #[test]
    fn send_respects_mask() {
        let (ev, d0, d1, cpu, intc) = rig();
        let p1 = ev.alloc_unbound(d1.id).unwrap();
        let p0 = ev.bind_interdomain(d0.id, d1.id, p1).unwrap();
        set_mask(&d1, p1, true);
        let d1c = d1.clone();
        ev.send(&cpu, &intc, &d0, p0, move |_| Some(d1c.clone()))
            .unwrap();
        // Pending bit set but no upcall asserted.
        assert!(!cpu.is_pending(vectors::EVTCHN_UPCALL));
        assert_eq!(take_pending(&d1), 1u64 << p1);
    }

    #[test]
    fn send_on_foreign_or_unbound_port_fails() {
        let (ev, d0, d1, cpu, intc) = rig();
        let p1 = ev.alloc_unbound(d1.id).unwrap();
        // d0 doesn't own p1.
        assert!(matches!(
            ev.send(&cpu, &intc, &d0, p1, |_| None),
            Err(HvError::NotPrivileged(_))
        ));
        // d1 owns it but it's unbound.
        assert!(matches!(
            ev.send(&cpu, &intc, &d1, p1, |_| None),
            Err(HvError::BadPort)
        ));
    }

    #[test]
    fn bind_to_bogus_peer_fails() {
        let (ev, d0, d1, _, _) = rig();
        assert!(ev.bind_interdomain(d0.id, d1.id, 17).is_err());
        let p = ev.alloc_unbound(d0.id).unwrap();
        // Wrong claimed owner.
        assert!(ev.bind_interdomain(d1.id, DomId(9), p).is_err());
    }

    #[test]
    fn close_unbinds_peer() {
        let (ev, d0, d1, _, _) = rig();
        let p1 = ev.alloc_unbound(d1.id).unwrap();
        let p0 = ev.bind_interdomain(d0.id, d1.id, p1).unwrap();
        assert_eq!(ev.allocated(), 2);
        ev.close(d0.id, p0).unwrap();
        assert_eq!(ev.allocated(), 1);
        // The peer end is unbound again and can be re-bound.
        let p0b = ev.bind_interdomain(d0.id, d1.id, p1).unwrap();
        assert_eq!(p0b, p0); // the freed slot is reused
    }
}
