//! # xenon — a Xen-like paravirtualizing hypervisor for simx86
//!
//! Xenon is the "full-fledged VMM" that Mercury pre-caches and attaches
//! underneath a running OS.  It reproduces the Xen 3.0.2 mechanisms the
//! paper's implementation depends on:
//!
//! * **Domains** (privileged domain0 / unprivileged domainU) owning
//!   disjoint sets of physical frames.
//! * **Frame accounting** ([`page_info`]): per-frame owner, type
//!   (`L1`/`L2` page table or writable) and reference counts, with the
//!   validation rules that keep a guest from mapping its own page tables
//!   writable.  Recomputing this table during a mode switch is the
//!   dominant cost of Mercury's native→virtual transition (§5.1.2, §7.4).
//! * **Hypercalls**: `mmu_update` batches, page-table pin/unpin,
//!   `stack_switch`, trap-table registration, TLB-flush and sched ops —
//!   each charging the crossing + validation cycle costs.
//! * **Event channels** and **grant tables**, and on top of them
//!   shared-memory **I/O rings** ([`ring`]) for the split
//!   frontend/backend device model of §5.2.
//! * A round-robin **vCPU scheduler** for hosting multiple domains.
//! * **Save/restore** ([`save`]) and iterative pre-copy **live
//!   migration** ([`migrate`]) — the machinery behind the paper's
//!   online-maintenance and HPC-availability scenarios (§6.3, §6.5).
//!
//! The hypervisor supports Mercury's defining trick: it can sit *warm
//! but dormant* in reserved memory ([`Hypervisor::warm_up`]) and be
//! activated/deactivated in sub-millisecond simulated time.

#![warn(missing_docs)]

pub mod domain;
pub mod error;
pub mod events;
pub mod grants;
pub mod hv;
pub mod liveupdate;
pub mod migrate;
pub mod page_info;
pub mod ring;
pub mod save;
pub mod sched;
pub mod scrub;

pub use domain::{DomId, Domain, DOM0};
pub use error::HvError;
pub use hv::{Hypervisor, MmuUpdate};
pub use liveupdate::{UpdateError, UpdateReport};
pub use page_info::{PageInfo, PageInfoTable, PageType};
pub use scrub::BackgroundScrubber;
