//! The hypervisor proper: warm-up, activation, hypercalls and trap
//! reflection.
//!
//! Xenon supports Mercury's pre-caching design (§4.1): `warm_up` builds
//! every data structure the VMM needs — frame accounting table, gate
//! table, reserved memory pool — at machine boot, leaving the VMM
//! *dormant*.  Activation is then only a matter of flipping the active
//! flag and reloading per-CPU hardware state, which is what makes the
//! sub-millisecond mode switch possible.
//!
//! While dormant, every hypercall fails with [`HvError::NotActive`]; the
//! kernel's native virtualization object never calls them.

use crate::domain::{DomId, Domain, DOM0};
use crate::error::HvError;
use crate::events::EventChannels;
use crate::grants::GrantTables;
use crate::page_info::{PageInfoTable, PageType};
use crate::sched::{SchedUnit, Scheduler};
use parking_lot::{Mutex, RwLock};
use simx86::cpu::{vectors, Gdt, IdtTable, InterruptSink, TrapFrame};
use simx86::mem::FrameNum;
use simx86::paging::Pte;
use simx86::{costs, Cpu, Machine};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Frames the dormant VMM reserves for itself at warm-up (its text,
/// heap, and per-domain structures).  512 frames = 2 MiB: "a VMM
/// occupies only a reasonably small chunk of memory" (§4.1).
pub const HV_RESERVED_FRAMES: usize = 512;

/// One entry of an `mmu_update` batch: write `val` into slot `index` of
/// the (validated) page table living in `table`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmuUpdate {
    /// The page-table frame to update.
    pub table: FrameNum,
    /// Entry index.
    pub index: usize,
    /// New entry value.
    pub val: Pte,
}

/// Running counters (diagnostics and the EXPERIMENTS.md report).
#[derive(Debug, Default)]
pub struct HvStats {
    /// Total hypercalls served.
    pub hypercalls: AtomicU64,
    /// Total mmu_update entries validated.
    pub mmu_entries: AtomicU64,
    /// Traps reflected into guests.
    pub reflections: AtomicU64,
}

/// The Xenon hypervisor.
pub struct Hypervisor {
    /// The machine this VMM controls when active.
    pub machine: Arc<Machine>,
    /// Frame accounting.  Shared (`Arc`) so Mercury's native-mode
    /// dirty tracking can mark table frames from the kernel's VO path
    /// while the VMM is dormant.
    pub page_info: Arc<PageInfoTable>,
    /// Event channels.
    pub events: EventChannels,
    /// Grant tables.
    pub grants: GrantTables,
    /// vCPU scheduler.
    pub sched: Scheduler,
    /// Counters.
    pub stats: HvStats,
    domains: RwLock<BTreeMap<u16, Arc<Domain>>>,
    active: AtomicBool,
    /// VMM build version.  Live-update only ever moves a node to a
    /// strictly newer version (DESIGN.md §16 handshake rule #1).
    version: u32,
    next_domid: AtomicU16,
    hv_idt: Arc<IdtTable>,
    reserved: Mutex<Vec<FrameNum>>,
    /// Which domain currently runs on each physical CPU (reflection
    /// routing).
    current: RwLock<Vec<Option<DomId>>>,
}

impl Hypervisor {
    /// Build and warm up a dormant hypervisor on `machine`: reserve its
    /// working memory from the top of RAM, build the frame-accounting
    /// table and the VMM's own gate table.  Nothing touches the CPUs —
    /// the machine continues running natively.
    pub fn warm_up(machine: &Arc<Machine>) -> Arc<Hypervisor> {
        Self::warm_up_versioned(machine, 1)
    }

    /// [`Hypervisor::warm_up`] with an explicit build version: how a
    /// *successor* instance ("hv-v2") is pre-cached beside a running
    /// one for live-update.  Both instances share the machine but each
    /// reserves its own frame pool and owns its own page-info table,
    /// gate table, event channels and grant tables — nothing is shared,
    /// so a corrupted v1 cannot poison v2 (the transfer *recomputes*
    /// page_info from the guest's own page tables).
    pub fn warm_up_versioned(machine: &Arc<Machine>, version: u32) -> Arc<Hypervisor> {
        let boot = machine.boot_cpu();
        let reserved = machine
            .allocator
            .alloc_high(boot, HV_RESERVED_FRAMES)
            .expect("machine too small for the VMM reservation");
        let num_cpus = machine.num_cpus();
        Arc::new_cyclic(|weak: &Weak<Hypervisor>| {
            let mut idt = IdtTable::new("xenon");
            let reflect: Arc<dyn InterruptSink> = Arc::new(ReflectSink { hv: weak.clone() });
            for v in [
                vectors::PAGE_FAULT,
                vectors::GP_FAULT,
                vectors::MACHINE_CHECK,
                vectors::TIMER,
                vectors::DISK,
                vectors::NIC,
                vectors::IPI_CALL,
                vectors::SELF_VIRT_ATTACH,
                vectors::SELF_VIRT_DETACH,
                vectors::SELF_VIRT_RENDEZVOUS,
                vectors::SELF_VIRT_UPDATE,
                vectors::EVTCHN_UPCALL,
            ] {
                idt.set_gate(v, Arc::clone(&reflect));
            }
            Hypervisor {
                machine: Arc::clone(machine),
                page_info: Arc::new(PageInfoTable::new(machine.mem.num_frames())),
                events: EventChannels::new(),
                grants: GrantTables::new(),
                sched: Scheduler::new(num_cpus),
                stats: HvStats::default(),
                domains: RwLock::new(BTreeMap::new()),
                active: AtomicBool::new(false),
                version,
                next_domid: AtomicU16::new(1),
                hv_idt: Arc::new(idt),
                reserved: Mutex::new(reserved),
                current: RwLock::new(vec![None; num_cpus]),
            }
        })
    }

    // -- activation (Mercury attach/detach) -----------------------------

    /// Is the VMM in control of the machine?
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// Flip the VMM live.  Per-CPU hardware state is reloaded separately
    /// via [`Hypervisor::install_on_cpu`] (Mercury does it inside the
    /// switch interrupt handler, per §5.1.3).
    pub fn activate(&self) {
        self.active.store(true, Ordering::Release);
    }

    /// Return the VMM to dormancy.
    pub fn deactivate(&self) {
        self.active.store(false, Ordering::Release);
    }

    /// Take over one CPU: install the VMM's gate table and the
    /// de-privileging GDT.  Must run at PL0 (interrupt context of the
    /// switch handler).
    pub fn install_on_cpu(&self, cpu: &Arc<Cpu>) {
        cpu.tick(costs::STATE_RELOAD);
        cpu.set_idt_raw(Arc::clone(&self.hv_idt));
        cpu.set_gdt_raw(Gdt::VIRTUALIZED);
    }

    /// Release one CPU back to a native kernel: restore the kernel's own
    /// gate table and the native GDT.
    pub fn remove_from_cpu(&self, cpu: &Arc<Cpu>, kernel_idt: Arc<IdtTable>) {
        cpu.tick(costs::STATE_RELOAD);
        cpu.set_idt_raw(kernel_idt);
        cpu.set_gdt_raw(Gdt::NATIVE);
    }

    /// The VMM's gate table (tests, diagnostics).
    pub fn idt(&self) -> Arc<IdtTable> {
        Arc::clone(&self.hv_idt)
    }

    /// Frames reserved for the VMM itself.
    pub fn reserved_frames(&self) -> usize {
        self.reserved.lock().len()
    }

    /// This VMM build's version number.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Retire a superseded (or rolled-back) instance after live-update:
    /// deactivate it, forget its domain records (without killing the
    /// domains — they live on under the successor), and drain its
    /// reserved frame pool so the caller can hand the memory back to
    /// the machine allocator.  The husk keeps its (now empty) tables so
    /// late readers see a coherent — merely dormant and memoryless —
    /// hypervisor.
    pub fn decommission(&self) -> Vec<FrameNum> {
        self.deactivate();
        let ids: Vec<u16> = std::mem::take(&mut *self.domains.write())
            .into_keys()
            .collect();
        for id in ids {
            self.sched.remove_domain(DomId(id));
        }
        for slot in self.current.write().iter_mut() {
            *slot = None;
        }
        std::mem::take(&mut *self.reserved.lock())
    }

    /// Drop a domain record without destroying the domain (live-update
    /// hand-off bookkeeping: the domain now belongs to another
    /// instance, or a failed transfer into this one is being unwound).
    pub fn forget_domain(&self, id: DomId) {
        self.domains.write().remove(&id.0);
        self.sched.remove_domain(id);
    }

    /// Borrow `n` frames from the VMM's reserved pool (ring buffers,
    /// bounce pages).
    pub fn take_reserved(&self, n: usize) -> Result<Vec<FrameNum>, HvError> {
        let mut r = self.reserved.lock();
        if r.len() < n {
            return Err(HvError::OutOfMemory);
        }
        let at = r.len() - n;
        Ok(r.split_off(at))
    }

    /// Return frames to the reserved pool.
    pub fn give_reserved(&self, frames: Vec<FrameNum>) {
        self.reserved.lock().extend(frames);
    }

    fn check_active(&self) -> Result<(), HvError> {
        if self.is_active() {
            Ok(())
        } else {
            Err(HvError::NotActive)
        }
    }

    // `probe` is read only by the merctrace probes (compiled out by
    // default), hence the underscore.
    fn count_hypercall(&self, cpu: &Cpu, _probe: &'static str) {
        cpu.tick(costs::HYPERCALL_BASE);
        // Fault injection (compiled out by default): a transiently
        // failed hypercall is retried by the caller and a slow one takes
        // the hypervisor's long path — either way the guest pays a
        // deterministic cycle penalty on top of the base cost.
        let penalty = faultgen::hypercall_site!(cpu.id, cpu.cycles());
        if penalty != 0 {
            cpu.tick(penalty);
        }
        // A VMM-state fault lands in the accounting tables themselves:
        // the record for the planted frame is wiped behind the guest's
        // back, persisting until a live-update rebuilds it on a
        // pristine successor.
        if let Some(frame) = faultgen::vmm_site!(cpu.id, cpu.cycles()) {
            self.page_info.corrupt_record(FrameNum(frame));
        }
        self.stats.hypercalls.fetch_add(1, Ordering::Relaxed);
        merctrace::counter!(cpu.id, "xenon.hypercall", 1, cpu.cycles());
        merctrace::counter!(cpu.id, _probe, 1, cpu.cycles());
    }

    // -- domain lifecycle -------------------------------------------------

    /// Create a domain owning `quota` frames, with vCPU 0 on `pcpu`.
    /// `DOM0` must be created first and is the only privileged domain.
    pub fn create_domain(
        &self,
        cpu: &Cpu,
        name: &str,
        quota: Vec<FrameNum>,
        pcpu: usize,
    ) -> Result<Arc<Domain>, HvError> {
        let id = if self.domains.read().is_empty() {
            DOM0
        } else {
            DomId(self.next_domid.fetch_add(1, Ordering::Relaxed))
        };
        let dom = Domain::new(id, name, id == DOM0, pcpu);
        for f in &quota {
            self.page_info.set_owner(*f, Some(id));
            dom.add_frame(*f);
        }
        cpu.tick(costs::FRAME_ALLOC * quota.len() as u64 / 8);
        self.domains.write().insert(id.0, Arc::clone(&dom));
        self.sched.enqueue(pcpu, SchedUnit { dom: id, vcpu: 0 });
        Ok(dom)
    }

    /// Destroy a domain: unpin its tables, clear accounting, and return
    /// its frames (the caller decides whether they go back to the
    /// machine allocator or to another domain).
    pub fn destroy_domain(&self, cpu: &Cpu, dom: &Arc<Domain>) -> Result<Vec<FrameNum>, HvError> {
        for pgd in dom.pgds() {
            // Best effort: a half-built domain may not have pins.
            let _ = self.page_info.unpin_l2(cpu, &self.machine.mem, pgd);
            dom.remove_pgd(pgd);
        }
        self.page_info.clear_types_for(dom.id);
        let frames = dom.frames();
        for f in &frames {
            self.page_info.set_owner(*f, None);
            dom.remove_frame(*f);
        }
        dom.kill();
        self.sched.remove_domain(dom.id);
        self.domains.write().remove(&dom.id.0);
        Ok(frames)
    }

    /// Pick a domain id for a restore/migration arrival: the preferred
    /// (saved) id if free, otherwise a fresh one.  Prevents a migrated
    /// domain-0 from clobbering the host's own domain-0 record.
    pub fn allocate_domid(&self, preferred: DomId) -> DomId {
        if !self.domains.read().contains_key(&preferred.0) {
            return preferred;
        }
        DomId(self.next_domid.fetch_add(1, Ordering::Relaxed))
    }

    /// Look up a live domain.
    pub fn domain(&self, id: DomId) -> Option<Arc<Domain>> {
        self.domains.read().get(&id.0).cloned()
    }

    /// All live domains.
    pub fn domains(&self) -> Vec<Arc<Domain>> {
        // volint::allow(SWITCH-ALLOC): domain snapshot buffer, ≤ a handful of Arcs; taken before the transfer starts mutating
        self.domains.read().values().cloned().collect()
    }

    /// Adopt an externally-constructed domain record (migration
    /// receive).  The id is preserved.
    pub fn adopt_domain(&self, dom: Arc<Domain>) {
        let id = dom.id;
        let pcpu = dom.home_pcpu();
        // volint::allow(SWITCH-ALLOC): one map node per adopted domain, ≤ a handful per live-update transfer
        self.domains.write().insert(id.0, Arc::clone(&dom));
        self.sched.enqueue(pcpu, SchedUnit { dom: id, vcpu: 0 });
        let next = self.next_domid.load(Ordering::Relaxed).max(id.0 + 1);
        self.next_domid.store(next, Ordering::Relaxed);
    }

    /// Record which domain runs on `pcpu` (context switch by the
    /// scheduler/test bed); reflection routes through this.
    pub fn set_current(&self, pcpu: usize, dom: Option<DomId>) {
        // volint::allow(SWITCH-PANIC): pcpu comes from Cpu::id, always < num_cpus — the vector was sized from the same machine
        self.current.write()[pcpu] = dom;
    }

    /// The domain currently on `pcpu`.
    pub fn current(&self, pcpu: usize) -> Option<DomId> {
        self.current.read()[pcpu]
    }

    // -- MMU hypercalls -----------------------------------------------------

    /// `HYPERVISOR_mmu_update`: validate and commit a batch of
    /// page-table writes for `dom`.
    ///
    /// Rules (direct paging, §3.2.2):
    /// * the target table must already be validated (typed `L1`/`L2`);
    ///   guests build *new* tables with ordinary writes and then pin;
    /// * a leaf entry may only map a frame the domain owns;
    /// * a writable leaf entry may not target a page-table frame;
    /// * a directory entry may only reference a (possibly just-now
    ///   validated) L1 table.
    // volint::root(SWITCH)
    pub fn mmu_update(
        &self,
        cpu: &Cpu,
        dom: &Arc<Domain>,
        updates: &[MmuUpdate],
    ) -> Result<(), HvError> {
        self.check_active()?;
        self.count_hypercall(cpu, "xenon.hypercall.mmu_update");
        // volint::bound(512) — one batch ≤ ENTRIES_PER_TABLE updates; callers submit per-table batches
        for u in updates {
            cpu.tick(costs::MMU_UPDATE_PER_ENTRY);
            self.stats.mmu_entries.fetch_add(1, Ordering::Relaxed);
            let (typ, count) = self.page_info.type_of(u.table);
            if count == 0 {
                return Err(HvError::TypeConflict(
                    "mmu_update on an unvalidated table (write it directly and pin)",
                ));
            }
            if self.page_info.owner(u.table) != Some(dom.id) {
                return Err(HvError::BadFrame {
                    frame: u.table.0,
                    why: "table not owned by caller",
                });
            }
            match typ {
                PageType::L1 => self.commit_l1_update(cpu, dom, u)?,
                PageType::L2 => self.commit_l2_update(cpu, dom, u)?,
                _ => {
                    return Err(HvError::TypeConflict(
                        "mmu_update target is not a page table",
                    ))
                }
            }
            self.page_info.mark_dirty(u.table);
        }
        Ok(())
    }

    fn commit_l1_update(&self, cpu: &Cpu, dom: &Arc<Domain>, u: &MmuUpdate) -> Result<(), HvError> {
        let mem = &self.machine.mem;
        let old = mem.read_pte(cpu, u.table, u.index)?;
        // Take the new reference first so failure leaves state intact.
        if u.val.present() {
            let target = FrameNum(u.val.frame());
            if self.page_info.owner(target) != Some(dom.id) {
                return Err(HvError::BadFrame {
                    frame: target.0,
                    why: "leaf target not owned by caller",
                });
            }
            if u.val.writable() {
                self.page_info.get_type_ref(target, PageType::Writable)?;
            }
        }
        if old.present() && old.writable() {
            self.page_info
                .put_type_ref(FrameNum(old.frame()), PageType::Writable);
        }
        mem.write_pte(cpu, u.table, u.index, u.val)?;
        Ok(())
    }

    fn commit_l2_update(&self, cpu: &Cpu, dom: &Arc<Domain>, u: &MmuUpdate) -> Result<(), HvError> {
        let mem = &self.machine.mem;
        let old = mem.read_pte(cpu, u.table, u.index)?;
        if u.val.present() {
            let l1 = FrameNum(u.val.frame());
            let (typ, count) = self.page_info.type_of(l1);
            if typ != PageType::L1 || count == 0 {
                // The ref taken at the end of validate_l1 is this
                // entry's reference.
                self.page_info
                    .validate_l1(cpu, mem, l1, dom.id, costs::PT_PIN_PER_ENTRY)?;
            } else {
                self.page_info.get_type_ref(l1, PageType::L1)?;
            }
        }
        if old.present() {
            let l1 = FrameNum(old.frame());
            self.page_info.put_type_ref(l1, PageType::L1);
            let (typ, count) = self.page_info.type_of(l1);
            if typ == PageType::None && count == 0 {
                self.page_info.get_type_ref(l1, PageType::L1)?;
                self.page_info.invalidate_l1(cpu, mem, l1)?;
            }
        }
        mem.write_pte(cpu, u.table, u.index, u.val)?;
        Ok(())
    }

    /// `MMUEXT_PIN_L2_TABLE`: validate and pin a base table.
    // volint::root(SWITCH)
    pub fn pin_l2(&self, cpu: &Cpu, dom: &Arc<Domain>, pgd: FrameNum) -> Result<(), HvError> {
        self.check_active()?;
        self.count_hypercall(cpu, "xenon.hypercall.pin_l2");
        self.page_info.pin_l2(cpu, &self.machine.mem, pgd, dom.id)?;
        dom.add_pgd(pgd);
        Ok(())
    }

    /// `MMUEXT_UNPIN_TABLE`.
    // volint::root(SWITCH)
    pub fn unpin_l2(&self, cpu: &Cpu, dom: &Arc<Domain>, pgd: FrameNum) -> Result<(), HvError> {
        self.check_active()?;
        self.count_hypercall(cpu, "xenon.hypercall.unpin_l2");
        self.page_info.unpin_l2(cpu, &self.machine.mem, pgd)?;
        dom.remove_pgd(pgd);
        Ok(())
    }

    /// `MMUEXT_NEW_BASEPTR`: load a new page-directory base on `cpu`.
    /// The table must be pinned (validated) and owned by the caller.
    // volint::root(SWITCH)
    pub fn new_baseptr(
        &self,
        cpu: &Arc<Cpu>,
        dom: &Arc<Domain>,
        pgd: FrameNum,
    ) -> Result<(), HvError> {
        self.check_active()?;
        self.count_hypercall(cpu, "xenon.hypercall.new_baseptr");
        let (typ, count) = self.page_info.type_of(pgd);
        if typ != PageType::L2 || count == 0 {
            return Err(HvError::TypeConflict("baseptr not a validated L2"));
        }
        if self.page_info.owner(pgd) != Some(dom.id) {
            return Err(HvError::BadFrame {
                frame: pgd.0,
                why: "baseptr not owned by caller",
            });
        }
        cpu.set_cr3_raw(pgd.0);
        Ok(())
    }

    /// `MMUEXT_TLB_FLUSH_LOCAL`.
    // volint::root(SWITCH)
    pub fn tlb_flush_local(&self, cpu: &Arc<Cpu>) -> Result<(), HvError> {
        self.check_active()?;
        self.count_hypercall(cpu, "xenon.hypercall.tlb_flush_local");
        cpu.flush_tlb_local();
        Ok(())
    }

    /// `MMUEXT_TLB_FLUSH_ALL`: flush every CPU's TLB (the VMM performs
    /// the shootdown on the guest's behalf).
    // volint::root(SWITCH)
    pub fn tlb_flush_all(&self, cpu: &Arc<Cpu>) -> Result<(), HvError> {
        self.check_active()?;
        self.count_hypercall(cpu, "xenon.hypercall.tlb_flush_all");
        // volint::bound(64) — one IPI per CPU; the machine model tops out well below this
        for c in &self.machine.cpus {
            if c.id != cpu.id {
                cpu.tick(costs::IPI_SEND);
            }
            c.flush_tlb_local();
        }
        Ok(())
    }

    /// `MMUEXT_INVLPG_LOCAL`.
    // volint::root(SWITCH)
    pub fn invlpg(&self, cpu: &Arc<Cpu>, vpn: u64) -> Result<(), HvError> {
        self.check_active()?;
        self.count_hypercall(cpu, "xenon.hypercall.invlpg");
        cpu.invlpg(vpn);
        Ok(())
    }

    // -- CPU / trap hypercalls ---------------------------------------------

    /// `HYPERVISOR_set_trap_table`: register the guest's handlers.
    // volint::root(SWITCH)
    pub fn set_trap_table(
        &self,
        cpu: &Cpu,
        dom: &Arc<Domain>,
        entries: Vec<(u8, Arc<dyn InterruptSink>)>,
    ) -> Result<(), HvError> {
        self.check_active()?;
        self.count_hypercall(cpu, "xenon.hypercall.set_trap_table");
        // volint::bound(32) — one entry per registered trap vector
        for (vector, sink) in entries {
            dom.set_trap_gate(vector, sink);
        }
        Ok(())
    }

    /// `HYPERVISOR_stack_switch`: record the guest kernel's stack for
    /// the next user→kernel transition.
    // volint::root(SWITCH)
    pub fn stack_switch(
        &self,
        cpu: &Cpu,
        dom: &Arc<Domain>,
        vcpu: usize,
        sp: u64,
    ) -> Result<(), HvError> {
        self.check_active()?;
        self.count_hypercall(cpu, "xenon.hypercall.stack_switch");
        dom.set_kernel_sp(vcpu, sp)
    }

    /// `SCHEDOP_yield`.
    pub fn sched_yield(&self, cpu: &Cpu, _dom: &Arc<Domain>) -> Result<(), HvError> {
        self.check_active()?;
        self.count_hypercall(cpu, "xenon.hypercall.sched_yield");
        Ok(())
    }

    /// `SCHEDOP_block`: the vCPU sleeps until an event arrives.
    pub fn sched_block(&self, cpu: &Cpu, dom: &Arc<Domain>, vcpu: usize) -> Result<(), HvError> {
        self.check_active()?;
        self.count_hypercall(cpu, "xenon.hypercall.sched_block");
        dom.set_runnable(vcpu, false);
        Ok(())
    }

    /// `HYPERVISOR_console_io`.
    pub fn console_io(&self, cpu: &Cpu, msg: &str) -> Result<(), HvError> {
        self.check_active()?;
        self.count_hypercall(cpu, "xenon.hypercall.console_io");
        self.machine.console.write_line(msg);
        Ok(())
    }

    // -- memory ballooning ---------------------------------------------------

    /// `XENMEM_decrease_reservation`: the guest relinquishes frames
    /// (its balloon driver inflates).  Frames must be owned by the
    /// caller and untyped (no live page-table or writable references);
    /// they move to the VMM's reserved pool.
    pub fn balloon_out(
        &self,
        cpu: &Cpu,
        dom: &Arc<Domain>,
        frames: &[FrameNum],
    ) -> Result<(), HvError> {
        self.check_active()?;
        self.count_hypercall(cpu, "xenon.hypercall.balloon_out");
        // Validate everything first: partial balloons are confusing.
        for &f in frames {
            if self.page_info.owner(f) != Some(dom.id) {
                return Err(HvError::BadFrame {
                    frame: f.0,
                    why: "ballooning a frame the domain does not own",
                });
            }
            let (_, count) = self.page_info.type_of(f);
            if count != 0 {
                return Err(HvError::TypeConflict(
                    "ballooning a frame with live references",
                ));
            }
        }
        for &f in frames {
            cpu.tick(costs::FRAME_ALLOC / 2);
            self.page_info.set_owner(f, None);
            dom.remove_frame(f);
        }
        self.give_reserved(frames.to_vec());
        Ok(())
    }

    /// `XENMEM_increase_reservation`: grant the domain `n` frames from
    /// the VMM's pool (its balloon deflates).  Returns the frames, now
    /// owned by the domain.
    pub fn balloon_in(
        &self,
        cpu: &Cpu,
        dom: &Arc<Domain>,
        n: usize,
    ) -> Result<Vec<FrameNum>, HvError> {
        self.check_active()?;
        self.count_hypercall(cpu, "xenon.hypercall.balloon_in");
        let frames = self.take_reserved(n)?;
        for &f in &frames {
            cpu.tick(costs::FRAME_ALLOC / 2);
            self.page_info.set_owner(f, Some(dom.id));
            dom.add_frame(f);
            // Scrub: the frame may carry another domain's stale data.
            self.machine.mem.zero_frame(cpu, f)?;
        }
        Ok(frames)
    }

    // -- event channels / grants (thin wrappers charging the crossing) -----

    /// `EVTCHNOP_alloc_unbound`.
    pub fn evtchn_alloc(&self, cpu: &Cpu, dom: &Arc<Domain>) -> Result<u32, HvError> {
        self.check_active()?;
        self.count_hypercall(cpu, "xenon.hypercall.evtchn_alloc");
        self.events.alloc_unbound(dom.id)
    }

    /// `EVTCHNOP_bind_interdomain`.
    pub fn evtchn_bind(
        &self,
        cpu: &Cpu,
        dom: &Arc<Domain>,
        peer: DomId,
        peer_port: u32,
    ) -> Result<u32, HvError> {
        self.check_active()?;
        self.count_hypercall(cpu, "xenon.hypercall.evtchn_bind");
        self.events.bind_interdomain(dom.id, peer, peer_port)
    }

    /// `EVTCHNOP_send`.
    pub fn evtchn_send(&self, cpu: &Cpu, dom: &Arc<Domain>, port: u32) -> Result<(), HvError> {
        self.check_active()?;
        self.count_hypercall(cpu, "xenon.hypercall.evtchn_send");
        self.events
            .send(cpu, &self.machine.intc, dom, port, |id| self.domain(id))
    }

    /// `GNTTABOP_grant`.
    pub fn grant(
        &self,
        cpu: &Cpu,
        dom: &Arc<Domain>,
        to: DomId,
        frame: FrameNum,
        readonly: bool,
    ) -> Result<u32, HvError> {
        self.check_active()?;
        merctrace::counter!(cpu.id, "xenon.hypercall.grant", 1, cpu.cycles());
        if !dom.owns(frame) {
            return Err(HvError::BadFrame {
                frame: frame.0,
                why: "granting a frame the domain does not own",
            });
        }
        Ok(self.grants.grant(cpu, dom.id, to, frame, readonly))
    }

    /// `GNTTABOP_map_grant_ref`.
    pub fn grant_map(
        &self,
        cpu: &Cpu,
        dom: &Arc<Domain>,
        grantor: DomId,
        gref: u32,
    ) -> Result<(FrameNum, bool), HvError> {
        self.check_active()?;
        merctrace::counter!(cpu.id, "xenon.hypercall.grant_map", 1, cpu.cycles());
        self.grants.map(cpu, dom.id, grantor, gref)
    }

    /// `GNTTABOP_unmap_grant_ref`.
    pub fn grant_unmap(
        &self,
        cpu: &Cpu,
        dom: &Arc<Domain>,
        grantor: DomId,
        gref: u32,
    ) -> Result<(), HvError> {
        self.check_active()?;
        merctrace::counter!(cpu.id, "xenon.hypercall.grant_unmap", 1, cpu.cycles());
        self.grants.unmap(cpu, dom.id, grantor, gref)
    }

    /// Revoke one of the caller's own grants.
    pub fn grant_revoke(&self, cpu: &Cpu, dom: &Arc<Domain>, gref: u32) -> Result<(), HvError> {
        self.check_active()?;
        merctrace::counter!(cpu.id, "xenon.hypercall.grant_revoke", 1, cpu.cycles());
        self.grants.revoke(cpu, dom.id, gref)
    }
}

/// The VMM's gate-table sink: receives every trap while the VMM owns the
/// hardware and reflects it into the guest's registered handler,
/// charging the extra ring crossings (§3.2.1's cost of de-privileging).
struct ReflectSink {
    hv: Weak<Hypervisor>,
}

impl InterruptSink for ReflectSink {
    fn handle(&self, cpu: &Arc<Cpu>, frame: &mut TrapFrame) {
        let Some(hv) = self.hv.upgrade() else {
            return;
        };
        cpu.tick(costs::TRAP_REFLECT_VIRT);
        hv.stats.reflections.fetch_add(1, Ordering::Relaxed);
        merctrace::counter!(cpu.id, "xenon.trap.reflect", 1, cpu.cycles());

        if frame.vector == vectors::EVTCHN_UPCALL {
            // Deliver to every domain homed on this CPU with pending
            // events.
            for dom in hv.domains() {
                if dom.home_pcpu() == cpu.id && dom.evt_pending.load(Ordering::Acquire) != 0 {
                    if let Some(gate) = dom.trap_gate(vectors::EVTCHN_UPCALL) {
                        gate.handle(cpu, frame);
                    }
                }
            }
            return;
        }

        // Everything else goes to the domain currently on this CPU.
        let Some(dom) = hv.current(cpu.id).and_then(|id| hv.domain(id)) else {
            return;
        };
        if let Some(gate) = dom.trap_gate(frame.vector) {
            gate.handle(cpu, frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx86::MachineConfig;

    fn small_machine() -> Arc<Machine> {
        Machine::new(MachineConfig {
            num_cpus: 1,
            mem_frames: 2048,
            disk_sectors: 64,
        })
    }

    fn quota(machine: &Arc<Machine>, n: usize) -> Vec<FrameNum> {
        machine.allocator.alloc_many(machine.boot_cpu(), n).unwrap()
    }

    #[test]
    fn warm_up_reserves_top_memory_and_stays_dormant() {
        let machine = small_machine();
        let free_before = machine.allocator.available();
        let hv = Hypervisor::warm_up(&machine);
        assert!(!hv.is_active());
        assert_eq!(hv.reserved_frames(), HV_RESERVED_FRAMES);
        assert_eq!(
            machine.allocator.available(),
            free_before - HV_RESERVED_FRAMES
        );
    }

    #[test]
    fn hypercalls_fail_while_dormant() {
        let machine = small_machine();
        let hv = Hypervisor::warm_up(&machine);
        let cpu = machine.boot_cpu();
        let dom = hv
            .create_domain(cpu, "dom0", quota(&machine, 16), 0)
            .unwrap();
        assert!(matches!(
            hv.mmu_update(cpu, &dom, &[]),
            Err(HvError::NotActive)
        ));
        assert!(matches!(hv.sched_yield(cpu, &dom), Err(HvError::NotActive)));
        hv.activate();
        assert!(hv.mmu_update(cpu, &dom, &[]).is_ok());
    }

    #[test]
    fn dom0_is_first_and_privileged() {
        let machine = small_machine();
        let hv = Hypervisor::warm_up(&machine);
        let cpu = machine.boot_cpu();
        let d0 = hv
            .create_domain(cpu, "dom0", quota(&machine, 4), 0)
            .unwrap();
        let d1 = hv
            .create_domain(cpu, "domU", quota(&machine, 4), 0)
            .unwrap();
        assert_eq!(d0.id, DOM0);
        assert!(d0.privileged);
        assert_eq!(d1.id, DomId(1));
        assert!(!d1.privileged);
        assert!(hv.domain(DOM0).is_some());
        assert_eq!(hv.domains().len(), 2);
    }

    /// Build a pinned base table: PGD → one L1 → one writable data page.
    fn pinned_as(
        hv: &Arc<Hypervisor>,
        cpu: &Arc<Cpu>,
        dom: &Arc<Domain>,
    ) -> (FrameNum, FrameNum, FrameNum) {
        let frames = dom.frames();
        let (pgd, l1, data) = (frames[0], frames[1], frames[2]);
        let mem = &hv.machine.mem;
        mem.write_pte(cpu, pgd, 0, Pte::new(l1.0, Pte::WRITABLE | Pte::USER))
            .unwrap();
        mem.write_pte(cpu, l1, 0, Pte::new(data.0, Pte::WRITABLE | Pte::USER))
            .unwrap();
        hv.pin_l2(cpu, dom, pgd).unwrap();
        (pgd, l1, data)
    }

    #[test]
    fn mmu_update_validates_and_commits() {
        let machine = small_machine();
        let hv = Hypervisor::warm_up(&machine);
        hv.activate();
        let cpu = machine.boot_cpu();
        let dom = hv
            .create_domain(cpu, "dom0", quota(&machine, 8), 0)
            .unwrap();
        let (_pgd, l1, _data) = pinned_as(&hv, cpu, &dom);
        let new_target = dom.frames()[3];

        // Remap slot 0 to another owned frame.
        hv.mmu_update(
            cpu,
            &dom,
            &[MmuUpdate {
                table: l1,
                index: 0,
                val: Pte::new(new_target.0, Pte::WRITABLE | Pte::USER),
            }],
        )
        .unwrap();
        assert_eq!(hv.page_info.type_of(new_target), (PageType::Writable, 1));
        // The old target's writable ref was dropped.
        assert_eq!(hv.page_info.type_of(dom.frames()[2]), (PageType::None, 0));
    }

    #[test]
    fn mmu_update_rejects_mapping_page_table_writable() {
        let machine = small_machine();
        let hv = Hypervisor::warm_up(&machine);
        hv.activate();
        let cpu = machine.boot_cpu();
        let dom = hv
            .create_domain(cpu, "dom0", quota(&machine, 8), 0)
            .unwrap();
        let (_pgd, l1, _) = pinned_as(&hv, cpu, &dom);
        let err = hv
            .mmu_update(
                cpu,
                &dom,
                &[MmuUpdate {
                    table: l1,
                    index: 1,
                    val: Pte::new(l1.0, Pte::WRITABLE),
                }],
            )
            .unwrap_err();
        assert!(matches!(err, HvError::TypeConflict(_)));
    }

    #[test]
    fn mmu_update_rejects_foreign_frames_and_unvalidated_tables() {
        let machine = small_machine();
        let hv = Hypervisor::warm_up(&machine);
        hv.activate();
        let cpu = machine.boot_cpu();
        let d0 = hv
            .create_domain(cpu, "dom0", quota(&machine, 8), 0)
            .unwrap();
        let d1 = hv
            .create_domain(cpu, "domU", quota(&machine, 8), 0)
            .unwrap();
        let (_pgd, l1, _) = pinned_as(&hv, cpu, &d0);

        // Mapping a frame owned by d1 into d0's table: rejected.
        let foreign = d1.frames()[0];
        assert!(matches!(
            hv.mmu_update(
                cpu,
                &d0,
                &[MmuUpdate {
                    table: l1,
                    index: 2,
                    val: Pte::new(foreign.0, Pte::WRITABLE),
                }]
            ),
            Err(HvError::BadFrame { .. })
        ));

        // Updating an unvalidated table: rejected.
        let plain = d0.frames()[5];
        assert!(matches!(
            hv.mmu_update(
                cpu,
                &d0,
                &[MmuUpdate {
                    table: plain,
                    index: 0,
                    val: Pte::ABSENT,
                }]
            ),
            Err(HvError::TypeConflict(_))
        ));
    }

    #[test]
    fn new_baseptr_requires_pinned_l2() {
        let machine = small_machine();
        let hv = Hypervisor::warm_up(&machine);
        hv.activate();
        let cpu = machine.boot_cpu();
        let dom = hv
            .create_domain(cpu, "dom0", quota(&machine, 8), 0)
            .unwrap();
        let plain = dom.frames()[5];
        assert!(hv.new_baseptr(cpu, &dom, plain).is_err());
        let (pgd, _, _) = pinned_as(&hv, cpu, &dom);
        hv.new_baseptr(cpu, &dom, pgd).unwrap();
        assert_eq!(cpu.read_cr3().unwrap(), pgd.0);
    }

    #[test]
    fn destroy_domain_releases_everything() {
        let machine = small_machine();
        let hv = Hypervisor::warm_up(&machine);
        hv.activate();
        let cpu = machine.boot_cpu();
        let dom = hv
            .create_domain(cpu, "dom0", quota(&machine, 8), 0)
            .unwrap();
        let (pgd, l1, data) = pinned_as(&hv, cpu, &dom);
        let frames = hv.destroy_domain(cpu, &dom).unwrap();
        assert_eq!(frames.len(), 8);
        assert!(!dom.is_alive());
        for f in [pgd, l1, data] {
            assert_eq!(hv.page_info.type_of(f), (PageType::None, 0));
            assert_eq!(hv.page_info.owner(f), None);
        }
        assert!(hv.domain(DOM0).is_none());
    }

    #[test]
    fn reflection_reaches_registered_guest_handler() {
        use std::sync::atomic::AtomicUsize;
        let machine = small_machine();
        let hv = Hypervisor::warm_up(&machine);
        hv.activate();
        let cpu = machine.boot_cpu();
        let dom = hv
            .create_domain(cpu, "dom0", quota(&machine, 4), 0)
            .unwrap();

        struct Count(AtomicUsize);
        impl InterruptSink for Count {
            fn handle(&self, _c: &Arc<Cpu>, _f: &mut TrapFrame) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let counter = Arc::new(Count(AtomicUsize::new(0)));
        hv.set_trap_table(cpu, &dom, vec![(vectors::TIMER, counter.clone())])
            .unwrap();
        hv.set_current(0, Some(dom.id));
        hv.install_on_cpu(cpu);
        cpu.set_pl_raw(simx86::PrivLevel::Pl0);
        cpu.sti().unwrap();
        cpu.set_pl_raw(simx86::PrivLevel::Pl1);

        cpu.raise(vectors::TIMER);
        cpu.service_pending();
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
        assert_eq!(hv.stats.reflections.load(Ordering::Relaxed), 1);
        // Guest resumed at its de-privileged level.
        assert_eq!(cpu.pl(), simx86::PrivLevel::Pl1);
    }

    #[test]
    fn grant_requires_ownership() {
        let machine = small_machine();
        let hv = Hypervisor::warm_up(&machine);
        hv.activate();
        let cpu = machine.boot_cpu();
        let d0 = hv
            .create_domain(cpu, "dom0", quota(&machine, 4), 0)
            .unwrap();
        let d1 = hv
            .create_domain(cpu, "domU", quota(&machine, 4), 0)
            .unwrap();
        let mine = d1.frames()[0];
        let gref = hv.grant(cpu, &d1, DOM0, mine, false).unwrap();
        let (f, _) = hv.grant_map(cpu, &d0, d1.id, gref).unwrap();
        assert_eq!(f, mine);
        // d1 cannot grant d0's frame.
        let theirs = d0.frames()[0];
        assert!(hv.grant(cpu, &d1, DOM0, theirs, false).is_err());
    }
}

#[cfg(test)]
mod wrapper_tests {
    use super::*;
    use simx86::MachineConfig;

    fn rig() -> (Arc<Machine>, Arc<Hypervisor>, Arc<Domain>, Arc<Domain>) {
        let machine = Machine::new(MachineConfig {
            num_cpus: 1,
            mem_frames: 2048,
            disk_sectors: 64,
        });
        let hv = Hypervisor::warm_up(&machine);
        hv.activate();
        let cpu = machine.boot_cpu();
        let q0 = machine.allocator.alloc_many(cpu, 8).unwrap();
        let d0 = hv.create_domain(cpu, "dom0", q0, 0).unwrap();
        let q1 = machine.allocator.alloc_many(cpu, 8).unwrap();
        let d1 = hv.create_domain(cpu, "domU", q1, 0).unwrap();
        (machine, hv, d0, d1)
    }

    #[test]
    fn evtchn_hypercall_wrappers_roundtrip() {
        let (machine, hv, d0, d1) = rig();
        let cpu = machine.boot_cpu();
        let p1 = hv.evtchn_alloc(cpu, &d1).unwrap();
        let p0 = hv.evtchn_bind(cpu, &d0, d1.id, p1).unwrap();
        hv.evtchn_send(cpu, &d0, p0).unwrap();
        assert_eq!(crate::events::take_pending(&d1), 1u64 << p1);
        // And the reverse direction through the peer port.
        hv.evtchn_send(cpu, &d1, p1).unwrap();
        assert_eq!(crate::events::take_pending(&d0), 1u64 << p0);
    }

    #[test]
    fn stack_switch_and_sched_ops() {
        let (machine, hv, d0, _d1) = rig();
        let cpu = machine.boot_cpu();
        hv.stack_switch(cpu, &d0, 0, 0xcafe_0000).unwrap();
        assert_eq!(d0.vcpus()[0].kernel_sp, 0xcafe_0000);
        assert!(hv.stack_switch(cpu, &d0, 7, 0).is_err(), "bad vcpu index");

        hv.sched_block(cpu, &d0, 0).unwrap();
        assert!(!d0.any_runnable());
        // An event wakes the blocked vCPU.
        let (machine2, hv2, a, b) = rig();
        let cpu2 = machine2.boot_cpu();
        let pb = hv2.evtchn_alloc(cpu2, &b).unwrap();
        let pa = hv2.evtchn_bind(cpu2, &a, b.id, pb).unwrap();
        hv2.sched_block(cpu2, &b, 0).unwrap();
        assert!(!b.any_runnable());
        hv2.evtchn_send(cpu2, &a, pa).unwrap();
        assert!(b.any_runnable(), "event must wake the blocked vCPU");
        hv.sched_yield(cpu, &d0).unwrap();
    }

    #[test]
    fn console_io_reaches_the_console() {
        let (machine, hv, _d0, _d1) = rig();
        let cpu = machine.boot_cpu();
        hv.console_io(cpu, "from the guest").unwrap();
        assert!(machine.console.contains("from the guest"));
    }

    #[test]
    fn tlb_hypercalls_charge_and_flush() {
        let (machine, hv, _d0, _d1) = rig();
        let cpu = machine.boot_cpu();
        let before = cpu.cycles();
        hv.tlb_flush_local(cpu).unwrap();
        hv.invlpg(cpu, 0x123).unwrap();
        assert!(cpu.cycles() - before >= 2 * costs::HYPERCALL_BASE);
    }

    #[test]
    fn reserved_pool_take_and_give() {
        let (_machine, hv, _d0, _d1) = rig();
        let n0 = hv.reserved_frames();
        let taken = hv.take_reserved(4).unwrap();
        assert_eq!(hv.reserved_frames(), n0 - 4);
        hv.give_reserved(taken);
        assert_eq!(hv.reserved_frames(), n0);
        assert!(hv.take_reserved(100_000).is_err());
    }

    #[test]
    fn ballooning_moves_frames_between_domain_and_vmm() {
        let (machine, hv, d0, d1) = rig();
        let cpu = machine.boot_cpu();
        let reserved0 = hv.reserved_frames();
        let give = vec![d0.frames()[5], d0.frames()[6]];

        hv.balloon_out(cpu, &d0, &give).unwrap();
        assert_eq!(d0.frame_count(), 6);
        assert_eq!(hv.reserved_frames(), reserved0 + 2);
        assert_eq!(hv.page_info.owner(give[0]), None);

        // The other domain can receive them — scrubbed.
        machine
            .mem
            .write_word(cpu, give[0].base(), 0xdead)
            .unwrap();
        let got = hv.balloon_in(cpu, &d1, 2).unwrap();
        assert_eq!(d1.frame_count(), 10);
        for f in &got {
            assert_eq!(hv.page_info.owner(*f), Some(d1.id));
            assert_eq!(machine.mem.read_word(cpu, f.base()).unwrap(), 0, "not scrubbed");
        }
    }

    #[test]
    fn ballooning_rejects_foreign_or_referenced_frames() {
        let (machine, hv, d0, d1) = rig();
        let cpu = machine.boot_cpu();
        // Foreign frame.
        assert!(matches!(
            hv.balloon_out(cpu, &d0, &[d1.frames()[0]]),
            Err(HvError::BadFrame { .. })
        ));
        // Frame with a live type reference.
        let f = d0.frames()[3];
        hv.page_info.get_type_ref(f, PageType::Writable).unwrap();
        assert!(matches!(
            hv.balloon_out(cpu, &d0, &[f]),
            Err(HvError::TypeConflict(_))
        ));
        // Nothing moved on failure.
        assert_eq!(d0.frame_count(), 8);
    }

    #[test]
    fn adopted_domain_ids_do_not_collide() {
        let (_machine, hv, d0, _d1) = rig();
        // A migrated-in domain claiming an occupied id gets a fresh one.
        assert_ne!(hv.allocate_domid(d0.id), d0.id);
        assert_eq!(hv.allocate_domid(DomId(77)), DomId(77));
    }
}
