//! A round-robin vCPU scheduler.
//!
//! The paper's testbed runs one or two guests; a credit scheduler's
//! weights would add nothing to the reproduction, so Xenon schedules
//! runnable vCPUs round-robin per physical CPU.  The workload harness
//! calls [`Scheduler::pick_next`] to decide which domain to drive.

use crate::domain::{DomId, Domain};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// A schedulable entity: one vCPU of one domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedUnit {
    /// The domain.
    pub dom: DomId,
    /// vCPU index within the domain.
    pub vcpu: usize,
}

/// The scheduler: a run queue per physical CPU.
pub struct Scheduler {
    queues: Vec<Mutex<VecDeque<SchedUnit>>>,
}

impl Scheduler {
    /// A scheduler for `num_pcpus` physical CPUs.
    pub fn new(num_pcpus: usize) -> Self {
        Scheduler {
            queues: (0..num_pcpus)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
        }
    }

    /// Add a vCPU to `pcpu`'s run queue.
    pub fn enqueue(&self, pcpu: usize, unit: SchedUnit) {
        let mut q = self.queues[pcpu].lock();
        if !q.contains(&unit) {
            q.push_back(unit);
        }
    }

    /// Remove every vCPU of `dom` from all queues (domain destruction or
    /// migration away).
    pub fn remove_domain(&self, dom: DomId) {
        // volint::bound(64) — one run queue per physical CPU
        for q in &self.queues {
            q.lock().retain(|u| u.dom != dom);
        }
    }

    /// Pick the next runnable unit on `pcpu`, rotating it to the back of
    /// the queue.  `resolve` maps a domain id to the live domain; dead
    /// or fully blocked domains are skipped (blocked ones stay queued —
    /// an event may wake them).
    pub fn pick_next(
        &self,
        pcpu: usize,
        resolve: impl Fn(DomId) -> Option<Arc<Domain>>,
    ) -> Option<SchedUnit> {
        let mut q = self.queues[pcpu].lock();
        // Purge dead domains eagerly.
        q.retain(|u| resolve(u.dom).map(|d| d.is_alive()).unwrap_or(false));
        let len = q.len();
        for _ in 0..len {
            let unit = q.pop_front()?;
            q.push_back(unit);
            if let Some(d) = resolve(unit.dom) {
                let runnable = d
                    .vcpus()
                    .get(unit.vcpu)
                    .map(|v| v.runnable)
                    .unwrap_or(false);
                if runnable {
                    return Some(unit);
                }
            }
        }
        None
    }

    /// Units queued on `pcpu` (diagnostics).
    pub fn queue_len(&self, pcpu: usize) -> usize {
        self.queues[pcpu].lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doms() -> (Arc<Domain>, Arc<Domain>) {
        (
            Domain::new(DomId(0), "a", true, 0),
            Domain::new(DomId(1), "b", false, 0),
        )
    }

    #[test]
    fn round_robin_rotation() {
        let (a, b) = doms();
        let s = Scheduler::new(1);
        s.enqueue(0, SchedUnit { dom: a.id, vcpu: 0 });
        s.enqueue(0, SchedUnit { dom: b.id, vcpu: 0 });
        let resolve = |id: DomId| {
            if id == a.id {
                Some(a.clone())
            } else {
                Some(b.clone())
            }
        };
        assert_eq!(s.pick_next(0, resolve).unwrap().dom, a.id);
        assert_eq!(s.pick_next(0, resolve).unwrap().dom, b.id);
        assert_eq!(s.pick_next(0, resolve).unwrap().dom, a.id);
    }

    #[test]
    fn blocked_vcpus_skipped_but_kept() {
        let (a, b) = doms();
        let s = Scheduler::new(1);
        s.enqueue(0, SchedUnit { dom: a.id, vcpu: 0 });
        s.enqueue(0, SchedUnit { dom: b.id, vcpu: 0 });
        a.set_runnable(0, false);
        let resolve = |id: DomId| {
            if id == a.id {
                Some(a.clone())
            } else {
                Some(b.clone())
            }
        };
        assert_eq!(s.pick_next(0, resolve).unwrap().dom, b.id);
        assert_eq!(s.pick_next(0, resolve).unwrap().dom, b.id);
        // Wake it: scheduled again.
        a.set_runnable(0, true);
        assert_eq!(s.pick_next(0, resolve).unwrap().dom, a.id);
        assert_eq!(s.queue_len(0), 2);
    }

    #[test]
    fn dead_domains_drop_from_queue() {
        let (a, b) = doms();
        let s = Scheduler::new(1);
        s.enqueue(0, SchedUnit { dom: a.id, vcpu: 0 });
        s.enqueue(0, SchedUnit { dom: b.id, vcpu: 0 });
        b.kill();
        let resolve = |id: DomId| {
            if id == a.id {
                Some(a.clone())
            } else {
                Some(b.clone())
            }
        };
        assert_eq!(s.pick_next(0, resolve).unwrap().dom, a.id);
        assert_eq!(s.queue_len(0), 1);
    }

    #[test]
    fn duplicate_enqueue_ignored_and_remove_domain() {
        let (a, _) = doms();
        let s = Scheduler::new(2);
        let u = SchedUnit { dom: a.id, vcpu: 0 };
        s.enqueue(1, u);
        s.enqueue(1, u);
        assert_eq!(s.queue_len(1), 1);
        s.remove_domain(a.id);
        assert_eq!(s.queue_len(1), 0);
        assert!(s.pick_next(1, |_| Some(a.clone())).is_none());
    }
}
