//! Hypervisor live-update: hand a running machine's domains from one
//! warm xenon instance to a newer one, without detaching to native.
//!
//! Rust-Shyper pairs VM migration with *hypervisor live-update* as its
//! two reliability mechanisms; Mercury's VO indirection is the natural
//! substrate for the second.  A successor instance ("hv-v2") is
//! pre-cached beside the running one with
//! [`Hypervisor::warm_up_versioned`], and [`transfer`] moves every
//! domain across while the guests are held in rendezvous:
//!
//! * **Domain records are adopted, not copied.**  The [`Domain`]
//!   object is hypervisor-agnostic guest state (frames, pinned tables,
//!   vCPUs, trap gates, event bits, frozen kernel state); backends,
//!   frontends and Mercury itself hold `Arc`s to it, and all of those
//!   stay valid across the swap because it is the *same* object in the
//!   successor's domain table.  This is what makes guest memory and
//!   in-flight I/O rings bit-identical across the update.
//! * **Frame accounting is recomputed, never copied.**  The successor's
//!   [`PageInfoTable`](crate::page_info::PageInfoTable) is rebuilt from
//!   the guest's own page tables via the attach-path machinery
//!   (`recompute_for_at`), so corruption accumulated in the old
//!   instance's table — the very thing a live-update is often
//!   *repairing* — does not propagate.
//! * **Event channels and grant tables transfer bit-for-bit**
//!   ([`EventChannels::transfer_from`],
//!   [`GrantTables::transfer_from`](crate::grants::GrantTables::transfer_from)):
//!   port numbers and grant refs are guest-visible handles baked into
//!   ring messages, so they must survive unchanged.
//!
//! On any error the successor must be discarded wholesale
//! ([`Hypervisor::decommission`]) — partial transfer state is never
//! repaired in place, mirroring the sharded-recompute rollback
//! contract.  The old instance is untouched until the caller commits,
//! so rollback is simply "keep using v1".

use crate::domain::DomId;
use crate::error::HvError;
use crate::hv::Hypervisor;
use simx86::Cpu;
use std::sync::Arc;

/// Why a live-update handshake or transfer was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// The successor's version is not strictly newer than the running
    /// instance's (DESIGN.md §16 rule #1: updates only move forward).
    VersionOrder {
        /// Running instance's version.
        from: u32,
        /// Proposed successor's version.
        to: u32,
    },
    /// The successor is already active — it is running a machine of its
    /// own and cannot adopt this one's domains.
    TargetActive,
    /// The successor already hosts domains (not pristine): a previous
    /// transfer into it failed half-way, or it was never discarded.
    TargetNotPristine,
    /// The two instances were warmed up on different machines.
    MachineMismatch,
    /// The state transfer itself failed (page-table validation on the
    /// successor's frame-accounting rebuild, typically because the
    /// guest's tables are genuinely inconsistent).
    Transfer(HvError),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::VersionOrder { from, to } => {
                write!(f, "live-update refused: v{to} is not newer than running v{from}")
            }
            UpdateError::TargetActive => write!(f, "live-update target is already active"),
            UpdateError::TargetNotPristine => {
                write!(f, "live-update target already hosts domains")
            }
            UpdateError::MachineMismatch => {
                write!(f, "live-update target was warmed up on a different machine")
            }
            UpdateError::Transfer(e) => write!(f, "live-update state transfer failed: {e}"),
        }
    }
}

/// What a completed transfer moved (diagnostics, campaign records).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateReport {
    /// Version of the instance the domains left.
    pub from_version: u32,
    /// Version of the instance that adopted them.
    pub to_version: u32,
    /// Domains adopted.
    pub domains: usize,
    /// Guest frames re-accounted on the successor.
    pub frames: usize,
    /// Event-channel ports carried across.
    pub ports: usize,
}

/// The version handshake, checked before any state moves.
///
/// Rules (DESIGN.md §16): the successor must be strictly newer, must
/// not be active, must be pristine (no adopted domains from an earlier
/// half-failed transfer), and must sit on the same machine.
pub fn handshake(from: &Hypervisor, to: &Hypervisor) -> Result<(), UpdateError> {
    if to.version() <= from.version() {
        return Err(UpdateError::VersionOrder {
            from: from.version(),
            to: to.version(),
        });
    }
    if to.is_active() {
        return Err(UpdateError::TargetActive);
    }
    if !to.domains().is_empty() {
        return Err(UpdateError::TargetNotPristine);
    }
    if !Arc::ptr_eq(&from.machine, &to.machine) {
        return Err(UpdateError::MachineMismatch);
    }
    Ok(())
}

/// Move every domain of `from` onto `to`.
///
/// Runs the handshake, then per domain: re-establish frame ownership in
/// the successor's page-info table, rebuild its type/count state from
/// the guest's pinned base tables (the authoritative record — a
/// corrupted source table is *healed*, not copied), and adopt the same
/// domain record.  Event channels, grant tables and the pCPU→domain
/// routing carry across bit-for-bit.  `per_frame_cost` is the cycle
/// charge per re-accounted frame, exactly as on the attach path (the
/// caller usually ticks the cycles itself and passes 0).
///
/// `from` is not modified: on success the caller commits by activating
/// `to` and [decommissioning](Hypervisor::decommission) `from`; on
/// error it discards `to` and keeps running on `from`.
// volint::root(SWITCH)
pub fn transfer(
    cpu: &Cpu,
    from: &Arc<Hypervisor>,
    to: &Arc<Hypervisor>,
    per_frame_cost: u64,
) -> Result<UpdateReport, UpdateError> {
    handshake(from, to)?;
    let mut frames_moved = 0usize;
    let doms = from.domains();
    // volint::bound(8) — a self-virtualized node hosts a handful of domains (dom0 + guests)
    for dom in &doms {
        let frames = dom.frames();
        frames_moved += frames.len();
        // volint::bound(16384) — ownership pass over one domain's frames (64 MiB pool)
        for f in frames {
            to.page_info.set_owner(f, Some(dom.id));
        }
        let pgds = dom.pgds();
        to.page_info
            .recompute_for_at(
                cpu,
                &to.machine.mem,
                dom.id,
                dom.frame_count(),
                &pgds,
                per_frame_cost,
            )
            .map_err(UpdateError::Transfer)?;
        to.adopt_domain(Arc::clone(dom));
    }
    to.events.transfer_from(&from.events);
    to.grants.transfer_from(&from.grants);
    // volint::bound(64) — one slot per physical CPU
    for pcpu in 0..from.machine.num_cpus() {
        to.set_current(pcpu, from.current(pcpu));
    }
    Ok(UpdateReport {
        from_version: from.version(),
        to_version: to.version(),
        domains: doms.len(),
        frames: frames_moved,
        ports: from.events.allocated(),
    })
}

/// Undo a failed transfer attempt: strip everything [`transfer`] may
/// have put into `to`, returning it to the pristine state [`handshake`]
/// requires — so a later retry (or a different successor build) starts
/// clean.  The domains themselves are untouched; they still belong to
/// `from`.
pub fn discard(cpu: &Cpu, to: &Arc<Hypervisor>) {
    // volint::bound(8) — a self-virtualized node hosts a handful of domains
    for dom in to.domains() {
        to.page_info.clear_types_for(dom.id);
        // volint::bound(16384) — ownership strip over one domain's frames
        for f in dom.frames() {
            to.page_info.set_owner(f, None);
        }
        to.forget_domain(dom.id);
    }
    // Unused, but keeps the borrow shape identical to transfer's.
    let _ = cpu;
    to.events.reset();
    to.grants.reset();
    // volint::bound(64) — one slot per physical CPU
    for pcpu in 0..to.machine.num_cpus() {
        to.set_current(pcpu, None);
    }
}

/// Which domains a fleet-status line should report for a node running
/// this hypervisor: `(version, domain ids)`.
pub fn status(hv: &Hypervisor) -> (u32, Vec<DomId>) {
    (hv.version(), hv.domains().iter().map(|d| d.id).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DOM0;
    use simx86::mem::FrameNum;
    use simx86::paging::Pte;
    use simx86::{Machine, MachineConfig};

    fn rig() -> (Arc<Machine>, Arc<Hypervisor>, Arc<Cpu>) {
        let machine = Machine::new(MachineConfig {
            num_cpus: 1,
            mem_frames: 2048,
            disk_sectors: 64,
        });
        let hv = Hypervisor::warm_up(&machine);
        let cpu = Arc::clone(machine.boot_cpu());
        (machine, hv, cpu)
    }

    fn host_guest(machine: &Arc<Machine>, hv: &Arc<Hypervisor>, cpu: &Arc<Cpu>) -> Arc<crate::Domain> {
        let frames = machine.allocator.alloc_many(cpu, 64).unwrap();
        let dom = hv.create_domain(cpu, "dom0", frames.clone(), 0).unwrap();
        // A small live page-table tree: pgd -> l1 -> two data frames.
        let pgd = frames[0];
        let l1 = frames[1];
        machine
            .mem
            .write_pte(cpu, l1, 0, Pte::new(frames[2].0, Pte::WRITABLE))
            .unwrap();
        machine
            .mem
            .write_pte(cpu, l1, 1, Pte::new(frames[3].0, 0))
            .unwrap();
        machine
            .mem
            .write_pte(cpu, pgd, 0, Pte::new(l1.0, Pte::WRITABLE))
            .unwrap();
        hv.page_info.pin_l2(cpu, &machine.mem, pgd, dom.id).unwrap();
        dom.add_pgd(pgd);
        dom
    }

    #[test]
    fn handshake_enforces_version_order_and_pristine_target() {
        let (machine, v1, cpu) = rig();
        let same = Hypervisor::warm_up_versioned(&machine, 1);
        assert_eq!(
            handshake(&v1, &same),
            Err(UpdateError::VersionOrder { from: 1, to: 1 })
        );
        let v2 = Hypervisor::warm_up_versioned(&machine, 2);
        assert_eq!(handshake(&v1, &v2), Ok(()));
        v2.activate();
        assert_eq!(handshake(&v1, &v2), Err(UpdateError::TargetActive));
        v2.deactivate();
        v2.create_domain(&cpu, "stray", vec![], 0).unwrap();
        assert_eq!(handshake(&v1, &v2), Err(UpdateError::TargetNotPristine));
        let other_machine = Machine::new(MachineConfig {
            num_cpus: 1,
            mem_frames: 2048,
            disk_sectors: 64,
        });
        let foreign = Hypervisor::warm_up_versioned(&other_machine, 2);
        assert_eq!(handshake(&v1, &foreign), Err(UpdateError::MachineMismatch));
    }

    #[test]
    fn transfer_adopts_same_domain_and_recomputes_accounting() {
        let (machine, v1, cpu) = rig();
        let dom = host_guest(&machine, &v1, &cpu);
        let port = v1.events.alloc_unbound(dom.id).unwrap();
        let gref = v1.grants.grant(&cpu, dom.id, DOM0, FrameNum(5), true);
        v1.activate();
        v1.set_current(0, Some(dom.id));

        let v2 = Hypervisor::warm_up_versioned(&machine, 2);
        let report = transfer(&cpu, &v1, &v2, 0).unwrap();
        assert_eq!(report.from_version, 1);
        assert_eq!(report.to_version, 2);
        assert_eq!(report.domains, 1);
        assert_eq!(report.frames, 64);
        assert_eq!(report.ports, 1);

        // Same Arc: backends holding the old reference stay bound.
        let adopted = v2.domain(dom.id).unwrap();
        assert!(Arc::ptr_eq(&adopted, &dom));

        // Frame accounting was rebuilt from the live tables, not copied:
        // type state on v2 matches v1's for the whole tree.
        for f in dom.frames() {
            assert_eq!(v2.page_info.owner(f), Some(dom.id), "frame {f:?}");
            assert_eq!(
                v2.page_info.type_of(f),
                v1.page_info.type_of(f),
                "frame {f:?}"
            );
        }
        // Port numbers and grant refs survive verbatim.
        assert_eq!(v2.events.allocated(), 1);
        let _ = port;
        assert_eq!(v2.grants.outstanding(dom.id), 1);
        let (frame, ro) = v2.grants.map(&cpu, DOM0, dom.id, gref).unwrap();
        assert_eq!((frame, ro), (FrameNum(5), true));
        assert_eq!(v2.current(0), Some(dom.id));
    }

    #[test]
    fn transfer_heals_a_corrupted_source_table() {
        let (machine, v1, cpu) = rig();
        let dom = host_guest(&machine, &v1, &cpu);
        v1.activate();
        // Corrupt v1's accounting the way the faultgen VmmState class
        // does: break a type record behind the guest's back.
        let victim = dom.pgds()[0];
        v1.page_info.clear_types_for(dom.id);
        assert_eq!(v1.page_info.type_of(victim).1, 0, "v1 is now corrupt");

        let v2 = Hypervisor::warm_up_versioned(&machine, 2);
        transfer(&cpu, &v1, &v2, 0).unwrap();
        // v2 recomputed from the guest's own page tables: the pgd is a
        // pinned L2 again even though v1's record said otherwise.
        let (typ, count) = v2.page_info.type_of(victim);
        assert_eq!(typ, crate::PageType::L2);
        assert!(count > 0);
        assert!(v2.page_info.get(victim).pinned);
    }

    #[test]
    fn discard_restores_pristine_target_for_retry() {
        let (machine, v1, cpu) = rig();
        let dom = host_guest(&machine, &v1, &cpu);
        let v2 = Hypervisor::warm_up_versioned(&machine, 2);
        transfer(&cpu, &v1, &v2, 0).unwrap();
        assert_eq!(handshake(&v1, &v2), Err(UpdateError::TargetNotPristine));

        discard(&cpu, &v2);
        assert_eq!(handshake(&v1, &v2), Ok(()));
        assert_eq!(v2.events.allocated(), 0);
        for f in dom.frames() {
            assert_eq!(v2.page_info.owner(f), None);
        }
        // The domain itself was never touched: v1 still runs it.
        assert!(dom.is_alive());
        assert!(v1.domain(dom.id).is_some());
        // And a retry succeeds.
        transfer(&cpu, &v1, &v2, 0).unwrap();
        assert!(v2.domain(dom.id).is_some());
    }

    #[test]
    fn decommission_forgets_domains_without_killing_them() {
        let (machine, v1, cpu) = rig();
        let dom = host_guest(&machine, &v1, &cpu);
        v1.activate();
        let v2 = Hypervisor::warm_up_versioned(&machine, 2);
        transfer(&cpu, &v1, &v2, 0).unwrap();

        let reclaimed = v1.decommission();
        assert_eq!(reclaimed.len(), crate::hv::HV_RESERVED_FRAMES);
        assert!(!v1.is_active());
        assert!(v1.domain(dom.id).is_none(), "v1 forgot the domain");
        assert!(dom.is_alive(), "but did not kill it");
        assert!(v2.domain(dom.id).is_some());
        assert_eq!(v1.reserved_frames(), 0);
    }
}
