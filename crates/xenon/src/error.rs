//! Hypervisor error type.

use simx86::Fault;
use std::fmt;

/// Errors returned by hypercalls and hypervisor-internal operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HvError {
    /// The hypervisor is dormant (Mercury native mode) and cannot serve
    /// hypercalls.
    NotActive,
    /// Unknown or dead domain.
    BadDomain,
    /// The calling domain lacks the privilege for this operation
    /// (e.g. a domU issuing a dom0-only call).
    NotPrivileged(&'static str),
    /// A frame reference was out of range or not owned by the caller.
    BadFrame {
        /// The offending frame number.
        frame: u32,
        /// What went wrong.
        why: &'static str,
    },
    /// A page-table validation rule was violated.
    TypeConflict(&'static str),
    /// No frames left to satisfy an allocation.
    OutOfMemory,
    /// A grant reference was invalid or already in use.
    BadGrant(&'static str),
    /// An event-channel port was invalid or unbound.
    BadPort,
    /// An underlying simulated-hardware fault surfaced.
    Hardware(Fault),
    /// A save/restore or migration image was malformed.
    BadImage(String),
    /// The operation conflicts with current state (e.g. destroying a
    /// domain that still has mapped grants).
    Busy(&'static str),
}

impl fmt::Display for HvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvError::NotActive => write!(f, "hypervisor is not active"),
            HvError::BadDomain => write!(f, "bad domain reference"),
            HvError::NotPrivileged(w) => write!(f, "operation requires privilege: {w}"),
            HvError::BadFrame { frame, why } => write!(f, "bad frame {frame}: {why}"),
            HvError::TypeConflict(w) => write!(f, "page type conflict: {w}"),
            HvError::OutOfMemory => write!(f, "out of memory"),
            HvError::BadGrant(w) => write!(f, "bad grant: {w}"),
            HvError::BadPort => write!(f, "bad event-channel port"),
            HvError::Hardware(fault) => write!(f, "hardware fault: {fault}"),
            HvError::BadImage(w) => write!(f, "bad image: {w}"),
            HvError::Busy(w) => write!(f, "busy: {w}"),
        }
    }
}

impl std::error::Error for HvError {}

impl From<Fault> for HvError {
    fn from(fault: Fault) -> Self {
        HvError::Hardware(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from_fault() {
        let e: HvError = Fault::DoubleFault.into();
        assert!(e.to_string().contains("double fault"));
        assert!(HvError::NotActive.to_string().contains("not active"));
    }
}
