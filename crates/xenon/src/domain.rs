//! Domains: the hypervisor's unit of isolation.
//!
//! Domain 0 is the privileged driver domain with direct device access
//! (§5.2: in Mercury's virtual mode, the self-virtualized OS *is* the
//! driver domain).  Unprivileged domains (domU) reach devices through
//! frontend drivers connected to dom0's backends.

use crate::error::HvError;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use simx86::cpu::InterruptSink;
use simx86::mem::FrameNum;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Domain identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct DomId(pub u16);

/// The privileged control/driver domain.
pub const DOM0: DomId = DomId(0);

/// State of one virtual CPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VcpuState {
    /// Physical CPU this vCPU is currently bound to.
    pub pcpu: usize,
    /// Guest-registered kernel stack top (the `stack_switch` hypercall's
    /// operand; carried through save/restore).
    pub kernel_sp: u64,
    /// Is this vCPU runnable (vs blocked in `sched_block`)?
    pub runnable: bool,
}

/// A guest domain.
pub struct Domain {
    /// Identifier.
    pub id: DomId,
    /// Privileged domains may issue control hypercalls and own devices.
    pub privileged: bool,
    /// Human-readable name (diagnostics).
    pub name: String,
    frames: Mutex<BTreeSet<u32>>,
    pgds: Mutex<Vec<FrameNum>>,
    vcpus: Mutex<Vec<VcpuState>>,
    trap_table: RwLock<HashMap<u8, Arc<dyn InterruptSink>>>,
    /// Event-channel pending bits (the shared-info page equivalent).
    pub(crate) evt_pending: AtomicU64,
    /// Event delivery mask.
    pub(crate) evt_masked: AtomicU64,
    alive: AtomicBool,
    /// Opaque serialized guest-kernel state, populated by the guest's
    /// freeze path during save/checkpoint and consumed on restore.  In a
    /// real system this state lives in the guest's frames; the simulated
    /// kernel keeps its logical state host-side, so save/restore carries
    /// it explicitly.
    pub guest_state: Mutex<Option<serde_json::Value>>,
}

impl Domain {
    /// Create a domain with no frames and one vCPU on `pcpu`.
    pub fn new(id: DomId, name: impl Into<String>, privileged: bool, pcpu: usize) -> Arc<Domain> {
        Arc::new(Domain {
            id,
            privileged,
            name: name.into(),
            frames: Mutex::new(BTreeSet::new()),
            pgds: Mutex::new(Vec::new()),
            vcpus: Mutex::new(vec![VcpuState {
                pcpu,
                kernel_sp: 0,
                runnable: true,
            }]),
            trap_table: RwLock::new(HashMap::new()),
            evt_pending: AtomicU64::new(0),
            evt_masked: AtomicU64::new(0),
            alive: AtomicBool::new(true),
            guest_state: Mutex::new(None),
        })
    }

    /// Is the domain still alive?
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Mark the domain destroyed.
    pub(crate) fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    // -- frame ownership -------------------------------------------------

    /// Grant this domain ownership of `frame` (bookkeeping only; the
    /// page_info table is the authoritative record and is updated by the
    /// hypervisor alongside this).
    pub(crate) fn add_frame(&self, frame: FrameNum) {
        self.frames.lock().insert(frame.0);
    }

    /// Remove `frame` from this domain.
    pub(crate) fn remove_frame(&self, frame: FrameNum) -> bool {
        self.frames.lock().remove(&frame.0)
    }

    /// Does the domain own `frame`?
    pub fn owns(&self, frame: FrameNum) -> bool {
        self.frames.lock().contains(&frame.0)
    }

    /// Number of frames owned.
    pub fn frame_count(&self) -> usize {
        self.frames.lock().len()
    }

    /// Snapshot of owned frames (ascending).
    pub fn frames(&self) -> Vec<FrameNum> {
        // volint::allow(SWITCH-ALLOC): owned-frame snapshot buffer, built once per domain before the live-update ownership pass mutates anything
        self.frames.lock().iter().map(|&f| FrameNum(f)).collect()
    }

    // -- page tables -------------------------------------------------------

    /// Record a pinned base table.  Public for Mercury's VO-assistant,
    /// which rebuilds this list during an attach.
    pub fn add_pgd(&self, pgd: FrameNum) {
        // volint::allow(SWITCH-ALLOC): pinned-pgd registry push; pinning happens at guest setup, and the attach-path rebuild pre-clears then re-adds ≤ one entry per process
        self.pgds.lock().push(pgd);
    }

    /// Forget a base table.
    pub fn remove_pgd(&self, pgd: FrameNum) {
        self.pgds.lock().retain(|&p| p != pgd);
    }

    /// The domain's pinned base tables.
    pub fn pgds(&self) -> Vec<FrameNum> {
        self.pgds.lock().clone()
    }

    /// Replace the pinned-base-table list wholesale (Mercury rebuilds it
    /// from the kernel's live processes at attach, and empties it at
    /// detach).
    pub fn reset_pgds(&self, pgds: Vec<FrameNum>) {
        *self.pgds.lock() = pgds;
    }

    // -- vCPUs ------------------------------------------------------------

    /// Number of vCPUs.
    pub fn num_vcpus(&self) -> usize {
        self.vcpus.lock().len()
    }

    /// Add a vCPU bound to `pcpu` (SMP guests).
    pub fn add_vcpu(&self, pcpu: usize) {
        self.vcpus.lock().push(VcpuState {
            pcpu,
            kernel_sp: 0,
            runnable: true,
        });
    }

    /// Snapshot vCPU state.
    pub fn vcpus(&self) -> Vec<VcpuState> {
        self.vcpus.lock().clone()
    }

    /// Restore vCPU state (migration/restore).
    pub fn set_vcpus(&self, v: Vec<VcpuState>) {
        *self.vcpus.lock() = v;
    }

    /// Update a vCPU's kernel stack pointer (`stack_switch`).
    pub(crate) fn set_kernel_sp(&self, vcpu: usize, sp: u64) -> Result<(), HvError> {
        let mut vcpus = self.vcpus.lock();
        let v = vcpus.get_mut(vcpu).ok_or(HvError::BadDomain)?;
        v.kernel_sp = sp;
        Ok(())
    }

    /// Mark a vCPU blocked/runnable (`sched_block` / event wakeup).
    pub(crate) fn set_runnable(&self, vcpu: usize, runnable: bool) {
        if let Some(v) = self.vcpus.lock().get_mut(vcpu) {
            v.runnable = runnable;
        }
    }

    /// Is any vCPU runnable?
    pub fn any_runnable(&self) -> bool {
        self.vcpus.lock().iter().any(|v| v.runnable)
    }

    /// Physical CPU of vCPU 0 (interrupt routing).
    pub fn home_pcpu(&self) -> usize {
        // volint::allow(SWITCH-PANIC): vCPU 0 is created with the domain and never removed
        self.vcpus.lock()[0].pcpu
    }

    // -- trap table ---------------------------------------------------------

    /// Register the guest's trap handlers (the `set_trap_table`
    /// hypercall's effect).  The hypervisor reflects faults and virtual
    /// IRQs into these.
    pub(crate) fn set_trap_gate(&self, vector: u8, sink: Arc<dyn InterruptSink>) {
        // volint::allow(SWITCH-ALLOC): gate-table map holds ≤ 32 vectors; registration happens under the trap-table span, accepted by §4.4
        self.trap_table.write().insert(vector, sink);
    }

    /// Look up a registered guest handler.
    pub fn trap_gate(&self, vector: u8) -> Option<Arc<dyn InterruptSink>> {
        self.trap_table.read().get(&vector).cloned()
    }

    /// Vectors with registered handlers.
    pub fn registered_vectors(&self) -> Vec<u8> {
        let mut v: Vec<u8> = self.trap_table.read().keys().copied().collect();
        v.sort_unstable();
        v
    }
}

impl std::fmt::Debug for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Domain")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("privileged", &self.privileged)
            .field("frames", &self.frame_count())
            .field("alive", &self.is_alive())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx86::cpu::TrapFrame;
    use simx86::Cpu;

    #[test]
    fn frame_ownership_bookkeeping() {
        let d = Domain::new(DomId(1), "test", false, 0);
        d.add_frame(FrameNum(5));
        d.add_frame(FrameNum(3));
        assert!(d.owns(FrameNum(5)));
        assert_eq!(d.frame_count(), 2);
        assert_eq!(d.frames(), vec![FrameNum(3), FrameNum(5)]);
        assert!(d.remove_frame(FrameNum(5)));
        assert!(!d.remove_frame(FrameNum(5)));
        assert_eq!(d.frame_count(), 1);
    }

    #[test]
    fn vcpu_management() {
        let d = Domain::new(DOM0, "dom0", true, 0);
        assert_eq!(d.num_vcpus(), 1);
        d.add_vcpu(1);
        assert_eq!(d.num_vcpus(), 2);
        d.set_kernel_sp(1, 0xdead).unwrap();
        assert_eq!(d.vcpus()[1].kernel_sp, 0xdead);
        assert!(d.set_kernel_sp(9, 0).is_err());
        d.set_runnable(0, false);
        d.set_runnable(1, false);
        assert!(!d.any_runnable());
    }

    #[test]
    fn trap_table_registration() {
        struct Nop;
        impl InterruptSink for Nop {
            fn handle(&self, _c: &std::sync::Arc<Cpu>, _f: &mut TrapFrame) {}
        }
        let d = Domain::new(DomId(2), "u", false, 0);
        assert!(d.trap_gate(14).is_none());
        d.set_trap_gate(14, Arc::new(Nop));
        d.set_trap_gate(13, Arc::new(Nop));
        assert!(d.trap_gate(14).is_some());
        assert_eq!(d.registered_vectors(), vec![13, 14]);
    }

    #[test]
    fn lifecycle() {
        let d = Domain::new(DomId(3), "x", false, 0);
        assert!(d.is_alive());
        d.kill();
        assert!(!d.is_alive());
    }
}
