//! Per-frame ownership and type accounting — Xen's `page_info` array.
//!
//! To isolate guests from each other, the hypervisor must know, for every
//! physical frame, *who owns it* and *how it is being used*.  The type
//! system enforces the central invariant of direct ("writable page
//! table"-less) paging:
//!
//! > **A frame acting as a page table must never be mapped writable.**
//!
//! Types are reference-counted: a frame is `L1` while at least one
//! validated L2 entry references it, `Writable` while at least one
//! writable leaf mapping references it, and untyped when unreferenced.
//! Pinning adds an extra type reference so a base table stays validated
//! even while not loaded in CR3.
//!
//! When Mercury detaches the VMM, this table goes stale; §5.1.2 of the
//! paper describes the two strategies Mercury supports to fix it on
//! re-attach — full **recomputation** (the default; dominates the 0.22 ms
//! switch time) and **active tracking** from native mode (2~3 % overhead).
//! Mercury adds a third, **dirty recompute** (snapshot at detach, dirty
//! bits while native, revalidate only dirtied frames on re-attach), and
//! a **sharded** variant of the recompute walk
//! ([`PageInfoTable::validate_l2_shared`]) safe to run from several
//! rendezvoused CPUs at once.  All strategies produce this table; a
//! property test in the mercury crate asserts they agree.

use crate::domain::DomId;
use crate::error::HvError;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use simx86::costs;
use simx86::mem::{FrameNum, PhysMemory};
use simx86::paging::ENTRIES_PER_TABLE;
use simx86::Cpu;

/// How a frame is currently typed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PageType {
    /// No type constraint (unreferenced, or only read-only mapped).
    #[default]
    None,
    /// Leaf page table: referenced by validated L2 entries.
    L1,
    /// Base (directory) table: pinned or loaded in CR3.
    L2,
    /// Mapped writable somewhere: may never become a page table while
    /// the count is non-zero.
    Writable,
}

/// Accounting record for one physical frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PageInfo {
    /// Owning domain, if any.
    pub owner: Option<DomId>,
    /// Current type.
    pub typ: PageType,
    /// References holding the current type.
    pub type_count: u32,
    /// Pinned as a base table (adds one type reference).
    pub pinned: bool,
    /// Dirty since the last migration-round scan (log-dirty bit).
    pub dirty: bool,
}

/// The machine-wide frame accounting table.
pub struct PageInfoTable {
    info: Mutex<Vec<PageInfo>>,
}

impl PageInfoTable {
    /// A table for `num_frames` frames, all unowned and untyped.
    pub fn new(num_frames: usize) -> Self {
        PageInfoTable {
            info: Mutex::new(vec![PageInfo::default(); num_frames]),
        }
    }

    /// Number of frames tracked.
    pub fn len(&self) -> usize {
        self.info.lock().len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the record for `frame`.
    pub fn get(&self, frame: FrameNum) -> PageInfo {
        self.info.lock()[frame.0 as usize]
    }

    /// Set the owner of `frame` (domain creation / frame transfer).
    pub fn set_owner(&self, frame: FrameNum, owner: Option<DomId>) {
        let mut info = self.info.lock();
        // volint::allow(SWITCH-PANIC): frame < num_frames by construction — the table was sized from the same PhysMemory
        let rec = &mut info[frame.0 as usize];
        rec.owner = owner;
    }

    /// Owner of `frame`.
    pub fn owner(&self, frame: FrameNum) -> Option<DomId> {
        // volint::allow(SWITCH-PANIC): frame < num_frames by construction — the table was sized from the same PhysMemory
        self.info.lock()[frame.0 as usize].owner
    }

    /// Wipe the type record of one frame in place — the faultgen
    /// `VmmCorrupt` class lands here.  Type, count and pin state are
    /// lost; ownership and the dirty bit survive, as real latent
    /// corruption would leave unrelated bytes intact.  The table has no
    /// way to detect this from inside: recovery is a live-update, whose
    /// successor recomputes its records from the guest's page tables
    /// rather than trusting (and so inheriting) these.
    pub fn corrupt_record(&self, frame: FrameNum) {
        if let Some(rec) = self.info.lock().get_mut(frame.0 as usize) {
            rec.typ = PageType::None;
            rec.type_count = 0;
            rec.pinned = false;
        }
    }

    /// Mark a frame dirty (log-dirty for live migration).
    pub fn mark_dirty(&self, frame: FrameNum) {
        // volint::allow(SWITCH-PANIC): frame < num_frames by construction — the table was sized from the same PhysMemory
        self.info.lock()[frame.0 as usize].dirty = true;
    }

    /// Clear and return the dirty flag.
    pub fn take_dirty(&self, frame: FrameNum) -> bool {
        let mut info = self.info.lock();
        std::mem::take(&mut info[frame.0 as usize].dirty)
    }

    /// Clear the dirty bit on every frame owned by `dom` — the
    /// detach-time baseline of Mercury's dirty-recompute strategy
    /// (everything native mode dirties after this point must be
    /// revalidated at the next attach).
    pub fn reset_dirty_for(&self, dom: DomId) {
        let mut info = self.info.lock();
        // volint::bound(16384) — one pass over the frame-info table (64 MiB pool)
        for rec in info.iter_mut() {
            if rec.owner == Some(dom) {
                rec.dirty = false;
            }
        }
    }

    /// Count dirty frames owned by `dom` (the attach-time revalidation
    /// set of the dirty-recompute strategy).
    pub fn count_dirty_for(&self, dom: DomId) -> usize {
        self.info
            .lock()
            .iter()
            .filter(|r| r.owner == Some(dom) && r.dirty)
            .count()
    }

    /// All dirty frames owned by `dom` — the revalidation work-list the
    /// attach path partitions into synchronous and deferred halves.
    pub fn dirty_frames_for(&self, dom: DomId) -> Vec<FrameNum> {
        self.info
            .lock()
            .iter()
            .enumerate()
            .filter(|(_, r)| r.owner == Some(dom) && r.dirty)
            .map(|(i, _)| FrameNum(i as u32))
            // volint::allow(SWITCH-ALLOC): the dirty work-list is bounded by the pool size and built once per attach
            .collect()
    }

    /// Pop one dirty frame owned by `dom`, clearing its dirty bit — the
    /// background scrubber's unit of work.  Returns `None` when the
    /// domain's dirty set is empty.
    pub fn take_dirty_frame_for(&self, dom: DomId) -> Option<FrameNum> {
        let mut info = self.info.lock();
        for (i, rec) in info.iter_mut().enumerate() {
            if rec.owner == Some(dom) && rec.dirty {
                rec.dirty = false;
                return Some(FrameNum(i as u32));
            }
        }
        None
    }

    // -- type reference counting ---------------------------------------

    /// Take a type reference of kind `typ` on `frame`.
    ///
    /// Fails when the frame is currently typed incompatibly — the
    /// invariant rejection at the heart of Xen-style isolation (e.g.
    /// mapping a live page table writable).
    pub fn get_type_ref(&self, frame: FrameNum, typ: PageType) -> Result<(), HvError> {
        // volint::allow(SWITCH-PANIC): API-misuse guard; every caller passes a literal non-None type
        assert_ne!(typ, PageType::None);
        let mut info = self.info.lock();
        let rec = info.get_mut(frame.0 as usize).ok_or(HvError::BadFrame {
            frame: frame.0,
            why: "out of range",
        })?;
        if rec.typ == PageType::None || rec.type_count == 0 {
            rec.typ = typ;
            rec.type_count = 1;
            Ok(())
        } else if rec.typ == typ {
            rec.type_count += 1;
            Ok(())
        } else {
            Err(HvError::TypeConflict(match (rec.typ, typ) {
                (PageType::L1 | PageType::L2, PageType::Writable) => {
                    "attempt to map a page-table frame writable"
                }
                (PageType::Writable, PageType::L1 | PageType::L2) => {
                    "attempt to use a writably-mapped frame as a page table"
                }
                _ => "incompatible page type",
            }))
        }
    }

    /// Drop a type reference on `frame`.
    pub fn put_type_ref(&self, frame: FrameNum, typ: PageType) {
        let mut info = self.info.lock();
        // volint::allow(SWITCH-PANIC): frame < num_frames by construction — the matching get_type_ref bounds-checked it
        let rec = &mut info[frame.0 as usize];
        debug_assert_eq!(rec.typ, typ, "type ref mismatch on frame {}", frame.0);
        debug_assert!(rec.type_count > 0, "type underflow on frame {}", frame.0);
        rec.type_count = rec.type_count.saturating_sub(1);
        if rec.type_count == 0 {
            rec.typ = PageType::None;
        }
    }

    /// Current (type, count) of a frame.
    pub fn type_of(&self, frame: FrameNum) -> (PageType, u32) {
        // volint::allow(SWITCH-PANIC): frame < num_frames by construction — the table was sized from the same PhysMemory
        let rec = self.info.lock()[frame.0 as usize];
        (rec.typ, rec.type_count)
    }

    // -- page-table validation ------------------------------------------

    /// Validate the frame as an L1 (leaf) table for `dom`: every present
    /// entry must reference a frame owned by `dom`, and writable entries
    /// take a `Writable` type reference on their target (which therefore
    /// must not be a page table).
    ///
    /// On success the frame itself carries one `L1` type reference.
    /// `charge_per_entry` is the validation cost per scanned slot —
    /// [`costs::PT_PIN_PER_ENTRY`] on the hypercall path, or a cheaper
    /// bulk rate during Mercury's recompute.
    pub fn validate_l1(
        &self,
        cpu: &Cpu,
        mem: &PhysMemory,
        frame: FrameNum,
        dom: DomId,
        charge_per_entry: u64,
    ) -> Result<(), HvError> {
        cpu.tick(charge_per_entry * ENTRIES_PER_TABLE as u64);
        // The table frame itself must be owned by the domain.
        self.check_owned(frame, dom, "L1 table frame")?;
        // First pass: check, second pass: commit — so a failed
        // validation leaves no stray references.
        // volint::allow(SWITCH-ALLOC): two-pass check-then-commit needs the taken list to unwind cleanly; starts at capacity 0
        let mut taken: Vec<FrameNum> = Vec::new();
        let result = (|| {
            for index in 0..ENTRIES_PER_TABLE {
                let pte = mem.read_pte(cpu, frame, index)?;
                if !pte.present() {
                    continue;
                }
                let target = FrameNum(pte.frame());
                self.check_owned(target, dom, "L1 entry target")?;
                if pte.writable() {
                    self.get_type_ref(target, PageType::Writable)?;
                    // volint::allow(SWITCH-ALLOC): unwind bookkeeping for the two-pass validate
                    taken.push(target);
                }
            }
            self.get_type_ref(frame, PageType::L1)?;
            Ok(())
        })();
        if result.is_err() {
            // volint::bound(512) — ≤ ENTRIES_PER_TABLE writable refs taken per L1
            for t in taken {
                self.put_type_ref(t, PageType::Writable);
            }
        }
        result
    }

    /// Undo [`Self::validate_l1`]: drop the writable references its
    /// entries took, and the frame's own L1 reference.
    pub fn invalidate_l1(
        &self,
        cpu: &Cpu,
        mem: &PhysMemory,
        frame: FrameNum,
    ) -> Result<(), HvError> {
        for index in 0..ENTRIES_PER_TABLE {
            let pte = mem.read_pte(cpu, frame, index)?;
            if pte.present() && pte.writable() {
                self.put_type_ref(FrameNum(pte.frame()), PageType::Writable);
            }
        }
        self.put_type_ref(frame, PageType::L1);
        Ok(())
    }

    /// Validate the frame as an L2 (base) table for `dom`: every present
    /// entry must reference an L1 table, validating it first if it is
    /// still untyped.  Each entry takes an `L1` type reference on its
    /// target; the frame itself takes an `L2` reference.
    pub fn validate_l2(
        &self,
        cpu: &Cpu,
        mem: &PhysMemory,
        frame: FrameNum,
        dom: DomId,
        charge_per_entry: u64,
    ) -> Result<(), HvError> {
        cpu.tick(charge_per_entry * ENTRIES_PER_TABLE as u64);
        self.check_owned(frame, dom, "L2 table frame")?;
        // volint::allow(SWITCH-ALLOC): unwind bookkeeping for the two-pass validate; starts at capacity 0
        let mut validated_here: Vec<FrameNum> = Vec::new();
        // volint::allow(SWITCH-ALLOC): unwind bookkeeping for the two-pass validate; starts at capacity 0
        let mut refs_taken: Vec<FrameNum> = Vec::new();
        let result = (|| {
            for index in 0..ENTRIES_PER_TABLE {
                let pde = mem.read_pte(cpu, frame, index)?;
                if !pde.present() {
                    continue;
                }
                let l1 = FrameNum(pde.frame());
                let (typ, count) = self.type_of(l1);
                if typ != PageType::L1 || count == 0 {
                    // validate_l1's final type ref *is* this entry's
                    // reference.
                    self.validate_l1(cpu, mem, l1, dom, charge_per_entry)?;
                    // volint::allow(SWITCH-ALLOC): unwind bookkeeping for the two-pass validate
                    validated_here.push(l1);
                } else {
                    self.get_type_ref(l1, PageType::L1)?;
                    // volint::allow(SWITCH-ALLOC): unwind bookkeeping for the two-pass validate
                    refs_taken.push(l1);
                }
            }
            self.get_type_ref(frame, PageType::L2)?;
            Ok(())
        })();
        if result.is_err() {
            // volint::bound(512) — ≤ ENTRIES_PER_TABLE shared L1 refs per L2
            for l1 in refs_taken {
                self.put_type_ref(l1, PageType::L1);
            }
            // volint::bound(512) — ≤ ENTRIES_PER_TABLE freshly validated L1s per L2
            for l1 in validated_here.into_iter().rev() {
                let _ = self.invalidate_l1(cpu, mem, l1);
            }
        }
        result
    }

    /// Undo [`Self::validate_l2`].  L1 tables whose last reference drops
    /// are fully invalidated (their writable references released).
    pub fn invalidate_l2(
        &self,
        cpu: &Cpu,
        mem: &PhysMemory,
        frame: FrameNum,
    ) -> Result<(), HvError> {
        for index in 0..ENTRIES_PER_TABLE {
            let pde = mem.read_pte(cpu, frame, index)?;
            if !pde.present() {
                continue;
            }
            let l1 = FrameNum(pde.frame());
            self.put_type_ref(l1, PageType::L1);
            let (typ, count) = self.type_of(l1);
            if typ == PageType::None && count == 0 {
                // Last L1 reference gone: release its writable refs.
                // Temporarily re-take the ref dropped above so the
                // invariant checks in invalidate_l1 hold.
                self.get_type_ref(l1, PageType::L1)?;
                self.invalidate_l1(cpu, mem, l1)?;
            }
        }
        self.put_type_ref(frame, PageType::L2);
        Ok(())
    }

    /// Pin `frame` as a base table for `dom`: validate and take an
    /// additional pin reference, so the table stays valid while not
    /// loaded.  This is the `MMUEXT_PIN_L2_TABLE` hypercall's engine.
    pub fn pin_l2(
        &self,
        cpu: &Cpu,
        mem: &PhysMemory,
        frame: FrameNum,
        dom: DomId,
    ) -> Result<(), HvError> {
        {
            let info = self.info.lock();
            // volint::allow(SWITCH-PANIC): frame < num_frames by construction — the table was sized from the same PhysMemory
            if info[frame.0 as usize].pinned {
                return Err(HvError::TypeConflict("frame already pinned"));
            }
        }
        cpu.tick(costs::PT_PIN_BASE);
        self.validate_l2(cpu, mem, frame, dom, costs::PT_PIN_PER_ENTRY)?;
        // volint::allow(SWITCH-PANIC): frame < num_frames by construction — the table was sized from the same PhysMemory
        self.info.lock()[frame.0 as usize].pinned = true;
        Ok(())
    }

    /// Unpin a base table, releasing the whole validation tree when the
    /// last reference drops.
    pub fn unpin_l2(&self, cpu: &Cpu, mem: &PhysMemory, frame: FrameNum) -> Result<(), HvError> {
        {
            let mut info = self.info.lock();
            // volint::allow(SWITCH-PANIC): frame < num_frames by construction — the table was sized from the same PhysMemory
            let rec = &mut info[frame.0 as usize];
            if !rec.pinned {
                return Err(HvError::TypeConflict("frame not pinned"));
            }
            rec.pinned = false;
        }
        cpu.tick(costs::PT_PIN_BASE);
        self.invalidate_l2(cpu, mem, frame)
    }

    // -- bulk operations (Mercury attach/detach) -------------------------

    /// Wipe all type information for frames owned by `dom`, keeping
    /// ownership.  Used on VMM detach: the dormant VMM stops tracking.
    pub fn clear_types_for(&self, dom: DomId) {
        let mut info = self.info.lock();
        // volint::bound(16384) — one pass over the frame-info table (64 MiB pool)
        for rec in info.iter_mut() {
            if rec.owner == Some(dom) {
                rec.typ = PageType::None;
                rec.type_count = 0;
                rec.pinned = false;
            }
        }
    }

    /// Recompute the full type/count state for `dom` from its base
    /// tables — Mercury's default attach-time strategy (§5.1.2).
    ///
    /// Charges [`costs::PGINFO_RECOMPUTE_PER_FRAME`] for every frame the
    /// domain owns (the scan) plus bulk-rate validation of the live
    /// tables.  This is the dominant term in the paper's 0.22 ms
    /// native→virtual switch (§7.4).
    pub fn recompute_for(
        &self,
        cpu: &Cpu,
        mem: &PhysMemory,
        dom: DomId,
        owned_frames: usize,
        pgds: &[FrameNum],
    ) -> Result<(), HvError> {
        self.recompute_for_at(
            cpu,
            mem,
            dom,
            owned_frames,
            pgds,
            costs::PGINFO_RECOMPUTE_PER_FRAME,
        )
    }

    /// [`Self::recompute_for`] with an explicit per-frame scan cost —
    /// Mercury's active-tracking strategy adopts its mirror at a much
    /// cheaper rate than a full recompute scan (§5.1.2).
    pub fn recompute_for_at(
        &self,
        cpu: &Cpu,
        mem: &PhysMemory,
        dom: DomId,
        owned_frames: usize,
        pgds: &[FrameNum],
        per_frame_cost: u64,
    ) -> Result<(), HvError> {
        self.clear_types_for(dom);
        cpu.tick(per_frame_cost * owned_frames as u64);
        // Bulk validation rides on the per-frame charge above; per-entry
        // work is charged at a nominal rate via memory reads only.
        // volint::bound(64) — one base table per live process
        for &pgd in pgds {
            self.validate_l2(cpu, mem, pgd, dom, 0)?;
            // volint::allow(SWITCH-PANIC): pgd frames were validated by validate_l2 on the line above
            self.info.lock()[pgd.0 as usize].pinned = true;
        }
        Ok(())
    }

    /// Validate one base table for `dom` from a *concurrent* recompute
    /// worker — the engine of Mercury's sharded attach walk.
    ///
    /// [`Self::validate_l2`] is not safe to run from two CPUs over base
    /// tables that share an L1: its untyped-check and the subsequent
    /// [`Self::validate_l1`] are separate lock acquisitions, so both
    /// workers can observe "untyped" and both walk the L1 — double
    /// `Writable` references, and a snapshot that no serial walk would
    /// ever produce.  Here the L1 handling is a single lock-held
    /// **claim** ([`Self::claim_l1`]): exactly one worker wins the
    /// untyped→`L1` transition and walks the entries; everyone else
    /// just adds a type reference.  Reference counts are additive and
    /// each L1 is walked exactly once, so the final table is
    /// bit-identical to the serial walk's regardless of interleaving.
    ///
    /// Error handling is wholesale, not surgical: a failed validation
    /// leaves partial references behind and the caller (who has already
    /// stopped all workers) discards the domain's state with
    /// [`Self::clear_types_for`] — the same teardown the switch
    /// rollback performs anyway.
    pub fn validate_l2_shared(
        &self,
        cpu: &Cpu,
        mem: &PhysMemory,
        frame: FrameNum,
        dom: DomId,
    ) -> Result<(), HvError> {
        self.check_owned(frame, dom, "L2 table frame")?;
        for index in 0..ENTRIES_PER_TABLE {
            let pde = mem.read_pte(cpu, frame, index)?;
            if !pde.present() {
                continue;
            }
            let l1 = FrameNum(pde.frame());
            if self.claim_l1(l1, dom)? {
                // We won the claim: the claim itself is this entry's
                // L1 reference, and we alone walk the entries.
                self.validate_l1_entries(cpu, mem, l1, dom)?;
            }
        }
        self.get_type_ref(frame, PageType::L2)?;
        // volint::allow(SWITCH-PANIC): frame ownership was checked by check_owned before this store
        self.info.lock()[frame.0 as usize].pinned = true;
        Ok(())
    }

    /// Atomically claim `frame` as an L1 table for `dom`.  Returns
    /// `Ok(true)` when this caller performed the untyped→L1 transition
    /// (and therefore owns the entry walk), `Ok(false)` when the frame
    /// was already L1-typed and only a reference was added.
    fn claim_l1(&self, frame: FrameNum, dom: DomId) -> Result<bool, HvError> {
        let mut info = self.info.lock();
        let rec = info.get_mut(frame.0 as usize).ok_or(HvError::BadFrame {
            frame: frame.0,
            why: "out of range",
        })?;
        if rec.owner != Some(dom) {
            return Err(HvError::BadFrame {
                frame: frame.0,
                why: "L1 table frame",
            });
        }
        if rec.typ == PageType::None || rec.type_count == 0 {
            rec.typ = PageType::L1;
            rec.type_count = 1;
            Ok(true)
        } else if rec.typ == PageType::L1 {
            rec.type_count += 1;
            Ok(false)
        } else {
            Err(HvError::TypeConflict(
                "attempt to use a writably-mapped frame as a page table",
            ))
        }
    }

    /// The entry walk of [`Self::validate_l1`] without the frame's own
    /// type reference (the sharded caller's claim already holds it) and
    /// without surgical rollback (sharded failures are discarded
    /// wholesale).
    fn validate_l1_entries(
        &self,
        cpu: &Cpu,
        mem: &PhysMemory,
        frame: FrameNum,
        dom: DomId,
    ) -> Result<(), HvError> {
        for index in 0..ENTRIES_PER_TABLE {
            let pte = mem.read_pte(cpu, frame, index)?;
            if !pte.present() {
                continue;
            }
            let target = FrameNum(pte.frame());
            self.check_owned(target, dom, "L1 entry target")?;
            if pte.writable() {
                self.get_type_ref(target, PageType::Writable)?;
            }
        }
        Ok(())
    }

    /// Count frames owned by `dom` (diagnostics, migration sizing).
    pub fn count_owned(&self, dom: DomId) -> usize {
        self.info
            .lock()
            .iter()
            .filter(|r| r.owner == Some(dom))
            .count()
    }

    /// All frames owned by `dom`.
    pub fn frames_owned(&self, dom: DomId) -> Vec<FrameNum> {
        self.info
            .lock()
            .iter()
            .enumerate()
            .filter(|(_, r)| r.owner == Some(dom))
            .map(|(i, _)| FrameNum(i as u32))
            .collect()
    }

    /// Export the full table (equality checks in tests; the
    /// recompute-vs-active-tracking property test diffs two of these).
    pub fn snapshot(&self) -> Vec<PageInfo> {
        self.info.lock().clone()
    }

    fn check_owned(&self, frame: FrameNum, dom: DomId, why: &'static str) -> Result<(), HvError> {
        let info = self.info.lock();
        let rec = info.get(frame.0 as usize).ok_or(HvError::BadFrame {
            frame: frame.0,
            why: "out of range",
        })?;
        if rec.owner == Some(dom) {
            Ok(())
        } else {
            Err(HvError::BadFrame {
                frame: frame.0,
                why,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx86::paging::Pte;
    use std::sync::Arc;

    const D: DomId = DomId(0);

    fn rig(frames: usize) -> (PageInfoTable, PhysMemory, Arc<Cpu>) {
        let t = PageInfoTable::new(frames);
        let mem = PhysMemory::new(frames);
        let cpu = Arc::new(Cpu::new(0));
        for i in 0..frames {
            t.set_owner(FrameNum(i as u32), Some(D));
        }
        (t, mem, cpu)
    }

    #[test]
    fn type_refs_count_and_clear() {
        let (t, _, _) = rig(4);
        t.get_type_ref(FrameNum(1), PageType::Writable).unwrap();
        t.get_type_ref(FrameNum(1), PageType::Writable).unwrap();
        assert_eq!(t.type_of(FrameNum(1)), (PageType::Writable, 2));
        t.put_type_ref(FrameNum(1), PageType::Writable);
        t.put_type_ref(FrameNum(1), PageType::Writable);
        assert_eq!(t.type_of(FrameNum(1)), (PageType::None, 0));
    }

    #[test]
    fn incompatible_types_rejected() {
        let (t, _, _) = rig(4);
        t.get_type_ref(FrameNum(1), PageType::L1).unwrap();
        let err = t.get_type_ref(FrameNum(1), PageType::Writable).unwrap_err();
        assert!(matches!(err, HvError::TypeConflict(_)));
    }

    #[test]
    fn validate_l1_takes_writable_refs() {
        let (t, mem, cpu) = rig(8);
        // Frame 2 is an L1 table mapping frame 3 writable, frame 4 RO.
        mem.write_pte(&cpu, FrameNum(2), 0, Pte::new(3, Pte::WRITABLE | Pte::USER))
            .unwrap();
        mem.write_pte(&cpu, FrameNum(2), 1, Pte::new(4, Pte::USER))
            .unwrap();
        t.validate_l1(&cpu, &mem, FrameNum(2), D, 1).unwrap();
        assert_eq!(t.type_of(FrameNum(2)), (PageType::L1, 1));
        assert_eq!(t.type_of(FrameNum(3)), (PageType::Writable, 1));
        assert_eq!(t.type_of(FrameNum(4)), (PageType::None, 0));
        t.invalidate_l1(&cpu, &mem, FrameNum(2)).unwrap();
        assert_eq!(t.type_of(FrameNum(2)), (PageType::None, 0));
        assert_eq!(t.type_of(FrameNum(3)), (PageType::None, 0));
    }

    #[test]
    fn cannot_map_page_table_writable() {
        let (t, mem, cpu) = rig(8);
        // Frame 2: L1 table. Frame 5: another L1 mapping frame 2 writable.
        mem.write_pte(&cpu, FrameNum(2), 0, Pte::new(3, Pte::WRITABLE))
            .unwrap();
        t.validate_l1(&cpu, &mem, FrameNum(2), D, 1).unwrap();
        mem.write_pte(&cpu, FrameNum(5), 0, Pte::new(2, Pte::WRITABLE))
            .unwrap();
        let err = t.validate_l1(&cpu, &mem, FrameNum(5), D, 1).unwrap_err();
        assert!(matches!(err, HvError::TypeConflict(_)));
        // Failed validation leaked nothing.
        assert_eq!(t.type_of(FrameNum(5)), (PageType::None, 0));
    }

    #[test]
    fn pin_l2_validates_whole_tree() {
        let (t, mem, cpu) = rig(8);
        // PGD in frame 1 → L1 in frame 2 → data frame 3 writable.
        mem.write_pte(&cpu, FrameNum(1), 0, Pte::new(2, Pte::WRITABLE | Pte::USER))
            .unwrap();
        mem.write_pte(&cpu, FrameNum(2), 0, Pte::new(3, Pte::WRITABLE | Pte::USER))
            .unwrap();
        t.pin_l2(&cpu, &mem, FrameNum(1), D).unwrap();
        assert_eq!(t.type_of(FrameNum(1)), (PageType::L2, 1));
        assert_eq!(t.type_of(FrameNum(2)), (PageType::L1, 1));
        assert_eq!(t.type_of(FrameNum(3)), (PageType::Writable, 1));
        assert!(t.get(FrameNum(1)).pinned);

        // Double pin rejected.
        assert!(t.pin_l2(&cpu, &mem, FrameNum(1), D).is_err());

        t.unpin_l2(&cpu, &mem, FrameNum(1)).unwrap();
        assert_eq!(t.type_of(FrameNum(1)), (PageType::None, 0));
        assert_eq!(t.type_of(FrameNum(2)), (PageType::None, 0));
        assert_eq!(t.type_of(FrameNum(3)), (PageType::None, 0));
        assert!(!t.get(FrameNum(1)).pinned);
    }

    #[test]
    fn shared_l1_between_two_l2s() {
        let (t, mem, cpu) = rig(8);
        // Two PGDs (1 and 4) both referencing L1 in frame 2 — the shape
        // of shared kernel mappings across address spaces.
        mem.write_pte(&cpu, FrameNum(2), 0, Pte::new(3, Pte::WRITABLE))
            .unwrap();
        mem.write_pte(&cpu, FrameNum(1), 0, Pte::new(2, Pte::WRITABLE))
            .unwrap();
        mem.write_pte(&cpu, FrameNum(4), 0, Pte::new(2, Pte::WRITABLE))
            .unwrap();
        t.pin_l2(&cpu, &mem, FrameNum(1), D).unwrap();
        t.pin_l2(&cpu, &mem, FrameNum(4), D).unwrap();
        assert_eq!(t.type_of(FrameNum(2)), (PageType::L1, 2));
        // Frame 3 is writable-mapped once per validation of frame 2 —
        // validated once, so one writable ref.
        assert_eq!(t.type_of(FrameNum(3)), (PageType::Writable, 1));
        t.unpin_l2(&cpu, &mem, FrameNum(1)).unwrap();
        // Shared L1 still referenced by the other PGD.
        assert_eq!(t.type_of(FrameNum(2)), (PageType::L1, 1));
        assert_eq!(t.type_of(FrameNum(3)), (PageType::Writable, 1));
        t.unpin_l2(&cpu, &mem, FrameNum(4)).unwrap();
        assert_eq!(t.type_of(FrameNum(2)), (PageType::None, 0));
        assert_eq!(t.type_of(FrameNum(3)), (PageType::None, 0));
    }

    #[test]
    fn foreign_frame_rejected() {
        let (t, mem, cpu) = rig(8);
        t.set_owner(FrameNum(3), Some(DomId(7)));
        mem.write_pte(&cpu, FrameNum(2), 0, Pte::new(3, Pte::WRITABLE))
            .unwrap();
        let err = t.validate_l1(&cpu, &mem, FrameNum(2), D, 1).unwrap_err();
        assert!(matches!(err, HvError::BadFrame { .. }));
    }

    #[test]
    fn recompute_matches_incremental_validation() {
        let (t, mem, cpu) = rig(16);
        mem.write_pte(&cpu, FrameNum(1), 0, Pte::new(2, Pte::WRITABLE))
            .unwrap();
        mem.write_pte(&cpu, FrameNum(2), 0, Pte::new(3, Pte::WRITABLE))
            .unwrap();
        mem.write_pte(&cpu, FrameNum(2), 1, Pte::new(4, 0)).unwrap();

        // Incremental path.
        t.pin_l2(&cpu, &mem, FrameNum(1), D).unwrap();
        let incremental = t.snapshot();

        // From-scratch recompute.
        t.clear_types_for(D);
        t.recompute_for(&cpu, &mem, D, 16, &[FrameNum(1)]).unwrap();
        let recomputed = t.snapshot();

        // Dirty bits aside, the tables must agree.
        let strip = |v: Vec<PageInfo>| {
            v.into_iter()
                .map(|mut r| {
                    r.dirty = false;
                    r
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(incremental), strip(recomputed));
    }

    #[test]
    fn recompute_charges_per_owned_frame() {
        let (t, mem, cpu) = rig(16);
        let before = cpu.cycles();
        t.recompute_for(&cpu, &mem, D, 16, &[]).unwrap();
        assert!(cpu.cycles() - before >= 16 * costs::PGINFO_RECOMPUTE_PER_FRAME);
    }

    #[test]
    fn dirty_bits() {
        let (t, _, _) = rig(4);
        assert!(!t.take_dirty(FrameNum(1)));
        t.mark_dirty(FrameNum(1));
        assert!(t.take_dirty(FrameNum(1)));
        assert!(!t.take_dirty(FrameNum(1)));
    }

    #[test]
    fn sharded_validation_matches_serial_snapshot() {
        // Many base tables sharing L1s — the topology where the naive
        // check-then-validate race would double-count.  Run the shared
        // validator from several real threads and diff against the
        // serial walk.
        let frames = 64;
        let (t, mem, cpu) = rig(frames);
        // PGDs 1..=8 each map L1s 10..14 (heavily shared) plus a
        // private L1; L1s map data frames 30.. writable.
        let pgds: Vec<FrameNum> = (1..=8).map(FrameNum).collect();
        for l1 in 10..15u32 {
            for slot in 0..4usize {
                mem.write_pte(
                    &cpu,
                    FrameNum(l1),
                    slot,
                    Pte::new(30 + (l1 - 10) * 4 + slot as u32, Pte::WRITABLE),
                )
                .unwrap();
            }
        }
        for (i, &pgd) in pgds.iter().enumerate() {
            for (slot, l1) in (10..15u32).enumerate() {
                mem.write_pte(&cpu, pgd, slot, Pte::new(l1, Pte::WRITABLE))
                    .unwrap();
            }
            // Private L1 per pgd.
            let private = 20 + i as u32;
            mem.write_pte(&cpu, FrameNum(private), 0, Pte::new(50 + i as u32, Pte::WRITABLE))
                .unwrap();
            mem.write_pte(&cpu, pgd, 5, Pte::new(private, Pte::WRITABLE))
                .unwrap();
        }

        // Serial reference.
        t.recompute_for(&cpu, &mem, D, frames, &pgds).unwrap();
        let serial = t.snapshot();

        // Sharded run: 4 threads pull pgds from a shared index.
        t.clear_types_for(D);
        let t = Arc::new(t);
        let mem = Arc::new(mem);
        let next = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let pgds = Arc::new(pgds);
        let workers: Vec<_> = (0..4)
            .map(|id| {
                let (t, mem, next, pgds) =
                    (Arc::clone(&t), Arc::clone(&mem), Arc::clone(&next), Arc::clone(&pgds));
                std::thread::spawn(move || {
                    let wcpu = Arc::new(Cpu::new(id));
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
                        let Some(&pgd) = pgds.get(i) else { break };
                        t.validate_l2_shared(&wcpu, &mem, pgd, D).unwrap();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(t.snapshot(), serial);
    }

    #[test]
    fn sharded_validation_rejects_writable_page_table() {
        let (t, mem, cpu) = rig(8);
        // PGD 1 → L1 2 → maps PGD 1 itself writable: the claim path
        // must reject it just like the serial walk does.
        mem.write_pte(&cpu, FrameNum(1), 0, Pte::new(2, Pte::WRITABLE))
            .unwrap();
        mem.write_pte(&cpu, FrameNum(2), 0, Pte::new(1, Pte::WRITABLE))
            .unwrap();
        assert!(t.validate_l2_shared(&cpu, &mem, FrameNum(1), D).is_err());
        // Wholesale teardown is the caller's contract.
        t.clear_types_for(D);
        assert_eq!(t.type_of(FrameNum(2)), (PageType::None, 0));
    }

    #[test]
    fn dirty_baseline_reset_and_count() {
        let (t, _, _) = rig(8);
        t.set_owner(FrameNum(7), Some(DomId(9)));
        t.mark_dirty(FrameNum(1));
        t.mark_dirty(FrameNum(2));
        t.mark_dirty(FrameNum(7)); // foreign — not counted, not reset
        assert_eq!(t.count_dirty_for(D), 2);
        t.reset_dirty_for(D);
        assert_eq!(t.count_dirty_for(D), 0);
        assert!(t.get(FrameNum(7)).dirty, "foreign dirty bit untouched");
        t.mark_dirty(FrameNum(3));
        assert_eq!(t.count_dirty_for(D), 1);
    }

    #[test]
    fn owned_frame_queries() {
        let (t, _, _) = rig(4);
        t.set_owner(FrameNum(2), Some(DomId(5)));
        assert_eq!(t.count_owned(D), 3);
        assert_eq!(t.frames_owned(DomId(5)), vec![FrameNum(2)]);
    }
}
