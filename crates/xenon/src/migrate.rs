//! Live migration with iterative pre-copy — the mechanism behind online
//! hardware maintenance (§6.3) and HPC failover (§6.5).
//!
//! Rounds of [`LiveMigration::round`] ship the frames dirtied since the
//! previous round while the guest keeps running; [`LiveMigration::finalize`]
//! pauses the guest, ships the final dirty set plus vCPU/guest state, and
//! materializes the domain on the target hypervisor.  Dirty tracking
//! uses the hardware dirty bits in the guest's own page tables (scanned
//! and cleared each round, with a TLB flush so subsequent writes re-walk)
//! plus the hypervisor's log-dirty bits for table frames — the log-dirty
//! scheme of Clark et al.'s live migration, adapted to direct paging.

use crate::domain::Domain;
use crate::error::HvError;
use crate::hv::Hypervisor;
use crate::save::{restore_domain_mapped, save_domain, DomainImage, FrameImage};
use simx86::evclock::{EventId, EventKind};
use simx86::mem::FrameNum;
use simx86::paging::{Pte, ENTRIES_PER_TABLE};
use simx86::{costs, Cpu};
use std::collections::HashMap;
use std::sync::Arc;

/// How far ahead (in cycles) the next pre-copy round is expected: while
/// a migration is in flight this deadline sits in the source machine's
/// event clock so the campaign time skip cannot fast-forward an idle
/// span past an unconverged migration (see `simx86::evclock`).
pub const ROUND_DEADLINE_CYCLES: u64 = 100_000;

/// Statistics for one pre-copy round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Round number (0 = full copy).
    pub round: usize,
    /// Frames shipped this round.
    pub frames_sent: usize,
    /// Cycles charged to the source CPU for the transfer.
    pub cycles: u64,
}

/// Final report for a completed migration.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Old→new frame relocation (for the guest kernel's thaw).
    pub frame_map: HashMap<u32, u32>,
    /// Per-round statistics (pre-copy rounds, then the stop-and-copy
    /// round last).
    pub rounds: Vec<RoundStats>,
    /// Total frames shipped, counting resends.
    pub total_frames: usize,
    /// Guest-observed downtime in cycles (the stop-and-copy phase).
    pub downtime_cycles: u64,
    /// Total bytes on the wire.
    pub wire_bytes: u64,
}

impl MigrationReport {
    /// Downtime in microseconds of simulated time.
    pub fn downtime_us(&self) -> f64 {
        costs::cycles_to_us(self.downtime_cycles)
    }
}

/// An in-progress live migration of one domain.
pub struct LiveMigration {
    source: Arc<Hypervisor>,
    dom: Arc<Domain>,
    /// Frames staged at the "target side", keyed by source frame number.
    staged: HashMap<u32, FrameImage>,
    rounds: Vec<RoundStats>,
    round_no: usize,
    started: bool,
    /// The pending round-deadline event in the source machine's clock.
    round_ev: Option<EventId>,
}

impl LiveMigration {
    /// Begin migrating `dom` away from `source`.  Registers a round
    /// deadline with the source machine's event clock immediately: an
    /// in-flight migration is never invisible to the time skip.
    pub fn new(source: Arc<Hypervisor>, dom: Arc<Domain>) -> LiveMigration {
        let round_ev = Some(source.machine.evclock.schedule(
            source.machine.boot_cpu().cycles() + ROUND_DEADLINE_CYCLES,
            EventKind::MigrationRound,
        ));
        LiveMigration {
            source,
            dom,
            staged: HashMap::new(),
            rounds: Vec::new(),
            round_no: 0,
            started: false,
            round_ev,
        }
    }

    /// Re-arm the round deadline after a round ran (or cancel it for
    /// good once the migration finalizes or is abandoned).
    fn rearm_deadline(&mut self, cpu: &Cpu, rearm: bool) {
        if let Some(ev) = self.round_ev.take() {
            self.source.machine.evclock.cancel(ev);
        }
        if rearm {
            self.round_ev = Some(
                self.source
                    .machine
                    .evclock
                    .schedule(cpu.cycles() + ROUND_DEADLINE_CYCLES, EventKind::MigrationRound),
            );
        }
    }

    /// Frames the guest has dirtied since the last scan.  Clears the
    /// dirty bits and flushes TLBs so future writes are caught again.
    fn collect_dirty(&self, cpu: &Cpu) -> Result<Vec<FrameNum>, HvError> {
        let mem = &self.source.machine.mem;
        let mut dirty = Vec::new();
        for pgd in self.dom.pgds() {
            if self.source.page_info.take_dirty(pgd) {
                dirty.push(pgd);
            }
            for l2_idx in 0..ENTRIES_PER_TABLE {
                let pde = mem.read_pte(cpu, pgd, l2_idx)?;
                if !pde.present() {
                    continue;
                }
                let l1 = FrameNum(pde.frame());
                if self.source.page_info.take_dirty(l1) {
                    dirty.push(l1);
                }
                for l1_idx in 0..ENTRIES_PER_TABLE {
                    let pte = mem.read_pte(cpu, l1, l1_idx)?;
                    if pte.present() && pte.dirty() {
                        dirty.push(FrameNum(pte.frame()));
                        mem.write_pte(cpu, l1, l1_idx, pte.without_flags(Pte::DIRTY))?;
                    }
                }
            }
        }
        // Clearing dirty bits behind the TLB's back requires a flush so
        // cached "already dirty" translations don't swallow new writes.
        for c in &self.source.machine.cpus {
            c.flush_tlb_local();
        }
        dirty.sort_unstable_by_key(|f| f.0);
        dirty.dedup();
        Ok(dirty)
    }

    fn ship(&mut self, cpu: &Cpu, frames: &[FrameNum]) -> Result<u64, HvError> {
        let mem = &self.source.machine.mem;
        let mut cycles = 0;
        for &f in frames {
            let (typ, _) = self.source.page_info.type_of(f);
            let words = mem.export_frame(f)?;
            let cost = costs::NIC_PACKET_BASE + simx86::PAGE_SIZE * costs::NIC_PER_BYTE;
            cpu.tick(cost);
            cycles += cost;
            self.staged.insert(
                f.0,
                FrameImage {
                    old_frame: f.0,
                    typ,
                    words,
                },
            );
        }
        Ok(cycles)
    }

    /// Run one pre-copy round: round 0 ships every owned frame;
    /// subsequent rounds ship only the dirty set.  The guest keeps
    /// running between rounds.
    pub fn round(&mut self, cpu: &Cpu) -> Result<RoundStats, HvError> {
        let frames = if !self.started {
            self.started = true;
            // Prime dirty tracking: clear current bits so round 1 sees
            // only subsequent writes.
            let _ = self.collect_dirty(cpu)?;
            self.dom.frames()
        } else {
            self.collect_dirty(cpu)?
        };
        let cycles = self.ship(cpu, &frames)?;
        let stats = RoundStats {
            round: self.round_no,
            frames_sent: frames.len(),
            cycles,
        };
        self.rounds.push(stats);
        self.round_no += 1;
        self.rearm_deadline(cpu, true);
        Ok(stats)
    }

    /// Dirty frames that would be shipped if a round ran now (peek; used
    /// by the convergence heuristic).
    pub fn dirty_backlog(&self, cpu: &Cpu) -> Result<usize, HvError> {
        // A peek that doesn't clear: scan without clearing PTE bits.
        let mem = &self.source.machine.mem;
        let mut n = 0;
        for pgd in self.dom.pgds() {
            for l2_idx in 0..ENTRIES_PER_TABLE {
                let pde = mem.read_pte(cpu, pgd, l2_idx)?;
                if !pde.present() {
                    continue;
                }
                let l1 = FrameNum(pde.frame());
                for l1_idx in 0..ENTRIES_PER_TABLE {
                    let pte = mem.read_pte(cpu, l1, l1_idx)?;
                    if pte.present() && pte.dirty() {
                        n += 1;
                    }
                }
            }
        }
        Ok(n)
    }

    /// Stop-and-copy: pause the guest, ship the last dirty set and the
    /// control state, materialize the domain on `target`, and destroy it
    /// at the source.  Returns the new domain and the report.
    ///
    /// The caller re-wires devices afterwards (§5.2: network frontends
    /// reconnect to the new backend *after* migration completes).
    pub fn finalize(
        mut self,
        cpu: &Cpu,
        target: &Arc<Hypervisor>,
        target_pcpu: usize,
    ) -> Result<(Arc<Domain>, MigrationReport), HvError> {
        if !self.started {
            self.round(cpu)?;
        }
        self.rearm_deadline(cpu, false);
        let downtime_start = cpu.cycles();

        // Pause: deschedule everywhere.
        for v in 0..self.dom.num_vcpus() {
            self.dom.set_runnable(v, false);
        }
        self.source.sched.remove_domain(self.dom.id);

        // Final dirty round.
        let dirty = self.collect_dirty(cpu)?;
        let cycles = self.ship(cpu, &dirty)?;
        self.rounds.push(RoundStats {
            round: self.round_no,
            frames_sent: dirty.len(),
            cycles,
        });

        // Ship the control-plane image (vCPUs, pgds, guest state).
        let control = save_domain(&self.source, cpu, &self.dom)?;

        // Assemble the full image from the staged frames, in the
        // domain's frame order.
        let frames: Result<Vec<FrameImage>, HvError> = self
            .dom
            .frames()
            .iter()
            .map(|f| {
                self.staged
                    .get(&f.0)
                    .cloned()
                    .ok_or_else(|| HvError::BadImage(format!("frame {} never shipped", f.0)))
            })
            .collect();
        let image = DomainImage {
            frames: frames?,
            ..control
        };

        // Target side: allocate frames and restore.
        let target_cpu = target.machine.boot_cpu();
        let new_frames = target
            .machine
            .allocator
            .alloc_many(target_cpu, image.frames.len())
            .ok_or(HvError::OutOfMemory)?;
        let (new_dom, frame_map) =
            restore_domain_mapped(target, target_cpu, &image, &new_frames, target_pcpu)?;
        for v in 0..new_dom.num_vcpus() {
            new_dom.set_runnable(v, true);
        }

        // Tear down at the source.
        let freed = self.source.destroy_domain(cpu, &self.dom)?;
        for f in freed {
            self.source.machine.allocator.free(f);
        }

        let downtime_cycles = cpu.cycles() - downtime_start;
        let total_frames: usize = self.rounds.iter().map(|r| r.frames_sent).sum();
        let report = MigrationReport {
            frame_map,
            total_frames,
            downtime_cycles,
            wire_bytes: total_frames as u64 * simx86::PAGE_SIZE,
            rounds: std::mem::take(&mut self.rounds),
        };
        Ok((new_dom, report))
    }
}

impl Drop for LiveMigration {
    /// An abandoned migration (target died mid-pre-copy) must not leave
    /// a stale round deadline pinning the event clock forever.
    fn drop(&mut self) {
        if let Some(ev) = self.round_ev.take() {
            self.source.machine.evclock.cancel(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx86::mem::PhysAddr;
    use simx86::{Machine, MachineConfig};

    pub(super) fn node() -> (Arc<Machine>, Arc<Hypervisor>) {
        let machine = Machine::new(MachineConfig {
            num_cpus: 1,
            mem_frames: 2048,
            disk_sectors: 64,
        });
        let hv = Hypervisor::warm_up(&machine);
        hv.activate();
        (machine, hv)
    }

    pub(super) fn build_guest(machine: &Arc<Machine>, hv: &Arc<Hypervisor>) -> Arc<Domain> {
        let cpu = machine.boot_cpu();
        let q = machine.allocator.alloc_many(cpu, 16).unwrap();
        let dom = hv.create_domain(cpu, "guest", q, 0).unwrap();
        let f = dom.frames();
        let mem = &machine.mem;
        // pgd = f[0], l1 = f[1], data pages f[2..6] mapped writable.
        mem.write_pte(cpu, f[0], 0, Pte::new(f[1].0, Pte::WRITABLE | Pte::USER))
            .unwrap();
        for i in 0..4 {
            mem.write_pte(
                cpu,
                f[1],
                i,
                Pte::new(f[2 + i].0, Pte::WRITABLE | Pte::USER),
            )
            .unwrap();
            mem.write_word(cpu, f[2 + i].base(), 100 + i as u64)
                .unwrap();
        }
        hv.pin_l2(cpu, &dom, f[0]).unwrap();
        *dom.guest_state.lock() = Some(serde_json::json!({"app": "token"}));
        dom
    }

    /// Simulate guest activity: write through the MMU so dirty bits set.
    fn guest_writes(machine: &Arc<Machine>, dom: &Arc<Domain>, page: usize, val: u64) {
        let cpu = machine.boot_cpu();
        let f = dom.frames();
        let l1 = f[1];
        // Hardware-style: set dirty via a direct PTE update + write.
        let pte = machine.mem.read_pte(cpu, l1, page).unwrap();
        machine
            .mem
            .write_pte(cpu, l1, page, pte.with_flags(Pte::DIRTY | Pte::ACCESSED))
            .unwrap();
        machine
            .mem
            .write_word(cpu, PhysAddr(FrameNum(pte.frame()).base().0), val)
            .unwrap();
    }

    #[test]
    fn full_migration_moves_memory_and_state() {
        let (m_src, hv_src) = node();
        let (m_dst, hv_dst) = node();
        let cpu = m_src.boot_cpu();
        let dom = build_guest(&m_src, &hv_src);
        let src_frames_before = m_src.allocator.available();

        let mut mig = LiveMigration::new(Arc::clone(&hv_src), Arc::clone(&dom));
        let r0 = mig.round(cpu).unwrap();
        assert_eq!(r0.frames_sent, 16);

        // Guest dirties two pages between rounds.
        guest_writes(&m_src, &dom, 1, 999);
        guest_writes(&m_src, &dom, 3, 888);
        let r1 = mig.round(cpu).unwrap();
        assert!(
            r1.frames_sent >= 2 && r1.frames_sent < 16,
            "round1 sent {}",
            r1.frames_sent
        );

        let (new_dom, report) = mig.finalize(cpu, &hv_dst, 0).unwrap();
        assert_eq!(report.rounds.len(), 3);
        assert!(report.downtime_cycles > 0);

        // The data written mid-migration arrived.
        let dst_cpu = m_dst.boot_cpu();
        let pgd = new_dom.pgds()[0];
        let pde = m_dst.mem.read_pte(dst_cpu, pgd, 0).unwrap();
        let pte1 = m_dst
            .mem
            .read_pte(dst_cpu, FrameNum(pde.frame()), 1)
            .unwrap();
        assert_eq!(
            m_dst
                .mem
                .read_word(dst_cpu, FrameNum(pte1.frame()).base())
                .unwrap(),
            999
        );
        assert_eq!(new_dom.guest_state.lock().clone().unwrap()["app"], "token");

        // Source fully released its memory.
        assert!(hv_src.domain(dom.id).is_none());
        assert_eq!(m_src.allocator.available(), src_frames_before + 16);
    }

    #[test]
    fn in_flight_migration_pins_the_event_clock() {
        // The campaign time skip fast-forwards to the next event; a
        // migration in flight must therefore keep a round deadline in
        // the queue from construction until finalize (or drop).
        let (m_src, hv_src) = node();
        let (_, hv_dst) = node();
        let cpu = m_src.boot_cpu();
        let dom = build_guest(&m_src, &hv_src);

        let before = m_src.evclock.pending_events();
        let mut mig = LiveMigration::new(Arc::clone(&hv_src), Arc::clone(&dom));
        assert_eq!(
            m_src.evclock.pending_events(),
            before + 1,
            "a new migration must register its round deadline"
        );
        let due = m_src.evclock.next_due().unwrap();
        assert!(due <= cpu.cycles() + ROUND_DEADLINE_CYCLES);

        mig.round(cpu).unwrap();
        assert_eq!(
            m_src.evclock.pending_events(),
            before + 1,
            "each round re-arms exactly one deadline"
        );

        mig.finalize(cpu, &hv_dst, 0).unwrap();
        assert_eq!(
            m_src.evclock.pending_events(),
            before,
            "finalize must cancel the round deadline"
        );
    }

    #[test]
    fn abandoned_migration_cancels_its_deadline() {
        let (m_src, hv_src) = node();
        let dom = build_guest(&m_src, &hv_src);
        let before = m_src.evclock.pending_events();
        {
            let mut mig = LiveMigration::new(Arc::clone(&hv_src), Arc::clone(&dom));
            mig.round(m_src.boot_cpu()).unwrap();
        }
        assert_eq!(m_src.evclock.pending_events(), before);
    }

    #[test]
    fn quiet_guest_converges_to_empty_rounds() {
        let (m_src, hv_src) = node();
        let cpu = m_src.boot_cpu();
        let dom = build_guest(&m_src, &hv_src);
        let mut mig = LiveMigration::new(Arc::clone(&hv_src), Arc::clone(&dom));
        mig.round(cpu).unwrap();
        let r1 = mig.round(cpu).unwrap();
        assert_eq!(r1.frames_sent, 0);
        assert_eq!(mig.dirty_backlog(cpu).unwrap(), 0);
    }

    #[test]
    fn busy_guest_keeps_rounds_nonempty() {
        let (m_src, hv_src) = node();
        let cpu = m_src.boot_cpu();
        let dom = build_guest(&m_src, &hv_src);
        let mut mig = LiveMigration::new(Arc::clone(&hv_src), Arc::clone(&dom));
        mig.round(cpu).unwrap();
        for i in 0..3 {
            guest_writes(&m_src, &dom, i % 4, i as u64);
            let r = mig.round(cpu).unwrap();
            assert!(r.frames_sent >= 1);
        }
    }

    #[test]
    fn downtime_scales_with_final_dirty_set() {
        let (m_src, hv_src) = node();
        let (_, hv_dst_a) = node();
        let (_, hv_dst_b) = node();
        let cpu = m_src.boot_cpu();

        // Migration A: converged before finalize.
        let dom_a = build_guest(&m_src, &hv_src);
        let mut mig = LiveMigration::new(Arc::clone(&hv_src), Arc::clone(&dom_a));
        mig.round(cpu).unwrap();
        let (_, rep_a) = mig.finalize(cpu, &hv_dst_a, 0).unwrap();

        // Migration B: never pre-copied the dirty tail.
        let dom_b = build_guest(&m_src, &hv_src);
        let mut mig = LiveMigration::new(Arc::clone(&hv_src), Arc::clone(&dom_b));
        mig.round(cpu).unwrap();
        for i in 0..4 {
            guest_writes(&m_src, &dom_b, i, 7);
        }
        let (_, rep_b) = mig.finalize(cpu, &hv_dst_b, 0).unwrap();

        assert!(
            rep_b.downtime_cycles > rep_a.downtime_cycles,
            "dirtier stop-and-copy must cost more ({} vs {})",
            rep_b.downtime_cycles,
            rep_a.downtime_cycles
        );
    }
}

#[cfg(test)]
mod abort_tests {
    use super::tests::{build_guest, node};
    use super::*;
    use simx86::mem::PhysAddr;

    #[test]
    fn abandoned_migration_leaves_source_untouched() {
        // A target-node failure mid-migration: the session is dropped
        // after pre-copy rounds; the source domain must keep running
        // with nothing leaked or paused.
        let (m_src, hv_src) = node();
        let cpu = m_src.boot_cpu();
        let dom = build_guest(&m_src, &hv_src);
        let frames_before = dom.frame_count();

        {
            let mut mig = LiveMigration::new(Arc::clone(&hv_src), Arc::clone(&dom));
            mig.round(cpu).unwrap();
            mig.round(cpu).unwrap();
            // ... target dies; the migration object is dropped.
        }

        assert!(dom.is_alive());
        assert!(dom.any_runnable(), "source vCPUs must not be left paused");
        assert_eq!(dom.frame_count(), frames_before);
        assert!(hv_src.domain(dom.id).is_some());
        // Guest memory still writable and consistent.
        let f = dom.frames();
        m_src
            .mem
            .write_word(cpu, PhysAddr(f[2].base().0), 4242)
            .unwrap();
        assert_eq!(
            m_src.mem.read_word(cpu, PhysAddr(f[2].base().0)).unwrap(),
            4242
        );
    }
}
