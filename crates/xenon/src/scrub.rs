//! Background revalidation of dirty frames — the dormant VMM's idle-
//! time scrubber.
//!
//! Under Mercury's dirty-tracking strategies the native kernel marks a
//! table frame dirty in the dormant VMM's [`crate::PageInfoTable`] at
//! every PTE write.  Left alone, the dirty set grows until the next
//! attach pays to revalidate it.  The scrubber lets the system *donate
//! idle simulated cycles* (a serving node's open-loop gap, the
//! kernel's idle loop) to revalidating dirty frames while still
//! native: each donated unit pops one dirty frame, re-derives its
//! accounting against the pre-computed boot baseline, and clears the
//! bit — so the frame re-attaches at the cheap snapshot-restore rate
//! instead of the full scan rate.
//!
//! Soundness: the attach path rebuilds the domain's accounting
//! wholesale from the live tables regardless of dirty bits, so a
//! scrubbed bit can never hide a *stale* validation — it only moves
//! the cycle charge off the switch's critical path.  A PTE write after
//! the scrub re-marks the frame through the native VO's dirty sink.
//!
//! Interplay with the event clock (`simx86::evclock`, DESIGN.md §14):
//! donation happens *before* the remainder of an idle span is
//! fast-forwarded — the donor consumes its budget in priced
//! [`simx86::Cpu::tick`] work, and only the cycles it leaves over are
//! skipped.  A drained scrubber ([`BackgroundScrubber::is_idle`]) is
//! what makes a span fully skippable; a non-empty backlog converts the
//! front of every gap into revalidation work first, identically in
//! both skip modes.
//!
//! ```
//! use simx86::{costs, Cpu, FrameNum};
//! use std::sync::Arc;
//! use xenon::scrub::BackgroundScrubber;
//! use xenon::{DomId, PageInfoTable};
//!
//! let table = Arc::new(PageInfoTable::new(8));
//! for f in 0..8 {
//!     table.set_owner(FrameNum(f), Some(DomId(0)));
//! }
//! table.mark_dirty(FrameNum(2));
//! table.mark_dirty(FrameNum(5));
//!
//! let scrubber = BackgroundScrubber::new(Arc::clone(&table), DomId(0));
//! let cpu = Arc::new(Cpu::new(0));
//!
//! // Donate an idle window big enough for one frame: one dirty bit is
//! // retired at the full revalidation rate, the other stays.
//! let used = scrubber.donate(&cpu, costs::PGINFO_RECOMPUTE_PER_FRAME);
//! assert_eq!(used, costs::PGINFO_RECOMPUTE_PER_FRAME);
//! assert_eq!(scrubber.backlog(), 1);
//!
//! // A big window drains the rest and reports the unused remainder
//! // through the return value.
//! let used = scrubber.donate(&cpu, 10 * costs::PGINFO_RECOMPUTE_PER_FRAME);
//! assert_eq!(used, costs::PGINFO_RECOMPUTE_PER_FRAME);
//! assert_eq!(scrubber.backlog(), 0);
//! assert_eq!(scrubber.revalidated(), 2);
//! ```

use crate::domain::DomId;
use crate::page_info::PageInfoTable;
use simx86::{costs, Cpu};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Idle-cycle scrubber over one domain's dirty set.
///
/// Shared by every donor (serving nodes, the kernel idle task), so the
/// statistics are atomics; the per-frame pop itself is serialized by
/// the frame table's lock.
pub struct BackgroundScrubber {
    /// The frame table being scrubbed.  A slot, not a plain `Arc`:
    /// a live-update replaces the running hypervisor (and with it the
    /// authoritative page-info table), and a scrubber left pointing at
    /// the decommissioned instance would revalidate a dead ledger.
    /// [`retarget`](BackgroundScrubber::retarget) swaps the slot.
    page_info: parking_lot::RwLock<Arc<PageInfoTable>>,
    dom: DomId,
    revalidated: AtomicU64,
    cycles_donated: AtomicU64,
}

impl BackgroundScrubber {
    /// A scrubber over `dom`'s frames in `page_info`.
    pub fn new(page_info: Arc<PageInfoTable>, dom: DomId) -> Arc<BackgroundScrubber> {
        Arc::new(BackgroundScrubber {
            page_info: parking_lot::RwLock::new(page_info),
            dom,
            revalidated: AtomicU64::new(0),
            cycles_donated: AtomicU64::new(0),
        })
    }

    /// Point the scrubber at a successor hypervisor's frame table
    /// (after a live-update decommissions the instance this scrubber
    /// was built over).  Statistics carry across: they count work
    /// donated on this node, not work per VMM instance.
    pub fn retarget(&self, page_info: Arc<PageInfoTable>) {
        *self.page_info.write() = page_info;
    }

    /// Donate up to `budget` idle cycles on `cpu`: revalidate dirty
    /// frames at [`costs::PGINFO_RECOMPUTE_PER_FRAME`] each until the
    /// budget cannot cover another frame or the dirty set is empty.
    ///
    /// Returns the cycles actually consumed (ticked on `cpu`); the
    /// caller idles away the remainder.  Never exceeds `budget`, so a
    /// donor on a latency path keeps its deadline.
    pub fn donate(&self, cpu: &Arc<Cpu>, budget: u64) -> u64 {
        let per_frame = costs::PGINFO_RECOMPUTE_PER_FRAME;
        let table = Arc::clone(&self.page_info.read());
        let mut used = 0u64;
        // volint::bound(16384) — at most one pop per pool frame (64 MiB pool)
        while used + per_frame <= budget {
            if table.take_dirty_frame_for(self.dom).is_none() {
                break;
            }
            cpu.tick(per_frame);
            used += per_frame;
            self.revalidated.fetch_add(1, Ordering::Relaxed);
            merctrace::counter!(cpu.id, "xenon.scrub.revalidate", 1, cpu.cycles());
        }
        self.cycles_donated.fetch_add(used, Ordering::Relaxed);
        used
    }

    /// Dirty frames still awaiting revalidation.
    pub fn backlog(&self) -> usize {
        self.page_info.read().count_dirty_for(self.dom)
    }

    /// Is the backlog empty?  An idle scrubber has no claim on donated
    /// cycles, so the donor's whole span may fast-forward through the
    /// event clock without losing revalidation work.
    pub fn is_idle(&self) -> bool {
        self.backlog() == 0
    }

    /// Frames revalidated by donated idle cycles so far.
    pub fn revalidated(&self) -> u64 {
        self.revalidated.load(Ordering::Relaxed)
    }

    /// Total idle cycles consumed so far.
    pub fn cycles_donated(&self) -> u64 {
        self.cycles_donated.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for BackgroundScrubber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackgroundScrubber")
            .field("dom", &self.dom)
            .field("backlog", &self.backlog())
            .field("revalidated", &self.revalidated())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx86::FrameNum;

    fn rig(frames: usize) -> (Arc<PageInfoTable>, Arc<BackgroundScrubber>, Arc<Cpu>) {
        let t = Arc::new(PageInfoTable::new(frames));
        for i in 0..frames {
            t.set_owner(FrameNum(i as u32), Some(DomId(0)));
        }
        let s = BackgroundScrubber::new(Arc::clone(&t), DomId(0));
        (t, s, Arc::new(Cpu::new(0)))
    }

    #[test]
    fn donation_retires_dirty_frames_within_budget() {
        let (t, s, cpu) = rig(16);
        for f in [1u32, 4, 9] {
            t.mark_dirty(FrameNum(f));
        }
        let per = costs::PGINFO_RECOMPUTE_PER_FRAME;
        // Budget for two frames: exactly two retired, cycles charged.
        let c0 = cpu.cycles();
        assert_eq!(s.donate(&cpu, 2 * per + per / 2), 2 * per);
        assert_eq!(cpu.cycles() - c0, 2 * per);
        assert_eq!(s.backlog(), 1);
        assert_eq!(s.revalidated(), 2);
        // Drain the rest.
        assert_eq!(s.donate(&cpu, 100 * per), per);
        assert_eq!(s.backlog(), 0);
        assert_eq!(s.cycles_donated(), 3 * per);
    }

    #[test]
    fn is_idle_tracks_the_backlog() {
        let (t, s, cpu) = rig(4);
        assert!(s.is_idle());
        t.mark_dirty(FrameNum(2));
        assert!(!s.is_idle());
        s.donate(&cpu, costs::PGINFO_RECOMPUTE_PER_FRAME);
        assert!(s.is_idle());
    }

    #[test]
    fn sub_frame_budget_does_nothing() {
        let (t, s, cpu) = rig(4);
        t.mark_dirty(FrameNum(1));
        let c0 = cpu.cycles();
        assert_eq!(s.donate(&cpu, costs::PGINFO_RECOMPUTE_PER_FRAME - 1), 0);
        assert_eq!(cpu.cycles(), c0);
        assert_eq!(s.backlog(), 1);
    }

    #[test]
    fn retarget_moves_the_scrubber_to_a_successor_table() {
        let (t1, s, cpu) = rig(8);
        t1.mark_dirty(FrameNum(1));
        let t2 = Arc::new(PageInfoTable::new(8));
        for i in 0..8 {
            t2.set_owner(FrameNum(i), Some(DomId(0)));
        }
        t2.mark_dirty(FrameNum(3));
        t2.mark_dirty(FrameNum(5));
        s.retarget(Arc::clone(&t2));
        // The backlog now reads the successor's ledger; the old
        // table's dirty bit is no longer this scrubber's business.
        assert_eq!(s.backlog(), 2);
        s.donate(&cpu, 10 * costs::PGINFO_RECOMPUTE_PER_FRAME);
        assert_eq!(s.backlog(), 0);
        assert!(t1.get(FrameNum(1)).dirty, "predecessor table untouched");
        assert_eq!(s.revalidated(), 2, "stats carry across the retarget");
    }

    #[test]
    fn foreign_dirty_frames_are_not_scrubbed() {
        let (t, s, cpu) = rig(4);
        t.set_owner(FrameNum(3), Some(DomId(7)));
        t.mark_dirty(FrameNum(3));
        assert_eq!(s.donate(&cpu, u64::MAX / 2), 0);
        assert!(t.get(FrameNum(3)).dirty, "foreign frame untouched");
    }
}
