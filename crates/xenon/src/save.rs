//! Domain save/restore: the engine behind checkpointing (§6.1).
//!
//! A [`DomainImage`] captures everything a domain is: its frames (with
//! their page-table types), pinned base tables, vCPU state and the
//! guest's serialized logical state.  Restore may place the domain in
//! *different* physical frames — page-table words are rewritten through
//! the old→new frame mapping, the same machine-frame renumbering a real
//! Xen restore performs via the P2M table.

use crate::domain::{DomId, Domain, VcpuState};
use crate::error::HvError;
use crate::hv::Hypervisor;
use crate::page_info::PageType;
use serde::{Deserialize, Serialize};
use simx86::mem::FrameNum;
use simx86::paging::{Pte, ENTRIES_PER_TABLE, WORDS_PER_PAGE};
use simx86::{costs, Cpu};
use std::collections::HashMap;
use std::sync::Arc;

/// One saved frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrameImage {
    /// The frame number the domain occupied at save time.
    pub old_frame: u32,
    /// Its page-table type at save time (drives PTE rewriting).
    pub typ: PageType,
    /// Raw contents.
    pub words: Vec<u64>,
}

/// A complete domain checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainImage {
    /// Domain id at save time (preserved across restore).
    pub id: u16,
    /// Name.
    pub name: String,
    /// Privilege flag.
    pub privileged: bool,
    /// All owned frames.
    pub frames: Vec<FrameImage>,
    /// Pinned base tables (old frame numbers).
    pub pgds: Vec<u32>,
    /// vCPU state.
    pub vcpus: Vec<VcpuState>,
    /// Vectors the guest had registered (the restored guest re-registers
    /// its handlers; this list lets tests assert nothing was lost).
    pub registered_vectors: Vec<u8>,
    /// Serialized guest-kernel logical state.
    pub guest_state: Option<serde_json::Value>,
}

impl DomainImage {
    /// Total bytes this image represents on the wire.
    pub fn wire_bytes(&self) -> u64 {
        self.frames.len() as u64 * simx86::PAGE_SIZE
            + self
                .guest_state
                .as_ref()
                .map(|g| g.to_string().len() as u64)
                .unwrap_or(0)
    }

    /// Serialize to a portable byte blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("image serialization cannot fail")
    }

    /// Deserialize from [`Self::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Result<DomainImage, HvError> {
        serde_json::from_slice(bytes).map_err(|e| HvError::BadImage(e.to_string()))
    }
}

/// Capture a domain.  The caller is responsible for having paused the
/// guest (no vCPU running) — checkpointing a running guest tears frames.
pub fn save_domain(hv: &Hypervisor, cpu: &Cpu, dom: &Arc<Domain>) -> Result<DomainImage, HvError> {
    let mem = &hv.machine.mem;
    let mut frames = Vec::with_capacity(dom.frame_count());
    for f in dom.frames() {
        cpu.tick(costs::FRAME_COPY);
        let (typ, _) = hv.page_info.type_of(f);
        frames.push(FrameImage {
            old_frame: f.0,
            typ,
            words: mem.export_frame(f)?,
        });
    }
    Ok(DomainImage {
        id: dom.id.0,
        name: dom.name.clone(),
        privileged: dom.privileged,
        frames,
        pgds: dom.pgds().iter().map(|p| p.0).collect(),
        vcpus: dom.vcpus(),
        registered_vectors: dom.registered_vectors(),
        guest_state: dom.guest_state.lock().clone(),
    })
}

/// Rewrite the present entries of a saved page-table frame through the
/// old→new frame mapping.
fn rewrite_table(words: &mut [u64], map: &HashMap<u32, u32>) -> Result<(), HvError> {
    for w in words.iter_mut().take(ENTRIES_PER_TABLE) {
        let pte = Pte(*w);
        if !pte.present() {
            continue;
        }
        let new = map.get(&pte.frame()).ok_or_else(|| {
            HvError::BadImage(format!("PTE references unsaved frame {}", pte.frame()))
        })?;
        *w = Pte::new(*new, pte.0 & !0x0000_00ff_ffff_f000).0;
    }
    Ok(())
}

/// Restore an image into `hv`'s machine, placing the domain into
/// `new_frames` (one per saved frame, any physical location).  Page
/// tables are rewritten, base tables re-pinned, accounting rebuilt.
///
/// The guest's Rust-side kernel object is *not* rebuilt here — the
/// caller thaws it from `image.guest_state` (see nimbus' restore path).
pub fn restore_domain(
    hv: &Hypervisor,
    cpu: &Cpu,
    image: &DomainImage,
    new_frames: &[FrameNum],
    pcpu: usize,
) -> Result<Arc<Domain>, HvError> {
    restore_domain_mapped(hv, cpu, image, new_frames, pcpu).map(|(dom, _)| dom)
}

/// [`restore_domain`], additionally returning the old→new frame
/// relocation map — the guest kernel's thaw path needs it to translate
/// its own frame references.
pub fn restore_domain_mapped(
    hv: &Hypervisor,
    cpu: &Cpu,
    image: &DomainImage,
    new_frames: &[FrameNum],
    pcpu: usize,
) -> Result<(Arc<Domain>, HashMap<u32, u32>), HvError> {
    if new_frames.len() != image.frames.len() {
        return Err(HvError::BadImage(format!(
            "need {} frames, got {}",
            image.frames.len(),
            new_frames.len()
        )));
    }
    let map: HashMap<u32, u32> = image
        .frames
        .iter()
        .zip(new_frames)
        .map(|(fi, nf)| (fi.old_frame, nf.0))
        .collect();

    let mem = &hv.machine.mem;
    let id = hv.allocate_domid(DomId(image.id));
    let dom = Domain::new(id, image.name.clone(), image.privileged, pcpu);

    for (fi, nf) in image.frames.iter().zip(new_frames) {
        cpu.tick(costs::FRAME_COPY);
        if fi.words.len() != WORDS_PER_PAGE {
            return Err(HvError::BadImage("frame image wrong size".into()));
        }
        let mut words = fi.words.clone();
        if matches!(fi.typ, PageType::L1 | PageType::L2) {
            rewrite_table(&mut words, &map)?;
        }
        mem.import_frame(*nf, &words)?;
        hv.page_info.set_owner(*nf, Some(id));
        dom.add_frame(*nf);
    }

    // Re-pin base tables (this re-validates the whole rewritten tree —
    // a malformed image fails here rather than corrupting the machine).
    for old_pgd in &image.pgds {
        let new_pgd = FrameNum(
            *map.get(old_pgd)
                .ok_or_else(|| HvError::BadImage("pgd not among saved frames".into()))?,
        );
        hv.page_info.pin_l2(cpu, mem, new_pgd, id)?;
        dom.add_pgd(new_pgd);
    }

    dom.set_vcpus(
        image
            .vcpus
            .iter()
            .map(|v| VcpuState { pcpu, ..v.clone() })
            .collect(),
    );
    *dom.guest_state.lock() = image.guest_state.clone();
    hv.adopt_domain(Arc::clone(&dom));
    Ok((dom, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx86::{Machine, MachineConfig};

    fn rig() -> (Arc<Machine>, Arc<Hypervisor>) {
        let machine = Machine::new(MachineConfig {
            num_cpus: 1,
            mem_frames: 2048,
            disk_sectors: 64,
        });
        let hv = Hypervisor::warm_up(&machine);
        hv.activate();
        (machine, hv)
    }

    fn build_guest(machine: &Arc<Machine>, hv: &Arc<Hypervisor>) -> Arc<Domain> {
        let cpu = machine.boot_cpu();
        let q = machine.allocator.alloc_many(cpu, 8).unwrap();
        let dom = hv.create_domain(cpu, "guest", q, 0).unwrap();
        let f = dom.frames();
        let (pgd, l1, data) = (f[0], f[1], f[2]);
        let mem = &machine.mem;
        mem.write_pte(cpu, pgd, 3, Pte::new(l1.0, Pte::WRITABLE | Pte::USER))
            .unwrap();
        mem.write_pte(cpu, l1, 7, Pte::new(data.0, Pte::WRITABLE | Pte::USER))
            .unwrap();
        mem.write_word(cpu, data.base(), 0xfeed_f00d).unwrap();
        hv.pin_l2(cpu, &dom, pgd).unwrap();
        *dom.guest_state.lock() = Some(serde_json::json!({"uptime": 42}));
        dom
    }

    #[test]
    fn save_restore_roundtrip_with_relocation() {
        let (machine, hv) = rig();
        let cpu = machine.boot_cpu();
        let dom = build_guest(&machine, &hv);
        let image = save_domain(&hv, cpu, &dom).unwrap();
        assert_eq!(image.frames.len(), 8);
        assert_eq!(image.pgds.len(), 1);

        // Destroy, then restore into different frames.
        let old_frames = hv.destroy_domain(cpu, &dom).unwrap();
        for f in old_frames {
            machine.allocator.free(f);
        }
        // Burn a few frames so the restore lands elsewhere.
        let _burn = machine.allocator.alloc_many(cpu, 3).unwrap();
        let new_frames = machine.allocator.alloc_many(cpu, 8).unwrap();
        let restored = restore_domain(&hv, cpu, &image, &new_frames, 0).unwrap();

        assert_eq!(restored.id, DomId(image.id));
        assert_eq!(restored.frame_count(), 8);
        assert_eq!(restored.guest_state.lock().clone().unwrap()["uptime"], 42);

        // The rewritten tables still map the data page: walk them.
        let pgd = restored.pgds()[0];
        let pde = machine.mem.read_pte(cpu, pgd, 3).unwrap();
        assert!(pde.present());
        let pte = machine.mem.read_pte(cpu, FrameNum(pde.frame()), 7).unwrap();
        assert!(pte.present());
        let word = machine
            .mem
            .read_word(cpu, FrameNum(pte.frame()).base())
            .unwrap();
        assert_eq!(word, 0xfeed_f00d);
    }

    #[test]
    fn image_bytes_roundtrip() {
        let (machine, hv) = rig();
        let cpu = machine.boot_cpu();
        let dom = build_guest(&machine, &hv);
        let image = save_domain(&hv, cpu, &dom).unwrap();
        let bytes = image.to_bytes();
        let back = DomainImage::from_bytes(&bytes).unwrap();
        assert_eq!(back.frames.len(), image.frames.len());
        assert_eq!(back.pgds, image.pgds);
        assert!(DomainImage::from_bytes(b"not an image").is_err());
    }

    #[test]
    fn restore_rejects_frame_count_mismatch() {
        let (machine, hv) = rig();
        let cpu = machine.boot_cpu();
        let dom = build_guest(&machine, &hv);
        let image = save_domain(&hv, cpu, &dom).unwrap();
        let too_few = machine.allocator.alloc_many(cpu, 2).unwrap();
        assert!(matches!(
            restore_domain(&hv, cpu, &image, &too_few, 0),
            Err(HvError::BadImage(_))
        ));
    }

    #[test]
    fn restore_rejects_dangling_pte() {
        let (machine, hv) = rig();
        let cpu = machine.boot_cpu();
        let dom = build_guest(&machine, &hv);
        let mut image = save_domain(&hv, cpu, &dom).unwrap();
        // Corrupt: make the L1 point at a frame outside the image.
        let l1_img = image
            .frames
            .iter_mut()
            .find(|f| f.typ == PageType::L1)
            .unwrap();
        l1_img.words[7] = Pte::new(9999, Pte::WRITABLE).0;
        hv.destroy_domain(cpu, &dom).unwrap();
        let new_frames = machine.allocator.alloc_many(cpu, 8).unwrap();
        assert!(matches!(
            restore_domain(&hv, cpu, &image, &new_frames, 0),
            Err(HvError::BadImage(_))
        ));
    }

    #[test]
    fn wire_bytes_accounts_frames() {
        let (machine, hv) = rig();
        let cpu = machine.boot_cpu();
        let dom = build_guest(&machine, &hv);
        let image = save_domain(&hv, cpu, &dom).unwrap();
        assert!(image.wire_bytes() >= 8 * simx86::PAGE_SIZE);
    }
}
