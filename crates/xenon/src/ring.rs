//! Shared-memory I/O rings — the transport of the split device model.
//!
//! A ring lives in one granted frame of simulated physical memory, laid
//! out Xen-style: free-running producer/consumer indices in a header,
//! followed by fixed-size slots shared between requests and responses.
//! The frontend pushes requests and consumes responses; the backend does
//! the reverse.  Because the indices and slots are *in simulated
//! memory*, a migrated domain's ring state travels with its frames.
//!
//! Frame layout (u64 words):
//! ```text
//!   0: req_prod   1: req_cons   2: rsp_prod   3: rsp_cons
//!   8..: 32 slots × 8 words
//! ```

use crate::error::HvError;
use simx86::costs;
use simx86::mem::{FrameNum, PhysAddr, PhysMemory};
use simx86::Cpu;

/// Slots per ring (power of two).
pub const RING_SLOTS: u64 = 32;
/// Words per slot.
pub const SLOT_WORDS: usize = 8;
const HDR_REQ_PROD: u64 = 0;
const HDR_REQ_CONS: u64 = 1;
const HDR_RSP_PROD: u64 = 2;
const HDR_RSP_CONS: u64 = 3;
const SLOT_BASE: u64 = 8;

/// A wire-format message: one ring slot.
pub type SlotPayload = [u64; SLOT_WORDS];

/// A view over a ring living in `frame`.
#[derive(Clone, Copy, Debug)]
pub struct Ring {
    frame: FrameNum,
}

impl Ring {
    /// Attach to (or initialize a view over) the ring in `frame`.  The
    /// creator must have zeroed the frame first.
    pub fn attach(frame: FrameNum) -> Ring {
        Ring { frame }
    }

    /// The backing frame.
    pub fn frame(&self) -> FrameNum {
        self.frame
    }

    fn hdr(&self, word: u64) -> PhysAddr {
        PhysAddr(self.frame.base().0 + word * 8)
    }

    fn slot(&self, index: u64) -> PhysAddr {
        let s = index % RING_SLOTS;
        PhysAddr(self.frame.base().0 + (SLOT_BASE + s * SLOT_WORDS as u64) * 8)
    }

    fn read_idx(&self, cpu: &Cpu, mem: &PhysMemory, word: u64) -> Result<u64, HvError> {
        Ok(mem.read_word(cpu, self.hdr(word))?)
    }

    fn write_idx(&self, cpu: &Cpu, mem: &PhysMemory, word: u64, v: u64) -> Result<(), HvError> {
        mem.write_word(cpu, self.hdr(word), v)?;
        Ok(())
    }

    fn read_slot(&self, cpu: &Cpu, mem: &PhysMemory, index: u64) -> Result<SlotPayload, HvError> {
        let base = self.slot(index);
        let mut out = [0u64; SLOT_WORDS];
        for (i, w) in out.iter_mut().enumerate() {
            *w = mem.read_word(cpu, PhysAddr(base.0 + i as u64 * 8))?;
        }
        Ok(out)
    }

    fn write_slot(
        &self,
        cpu: &Cpu,
        mem: &PhysMemory,
        index: u64,
        payload: &SlotPayload,
    ) -> Result<(), HvError> {
        let base = self.slot(index);
        for (i, w) in payload.iter().enumerate() {
            mem.write_word(cpu, PhysAddr(base.0 + i as u64 * 8), *w)?;
        }
        Ok(())
    }

    /// Frontend: push a request.  Fails with `Busy` when the ring is
    /// full (slots are shared with responses, so fullness is measured
    /// against `rsp_cons`).
    pub fn push_request(
        &self,
        cpu: &Cpu,
        mem: &PhysMemory,
        payload: &SlotPayload,
    ) -> Result<(), HvError> {
        cpu.tick(costs::RING_POST);
        let prod = self.read_idx(cpu, mem, HDR_REQ_PROD)?;
        let rsp_cons = self.read_idx(cpu, mem, HDR_RSP_CONS)?;
        if prod - rsp_cons >= RING_SLOTS {
            return Err(HvError::Busy("ring full"));
        }
        self.write_slot(cpu, mem, prod, payload)?;
        self.write_idx(cpu, mem, HDR_REQ_PROD, prod + 1)
    }

    /// Backend: pop the next request, if any.
    pub fn pop_request(&self, cpu: &Cpu, mem: &PhysMemory) -> Result<Option<SlotPayload>, HvError> {
        let prod = self.read_idx(cpu, mem, HDR_REQ_PROD)?;
        let cons = self.read_idx(cpu, mem, HDR_REQ_CONS)?;
        if cons == prod {
            return Ok(None);
        }
        let payload = self.read_slot(cpu, mem, cons)?;
        self.write_idx(cpu, mem, HDR_REQ_CONS, cons + 1)?;
        Ok(Some(payload))
    }

    /// Backend: push a response.
    pub fn push_response(
        &self,
        cpu: &Cpu,
        mem: &PhysMemory,
        payload: &SlotPayload,
    ) -> Result<(), HvError> {
        cpu.tick(costs::RING_POST);
        let prod = self.read_idx(cpu, mem, HDR_RSP_PROD)?;
        let req_cons = self.read_idx(cpu, mem, HDR_REQ_CONS)?;
        // A response may only occupy a slot whose request was consumed.
        if prod >= req_cons {
            return Err(HvError::Busy("response overruns unconsumed requests"));
        }
        self.write_slot(cpu, mem, prod, payload)?;
        self.write_idx(cpu, mem, HDR_RSP_PROD, prod + 1)
    }

    /// Frontend: pop the next response, if any.
    pub fn pop_response(
        &self,
        cpu: &Cpu,
        mem: &PhysMemory,
    ) -> Result<Option<SlotPayload>, HvError> {
        let prod = self.read_idx(cpu, mem, HDR_RSP_PROD)?;
        let cons = self.read_idx(cpu, mem, HDR_RSP_CONS)?;
        if cons == prod {
            return Ok(None);
        }
        let payload = self.read_slot(cpu, mem, cons)?;
        self.write_idx(cpu, mem, HDR_RSP_CONS, cons + 1)?;
        Ok(Some(payload))
    }

    /// Outstanding (pushed, not yet responded-and-reaped) requests.
    pub fn in_flight(&self, cpu: &Cpu, mem: &PhysMemory) -> Result<u64, HvError> {
        let prod = self.read_idx(cpu, mem, HDR_REQ_PROD)?;
        let rsp_cons = self.read_idx(cpu, mem, HDR_RSP_CONS)?;
        Ok(prod - rsp_cons)
    }
}

// ---------------------------------------------------------------------------
// Typed messages for the block and network channels
// ---------------------------------------------------------------------------

/// Block-device request operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlkOp {
    /// Read sectors.
    Read,
    /// Write sectors.
    Write,
    /// Flush the write cache (barrier).
    Flush,
}

/// A block-channel request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlkRequest {
    /// Frontend-chosen id echoed in the response.
    pub id: u64,
    /// Operation.
    pub op: BlkOp,
    /// First sector.
    pub sector: u64,
    /// Sector count.
    pub count: u32,
    /// Grant reference of the payload frame (grantor = frontend dom).
    pub gref: u32,
}

impl BlkRequest {
    /// Encode into a ring slot.
    pub fn encode(&self) -> SlotPayload {
        let op = match self.op {
            BlkOp::Read => 0,
            BlkOp::Write => 1,
            BlkOp::Flush => 2,
        };
        [
            self.id,
            op,
            self.sector,
            self.count as u64,
            self.gref as u64,
            0,
            0,
            0,
        ]
    }

    /// Decode from a ring slot.
    pub fn decode(p: &SlotPayload) -> Result<BlkRequest, HvError> {
        let op = match p[1] {
            0 => BlkOp::Read,
            1 => BlkOp::Write,
            2 => BlkOp::Flush,
            _ => return Err(HvError::BadImage("bad blk op".into())),
        };
        Ok(BlkRequest {
            id: p[0],
            op,
            sector: p[2],
            count: p[3] as u32,
            gref: p[4] as u32,
        })
    }
}

/// A block-channel response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlkResponse {
    /// Echoed request id.
    pub id: u64,
    /// Success flag.
    pub ok: bool,
    /// Device service cost in cycles, charged to the reaper if the I/O
    /// was synchronous.
    pub cost: u64,
}

impl BlkResponse {
    /// Encode into a ring slot.
    pub fn encode(&self) -> SlotPayload {
        [self.id, self.ok as u64, self.cost, 0, 0, 0, 0, 0]
    }

    /// Decode from a ring slot.
    pub fn decode(p: &SlotPayload) -> BlkResponse {
        BlkResponse {
            id: p[0],
            ok: p[1] != 0,
            cost: p[2],
        }
    }
}

/// A network-channel message (both directions): a packet described by a
/// granted frame and a length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetMessage {
    /// Message id.
    pub id: u64,
    /// Payload length in bytes (fits one frame in this model).
    pub len: u32,
    /// Grant reference of the payload frame.
    pub gref: u32,
}

impl NetMessage {
    /// Encode into a ring slot.
    pub fn encode(&self) -> SlotPayload {
        [self.id, self.len as u64, self.gref as u64, 0, 0, 0, 0, 0]
    }

    /// Decode from a ring slot.
    pub fn decode(p: &SlotPayload) -> NetMessage {
        NetMessage {
            id: p[0],
            len: p[1] as u32,
            gref: p[2] as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn rig() -> (Ring, PhysMemory, Arc<Cpu>) {
        let mem = PhysMemory::new(4);
        let cpu = Arc::new(Cpu::new(0));
        (Ring::attach(FrameNum(1)), mem, cpu)
    }

    #[test]
    fn request_response_roundtrip() {
        let (ring, mem, cpu) = rig();
        let req = BlkRequest {
            id: 42,
            op: BlkOp::Write,
            sector: 100,
            count: 8,
            gref: 3,
        };
        ring.push_request(&cpu, &mem, &req.encode()).unwrap();
        assert_eq!(ring.in_flight(&cpu, &mem).unwrap(), 1);

        let got = BlkRequest::decode(&ring.pop_request(&cpu, &mem).unwrap().unwrap()).unwrap();
        assert_eq!(got, req);
        assert!(ring.pop_request(&cpu, &mem).unwrap().is_none());

        let rsp = BlkResponse {
            id: 42,
            ok: true,
            cost: 999,
        };
        ring.push_response(&cpu, &mem, &rsp.encode()).unwrap();
        let got = BlkResponse::decode(&ring.pop_response(&cpu, &mem).unwrap().unwrap());
        assert_eq!(got, rsp);
        assert_eq!(ring.in_flight(&cpu, &mem).unwrap(), 0);
    }

    #[test]
    fn ring_full_rejected() {
        let (ring, mem, cpu) = rig();
        let payload = [1u64; SLOT_WORDS];
        for _ in 0..RING_SLOTS {
            ring.push_request(&cpu, &mem, &payload).unwrap();
        }
        assert!(matches!(
            ring.push_request(&cpu, &mem, &payload),
            Err(HvError::Busy(_))
        ));
        // Consuming a request is not enough: the slot frees when the
        // response is reaped.
        ring.pop_request(&cpu, &mem).unwrap().unwrap();
        assert!(ring.push_request(&cpu, &mem, &payload).is_err());
        ring.push_response(&cpu, &mem, &[2u64; SLOT_WORDS]).unwrap();
        ring.pop_response(&cpu, &mem).unwrap().unwrap();
        ring.push_request(&cpu, &mem, &payload).unwrap();
    }

    #[test]
    fn response_cannot_overrun_requests() {
        let (ring, mem, cpu) = rig();
        // No request consumed yet: response push must fail.
        assert!(ring.push_response(&cpu, &mem, &[0u64; SLOT_WORDS]).is_err());
    }

    #[test]
    fn many_messages_wrap_around() {
        let (ring, mem, cpu) = rig();
        for i in 0..(RING_SLOTS * 3) {
            let req = BlkRequest {
                id: i,
                op: BlkOp::Read,
                sector: i,
                count: 1,
                gref: 0,
            };
            ring.push_request(&cpu, &mem, &req.encode()).unwrap();
            let got = BlkRequest::decode(&ring.pop_request(&cpu, &mem).unwrap().unwrap()).unwrap();
            assert_eq!(got.id, i);
            ring.push_response(
                &cpu,
                &mem,
                &BlkResponse {
                    id: i,
                    ok: true,
                    cost: 0,
                }
                .encode(),
            )
            .unwrap();
            let rsp = BlkResponse::decode(&ring.pop_response(&cpu, &mem).unwrap().unwrap());
            assert_eq!(rsp.id, i);
        }
    }

    #[test]
    fn net_message_roundtrip() {
        let m = NetMessage {
            id: 7,
            len: 1500,
            gref: 2,
        };
        assert_eq!(NetMessage::decode(&m.encode()), m);
    }

    #[test]
    fn ring_state_lives_in_sim_memory() {
        let (ring, mem, cpu) = rig();
        ring.push_request(&cpu, &mem, &[9u64; SLOT_WORDS]).unwrap();
        // Copy the frame elsewhere: a second view over the copy sees the
        // same ring state (this is what makes rings migratable).
        mem.copy_frame(&cpu, FrameNum(1), FrameNum(2)).unwrap();
        let ring2 = Ring::attach(FrameNum(2));
        let got = ring2.pop_request(&cpu, &mem).unwrap().unwrap();
        assert_eq!(got, [9u64; SLOT_WORDS]);
    }
}
