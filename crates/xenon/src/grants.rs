//! Grant tables: controlled inter-domain frame sharing.
//!
//! A frontend grants its backend access to the frames carrying I/O
//! payloads; the backend maps the grant, DMAs, and unmaps.  Grants are
//! what keep the split device model (§5.2) isolation-preserving: the
//! backend can only touch exactly the frames it was handed.

use crate::domain::DomId;
use crate::error::HvError;
use parking_lot::Mutex;
use simx86::costs;
use simx86::mem::FrameNum;
use simx86::Cpu;
use std::collections::HashMap;

/// A grant reference, scoped to the granting domain.
pub type GrantRef = u32;

#[derive(Debug, Clone, Copy)]
struct GrantEntry {
    frame: FrameNum,
    readonly: bool,
    granted_to: DomId,
    mapped: bool,
}

/// The machine-wide grant table (logically per-domain; keyed by
/// grantor).
pub struct GrantTables {
    entries: Mutex<HashMap<(DomId, GrantRef), GrantEntry>>,
    next_ref: Mutex<HashMap<DomId, GrantRef>>,
}

impl GrantTables {
    /// An empty grant table.
    pub fn new() -> Self {
        GrantTables {
            entries: Mutex::new(HashMap::new()),
            next_ref: Mutex::new(HashMap::new()),
        }
    }

    /// `grantor` grants `to` access to `frame`.  Returns the grant ref
    /// the grantee uses to map it.
    pub fn grant(
        &self,
        cpu: &Cpu,
        grantor: DomId,
        to: DomId,
        frame: FrameNum,
        readonly: bool,
    ) -> GrantRef {
        cpu.tick(costs::GRANT_OP);
        let mut next = self.next_ref.lock();
        let r = next.entry(grantor).or_insert(0);
        let gref = *r;
        *r += 1;
        self.entries.lock().insert(
            (grantor, gref),
            GrantEntry {
                frame,
                readonly,
                granted_to: to,
                mapped: false,
            },
        );
        gref
    }

    /// `mapper` maps grant `(grantor, gref)`.  Returns the frame and
    /// whether the mapping is read-only.
    pub fn map(
        &self,
        cpu: &Cpu,
        mapper: DomId,
        grantor: DomId,
        gref: GrantRef,
    ) -> Result<(FrameNum, bool), HvError> {
        cpu.tick(costs::GRANT_OP);
        let mut entries = self.entries.lock();
        let e = entries
            .get_mut(&(grantor, gref))
            .ok_or(HvError::BadGrant("no such grant"))?;
        if e.granted_to != mapper {
            return Err(HvError::BadGrant("grant not addressed to mapper"));
        }
        if e.mapped {
            return Err(HvError::BadGrant("grant already mapped"));
        }
        e.mapped = true;
        Ok((e.frame, e.readonly))
    }

    /// Unmap a previously mapped grant.
    pub fn unmap(
        &self,
        cpu: &Cpu,
        mapper: DomId,
        grantor: DomId,
        gref: GrantRef,
    ) -> Result<(), HvError> {
        cpu.tick(costs::GRANT_OP);
        let mut entries = self.entries.lock();
        let e = entries
            .get_mut(&(grantor, gref))
            .ok_or(HvError::BadGrant("no such grant"))?;
        if e.granted_to != mapper || !e.mapped {
            return Err(HvError::BadGrant("grant not mapped by caller"));
        }
        e.mapped = false;
        Ok(())
    }

    /// The grantor revokes a grant.  Fails while the grantee still has
    /// it mapped.
    pub fn revoke(&self, cpu: &Cpu, grantor: DomId, gref: GrantRef) -> Result<(), HvError> {
        cpu.tick(costs::GRANT_OP);
        let mut entries = self.entries.lock();
        match entries.get(&(grantor, gref)) {
            None => Err(HvError::BadGrant("no such grant")),
            Some(e) if e.mapped => Err(HvError::Busy("grant still mapped")),
            Some(_) => {
                entries.remove(&(grantor, gref));
                Ok(())
            }
        }
    }

    /// Adopt the complete grant state of `other` (hypervisor
    /// live-update re-binding): every `(grantor, ref)` key, frame,
    /// mapped flag and per-grantor ref counter carries over, so grant
    /// refs held in guest I/O rings stay valid across the swap.
    pub fn transfer_from(&self, other: &GrantTables) {
        let entries = other.entries.lock().clone();
        let next = other.next_ref.lock().clone();
        *self.entries.lock() = entries;
        *self.next_ref.lock() = next;
    }

    /// Clear every entry in place.  The live-update discard path uses
    /// this to return a failed successor's table to pristine without
    /// entering the allocator (`HashMap::clear` keeps its capacity).
    pub fn reset(&self) {
        self.entries.lock().clear();
        self.next_ref.lock().clear();
    }

    /// Outstanding grants by `grantor` (diagnostics / leak checks).
    pub fn outstanding(&self, grantor: DomId) -> usize {
        self.entries
            .lock()
            .keys()
            .filter(|(g, _)| *g == grantor)
            .count()
    }
}

impl Default for GrantTables {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const D0: DomId = DomId(0);
    const D1: DomId = DomId(1);

    fn rig() -> (GrantTables, Arc<Cpu>) {
        (GrantTables::new(), Arc::new(Cpu::new(0)))
    }

    #[test]
    fn grant_map_unmap_revoke() {
        let (g, cpu) = rig();
        let gref = g.grant(&cpu, D1, D0, FrameNum(7), false);
        let (frame, ro) = g.map(&cpu, D0, D1, gref).unwrap();
        assert_eq!(frame, FrameNum(7));
        assert!(!ro);
        // Revoke while mapped fails.
        assert!(matches!(g.revoke(&cpu, D1, gref), Err(HvError::Busy(_))));
        g.unmap(&cpu, D0, D1, gref).unwrap();
        g.revoke(&cpu, D1, gref).unwrap();
        assert_eq!(g.outstanding(D1), 0);
    }

    #[test]
    fn map_by_wrong_domain_fails() {
        let (g, cpu) = rig();
        let gref = g.grant(&cpu, D1, D0, FrameNum(7), true);
        assert!(g.map(&cpu, DomId(5), D1, gref).is_err());
        // Right domain sees the read-only flag.
        let (_, ro) = g.map(&cpu, D0, D1, gref).unwrap();
        assert!(ro);
    }

    #[test]
    fn double_map_fails_until_unmap() {
        let (g, cpu) = rig();
        let gref = g.grant(&cpu, D1, D0, FrameNum(3), false);
        g.map(&cpu, D0, D1, gref).unwrap();
        assert!(g.map(&cpu, D0, D1, gref).is_err());
        g.unmap(&cpu, D0, D1, gref).unwrap();
        g.map(&cpu, D0, D1, gref).unwrap();
    }

    #[test]
    fn grant_refs_are_per_grantor() {
        let (g, cpu) = rig();
        let a = g.grant(&cpu, D0, D1, FrameNum(1), false);
        let b = g.grant(&cpu, D1, D0, FrameNum(2), false);
        // Independent counters: both start at 0.
        assert_eq!(a, 0);
        assert_eq!(b, 0);
        assert_eq!(g.outstanding(D0), 1);
        assert_eq!(g.outstanding(D1), 1);
    }

    #[test]
    fn grant_charges_cycles() {
        let (g, cpu) = rig();
        let before = cpu.cycles();
        g.grant(&cpu, D0, D1, FrameNum(1), false);
        assert_eq!(cpu.cycles() - before, costs::GRANT_OP);
    }
}
