//! Application-level benchmarks — the five bars of Figs. 3 and 4.
//!
//! | paper benchmark | module |
//! |---|---|
//! | OSDB-IR (PostgreSQL information retrieval) | [`osdb`] |
//! | dbench 3.03 (filesystem throughput) | [`dbench`] |
//! | Linux kernel build | [`kbuild`] |
//! | ping (ICMP round trip) | [`netperf`] |
//! | Iperf (TCP/UDP bandwidth) | [`netperf`] |

pub mod dbench;
pub mod kbuild;
pub mod netperf;
pub mod osdb;

use crate::configs::TestBed;

/// A finished application benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppResult {
    /// Higher-is-better score (throughput, or inverse time).
    pub score: f64,
    /// What the score measures.
    pub unit: &'static str,
}

/// The five paper benchmarks, by name.
pub const APP_NAMES: [&str; 5] = ["OSDB-IR", "dbench", "kernel build", "ping", "Iperf"];

/// Run one named app benchmark at the given scale (1 = quick smoke,
/// larger = more iterations/data).
pub fn run_app(name: &str, bed: &TestBed, scale: u32) -> AppResult {
    match name {
        "OSDB-IR" => osdb::run(bed, scale),
        "dbench" => dbench::run(bed, scale),
        "kernel build" => kbuild::run(bed, scale),
        "ping" => netperf::run_ping(bed, scale),
        "Iperf" => netperf::run_iperf(bed, scale),
        other => panic!("unknown app benchmark {other}"),
    }
}
