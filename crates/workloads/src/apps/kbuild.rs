//! A Linux-kernel-build-style workload: many short-lived compiler
//! processes (fork + exec cc1), each reading a source file, burning
//! user-space compute, dirtying a compiler heap, and writing an object
//! file.  Compute dominates, which is why the paper's Fig. 3 shows only
//! ~9 % virtualization overhead here.

use crate::apps::AppResult;
use crate::configs::TestBed;
use nimbus::kernel::MmapBacking;
use nimbus::kernel::ReadOutcome;
use nimbus::mm::Prot;
use simx86::costs::cycles_to_us;
use simx86::paging::{VirtAddr, PAGE_SIZE};

/// Compilation units per scale unit.
const UNITS_PER_SCALE: u32 = 6;
/// Source file size.
const SOURCE_BYTES: usize = 24 * 1024;
/// Object file size.
const OBJECT_BYTES: usize = 12 * 1024;
/// Pure compile compute per unit (parsing, optimizing, codegen).
/// Dominates, as real compilation does — which is why Fig. 3 shows only
/// ~9 % virtualization overhead for the kernel build.
const COMPILE_CYCLES: u64 = 18_000_000;
/// Compiler heap pages dirtied per unit.
const COMPILER_HEAP_PAGES: u64 = 96;

/// Run the build; returns compilation units per simulated second.
pub fn run(bed: &TestBed, scale: u32) -> AppResult {
    let sess = bed.session(0);

    // The "source tree" (not timed).
    let units = UNITS_PER_SCALE * scale;
    let src = vec![b'c'; SOURCE_BYTES];
    for u in 0..units {
        let fd = sess.open(&format!("src_{u}.c"), true).expect("create src");
        sess.write(fd, &src).expect("write src");
        sess.close(fd).expect("close");
    }

    let t0 = sess.cpu().cycles();
    for u in 0..units {
        // make forks, child execs the compiler.
        sess.fork().expect("fork cc1");
        assert!(sess.waitpid().expect("wait").is_none());
        sess.exec("cc1").expect("exec cc1");

        // Read the source.
        let fd = sess.open(&format!("src_{u}.c"), false).expect("open src");
        let mut remaining = SOURCE_BYTES;
        while remaining > 0 {
            match sess.read(fd, 4096).expect("read src") {
                ReadOutcome::Data(d) if !d.is_empty() => remaining -= d.len(),
                _ => break,
            }
        }

        // Compile: dirty the heap, burn cycles.
        let heap = sess
            .mmap(COMPILER_HEAP_PAGES, Prot::RW, MmapBacking::Anon)
            .expect("heap");
        for p in 0..COMPILER_HEAP_PAGES {
            sess.poke(VirtAddr(heap.0 + p * PAGE_SIZE), p)
                .expect("dirty");
        }
        sess.compute(COMPILE_CYCLES);

        // Emit the object file.
        let obj = vec![0u8; OBJECT_BYTES];
        let ofd = sess.open(&format!("obj_{u}.o"), true).expect("create obj");
        sess.write(ofd, &obj).expect("write obj");
        sess.exit(0).expect("cc1 exit");
        assert!(sess.waitpid().expect("reap").is_some());
    }
    // Final link: read all objects, write the image.
    let mut image = Vec::new();
    for u in 0..units {
        let fd = sess.open(&format!("obj_{u}.o"), false).expect("open obj");
        if let ReadOutcome::Data(d) = sess.read(fd, OBJECT_BYTES).expect("read obj") {
            image.extend_from_slice(&d);
        }
    }
    sess.compute(COMPILE_CYCLES / 2);
    let fd = sess.open("vmlinux", true).expect("create image");
    sess.write(fd, &image).expect("write image");
    sess.sync().expect("sync");

    let us = cycles_to_us(sess.cpu().cycles() - t0);
    AppResult {
        score: units as f64 / (us / 1e6),
        unit: "units/s",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::SysKind;

    #[test]
    fn builds_and_links() {
        let bed = TestBed::build(SysKind::NL, 1);
        let r = run(&bed, 1);
        assert!(r.score > 1.0);
        let sess = bed.session(0);
        assert_eq!(
            sess.stat("vmlinux").unwrap().size,
            (UNITS_PER_SCALE as u64) * OBJECT_BYTES as u64
        );
    }

    #[test]
    fn compute_bound_overhead_is_moderate() {
        // Fig. 3: ~9 % under Xen — far less than the microbenchmarks.
        let native = run(&TestBed::build(SysKind::NL, 1), 1).score;
        let virt = run(&TestBed::build(SysKind::X0, 1), 1).score;
        let rel = virt / native;
        assert!(
            rel > 0.6 && rel < 1.01,
            "kernel build relative performance {rel} out of band"
        );
    }
}
