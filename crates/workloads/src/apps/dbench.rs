//! A dbench-3.03-style filesystem workload: the NetBench file-server
//! op mix (create / write / read / stat / delete) measured as
//! throughput.
//!
//! This is the benchmark where the paper's Fig. 3 shows the surprising
//! split: domain0 ~15 % *slower* than native, domainU ~5 % *faster* —
//! because the split block driver's early-acked writes hide device
//! latency that the native driver pays synchronously.

use crate::apps::AppResult;
use crate::configs::TestBed;
use nimbus::kernel::ReadOutcome;
use simx86::costs::cycles_to_us;

/// Bytes written per file.
const FILE_BYTES: usize = 128 * 1024;
/// I/O chunk.
const CHUNK: usize = 4096;

/// Run dbench: `scale` clients × a fixed per-client op mix.  Returns
/// MB/s of simulated throughput.
pub fn run(bed: &TestBed, scale: u32) -> AppResult {
    let sess = bed.session(0);
    let files_per_client = 10u32;
    let mut bytes_moved = 0u64;
    let t0 = sess.cpu().cycles();

    for client in 0..scale {
        for i in 0..files_per_client {
            let name = format!("db_{client}_{i}.dat");
            let fd = sess.open(&name, true).expect("create");
            // Sequential write in chunks.
            let chunk = vec![(i % 251) as u8; CHUNK];
            for _ in 0..(FILE_BYTES / CHUNK) {
                sess.write(fd, &chunk).expect("write");
                bytes_moved += CHUNK as u64;
            }
            // Read a third of it back.
            sess.lseek(fd, 0).expect("seek");
            for _ in 0..(FILE_BYTES / CHUNK / 3) {
                match sess.read(fd, CHUNK).expect("read") {
                    ReadOutcome::Data(d) => bytes_moved += d.len() as u64,
                    other => panic!("{other:?}"),
                }
            }
            sess.stat(&name).expect("stat");
            sess.close(fd).expect("close");
        }
        // Age the tree: delete half the files.
        for i in 0..files_per_client / 2 {
            sess.unlink(&format!("db_{client}_{i}.dat"))
                .expect("unlink");
        }
    }

    let us = cycles_to_us(sess.cpu().cycles() - t0);
    AppResult {
        score: bytes_moved as f64 / us, // bytes/µs == MB/s
        unit: "MB/s",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::SysKind;

    #[test]
    fn produces_throughput_and_files() {
        let bed = TestBed::build(SysKind::NL, 1);
        let r = run(&bed, 2);
        assert!(r.score > 1.0, "throughput {} MB/s too low", r.score);
        // Half the files survive.
        let sess = bed.session(0);
        assert!(sess.stat("db_0_7.dat").is_ok());
        assert!(sess.stat("db_0_0.dat").is_err());
    }

    #[test]
    fn domu_write_behind_beats_dom0() {
        // The Fig. 3 anomaly: X-U ≥ X-0 on dbench.
        let dom0 = run(&TestBed::build(SysKind::X0, 1), 2).score;
        let domu = run(&TestBed::build(SysKind::XU, 1), 2).score;
        assert!(
            domu > dom0,
            "split write-behind must win: domU {domu} vs dom0 {dom0} MB/s"
        );
    }
}
