//! An OSDB-IR-style database workload: PostgreSQL's information
//! retrieval test reduced to its kernel-facing behaviour — a resident
//! table file queried by random index lookups, each mixing small reads,
//! seeks, modest user-space compute, and result writes.

use crate::apps::AppResult;
use crate::configs::TestBed;
use nimbus::kernel::ReadOutcome;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simx86::costs::cycles_to_us;

/// Table size in 4 KiB blocks.
const TABLE_BLOCKS: u64 = 256;
/// Queries per scale unit.
const QUERIES_PER_SCALE: u32 = 40;
/// User-space compute per tuple (predicate evaluation, sort step).
const TUPLE_COMPUTE_CYCLES: u64 = 2_500;

/// Run the IR mix; returns queries/second of simulated time.
pub fn run(bed: &TestBed, scale: u32) -> AppResult {
    let sess = bed.session(0);
    sess.exec("postgres").expect("exec postgres");

    // Load phase: build the table (not timed, like OSDB's populate).
    let fd = sess.open("osdb_table.dat", true).expect("create table");
    let block = vec![0x5au8; 4096];
    for _ in 0..TABLE_BLOCKS {
        sess.write(fd, &block).expect("populate");
    }
    let results_fd = sess.open("osdb_results.dat", true).expect("results");
    // The populate phase ends with a sync (as OSDB's vacuum does), so
    // the timed query mix starts from a clean cache.
    sess.sync().expect("post-load sync");

    let mut rng = StdRng::seed_from_u64(0x05db);
    let queries = QUERIES_PER_SCALE * scale;
    let t0 = sess.cpu().cycles();
    for q in 0..queries {
        // Index lookup: a few random 4 KiB block reads.
        for _ in 0..4 {
            let blk = rng.gen_range(0..TABLE_BLOCKS);
            sess.lseek(fd, blk * 4096).expect("seek");
            match sess.read(fd, 4096).expect("read") {
                ReadOutcome::Data(d) => assert_eq!(d.len(), 4096),
                other => panic!("{other:?}"),
            }
            // Evaluate tuples in user space.
            sess.compute(TUPLE_COMPUTE_CYCLES);
        }
        // Sort/aggregate and emit the result row.
        sess.compute(TUPLE_COMPUTE_CYCLES * 2);
        let row = format!("result {q}\n");
        sess.lseek(results_fd, (q as u64) * 32)
            .expect("seek results");
        sess.write(results_fd, row.as_bytes())
            .expect("result write");
    }
    let us = cycles_to_us(sess.cpu().cycles() - t0);
    AppResult {
        score: queries as f64 / (us / 1e6),
        unit: "queries/s",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::SysKind;

    #[test]
    fn runs_and_reports_queries_per_second() {
        let bed = TestBed::build(SysKind::NL, 1);
        let r = run(&bed, 1);
        assert!(r.score > 100.0, "{} queries/s implausible", r.score);
        assert_eq!(r.unit, "queries/s");
    }

    #[test]
    fn virtualization_costs_more_than_a_tenth() {
        // Fig. 3: OSDB-IR loses >20 % under Xen.
        let native = run(&TestBed::build(SysKind::NL, 1), 1).score;
        let virt = run(&TestBed::build(SysKind::X0, 1), 1).score;
        assert!(
            virt < native,
            "virtual {virt} must be below native {native}"
        );
    }
}
