//! Network benchmarks: ping (round-trip latency) and an Iperf-style
//! bandwidth stream, against the echo peer on the simulated LAN.

use crate::apps::AppResult;
use crate::configs::TestBed;
use nimbus::kernel::RecvOutcome;
use simx86::costs::cycles_to_us;

/// Ping payload (56 data bytes like the ICMP default).
const PING_BYTES: usize = 56;
/// Iperf datagram payload.
const STREAM_BYTES: usize = 1400;
/// One-way wire latency charged per traversal (switch + cable on the
/// 100 Mb LAN).
const WIRE_ONE_WAY: u64 = 9_000; // 3 µs

/// Pings per scale unit.
const PINGS_PER_SCALE: u32 = 30;
/// Datagrams per scale unit for the stream.
const DGRAMS_PER_SCALE: u32 = 60;

/// ping: round-trip latency.  Score is 1000/RTTµs (so higher is
/// better, like every Fig. 3 bar).
pub fn run_ping(bed: &TestBed, scale: u32) -> AppResult {
    let sess = bed.session(0);
    let fd = sess.socket(9000).expect("socket");
    let payload = vec![0x11u8; PING_BYTES];
    let n = PINGS_PER_SCALE * scale;
    // Warm one round.
    sess.sendto(fd, 9001, &payload).expect("send");
    sess.cpu().tick(2 * WIRE_ONE_WAY);
    let _ = sess.recvfrom(fd).expect("recv");

    let t0 = sess.cpu().cycles();
    for _ in 0..n {
        sess.sendto(fd, 9001, &payload).expect("send");
        sess.cpu().tick(2 * WIRE_ONE_WAY);
        match sess.recvfrom(fd).expect("recv") {
            RecvOutcome::Datagram(_, d) => assert_eq!(d.len(), PING_BYTES),
            RecvOutcome::Blocked => panic!("echo reply lost"),
        }
    }
    let rtt_us = cycles_to_us(sess.cpu().cycles() - t0) / n as f64;
    // Release the port: benchmark harnesses run this repeatedly.
    sess.close(fd).expect("close");
    AppResult {
        score: 1000.0 / rtt_us,
        unit: "1/ms RTT",
    }
}

/// Iperf: stream datagrams as fast as the stack allows; bandwidth in
/// MB/s.  Latency (wire propagation) is pipelined away, so only
/// per-packet processing costs count — exactly why the split path's
/// copies and grant operations show up so strongly here (Fig. 3 shows
/// domU down ~70 %).
pub fn run_iperf(bed: &TestBed, scale: u32) -> AppResult {
    let sess = bed.session(0);
    let fd = sess.socket(9100).expect("socket");
    let payload = vec![0x22u8; STREAM_BYTES];
    let n = DGRAMS_PER_SCALE * scale;

    let t0 = sess.cpu().cycles();
    let mut sent_bytes = 0u64;
    for i in 0..n {
        sess.sendto(fd, 9101, &payload).expect("send");
        sent_bytes += STREAM_BYTES as u64;
        // Periodically drain the echo backlog (ack clocking).
        if i % 8 == 7 {
            while let Ok(Some(_)) = sess.recvfrom_nonblock(fd) {}
        }
    }
    // Wire latency is pipelined away in a stream; only per-packet
    // processing bounds throughput.
    let us = cycles_to_us(sess.cpu().cycles() - t0);
    sess.close(fd).expect("close");
    AppResult {
        score: sent_bytes as f64 / us,
        unit: "MB/s",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::SysKind;

    #[test]
    fn ping_rtt_in_lan_regime() {
        let bed = TestBed::build(SysKind::NL, 1);
        let r = run_ping(&bed, 1);
        let rtt_us = 1000.0 / r.score;
        // A 100 Mb LAN round trip: tens of microseconds.
        assert!(
            (5.0..200.0).contains(&rtt_us),
            "RTT {rtt_us} µs out of band"
        );
    }

    #[test]
    fn split_io_hurts_network_more_than_dom0() {
        // Fig. 3 shape: X-0 moderately slower, X-U much slower.
        let native = run_iperf(&TestBed::build(SysKind::NL, 1), 1).score;
        let dom0 = run_iperf(&TestBed::build(SysKind::X0, 1), 1).score;
        let domu = run_iperf(&TestBed::build(SysKind::XU, 1), 1).score;
        assert!(dom0 < native, "dom0 {dom0} vs native {native}");
        assert!(domu < dom0, "domU {domu} must be below dom0 {dom0}");
    }

    #[test]
    fn iperf_reports_bandwidth() {
        let bed = TestBed::build(SysKind::NL, 1);
        let r = run_iperf(&bed, 1);
        assert!(r.score > 1.0, "{} MB/s", r.score);
    }
}
