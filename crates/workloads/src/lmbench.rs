//! lmbench-style OS microbenchmarks — the nine rows of Tables 1 and 2.
//!
//! Each benchmark reproduces the kernel-facing behaviour of its lmbench
//! 3.0 counterpart:
//!
//! * `fork`/`exec`/`sh proc` — `lat_proc`: fork (+exec) a process with a
//!   realistic dirtied working set, child exits, parent reaps.
//! * `ctx (N p / K k)` — `lat_ctx`: N processes in a pipe ring passing a
//!   token, each touching K KiB between passes.
//! * `mmap` — `lat_mmap`: map a file, touch every page, unmap.
//! * `prot fault` — `lat_sig prot`: write to a write-protected page.
//! * `page fault` — fault pages of a fresh mapping.
//!
//! Latencies are *simulated* microseconds, measured with the cycle
//! counter like the paper does (RDTSC, §7.4).

use crate::configs::TestBed;
use nimbus::kernel::{MmapBacking, ReadOutcome, WriteOutcome};
use nimbus::mm::Prot;
use nimbus::{Pid, Session};
use simx86::costs::cycles_to_us;
use simx86::paging::{VirtAddr, PAGE_SIZE};

/// Pages of heap `lat_proc` dirties before forking (the fork cost is
/// dominated by duplicating this working set, as with the real 2.6-era
/// lmbench process).
pub const PROC_WORKING_SET_PAGES: u64 = 380;

/// Pages of the `lat_mmap` file.
pub const MMAP_PAGES: u64 = 2000;

/// One system's latencies in microseconds (a Table 1/2 column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmbenchResults {
    /// `fork proc`.
    pub fork: f64,
    /// `exec proc`.
    pub exec: f64,
    /// `sh proc`.
    pub sh: f64,
    /// Context switch, 2 processes, no working set.
    pub ctx_2p_0k: f64,
    /// Context switch, 16 processes, 16 KiB each.
    pub ctx_16p_16k: f64,
    /// Context switch, 16 processes, 64 KiB each.
    pub ctx_16p_64k: f64,
    /// `mmap` latency.
    pub mmap: f64,
    /// Protection fault.
    pub prot_fault: f64,
    /// Page fault.
    pub page_fault: f64,
}

impl LmbenchResults {
    /// Row (label, value) pairs in the paper's order.
    pub fn rows(&self) -> [(&'static str, f64); 9] {
        [
            ("Fork Process", self.fork),
            ("Exec Process", self.exec),
            ("Sh Process", self.sh),
            ("Ctx (2p/0k)", self.ctx_2p_0k),
            ("Ctx (16p/16k)", self.ctx_16p_16k),
            ("Ctx (16p/64k)", self.ctx_16p_64k),
            ("Mmap LT", self.mmap),
            ("Prot Fault", self.prot_fault),
            ("Page Fault", self.page_fault),
        ]
    }
}

fn now_us(sess: &Session) -> f64 {
    cycles_to_us(sess.cpu().cycles())
}

/// Dirty a working set so fork has PTEs to duplicate.
fn dirty_working_set(sess: &Session, pages: u64) -> VirtAddr {
    let va = sess
        .mmap(pages, Prot::RW, MmapBacking::Anon)
        .expect("mmap working set");
    for p in 0..pages {
        sess.poke(VirtAddr(va.0 + p * PAGE_SIZE), p).expect("touch");
    }
    va
}

/// Drive one fork+exit+wait iteration; optionally exec `prog` in the
/// child first.
fn fork_child_roundtrip(sess: &Session, exec_prog: Option<&str>) {
    let parent = sess.current_pid().expect("a current process");
    let _child = sess.fork().expect("fork");
    // Parent waits; the child becomes current.
    let reaped = sess.waitpid().expect("wait");
    assert!(reaped.is_none(), "child has not exited yet");
    if let Some(prog) = exec_prog {
        sess.exec(prog).expect("exec");
    }
    sess.exit(0).expect("exit");
    // Parent is current again; reap.
    assert_eq!(sess.current_pid(), Some(parent));
    let reaped = sess.waitpid().expect("wait");
    assert!(reaped.is_some(), "zombie child must be reapable");
}

/// `lat_proc fork`.
pub fn lat_fork(bed: &TestBed, iters: u32) -> f64 {
    let sess = bed.session(0);
    sess.exec("lat_proc").expect("exec lat_proc");
    dirty_working_set(&sess, PROC_WORKING_SET_PAGES);
    // Warm up one iteration (first fork allocates tables).
    fork_child_roundtrip(&sess, None);
    let t0 = now_us(&sess);
    for _ in 0..iters {
        fork_child_roundtrip(&sess, None);
    }
    (now_us(&sess) - t0) / iters as f64
}

/// `lat_proc exec`.
pub fn lat_exec(bed: &TestBed, iters: u32) -> f64 {
    let sess = bed.session(0);
    sess.exec("lat_proc").expect("exec lat_proc");
    dirty_working_set(&sess, PROC_WORKING_SET_PAGES);
    fork_child_roundtrip(&sess, Some("hello"));
    let t0 = now_us(&sess);
    for _ in 0..iters {
        fork_child_roundtrip(&sess, Some("hello"));
    }
    (now_us(&sess) - t0) / iters as f64
}

/// `lat_proc shell`: fork + exec sh, which itself forks + execs the
/// program.
pub fn lat_sh(bed: &TestBed, iters: u32) -> f64 {
    let sess = bed.session(0);
    sess.exec("lat_proc").expect("exec lat_proc");
    dirty_working_set(&sess, PROC_WORKING_SET_PAGES);

    let one = |sess: &Session| {
        let parent = sess.current_pid().unwrap();
        sess.fork().expect("fork");
        assert!(sess.waitpid().unwrap().is_none());
        // Child: becomes the shell.
        sess.exec("sh").expect("exec sh");
        sess.compute(simx86::costs::SH_PARSE);
        // The shell forks and execs the command.
        sess.fork().expect("sh fork");
        assert!(sess.waitpid().unwrap().is_none());
        sess.exec("hello").expect("exec cmd");
        sess.exit(0).expect("cmd exit");
        // Shell reaps and exits.
        assert!(sess.waitpid().unwrap().is_some());
        sess.exit(0).expect("sh exit");
        assert_eq!(sess.current_pid(), Some(parent));
        assert!(sess.waitpid().unwrap().is_some());
    };
    one(&sess);
    let t0 = now_us(&sess);
    for _ in 0..iters {
        one(&sess);
    }
    (now_us(&sess) - t0) / iters as f64
}

/// `lat_ctx`: `nprocs` processes in a pipe ring, each touching
/// `kbytes` KiB per pass.  Returns microseconds per context switch.
pub fn lat_ctx(bed: &TestBed, nprocs: usize, kbytes: u64, passes: u32) -> f64 {
    assert!(nprocs >= 2);
    let sess = bed.session(0);

    // Ring of pipes; process i reads pipe i, writes pipe (i+1) % n.
    let pipes: Vec<(usize, usize)> = (0..nprocs).map(|_| sess.pipe().expect("pipe")).collect();
    // Working buffers (one per process is modelled by per-process COW
    // copies of one region).
    let buf = if kbytes > 0 {
        Some(dirty_working_set(&sess, kbytes.div_ceil(4)))
    } else {
        None
    };

    // Fork the ring members; each child's role is its ring index.
    let root = sess.current_pid().expect("current");
    let mut members: Vec<Pid> = vec![root];
    for _ in 1..nprocs {
        members.push(sess.fork().expect("fork ring member"));
    }
    let role_of = |pid: Pid| members.iter().position(|&m| m == pid);

    // Inject the token, then run the ring until `passes` full rotations
    // complete.  The driver always acts for whichever process is
    // current, exactly as the kernel schedules them.
    let total_hops = passes as u64 * nprocs as u64;
    let mut hops = 0u64;
    sess.write(pipes[1 % nprocs].1, b"T").expect("inject token");
    let t0 = now_us(&sess);
    let mut guard = 0u64;
    while hops < total_hops {
        guard += 1;
        assert!(guard < total_hops * 64, "ring failed to make progress");
        let cur = match sess.current_pid() {
            Some(p) => p,
            None => {
                sess.idle().expect("idle");
                continue;
            }
        };
        let Some(role) = role_of(cur) else {
            // A leftover process from an earlier benchmark got
            // scheduled: it just yields.
            sess.sched_yield().expect("yield foreign");
            continue;
        };
        match sess.read(pipes[role].0, 1).expect("ring read") {
            ReadOutcome::Data(d) if !d.is_empty() => {
                if let Some(buf) = buf {
                    sess.touch_range(buf, kbytes * 1024, false).expect("touch");
                }
                hops += 1;
                let next = (role + 1) % nprocs;
                match sess.write(pipes[next].1, b"T").expect("ring write") {
                    WriteOutcome::Wrote(_) => {}
                    WriteOutcome::Blocked => {}
                }
                // Hand the CPU over (the reader was woken).
                sess.sched_yield().expect("yield");
            }
            _ => { /* blocked: scheduler moved to another member */ }
        }
    }
    let per_switch = (now_us(&sess) - t0) / total_hops as f64;

    // Teardown: retire the ring children so later benchmarks see a
    // clean process table.
    let mut reaped = 0;
    let mut guard = 0;
    while reaped < nprocs - 1 {
        guard += 1;
        assert!(guard < nprocs * 64, "ring teardown stuck");
        let cur = match sess.current_pid() {
            Some(p) => p,
            None => {
                sess.idle().expect("idle");
                continue;
            }
        };
        if cur == root {
            if sess.waitpid().expect("reap ring").is_some() {
                reaped += 1;
            }
        } else if members.contains(&cur) {
            sess.exit(0).expect("ring member exit");
        } else {
            sess.sched_yield().expect("yield foreign");
        }
    }
    per_switch
}

/// `lat_mmap`: map a file, touch every page, unmap.
pub fn lat_mmap(bed: &TestBed, iters: u32) -> f64 {
    let sess = bed.session(0);
    // Build the file once.
    let fd = sess.open("lat_mmap.dat", true).expect("create");
    let chunk = vec![7u8; 4096];
    for _ in 0..MMAP_PAGES {
        sess.write(fd, &chunk).expect("fill");
    }
    let ino = sess.stat("lat_mmap.dat").expect("stat").ino;

    let one = |sess: &Session| {
        let va = sess
            .mmap(MMAP_PAGES, Prot::RO, MmapBacking::File { ino, offset: 0 })
            .expect("mmap");
        for p in 0..MMAP_PAGES {
            sess.touch(VirtAddr(va.0 + p * PAGE_SIZE), false)
                .expect("touch");
        }
        sess.munmap(va, MMAP_PAGES).expect("munmap");
    };
    one(&sess); // warm the buffer cache
    let t0 = now_us(&sess);
    for _ in 0..iters {
        one(&sess);
    }
    (now_us(&sess) - t0) / iters as f64
}

/// Protection-fault latency: write to a write-protected page, handle
/// the signal.
pub fn lat_prot_fault(bed: &TestBed, iters: u32) -> f64 {
    let sess = bed.session(0);
    let va = sess.mmap(1, Prot::RW, MmapBacking::Anon).expect("mmap");
    sess.poke(va, 1).expect("populate");
    sess.mprotect(va, 1, Prot::RO).expect("protect");
    // Warm.
    assert!(sess.touch(va, true).is_err());
    sess.clear_signal();
    let t0 = now_us(&sess);
    for _ in 0..iters {
        let _ = sess.touch(va, true);
        sess.clear_signal();
    }
    let result = (now_us(&sess) - t0) / iters as f64;
    // Clean up so harnesses can call this repeatedly.
    sess.munmap(va, 1).expect("munmap");
    result
}

/// Page-fault latency: demand-fault fresh pages.
pub fn lat_page_fault(bed: &TestBed, pages: u32) -> f64 {
    let sess = bed.session(0);
    let va = sess
        .mmap(pages as u64, Prot::RW, MmapBacking::Anon)
        .expect("mmap");
    let t0 = now_us(&sess);
    for p in 0..pages as u64 {
        sess.touch(VirtAddr(va.0 + p * PAGE_SIZE), true)
            .expect("fault");
    }
    let result = (now_us(&sess) - t0) / pages as f64;
    sess.munmap(va, pages as u64).expect("munmap");
    result
}

/// Iteration counts for a full run (kept modest: the simulation runs
/// hundreds of kernel operations per iteration).
#[derive(Debug, Clone, Copy)]
pub struct LmbenchIters {
    /// fork/exec/sh iterations.
    pub procs: u32,
    /// Context-switch passes.
    pub ctx_passes: u32,
    /// mmap iterations.
    pub mmap: u32,
    /// Fault iterations.
    pub faults: u32,
}

impl Default for LmbenchIters {
    fn default() -> Self {
        LmbenchIters {
            procs: 10,
            ctx_passes: 20,
            mmap: 4,
            faults: 200,
        }
    }
}

/// Run all nine rows on one system.
pub fn run_lmbench(bed: &TestBed, iters: LmbenchIters) -> LmbenchResults {
    LmbenchResults {
        fork: lat_fork(bed, iters.procs),
        exec: lat_exec(bed, iters.procs),
        sh: lat_sh(bed, iters.procs),
        ctx_2p_0k: lat_ctx(bed, 2, 0, iters.ctx_passes),
        ctx_16p_16k: lat_ctx(bed, 16, 16, iters.ctx_passes.min(8)),
        ctx_16p_64k: lat_ctx(bed, 16, 64, iters.ctx_passes.min(8)),
        mmap: lat_mmap(bed, iters.mmap),
        prot_fault: lat_prot_fault(bed, iters.faults),
        page_fault: lat_page_fault(bed, iters.faults),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::SysKind;

    #[test]
    fn fork_latency_is_in_the_papers_regime() {
        let bed = TestBed::build(SysKind::NL, 1);
        let us = lat_fork(&bed, 3);
        // Table 1 N-L: 98 µs.  Accept a generous band.
        assert!((40.0..250.0).contains(&us), "native fork {us} µs");
    }

    #[test]
    fn virtual_fork_is_several_times_native() {
        let native = lat_fork(&TestBed::build(SysKind::NL, 1), 3);
        let virt = lat_fork(&TestBed::build(SysKind::X0, 1), 3);
        let ratio = virt / native;
        // Table 1: 482/98 ≈ 4.9.
        assert!(ratio > 2.5, "fork ratio {ratio} too small");
    }

    #[test]
    fn ctx_switch_ring_works_and_scales_with_working_set() {
        let bed = TestBed::build(SysKind::NL, 1);
        let c0 = lat_ctx(&bed, 2, 0, 10);
        let c64 = lat_ctx(&bed, 2, 64, 10);
        assert!(c0 > 0.2, "ctx(2p/0k) {c0} µs implausibly small");
        assert!(
            c64 > c0 * 2.0,
            "64k working set must dominate: {c0} vs {c64}"
        );
    }

    #[test]
    fn fault_latencies_ordered() {
        let bed = TestBed::build(SysKind::NL, 1);
        let prot = lat_prot_fault(&bed, 50);
        let page = lat_page_fault(&bed, 50);
        // Page faults allocate+zero; protection faults do not.
        assert!(page > prot, "page {page} vs prot {prot}");
        assert!(prot > 0.2 && prot < 5.0);
    }

    #[test]
    fn mmap_measures_per_iteration_work() {
        let bed = TestBed::build(SysKind::NL, 1);
        let us = lat_mmap(&bed, 2);
        assert!(us > 100.0, "mmap of {MMAP_PAGES} pages can't take {us} µs");
    }
}
