//! Assembling and rendering paper-style tables and figures.

use crate::apps::{run_app, APP_NAMES};
use crate::configs::{SysKind, TestBed, ALL_SYSTEMS};
use crate::lmbench::{run_lmbench, LmbenchIters, LmbenchResults};
use serde::Serialize;
use std::collections::BTreeMap;

/// A full Table 1 / Table 2: lmbench latencies for all six systems.
#[derive(Debug, Clone, Serialize)]
pub struct LmbenchTable {
    /// 1 = UP (Table 1), 2 = SMP (Table 2).
    pub cpus: usize,
    /// Column label → row label → µs.
    pub columns: BTreeMap<String, BTreeMap<String, f64>>,
}

/// A full Fig. 3 / Fig. 4: relative application performance.
#[derive(Debug, Clone, Serialize)]
pub struct AppFigure {
    /// 1 = UP (Fig. 3), 2 = SMP (Fig. 4).
    pub cpus: usize,
    /// Benchmark → system label → performance relative to N-L.
    pub series: BTreeMap<String, BTreeMap<String, f64>>,
    /// Benchmark → system label → absolute score.
    pub absolute: BTreeMap<String, BTreeMap<String, f64>>,
    /// Benchmark → unit of the absolute score.
    pub units: BTreeMap<String, String>,
}

/// Run lmbench on every system (Tables 1/2).
pub fn lmbench_table(cpus: usize, iters: LmbenchIters) -> LmbenchTable {
    let mut columns = BTreeMap::new();
    for kind in ALL_SYSTEMS {
        let bed = TestBed::build(kind, cpus);
        let r = run_lmbench(&bed, iters);
        let rows: BTreeMap<String, f64> =
            r.rows().iter().map(|(k, v)| (k.to_string(), *v)).collect();
        columns.insert(kind.label().to_string(), rows);
    }
    LmbenchTable { cpus, columns }
}

/// Run one system's lmbench column (finer-grained entry point for the
/// criterion benches).
pub fn lmbench_column(kind: SysKind, cpus: usize, iters: LmbenchIters) -> LmbenchResults {
    let bed = TestBed::build(kind, cpus);
    run_lmbench(&bed, iters)
}

/// Run the five application benchmarks on every system (Figs. 3/4).
pub fn app_figure(cpus: usize, scale: u32) -> AppFigure {
    let mut absolute: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    let mut units = BTreeMap::new();
    for name in APP_NAMES {
        let mut per_sys = BTreeMap::new();
        for kind in ALL_SYSTEMS {
            let bed = TestBed::build(kind, cpus);
            let r = run_app(name, &bed, scale);
            per_sys.insert(kind.label().to_string(), r.score);
            units.insert(name.to_string(), r.unit.to_string());
        }
        absolute.insert(name.to_string(), per_sys);
    }
    let mut series = BTreeMap::new();
    for (name, per_sys) in &absolute {
        let base = per_sys["N-L"];
        series.insert(
            name.clone(),
            per_sys.iter().map(|(k, v)| (k.clone(), v / base)).collect(),
        );
    }
    AppFigure {
        cpus,
        series,
        absolute,
        units,
    }
}

/// Row order for the rendered lmbench table.
pub const LMBENCH_ROWS: [&str; 9] = [
    "Fork Process",
    "Exec Process",
    "Sh Process",
    "Ctx (2p/0k)",
    "Ctx (16p/16k)",
    "Ctx (16p/64k)",
    "Mmap LT",
    "Prot Fault",
    "Page Fault",
];

/// Column order (the paper's).
pub const COLUMNS: [&str; 6] = ["N-L", "M-N", "X-0", "M-V", "X-U", "M-U"];

impl LmbenchTable {
    /// Render like the paper's Table 1/2 (times in µs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let which = if self.cpus == 1 { "1" } else { "2" };
        let mode = if self.cpus == 1 {
            "Uniprocessor"
        } else {
            "SMP"
        };
        out.push_str(&format!(
            "Table {which}. Lmbench Latency Results in {mode} Mode (Time in µs)\n\n"
        ));
        out.push_str(&format!("{:<16}", "Config."));
        for c in COLUMNS {
            out.push_str(&format!("{c:>10}"));
        }
        out.push('\n');
        for row in LMBENCH_ROWS {
            out.push_str(&format!("{row:<16}"));
            for c in COLUMNS {
                let v = self.columns[c][row];
                if v >= 100.0 {
                    out.push_str(&format!("{v:>10.0}"));
                } else {
                    out.push_str(&format!("{v:>10.2}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

impl AppFigure {
    /// Render like the paper's Fig. 3/4 (relative performance, N-L = 1).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let which = if self.cpus == 1 { "3" } else { "4" };
        let mode = if self.cpus == 1 {
            "uniprocessor"
        } else {
            "SMP"
        };
        out.push_str(&format!(
            "Fig. {which}. Relative performance of Mercury against Linux and Xen-Linux in {mode} mode\n\n"
        ));
        out.push_str(&format!("{:<16}", "Benchmark"));
        for c in COLUMNS {
            out.push_str(&format!("{c:>8}"));
        }
        out.push_str("   (absolute N-L)\n");
        for name in APP_NAMES {
            out.push_str(&format!("{name:<16}"));
            for c in COLUMNS {
                out.push_str(&format!("{:>8.2}", self.series[name][c]));
            }
            out.push_str(&format!(
                "   ({:.1} {})\n",
                self.absolute[name]["N-L"], self.units[name]
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lmbench_table_renders_all_cells() {
        // Smallest iterations: this is a smoke test of plumbing, the
        // real numbers come from the bench binaries.
        let iters = LmbenchIters {
            procs: 1,
            ctx_passes: 2,
            mmap: 1,
            faults: 10,
        };
        let t = lmbench_table(1, iters);
        let rendered = t.render();
        for c in COLUMNS {
            assert!(rendered.contains(c));
        }
        for r in LMBENCH_ROWS {
            assert!(rendered.contains(r));
        }
        // Basic shape: M-V fork ≫ M-N fork.
        assert!(t.columns["M-V"]["Fork Process"] > t.columns["M-N"]["Fork Process"] * 2.0);
    }
}
