//! Building the six measured system configurations.

use mercury::{Mercury, SwitchOutcome, TrackingStrategy};
use nimbus::drivers::blkback::BlkBackend;
use nimbus::drivers::block::{FrontendBlockDriver, NativeBlockDriver};
use nimbus::drivers::net::{FrontendNetDriver, NativeNetDriver};
use nimbus::drivers::netback::NetBackend;
use nimbus::kernel::{BootMode, KernelConfig};
use nimbus::{Kernel, Session};
use simx86::devices::EchoWire;
use simx86::{Machine, MachineConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use xenon::{Domain, Hypervisor};

/// The six measured systems (§7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SysKind {
    /// Native Linux.
    NL,
    /// Mercury-Linux, native mode.
    MN,
    /// Xen-Linux domain0.
    X0,
    /// Mercury-Linux, virtual mode.
    MV,
    /// Xen-Linux domainU.
    XU,
    /// Unmodified guest hosted by the self-virtualized OS.
    MU,
}

/// All six, in the paper's column order.
pub const ALL_SYSTEMS: [SysKind; 6] = [
    SysKind::NL,
    SysKind::MN,
    SysKind::X0,
    SysKind::MV,
    SysKind::XU,
    SysKind::MU,
];

impl SysKind {
    /// The paper's column label.
    pub fn label(&self) -> &'static str {
        match self {
            SysKind::NL => "N-L",
            SysKind::MN => "M-N",
            SysKind::X0 => "X-0",
            SysKind::MV => "M-V",
            SysKind::XU => "X-U",
            SysKind::MU => "M-U",
        }
    }

    /// Does this configuration use split (frontend/backend) I/O?
    pub fn split_io(&self) -> bool {
        matches!(self, SysKind::XU | SysKind::MU)
    }
}

/// Frames given to the measured kernel.  The paper gives each Linux
/// 900 000 KB and domainU 870 000 KB ("to even this unfairness");
/// scaled to our 64 MiB machines that is ~6.1k vs ~5.9k frames.
const POOL_FRAMES: usize = 6 * 1024;
const DOMU_POOL_FRAMES: usize = POOL_FRAMES - 208;
/// Driver-domain pool when hosting a domU.
const DRIVER_POOL_FRAMES: usize = 4 * 1024;

/// One booted system configuration.
pub struct TestBed {
    /// Which system this is.
    pub kind: SysKind,
    /// The machine.
    pub machine: Arc<Machine>,
    /// The *measured* kernel (domU's for X-U/M-U).
    pub kernel: Arc<Kernel>,
    /// The hypervisor, when one exists.
    pub hv: Option<Arc<Hypervisor>>,
    /// Mercury, for the M-* configurations.
    pub mercury: Option<Arc<Mercury>>,
    /// The driver-domain kernel, for split-I/O configurations.
    pub driver_kernel: Option<Arc<Kernel>>,
    /// The measured kernel's domain, when it is a guest.
    pub dom: Option<Arc<Domain>>,
}

fn machine(cpus: usize) -> Arc<Machine> {
    let m = Machine::new(MachineConfig {
        num_cpus: cpus,
        mem_frames: 16 * 1024,
        disk_sectors: 96 * 1024,
    });
    // Benchmarks that need a peer (ping/Iperf) get an echo host that
    // swaps the port header so replies land on the sender's socket.
    m.nic.connect(Arc::new(EchoWire::with_transform(
        Arc::clone(&m.nic),
        Arc::clone(&m.intc),
        |pkt| {
            let mut out = pkt.to_vec();
            if out.len() >= 4 {
                out.swap(0, 2);
                out.swap(1, 3);
            }
            out
        },
    )));
    m
}

fn boot_kernel(machine: &Arc<Machine>, pool_frames: usize, mode: BootMode) -> Arc<Kernel> {
    let cpu = machine.boot_cpu();
    let pool = machine
        .allocator
        .alloc_many(cpu, pool_frames)
        .expect("machine too small");
    Kernel::boot(
        Arc::clone(machine),
        KernelConfig {
            pool,
            mode,
            fs_blocks: 8 * 1024,
            fs_first_block: 1,
        },
    )
    .expect("kernel boot failed")
}

fn attach_native_drivers(machine: &Arc<Machine>, kernel: &Arc<Kernel>) {
    let cpu = machine.boot_cpu();
    let bounce = machine.allocator.alloc(cpu).expect("bounce frame");
    kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(machine), bounce));
    kernel.set_net_driver(NativeNetDriver::new(Arc::clone(machine)));
}

/// Boot a domU kernel with frontend drivers connected to backends in
/// `driver_kernel` (the driver domain).
fn host_domu(
    machine: &Arc<Machine>,
    hv: &Arc<Hypervisor>,
    driver_dom: &Arc<Domain>,
) -> (Arc<Kernel>, Arc<Domain>) {
    let cpu = machine.boot_cpu();
    let quota = machine
        .allocator
        .alloc_many(cpu, DOMU_POOL_FRAMES)
        .expect("machine too small for domU");
    let domu = hv
        .create_domain(cpu, "domU", quota.clone(), 0)
        .expect("domU creation failed");
    let kernel = Kernel::boot(
        Arc::clone(machine),
        KernelConfig {
            pool: quota,
            mode: BootMode::Guest {
                hv: Arc::clone(hv),
                dom: Arc::clone(&domu),
            },
            fs_blocks: 8 * 1024,
            fs_first_block: 1,
        },
    )
    .expect("domU kernel boot failed");

    // Split devices (§5.2): rings in shared VMM memory, payload frames
    // granted per request from the domU's own pool.
    let ring_frames = hv.take_reserved(2).expect("ring frames");
    for f in &ring_frames {
        machine.mem.zero_frame(cpu, *f).expect("zero ring");
    }
    let host_bounce = machine.allocator.alloc(cpu).expect("backend bounce");
    let blk_lower = NativeBlockDriver::new(Arc::clone(machine), host_bounce);
    let blk_back = BlkBackend::new(
        Arc::clone(hv),
        Arc::clone(driver_dom),
        domu.id,
        blk_lower,
        ring_frames[0],
    );
    let p = hv.evtchn_alloc(cpu, driver_dom).expect("evtchn");
    let pf = hv.evtchn_bind(cpu, &domu, driver_dom.id, p).expect("bind");
    // Use the domU's own free frames for payload buffers.
    let frames = domu.frames();
    let blk_buf = frames[frames.len() - 1];
    let net_buf = frames[frames.len() - 2];
    kernel.set_block_driver(FrontendBlockDriver::new(
        Arc::clone(hv),
        Arc::clone(&domu),
        blk_back,
        blk_buf,
        pf,
    ));

    let net_lower = NativeNetDriver::new(Arc::clone(machine));
    let net_back = NetBackend::new(
        Arc::clone(hv),
        Arc::clone(driver_dom),
        domu.id,
        net_lower,
        ring_frames[1],
    );
    let p = hv.evtchn_alloc(cpu, driver_dom).expect("evtchn");
    let pf = hv.evtchn_bind(cpu, &domu, driver_dom.id, p).expect("bind");
    kernel.set_net_driver(FrontendNetDriver::new(
        Arc::clone(hv),
        Arc::clone(&domu),
        net_back,
        net_buf,
        pf,
    ));

    // Reflection routes to the measured guest.
    for c in &machine.cpus {
        hv.set_current(c.id, Some(domu.id));
    }
    (kernel, domu)
}

/// Run a Mercury mode switch on a testbed machine, servicing peer CPUs
/// from temporary threads so the §5.4 rendezvous can complete.
pub fn switch_with_peers(
    machine: &Arc<Machine>,
    mercury: &Arc<Mercury>,
    to_virtual: bool,
) -> SwitchOutcome {
    let stop = Arc::new(AtomicBool::new(false));
    let helpers: Vec<_> = machine
        .cpus
        .iter()
        .skip(1)
        .map(|c| {
            let c = Arc::clone(c);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    c.tick(50);
                    c.service_pending();
                    std::thread::yield_now();
                }
            })
        })
        .collect();
    let cpu = machine.boot_cpu();
    let out = if to_virtual {
        mercury.switch_to_virtual(cpu)
    } else {
        mercury.switch_to_native(cpu)
    }
    .expect("testbed mode switch failed");
    stop.store(true, Ordering::Release);
    for h in helpers {
        h.join().unwrap();
    }
    out
}

impl TestBed {
    /// Build the system configuration with `cpus` processors (the paper
    /// tests UP = 1 and SMP = 2).
    pub fn build(kind: SysKind, cpus: usize) -> TestBed {
        let machine = machine(cpus);
        match kind {
            SysKind::NL => {
                let kernel = boot_kernel(&machine, POOL_FRAMES, BootMode::Bare);
                attach_native_drivers(&machine, &kernel);
                TestBed {
                    kind,
                    machine,
                    kernel,
                    hv: None,
                    mercury: None,
                    driver_kernel: None,
                    dom: None,
                }
            }
            SysKind::MN | SysKind::MV => {
                let hv = Hypervisor::warm_up(&machine);
                let kernel = boot_kernel(&machine, POOL_FRAMES, BootMode::Bare);
                attach_native_drivers(&machine, &kernel);
                let mercury = Mercury::install(
                    Arc::clone(&kernel),
                    Arc::clone(&hv),
                    TrackingStrategy::RecomputeOnSwitch,
                )
                .expect("mercury install failed");
                if kind == SysKind::MV {
                    switch_with_peers(&machine, &mercury, true);
                }
                TestBed {
                    kind,
                    machine,
                    kernel,
                    hv: Some(hv),
                    mercury: Some(mercury),
                    driver_kernel: None,
                    dom: None,
                }
            }
            SysKind::X0 => {
                let hv = Hypervisor::warm_up(&machine);
                hv.activate();
                let cpu = machine.boot_cpu();
                let quota = machine
                    .allocator
                    .alloc_many(cpu, POOL_FRAMES)
                    .expect("machine too small");
                let dom0 = hv
                    .create_domain(cpu, "dom0", quota.clone(), 0)
                    .expect("dom0 creation failed");
                let kernel = Kernel::boot(
                    Arc::clone(&machine),
                    KernelConfig {
                        pool: quota,
                        mode: BootMode::Guest {
                            hv: Arc::clone(&hv),
                            dom: Arc::clone(&dom0),
                        },
                        fs_blocks: 8 * 1024,
                        fs_first_block: 1,
                    },
                )
                .expect("dom0 kernel boot failed");
                attach_native_drivers(&machine, &kernel);
                TestBed {
                    kind,
                    machine,
                    kernel,
                    hv: Some(hv),
                    mercury: None,
                    driver_kernel: None,
                    dom: Some(dom0),
                }
            }
            SysKind::XU => {
                let hv = Hypervisor::warm_up(&machine);
                hv.activate();
                let cpu = machine.boot_cpu();
                let quota = machine
                    .allocator
                    .alloc_many(cpu, DRIVER_POOL_FRAMES)
                    .expect("machine too small");
                let dom0 = hv
                    .create_domain(cpu, "dom0", quota.clone(), 0)
                    .expect("dom0 creation failed");
                let driver_kernel = Kernel::boot(
                    Arc::clone(&machine),
                    KernelConfig {
                        pool: quota,
                        mode: BootMode::Guest {
                            hv: Arc::clone(&hv),
                            dom: Arc::clone(&dom0),
                        },
                        fs_blocks: 1024,
                        fs_first_block: 10_000, // dom0's own fs at the disk tail
                    },
                )
                .expect("dom0 kernel boot failed");
                attach_native_drivers(&machine, &driver_kernel);
                let (kernel, domu) = host_domu(&machine, &hv, &dom0);
                TestBed {
                    kind,
                    machine,
                    kernel,
                    hv: Some(hv),
                    mercury: None,
                    driver_kernel: Some(driver_kernel),
                    dom: Some(domu),
                }
            }
            SysKind::MU => {
                let hv = Hypervisor::warm_up(&machine);
                let host_kernel = boot_kernel(&machine, DRIVER_POOL_FRAMES, BootMode::Bare);
                attach_native_drivers(&machine, &host_kernel);
                let mercury = Mercury::install(
                    Arc::clone(&host_kernel),
                    Arc::clone(&hv),
                    TrackingStrategy::RecomputeOnSwitch,
                )
                .expect("mercury install failed");
                // Self-virtualize (partial-virtual mode) to host a guest.
                switch_with_peers(&machine, &mercury, true);
                let (kernel, domu) = host_domu(&machine, &hv, mercury.dom0());
                TestBed {
                    kind,
                    machine,
                    kernel,
                    hv: Some(hv),
                    mercury: Some(mercury),
                    driver_kernel: Some(host_kernel),
                    dom: Some(domu),
                }
            }
        }
    }

    /// An M-N testbed with an explicit frame-accounting strategy (the
    /// tracking-ablation and strategy-equivalence studies).
    pub fn build_mn_with_strategy(cpus: usize, strategy: TrackingStrategy) -> TestBed {
        let machine = machine(cpus);
        let hv = Hypervisor::warm_up(&machine);
        let kernel = boot_kernel(&machine, POOL_FRAMES, BootMode::Bare);
        attach_native_drivers(&machine, &kernel);
        let mercury = Mercury::install(Arc::clone(&kernel), Arc::clone(&hv), strategy)
            .expect("mercury install failed");
        TestBed {
            kind: SysKind::MN,
            machine,
            kernel,
            hv: Some(hv),
            mercury: Some(mercury),
            driver_kernel: None,
            dom: None,
        }
    }

    /// A session on the measured kernel, CPU `cpu_id`.
    pub fn session(&self, cpu_id: usize) -> Session {
        Session::new(Arc::clone(&self.kernel), cpu_id)
    }

    /// Label for reports.
    pub fn label(&self) -> &'static str {
        self.kind.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus::kernel::{MmapBacking, ReadOutcome, RecvOutcome};
    use nimbus::mm::Prot;
    use nimbus::paravirt::ExecMode;

    /// Every configuration must run the same smoke workload and produce
    /// identical observable results — the cross-system behaviour
    /// consistency on which all relative measurements rest (§4.3).
    fn smoke(bed: &TestBed) -> (u64, usize, Vec<u8>) {
        let sess = bed.session(0);
        let va = sess.mmap(2, Prot::RW, MmapBacking::Anon).unwrap();
        sess.poke(va, 42).unwrap();
        let child = sess.fork().unwrap();
        sess.poke(va, 43).unwrap();
        sess.sched_yield().unwrap();
        // In the child now: sees the pre-fork value.
        let child_view = sess.peek(va).unwrap();
        assert_eq!(sess.current_pid(), Some(child));
        let fd = sess.open("smoke.dat", true).unwrap();
        sess.write(fd, b"abcdef").unwrap();
        sess.lseek(fd, 2).unwrap();
        let data = match sess.read(fd, 3).unwrap() {
            ReadOutcome::Data(d) => d,
            other => panic!("{other:?}"),
        };
        let nfiles = sess.kernel().process_count();
        (child_view, nfiles, data)
    }

    #[test]
    fn all_six_systems_run_the_same_workload() {
        let mut results = Vec::new();
        for kind in ALL_SYSTEMS {
            let bed = TestBed::build(kind, 1);
            results.push((kind, smoke(&bed)));
        }
        let baseline = &results[0].1;
        for (kind, r) in &results {
            assert_eq!(r, baseline, "behaviour differs on {kind:?}");
        }
    }

    #[test]
    fn modes_are_as_expected() {
        assert_eq!(
            TestBed::build(SysKind::NL, 1).kernel.exec_mode(),
            ExecMode::Native
        );
        assert_eq!(
            TestBed::build(SysKind::MN, 1).kernel.exec_mode(),
            ExecMode::Native
        );
        let mv = TestBed::build(SysKind::MV, 1);
        assert_eq!(mv.kernel.exec_mode(), ExecMode::Virtual);
        assert!(mv.hv.as_ref().unwrap().is_active());
        let xu = TestBed::build(SysKind::XU, 1);
        assert_eq!(xu.kernel.exec_mode(), ExecMode::Virtual);
        assert!(xu
            .kernel
            .block_driver()
            .unwrap()
            .kind()
            .starts_with("frontend"));
        let mu = TestBed::build(SysKind::MU, 1);
        assert_eq!(mu.kernel.exec_mode(), ExecMode::Virtual);
        assert!(mu.mercury.is_some());
        assert_eq!(mu.hv.as_ref().unwrap().domains().len(), 2);
    }

    #[test]
    fn network_echo_works_on_split_io() {
        let bed = TestBed::build(SysKind::XU, 1);
        let sess = bed.session(0);
        let fd = sess.socket(4000).unwrap();
        sess.sendto(fd, 5000, b"probe").unwrap();
        match sess.recvfrom(fd).unwrap() {
            RecvOutcome::Datagram(src, data) => {
                assert_eq!(src, 5000);
                assert_eq!(data, b"probe");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn smp_beds_have_two_cpus() {
        let bed = TestBed::build(SysKind::MV, 2);
        assert_eq!(bed.machine.num_cpus(), 2);
        assert_eq!(bed.kernel.exec_mode(), ExecMode::Virtual);
    }
}
