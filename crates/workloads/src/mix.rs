//! Request cost mixes for the serving layer.
//!
//! The serving experiments (DESIGN.md §13, `serving_tail`) judge mode
//! switches by their effect on request tail latency, which only means
//! something relative to a defined per-request cost.  A [`RequestShape`]
//! is that definition: a bundle of user-mode compute plus kernel-visible
//! operations (file appends, file reads, datagram echoes) whose cost the
//! simulator charges on the simulated cycle clock — and whose kernel
//! portion gets *more expensive in virtual mode*, exactly like the
//! syscall rows of Tables 1–2.  A [`CostMix`] is a weighted set of
//! shapes, so one arrival stream can model a realistic blend of cheap
//! point reads and heavy scans.
//!
//! Shapes are pure data: the `servo` crate interprets them against a
//! live kernel session.  Everything here is deterministic — picking
//! from a mix consumes exactly one caller-supplied random draw.

/// The kernel-visible work one request performs, in execution order:
/// all compute first, then file appends, then file reads, then network
/// echoes.  Costs are charged by the simulator when the serving layer
/// replays the shape through a kernel session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestShape {
    /// Stable shape name (reports, trace labels).
    pub name: &'static str,
    /// Pure user-mode compute, in simulated cycles (mode-independent).
    pub compute_cycles: u64,
    /// Sequential appends of [`RequestShape::io_bytes`] each to the
    /// request's working file.
    pub file_appends: u32,
    /// Sequential reads of [`RequestShape::io_bytes`] each from the
    /// start of the working file.
    pub file_reads: u32,
    /// Payload size per file operation, in bytes.
    pub io_bytes: u32,
    /// Datagram echo round trips (send + blocking receive).
    pub net_echoes: u32,
}

/// One weighted entry of a [`CostMix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixEntry {
    /// The request shape.
    pub shape: RequestShape,
    /// Relative weight (share of arrivals drawing this shape).
    pub weight: u32,
}

/// A weighted blend of request shapes.
///
/// ```
/// use mercury_workloads::mix::CostMix;
///
/// let mix = CostMix::web();
/// // Picking is deterministic in the supplied draw.
/// assert_eq!(mix.pick(7), mix.pick(7));
/// assert!(mix.total_weight() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostMix {
    /// Mix name (reports).
    pub name: &'static str,
    /// Weighted entries; weights need not sum to anything particular.
    pub entries: Vec<MixEntry>,
}

impl CostMix {
    /// Interactive web serving: dominated by cheap point reads, with a
    /// thin tail of writes and template rendering.
    pub fn web() -> CostMix {
        CostMix {
            name: "web",
            entries: vec![
                MixEntry {
                    shape: RequestShape {
                        name: "point-get",
                        compute_cycles: 6_000,
                        file_appends: 0,
                        file_reads: 1,
                        io_bytes: 256,
                        net_echoes: 0,
                    },
                    weight: 80,
                },
                MixEntry {
                    shape: RequestShape {
                        name: "render",
                        compute_cycles: 24_000,
                        file_appends: 0,
                        file_reads: 2,
                        io_bytes: 512,
                        net_echoes: 0,
                    },
                    weight: 15,
                },
                MixEntry {
                    shape: RequestShape {
                        name: "post",
                        compute_cycles: 9_000,
                        file_appends: 2,
                        file_reads: 0,
                        io_bytes: 512,
                        net_echoes: 0,
                    },
                    weight: 5,
                },
            ],
        }
    }

    /// Transactional storefront: balanced reads and writes plus a
    /// fan-out call to a backing service (one datagram round trip).
    pub fn oltp() -> CostMix {
        CostMix {
            name: "oltp",
            entries: vec![
                MixEntry {
                    shape: RequestShape {
                        name: "lookup",
                        compute_cycles: 9_000,
                        file_appends: 0,
                        file_reads: 2,
                        io_bytes: 512,
                        net_echoes: 0,
                    },
                    weight: 55,
                },
                MixEntry {
                    shape: RequestShape {
                        name: "update",
                        compute_cycles: 12_000,
                        file_appends: 2,
                        file_reads: 1,
                        io_bytes: 512,
                        net_echoes: 0,
                    },
                    weight: 35,
                },
                MixEntry {
                    shape: RequestShape {
                        name: "fanout",
                        compute_cycles: 6_000,
                        file_appends: 0,
                        file_reads: 1,
                        io_bytes: 256,
                        net_echoes: 1,
                    },
                    weight: 10,
                },
            ],
        }
    }

    /// Analytics side-traffic: rare but heavy scans over the working
    /// file plus significant user-mode aggregation.
    pub fn analytics() -> CostMix {
        CostMix {
            name: "analytics",
            entries: vec![
                MixEntry {
                    shape: RequestShape {
                        name: "probe",
                        compute_cycles: 15_000,
                        file_appends: 0,
                        file_reads: 2,
                        io_bytes: 1_024,
                        net_echoes: 0,
                    },
                    weight: 70,
                },
                MixEntry {
                    shape: RequestShape {
                        name: "scan",
                        compute_cycles: 90_000,
                        file_appends: 0,
                        file_reads: 8,
                        io_bytes: 2_048,
                        net_echoes: 0,
                    },
                    weight: 30,
                },
            ],
        }
    }

    /// Sum of all entry weights (never zero for the built-in mixes).
    pub fn total_weight(&self) -> u64 {
        self.entries.iter().map(|e| e.weight as u64).sum()
    }

    /// Pick a shape by weight from one uniform random draw.  Uses the
    /// widening-multiply reduction so one `u64` draw maps to one pick:
    /// the caller's RNG stream advances by exactly one per request,
    /// which is what keeps same-seed serving runs bit-identical.
    pub fn pick(&self, draw: u64) -> &RequestShape {
        let total = self.total_weight();
        assert!(total > 0, "cost mix {} has no weight", self.name);
        let mut roll = ((draw as u128 * total as u128) >> 64) as u64;
        for e in &self.entries {
            if roll < e.weight as u64 {
                return &e.shape;
            }
            roll -= e.weight as u64;
        }
        &self.entries.last().expect("non-empty mix").shape
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_mixes_are_well_formed() {
        for mix in [CostMix::web(), CostMix::oltp(), CostMix::analytics()] {
            assert!(!mix.entries.is_empty());
            assert!(mix.total_weight() > 0);
            for e in &mix.entries {
                assert!(e.weight > 0, "{}: zero-weight entry", mix.name);
                let s = &e.shape;
                assert!(
                    s.compute_cycles > 0
                        || s.file_appends > 0
                        || s.file_reads > 0
                        || s.net_echoes > 0,
                    "{}: shape {} does nothing",
                    mix.name,
                    s.name
                );
            }
        }
    }

    #[test]
    fn pick_is_deterministic_and_covers_every_entry() {
        let mix = CostMix::oltp();
        let mut seen = std::collections::BTreeSet::new();
        // A coarse sweep across the draw space must hit every entry of
        // a 3-way mix and must be reproducible draw-for-draw.
        for i in 0..64u64 {
            let draw = i.wrapping_mul(0x2914_6935_55f1_d3a1);
            assert_eq!(mix.pick(draw).name, mix.pick(draw).name);
            seen.insert(mix.pick(draw).name);
        }
        assert_eq!(seen.len(), mix.entries.len());
    }

    #[test]
    fn extreme_draws_stay_in_bounds() {
        let mix = CostMix::web();
        // Draw 0 lands on the first entry, u64::MAX on the last.
        assert_eq!(mix.pick(0).name, mix.entries[0].shape.name);
        assert_eq!(
            mix.pick(u64::MAX).name,
            mix.entries.last().unwrap().shape.name
        );
    }
}
