//! # mercury-workloads — the paper's benchmarks on the paper's six
//! systems
//!
//! §7 of the paper measures six system configurations:
//!
//! | key | system |
//! |-----|--------|
//! | N-L | native Linux on bare hardware |
//! | M-N | Mercury-Linux in native mode (VO indirection, dormant VMM) |
//! | X-0 | Xen-Linux as domain0 on an always-on VMM |
//! | M-V | Mercury-Linux switched to virtual mode |
//! | X-U | Xen-Linux as domainU (split frontend I/O) |
//! | M-U | unmodified guest hosted by the self-virtualized OS |
//!
//! [`configs`] builds each as a [`configs::TestBed`]; [`lmbench`]
//! reproduces the nine lmbench latency rows of Tables 1–2; [`apps`]
//! reproduces the five application benchmarks of Figs. 3–4 (OSDB-IR,
//! dbench, kernel build, ping, Iperf); [`report`] renders paper-style
//! tables and figure series; [`mix`] defines the weighted request cost
//! mixes the serving layer (`crates/servo`, DESIGN.md §13) replays as
//! live traffic.

#![warn(missing_docs)]

pub mod apps;
pub mod configs;
pub mod lmbench;
pub mod mix;
pub mod report;

pub use configs::{SysKind, TestBed, ALL_SYSTEMS};
pub use lmbench::{run_lmbench, LmbenchResults};
pub use mix::{CostMix, MixEntry, RequestShape};
