//! Criterion harness over the Table 2 microbenchmarks (SMP).

use criterion::{criterion_group, criterion_main, Criterion};
use mercury_workloads::configs::{SysKind, TestBed};
use mercury_workloads::lmbench;

fn bench_lmbench_smp(c: &mut Criterion) {
    let mut g = c.benchmark_group("lmbench_smp");
    g.sample_size(10);
    for kind in [SysKind::NL, SysKind::X0] {
        let bed = TestBed::build(kind, 2);
        g.bench_function(format!("fork/{}", kind.label()), |b| {
            b.iter(|| lmbench::lat_fork(&bed, 2))
        });
        let bed = TestBed::build(kind, 2);
        g.bench_function(format!("prot_fault/{}", kind.label()), |b| {
            b.iter(|| lmbench::lat_prot_fault(&bed, 50))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lmbench_smp);
criterion_main!(benches);
