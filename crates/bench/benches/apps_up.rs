//! Criterion harness over the Fig. 3 application benchmarks (UP).

use criterion::{criterion_group, criterion_main, Criterion};
use mercury_workloads::apps::run_app;
use mercury_workloads::configs::{SysKind, TestBed};

fn bench_apps_up(c: &mut Criterion) {
    let mut g = c.benchmark_group("apps_up");
    g.sample_size(10);
    for kind in [SysKind::NL, SysKind::X0, SysKind::XU] {
        for app in ["dbench", "OSDB-IR", "ping"] {
            let bed = TestBed::build(kind, 1);
            g.bench_function(format!("{app}/{}", kind.label()), |b| {
                b.iter(|| run_app(app, &bed, 1))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_apps_up);
criterion_main!(benches);
