//! Criterion harness over the Fig. 4 application benchmarks (SMP).

use criterion::{criterion_group, criterion_main, Criterion};
use mercury_workloads::apps::run_app;
use mercury_workloads::configs::{SysKind, TestBed};

fn bench_apps_smp(c: &mut Criterion) {
    let mut g = c.benchmark_group("apps_smp");
    g.sample_size(10);
    for kind in [SysKind::NL, SysKind::X0] {
        for app in ["kernel build", "Iperf"] {
            let bed = TestBed::build(kind, 2);
            g.bench_function(format!("{app}/{}", kind.label()), |b| {
                b.iter(|| run_app(app, &bed, 1))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_apps_smp);
criterion_main!(benches);
