//! Criterion harness over the Table 1 microbenchmarks (uniprocessor).
//!
//! Criterion measures *host* time of the simulator; the simulated
//! microsecond results (the paper's numbers) are printed by
//! `cargo run -p mercury-bench --bin table1`.

use criterion::{criterion_group, criterion_main, Criterion};
use mercury_workloads::configs::{SysKind, TestBed};
use mercury_workloads::lmbench;

fn bench_lmbench_up(c: &mut Criterion) {
    let mut g = c.benchmark_group("lmbench_up");
    g.sample_size(10);

    for kind in [SysKind::NL, SysKind::MN, SysKind::X0] {
        let bed = TestBed::build(kind, 1);
        g.bench_function(format!("fork/{}", kind.label()), |b| {
            b.iter(|| lmbench::lat_fork(&bed, 2))
        });
        let bed = TestBed::build(kind, 1);
        g.bench_function(format!("ctx_2p_0k/{}", kind.label()), |b| {
            b.iter(|| lmbench::lat_ctx(&bed, 2, 0, 5))
        });
        let bed = TestBed::build(kind, 1);
        g.bench_function(format!("page_fault/{}", kind.label()), |b| {
            b.iter(|| lmbench::lat_page_fault(&bed, 50))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lmbench_up);
criterion_main!(benches);
