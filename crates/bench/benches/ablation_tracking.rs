//! Criterion harness over the §5.1.2 frame-accounting ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use mercury::{SwitchOutcome, TrackingStrategy};
use mercury_bench::build_mn_with_strategy;

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_tracking");
    g.sample_size(20);
    for strategy in [
        TrackingStrategy::RecomputeOnSwitch,
        TrackingStrategy::ActiveTracking,
        TrackingStrategy::DirtyRecompute,
    ] {
        let (bed, mercury) = build_mn_with_strategy(strategy);
        let cpu = bed.machine.boot_cpu();
        g.bench_function(format!("roundtrip/{strategy:?}"), |b| {
            b.iter(|| {
                assert!(matches!(
                    mercury.switch_to_virtual(cpu).unwrap(),
                    SwitchOutcome::Completed { .. }
                ));
                assert!(matches!(
                    mercury.switch_to_native(cpu).unwrap(),
                    SwitchOutcome::Completed { .. }
                ));
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
