//! Criterion harness over the §7.4 mode switch (host time of one full
//! attach/detach round trip; simulated times come from the
//! `mode_switch` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use mercury::{SwitchOutcome, TrackingStrategy};
use mercury_bench::build_mn_with_strategy;

fn bench_mode_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("mode_switch");
    g.sample_size(20);
    let (bed, mercury) = build_mn_with_strategy(TrackingStrategy::RecomputeOnSwitch);
    let cpu = bed.machine.boot_cpu();
    g.bench_function("attach_detach_roundtrip", |b| {
        b.iter(|| {
            let a = mercury.switch_to_virtual(cpu).unwrap();
            assert!(matches!(a, SwitchOutcome::Completed { .. }));
            let d = mercury.switch_to_native(cpu).unwrap();
            assert!(matches!(d, SwitchOutcome::Completed { .. }));
        })
    });
    g.finish();
}

criterion_group!(benches, bench_mode_switch);
criterion_main!(benches);
