//! Decompose §7.4's mode-switch cost into its §5.1 phases.
//!
//! Runs the same warmed uniprocessor M-N system as the `mode_switch`
//! binary, but with the merctrace probes armed around every switch, and
//! reports where the cycles of an attach and a detach actually go:
//! state transfer (page-table writability flips, selector fixups, frame
//! accounting), per-CPU hardware reload, and the VO pointer swap.
//!
//! Emits three artifacts next to `bench_results.json`:
//!
//! * a markdown per-phase table on stdout (pasted into EXPERIMENTS.md §7.3),
//! * `switch_timeline.json` — the same breakdown, machine-readable,
//! * `switch_timeline.trace.json` — a Chrome `trace_event` file of the
//!   last attach/detach pair (open in `about:tracing` / Perfetto).
//!
//! The sum of the phases is checked against the end-to-end switch cost:
//! the binary exits non-zero if they disagree by more than 1%, so the
//! decomposition cannot silently drift from the headline number.

use mercury::SwitchOutcome;
use mercury_workloads::configs::{SysKind, TestBed};
use simx86::costs::{cycles_to_us, CYCLES_PER_US};
use std::collections::BTreeMap;

const SAMPLES: u32 = 20;

/// Phase probes in timeline order, per direction.
const ATTACH_PHASES: &[&str] = &[
    "switch.transfer.flip_tables",
    "switch.transfer.fix_selectors",
    "switch.transfer.pginfo_recompute",
    "switch.transfer.trap_table",
    "switch.reload_cpu",
    "switch.vo_swap",
];
const DETACH_PHASES: &[&str] = &[
    "switch.transfer.pginfo_clear",
    "switch.transfer.flip_tables",
    "switch.transfer.fix_selectors",
    "switch.reload_cpu",
    "switch.vo_swap",
];

/// Accumulated per-phase cycles for one switch direction.
struct Breakdown {
    /// Direction label (`attach` / `detach`).
    label: &'static str,
    /// Phase probe names in timeline order.
    phases: &'static [&'static str],
    /// Total cycles per phase across all samples.
    cycles: BTreeMap<&'static str, u64>,
    /// Total end-to-end cycles ([`SwitchOutcome::Completed`]).
    total: u64,
    /// Samples taken.
    samples: u32,
}

impl Breakdown {
    fn new(label: &'static str, phases: &'static [&'static str]) -> Breakdown {
        Breakdown {
            label,
            phases,
            cycles: BTreeMap::new(),
            total: 0,
            samples: 0,
        }
    }

    fn add(&mut self, snap: &merctrace::Snapshot, end_to_end: u64) {
        let spans = snap.span_cycles();
        for (name, cy) in spans {
            if self.phases.contains(&name) {
                *self.cycles.entry(name).or_insert(0) += cy;
            }
        }
        self.total += end_to_end;
        self.samples += 1;
    }

    fn phase_mean_us(&self, phase: &str) -> f64 {
        cycles_to_us(*self.cycles.get(phase).unwrap_or(&0)) / self.samples as f64
    }

    fn sum_us(&self) -> f64 {
        self.phases.iter().map(|p| self.phase_mean_us(p)).sum()
    }

    fn total_us(&self) -> f64 {
        cycles_to_us(self.total) / self.samples as f64
    }

    fn markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "| phase ({}) | mean µs | share |\n|---|---:|---:|\n",
            self.label
        ));
        let total = self.total_us();
        for p in self.phases {
            let us = self.phase_mean_us(p);
            out.push_str(&format!(
                "| `{}` | {:.2} | {:.1}% |\n",
                p,
                us,
                100.0 * us / total
            ));
        }
        out.push_str(&format!(
            "| **sum of phases** | **{:.2}** | {:.1}% |\n",
            self.sum_us(),
            100.0 * self.sum_us() / total
        ));
        out.push_str(&format!("| **end to end** | **{total:.2}** | 100.0% |\n"));
        out
    }

    fn json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  \"{}\": {{\n    \"samples\": {},\n    \"end_to_end_us\": {:.5},\n    \"phase_sum_us\": {:.5},\n    \"phases_us\": {{\n",
            self.label,
            self.samples,
            self.total_us(),
            self.sum_us()
        ));
        let rows: Vec<String> = self
            .phases
            .iter()
            .map(|p| format!("      \"{}\": {:.5}", p, self.phase_mean_us(p)))
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n    }\n  }");
        out
    }
}

fn main() {
    assert!(
        merctrace::ENABLED,
        "switch_timeline needs the merctrace probes compiled in"
    );
    merctrace::init(merctrace::DEFAULT_RING_CAPACITY);

    // Same warmed system as `mode_switch`: one CPU, real processes and
    // page tables so the transfer functions have work to do.
    let bed = TestBed::build(SysKind::MN, 1);
    let mercury = bed.mercury.as_ref().expect("M-N testbed has mercury");
    let cpu = bed.machine.boot_cpu();
    let sess = nimbus::Session::new(std::sync::Arc::clone(mercury.kernel()), 0);
    sess.exec("lat_proc").expect("exec");
    let va = sess
        .mmap(128, nimbus::mm::Prot::RW, nimbus::kernel::MmapBacking::Anon)
        .expect("mmap");
    for p in 0..128u64 {
        sess.poke(simx86::VirtAddr(va.0 + p * 4096), p)
            .expect("touch");
    }

    let mut attach = Breakdown::new("attach", ATTACH_PHASES);
    let mut detach = Breakdown::new("detach", DETACH_PHASES);
    let mut last_traces = (String::new(), String::new());
    for _ in 0..SAMPLES {
        merctrace::reset();
        merctrace::arm();
        let SwitchOutcome::Completed { cycles } = mercury.switch_to_virtual(cpu).expect("attach")
        else {
            panic!("attach did not complete")
        };
        merctrace::disarm();
        let snap = merctrace::snapshot();
        assert_eq!(snap.total_dropped(), 0, "trace ring overflowed");
        attach.add(&snap, cycles);
        last_traces.0 = merctrace::export::chrome_trace(&snap, CYCLES_PER_US);

        merctrace::reset();
        merctrace::arm();
        let SwitchOutcome::Completed { cycles } = mercury.switch_to_native(cpu).expect("detach")
        else {
            panic!("detach did not complete")
        };
        merctrace::disarm();
        let snap = merctrace::snapshot();
        assert_eq!(snap.total_dropped(), 0, "trace ring overflowed");
        detach.add(&snap, cycles);
        last_traces.1 = merctrace::export::chrome_trace(&snap, CYCLES_PER_US);
    }

    println!("Mode-switch timeline (strategy: recompute-on-switch, {SAMPLES} samples)\n");
    println!("{}", attach.markdown());
    println!("{}", detach.markdown());

    let json = format!(
        "{{\n{},\n{}\n}}\n",
        attach.json(),
        detach.json()
    );
    std::fs::write("switch_timeline.json", &json).expect("write switch_timeline.json");
    // Keep the last attach's trace (the detach trace is a strict subset
    // of phases; merge both into one file, attach first).
    let trace = format!(
        "{{\"attach\":{},\"detach\":{}}}\n",
        last_traces.0, last_traces.1
    );
    std::fs::write("switch_timeline.trace.json", trace).expect("write switch_timeline.trace.json");
    eprintln!("wrote switch_timeline.json, switch_timeline.trace.json");

    // The decomposition must account for the headline number: phases sum
    // within 1% of the end-to-end cost (§7.4 / bench_results.json).
    let mut ok = true;
    for b in [&attach, &detach] {
        let gap = (b.sum_us() - b.total_us()).abs() / b.total_us();
        if gap > 0.01 {
            eprintln!(
                "FAIL: {} phases sum to {:.2} µs but end-to-end is {:.2} µs ({:.2}% apart)",
                b.label,
                b.sum_us(),
                b.total_us(),
                100.0 * gap
            );
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
