//! Decompose §7.4's mode-switch cost into its §5.1 phases.
//!
//! Runs the same warmed uniprocessor M-N systems as the `mode_switch`
//! binary, but with the merctrace probes armed around every switch, and
//! reports where the cycles of an attach and a detach actually go:
//! state transfer (page-table writability flips, selector fixups, frame
//! accounting), per-CPU hardware reload, and the VO pointer swap.
//!
//! Four legs, one per path of interest:
//!
//! * **attach / detach** — the default ([`TrackingStrategy::DirtyRecompute`])
//!   path: boot pre-cache + O(dirty) revalidation on attach, snapshot
//!   retention (O(tables) release) on detach.  This is the headline
//!   decomposition benchgate budgets against.
//! * **attach_full / detach_full** — the paper's original
//!   recompute-on-switch path, kept as the §7.4 anchor (the ~0.22 ms /
//!   ~0.06 ms numbers).
//! * **attach_lazy / detach_lazy** — [`TrackingStrategy::LazyValidate`]
//!   with a fork-and-exit churn before every attach, so each sample has
//!   both kernel-critical dirty frames (validated synchronously) and
//!   deferrable ones (enqueued in `lazy_admit` for first-touch
//!   validation).
//! * **live_update** — the hv-to-hv update path (DESIGN.md §16): the
//!   kernel stays virtual while a pre-cached successor hypervisor
//!   handshakes, rebuilds its frame accounting cold, and commits.
//!
//! Emits three artifacts next to `bench_results.json`:
//!
//! * a markdown per-phase table on stdout (pasted into EXPERIMENTS.md §7.3),
//! * `switch_timeline.json` — the same breakdown, machine-readable,
//! * `switch_timeline.trace.json` — a Chrome `trace_event` file of the
//!   default leg's last attach/detach pair (open in `about:tracing` /
//!   Perfetto).
//!
//! The sum of the phases is checked against the end-to-end switch cost
//! for every leg: the binary exits non-zero if they disagree by more
//! than 1%, so the decomposition cannot silently drift from the
//! headline number.  (`lazy_admit` is nested inside
//! `pginfo_recompute`, so its cycles appear in both rows; at ≤ 1 cycle
//! per deferred frame the double count stays far inside the 1% band.)

use mercury::{SwitchOutcome, TrackingStrategy};
use mercury_workloads::configs::{SysKind, TestBed};
use simx86::costs::{cycles_to_us, CYCLES_PER_US};
use std::collections::BTreeMap;

const SAMPLES: u32 = 20;

/// Phase probes in timeline order, for the dirty-baseline attach.
const ATTACH_PHASES: &[&str] = &[
    "switch.transfer.flip_tables",
    "switch.transfer.fix_selectors",
    "switch.transfer.pginfo_recompute",
    "switch.transfer.lazy_admit",
    "switch.transfer.trap_table",
    "switch.reload_cpu",
    "switch.vo_swap",
];
/// Phase probes for the legacy full-recompute attach.
const ATTACH_PHASES_FULL: &[&str] = &[
    "switch.transfer.flip_tables",
    "switch.transfer.fix_selectors",
    "switch.transfer.pginfo_full",
    "switch.transfer.trap_table",
    "switch.reload_cpu",
    "switch.vo_swap",
];
/// Phase probes for the dirty-baseline detach (snapshot retained).
const DETACH_PHASES: &[&str] = &[
    "switch.transfer.pginfo_retain",
    "switch.transfer.flip_tables",
    "switch.transfer.fix_selectors",
    "switch.reload_cpu",
    "switch.vo_swap",
];
/// Phase probes for the legacy detach (wholesale accounting wipe).
const DETACH_PHASES_FULL: &[&str] = &[
    "switch.transfer.pginfo_clear",
    "switch.transfer.flip_tables",
    "switch.transfer.fix_selectors",
    "switch.reload_cpu",
    "switch.vo_swap",
];
/// Phase probes for the hypervisor live-update (hv-to-hv, DESIGN.md
/// §16): handshake, cold successor rebuild, commit, per-CPU reload.
const UPDATE_PHASES: &[&str] = &[
    "switch.liveupdate.handshake",
    "switch.liveupdate.transfer",
    "switch.vo_swap",
    "switch.reload_cpu",
];

/// Accumulated per-phase cycles for one switch direction.
struct Breakdown {
    /// Leg label (`attach`, `detach_full`, `attach_lazy`, …).
    label: &'static str,
    /// Phase probe names in timeline order.
    phases: &'static [&'static str],
    /// Total cycles per phase across all samples.
    cycles: BTreeMap<&'static str, u64>,
    /// Total end-to-end cycles ([`SwitchOutcome::Completed`]).
    total: u64,
    /// Samples taken.
    samples: u32,
}

impl Breakdown {
    fn new(label: &'static str, phases: &'static [&'static str]) -> Breakdown {
        Breakdown {
            label,
            phases,
            cycles: BTreeMap::new(),
            total: 0,
            samples: 0,
        }
    }

    fn add(&mut self, snap: &merctrace::Snapshot, end_to_end: u64) {
        let spans = snap.span_cycles();
        for (name, cy) in spans {
            if self.phases.contains(&name) {
                *self.cycles.entry(name).or_insert(0) += cy;
            }
        }
        self.total += end_to_end;
        self.samples += 1;
    }

    fn phase_mean_us(&self, phase: &str) -> f64 {
        cycles_to_us(*self.cycles.get(phase).unwrap_or(&0)) / self.samples as f64
    }

    fn sum_us(&self) -> f64 {
        self.phases.iter().map(|p| self.phase_mean_us(p)).sum()
    }

    fn total_us(&self) -> f64 {
        cycles_to_us(self.total) / self.samples as f64
    }

    fn markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "| phase ({}) | mean µs | share |\n|---|---:|---:|\n",
            self.label
        ));
        let total = self.total_us();
        for p in self.phases {
            let us = self.phase_mean_us(p);
            out.push_str(&format!(
                "| `{}` | {:.2} | {:.1}% |\n",
                p,
                us,
                100.0 * us / total
            ));
        }
        out.push_str(&format!(
            "| **sum of phases** | **{:.2}** | {:.1}% |\n",
            self.sum_us(),
            100.0 * self.sum_us() / total
        ));
        out.push_str(&format!("| **end to end** | **{total:.2}** | 100.0% |\n"));
        out
    }

    fn json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  \"{}\": {{\n    \"samples\": {},\n    \"end_to_end_us\": {:.5},\n    \"phase_sum_us\": {:.5},\n    \"phases_us\": {{\n",
            self.label,
            self.samples,
            self.total_us(),
            self.sum_us()
        ));
        let rows: Vec<String> = self
            .phases
            .iter()
            .map(|p| format!("      \"{}\": {:.5}", p, self.phase_mean_us(p)))
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n    }\n  }");
        out
    }
}

/// Warm a bed the way `mode_switch` does: a real process and a 128-page
/// dirty mapping, so the transfer functions have work to do.
fn warm(bed: &TestBed) -> nimbus::Session {
    let sess = bed.session(0);
    sess.exec("lat_proc").expect("exec");
    let va = sess
        .mmap(128, nimbus::mm::Prot::RW, nimbus::kernel::MmapBacking::Anon)
        .expect("mmap");
    for p in 0..128u64 {
        sess.poke(simx86::VirtAddr(va.0 + p * 4096), p)
            .expect("touch");
    }
    sess
}

/// Dirty some *deferrable* frames: a short-lived child maps and touches
/// pages, then exits.  Its table frames go back to the pool dirty but
/// no longer kernel-critical — exactly the population `LazyValidate`
/// defers to first-touch validation — while the fork's COW flips dirty
/// the parent's (live, critical) tables.
fn churn(sess: &nimbus::Session) {
    let child = sess.fork().expect("fork");
    assert!(
        sess.waitpid().expect("waitpid").is_none(),
        "child should still be running"
    );
    let va = sess
        .mmap(32, nimbus::mm::Prot::RW, nimbus::kernel::MmapBacking::Anon)
        .expect("mmap");
    for p in 0..32u64 {
        sess.poke(simx86::VirtAddr(va.0 + p * 4096), p)
            .expect("touch");
    }
    sess.exit(0).expect("exit");
    assert_eq!(
        sess.waitpid().expect("waitpid").expect("child exited").0,
        child,
        "reaped the churn child"
    );
}

/// Run one attach/detach leg: `SAMPLES` round trips on `bed`, phases
/// split per `attach_phases`/`detach_phases`, with `before_attach` run
/// (untraced) ahead of every attach.  Returns the two breakdowns plus
/// the last pair of Chrome traces.
fn run_leg(
    bed: &TestBed,
    labels: (&'static str, &'static str),
    attach_phases: &'static [&'static str],
    detach_phases: &'static [&'static str],
    mut before_attach: impl FnMut(),
) -> (Breakdown, Breakdown, (String, String)) {
    let mercury = bed.mercury.as_ref().expect("M-N testbed has mercury");
    let cpu = bed.machine.boot_cpu();
    let mut attach = Breakdown::new(labels.0, attach_phases);
    let mut detach = Breakdown::new(labels.1, detach_phases);
    let mut last_traces = (String::new(), String::new());
    for _ in 0..SAMPLES {
        before_attach();
        merctrace::reset();
        merctrace::arm();
        let SwitchOutcome::Completed { cycles } = mercury.switch_to_virtual(cpu).expect("attach")
        else {
            panic!("attach did not complete")
        };
        merctrace::disarm();
        let snap = merctrace::snapshot();
        assert_eq!(snap.total_dropped(), 0, "trace ring overflowed");
        attach.add(&snap, cycles);
        last_traces.0 = merctrace::export::chrome_trace(&snap, CYCLES_PER_US);

        merctrace::reset();
        merctrace::arm();
        let SwitchOutcome::Completed { cycles } = mercury.switch_to_native(cpu).expect("detach")
        else {
            panic!("detach did not complete")
        };
        merctrace::disarm();
        let snap = merctrace::snapshot();
        assert_eq!(snap.total_dropped(), 0, "trace ring overflowed");
        detach.add(&snap, cycles);
        last_traces.1 = merctrace::export::chrome_trace(&snap, CYCLES_PER_US);
    }
    (attach, detach, last_traces)
}

/// Run the live-update leg: attach once (untraced), then `SAMPLES`
/// hv-to-hv updates (v1→v2→…), each staged untraced and measured end
/// to end.  The kernel never leaves virtual mode, so this decomposes
/// the one cost a live-update adds on top of staying attached.
fn run_update_leg(bed: &TestBed) -> (Breakdown, String) {
    let mercury = bed.mercury.as_ref().expect("M-N testbed has mercury");
    let cpu = bed.machine.boot_cpu();
    assert!(matches!(
        mercury.switch_to_virtual(cpu).expect("attach"),
        SwitchOutcome::Completed { .. }
    ));
    let mut update = Breakdown::new("live_update", UPDATE_PHASES);
    let mut last_trace = String::new();
    for i in 0..SAMPLES {
        let next = xenon::Hypervisor::warm_up_versioned(&bed.machine, i + 2);
        mercury.stage_update(next).expect("stage update");
        merctrace::reset();
        merctrace::arm();
        let SwitchOutcome::Completed { cycles } = mercury.live_update(cpu).expect("live-update")
        else {
            panic!("live-update did not complete")
        };
        merctrace::disarm();
        let snap = merctrace::snapshot();
        assert_eq!(snap.total_dropped(), 0, "trace ring overflowed");
        update.add(&snap, cycles);
        last_trace = merctrace::export::chrome_trace(&snap, CYCLES_PER_US);
    }
    assert_eq!(mercury.hv_version(), SAMPLES + 1, "versions must march");
    (update, last_trace)
}

fn main() {
    assert!(
        merctrace::ENABLED,
        "switch_timeline needs the merctrace probes compiled in"
    );
    merctrace::init(merctrace::DEFAULT_RING_CAPACITY);

    // Headline leg: the default dirty-baseline strategy, warmed like
    // `mode_switch`.  Between round trips nothing runs, so samples past
    // the first decompose the steady O(dirty)+O(tables) switch.
    let bed = TestBed::build_mn_with_strategy(1, TrackingStrategy::default());
    let _sess = warm(&bed);
    let (attach, detach, traces) = run_leg(
        &bed,
        ("attach", "detach"),
        ATTACH_PHASES,
        DETACH_PHASES,
        || {},
    );

    // Anchor leg: the paper's full recompute (§7.4's ~0.22 ms / ~0.06 ms).
    let bed_full = TestBed::build(SysKind::MN, 1);
    let _sess_full = warm(&bed_full);
    let (attach_full, detach_full, _) = run_leg(
        &bed_full,
        ("attach_full", "detach_full"),
        ATTACH_PHASES_FULL,
        DETACH_PHASES_FULL,
        || {},
    );

    // Lazy leg: fault-driven admission with a churn before every attach
    // so each sample defers real frames through `lazy_admit`.
    let bed_lazy = TestBed::build_mn_with_strategy(1, TrackingStrategy::LazyValidate);
    let sess_lazy = bed_lazy.session(0);
    let (attach_lazy, detach_lazy, _) = run_leg(
        &bed_lazy,
        ("attach_lazy", "detach_lazy"),
        ATTACH_PHASES,
        DETACH_PHASES,
        || churn(&sess_lazy),
    );

    // Live-update leg: hv-to-hv on a warmed virtual-mode bed (§6 live
    // VMM update, DESIGN.md §16) — the kernel never detaches to native.
    let bed_update = TestBed::build_mn_with_strategy(1, TrackingStrategy::default());
    let _sess_update = warm(&bed_update);
    let (update, update_trace) = run_update_leg(&bed_update);

    println!("Mode-switch timeline ({SAMPLES} samples per leg)\n");
    println!("Default strategy (dirty-recompute, boot pre-cache):\n");
    println!("{}", attach.markdown());
    println!("{}", detach.markdown());
    println!("Legacy anchor (recompute-on-switch):\n");
    println!("{}", attach_full.markdown());
    println!("{}", detach_full.markdown());
    println!("Lazy fault-driven admission (lazy-validate, churned):\n");
    println!("{}", attach_lazy.markdown());
    println!("{}", detach_lazy.markdown());
    println!("Hypervisor live-update (hv-to-hv, kernel stays virtual):\n");
    println!("{}", update.markdown());

    let legs = [
        &attach,
        &detach,
        &attach_full,
        &detach_full,
        &attach_lazy,
        &detach_lazy,
        &update,
    ];
    let json = format!(
        "{{\n{}\n}}\n",
        legs.iter()
            .map(|b| b.json())
            .collect::<Vec<_>>()
            .join(",\n")
    );
    std::fs::write("switch_timeline.json", &json).expect("write switch_timeline.json");
    // Keep the default leg's last attach/detach pair plus the last
    // live-update as the Chrome trace (the other legs differ only in
    // the accounting phase).
    let trace = format!(
        "{{\"attach\":{},\"detach\":{},\"live_update\":{}}}\n",
        traces.0, traces.1, update_trace
    );
    std::fs::write("switch_timeline.trace.json", trace).expect("write switch_timeline.trace.json");
    eprintln!("wrote switch_timeline.json, switch_timeline.trace.json");

    // The decomposition must account for the headline number: phases sum
    // within 1% of the end-to-end cost (§7.4 / bench_results.json).
    let mut ok = true;
    for b in legs {
        let gap = (b.sum_us() - b.total_us()).abs() / b.total_us();
        if gap > 0.01 {
            eprintln!(
                "FAIL: {} phases sum to {:.2} µs but end-to-end is {:.2} µs ({:.2}% apart)",
                b.label,
                b.sum_us(),
                b.total_us(),
                100.0 * gap
            );
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
