//! Diagnostic probe for dbench's writeback behaviour (not a paper
//! experiment; kept for calibration reproducibility).

use mercury_workloads::apps::run_app;
use mercury_workloads::configs::{SysKind, TestBed};

fn main() {
    for kind in [SysKind::NL, SysKind::X0, SysKind::XU] {
        let bed = TestBed::build(kind, 1);
        let r = run_app("dbench", &bed, 2);
        let (h, m, w, d) = bed.kernel.cache_stats();
        println!(
            "{:>4}: {:8.1} MB/s   cache hits={h} misses={m} writebacks={w} dirty={d}",
            bed.label(),
            r.score
        );
    }
}
