//! Regenerate Fig. 3: relative application performance, uniprocessor.

use mercury_workloads::report::app_figure;

fn main() {
    let fig = app_figure(1, 2);
    println!("{}", fig.render());
}
