//! Regenerate Table 1: lmbench latencies in uniprocessor mode.

use mercury_workloads::lmbench::LmbenchIters;
use mercury_workloads::report::lmbench_table;

fn main() {
    let table = lmbench_table(1, LmbenchIters::default());
    println!("{}", table.render());
}
