//! Regenerate §7.4: mode switch times.
//!
//! Paper: "the average time is about 0.22 ms to do a switch from native
//! mode to virtual mode, and 0.06 ms to a switch back" (3 GHz Xeon).

use mercury::TrackingStrategy;
use mercury_bench::measure_switch_times;

fn main() {
    let t = measure_switch_times(TrackingStrategy::RecomputeOnSwitch, 20);
    println!("Mode switch time (strategy: recompute-on-switch, paper default)");
    println!(
        "  native -> virtual : {:>8.1} us   (paper: ~220 us)",
        t.attach_us
    );
    println!(
        "  virtual -> native : {:>8.1} us   (paper: ~60 us)",
        t.detach_us
    );
    println!("  samples           : {:>8}", t.samples);
}
