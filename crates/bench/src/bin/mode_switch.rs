//! Regenerate §7.4: mode switch times.
//!
//! Paper: "the average time is about 0.22 ms to do a switch from native
//! mode to virtual mode, and 0.06 ms to a switch back" (3 GHz Xeon).
//!
//! Also reports the two attach-cost optimizations layered on top of the
//! paper's numbers: incremental (dirty-frame) revalidation for warm
//! re-attaches, and the §5.4 sharded recompute where the rendezvoused
//! peer CPUs split the `page_info` walk with the control processor.

use mercury::TrackingStrategy;
use mercury_bench::{measure_sharded_recompute, measure_switch_times};

fn main() {
    let t = measure_switch_times(TrackingStrategy::RecomputeOnSwitch, 20);
    println!("Mode switch time (strategy: recompute-on-switch, paper default)");
    println!(
        "  native -> virtual : {:>8.1} us   (paper: ~220 us)",
        t.attach_us
    );
    println!(
        "  virtual -> native : {:>8.1} us   (paper: ~60 us)",
        t.detach_us
    );
    println!("  samples           : {:>8}", t.samples);

    let d = measure_switch_times(TrackingStrategy::DirtyRecompute, 20);
    println!("\nIncremental re-attach (strategy: dirty-recompute, the default)");
    println!(
        "  cold attach       : {:>8.1} us   (boot pre-cache: warm from the first attach)",
        d.cold_attach_us
    );
    println!(
        "  warm re-attach    : {:>8.1} us   ({:.1}x cheaper than recompute-on-switch)",
        d.warm_attach_us,
        t.attach_us / d.warm_attach_us
    );
    println!(
        "  virtual -> native : {:>8.1} us   (snapshot retained; O(tables) release)",
        d.detach_us
    );

    let s = measure_sharded_recompute(4, 10);
    println!("\nSharded attach-time recompute ({}-CPU rig, rendezvoused peers)", s.cpus);
    println!("  serial pginfo walk : {:>8.1} us", s.serial_pginfo_us);
    println!("  sharded (makespan) : {:>8.1} us", s.sharded_pginfo_us);
    println!("  speedup            : {:>8.2}x", s.speedup);

    // Machine-readable dump for the CI perf-regression gate
    // (`tools/benchgate.py` re-runs this binary and compares against
    // the archived copy within tolerance bands).
    let times = |t: &mercury_bench::SwitchTimes| {
        format!(
            concat!(
                "{{\"strategy\": \"{}\", \"attach_us\": {:.4}, \"cold_attach_us\": {:.4}, ",
                "\"warm_attach_us\": {:.4}, \"detach_us\": {:.4}, \"samples\": {}}}"
            ),
            t.strategy, t.attach_us, t.cold_attach_us, t.warm_attach_us, t.detach_us, t.samples
        )
    };
    let json = format!(
        concat!(
            "{{\n  \"recompute_on_switch\": {},\n  \"dirty_recompute\": {},\n",
            "  \"sharded_recompute\": {{\"cpus\": {}, \"serial_pginfo_us\": {:.4}, ",
            "\"sharded_pginfo_us\": {:.4}, \"speedup\": {:.4}, \"samples\": {}}}\n}}\n"
        ),
        times(&t),
        times(&d),
        s.cpus,
        s.serial_pginfo_us,
        s.sharded_pginfo_us,
        s.speedup,
        s.samples
    );
    std::fs::write("mode_switch.json", json).expect("write mode_switch.json");
    eprintln!("wrote mode_switch.json");
}
