//! §8 scalability probe: mode-switch time vs. processor count.
//!
//! The paper's second future-work item: "with the number of cores
//! per-chip increasing continuously, the performance scalability of
//! Mercury will be of great importance … a more loosely-coupled
//! synchronization protocol might be necessary when
//! detaching/attaching a VMM, instead of current protocols using IPI
//! and shared variables."  This experiment measures how the implemented
//! IPI + shared-count/flag rendezvous scales.

use mercury::{Mercury, SwitchOutcome, TrackingStrategy};
use mercury_workloads::configs::switch_with_peers;
use nimbus::drivers::block::NativeBlockDriver;
use nimbus::kernel::{BootMode, KernelConfig};
use nimbus::Kernel;
use simx86::costs::cycles_to_us;
use simx86::{Machine, MachineConfig};
use std::sync::Arc;
use xenon::Hypervisor;

fn bed(cpus: usize) -> (Arc<Machine>, Arc<Mercury>) {
    let machine = Machine::new(MachineConfig {
        num_cpus: cpus,
        mem_frames: 16 * 1024,
        disk_sectors: 64 * 1024,
    });
    let hv = Hypervisor::warm_up(&machine);
    let cpu = machine.boot_cpu();
    let pool = machine.allocator.alloc_many(cpu, 6 * 1024).unwrap();
    let kernel = Kernel::boot(
        Arc::clone(&machine),
        KernelConfig {
            pool,
            mode: BootMode::Bare,
            fs_blocks: 1024,
            fs_first_block: 1,
        },
    )
    .unwrap();
    let bounce = machine.allocator.alloc(cpu).unwrap();
    kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&machine), bounce));
    let mercury = Mercury::install(kernel, hv, TrackingStrategy::RecomputeOnSwitch).unwrap();
    (machine, mercury)
}

fn main() {
    println!("Mode-switch time vs processor count (IPI + shared-variable rendezvous, §5.4)\n");
    println!("{:>6} {:>14} {:>14}", "CPUs", "attach (us)", "detach (us)");
    for cpus in [1usize, 2, 4, 8] {
        let (machine, mercury) = bed(cpus);
        let samples = 5;
        let (mut at, mut dt) = (0u64, 0u64);
        for _ in 0..samples {
            let SwitchOutcome::Completed { cycles } = switch_with_peers(&machine, &mercury, true)
            else {
                panic!()
            };
            at += cycles;
            let SwitchOutcome::Completed { cycles } = switch_with_peers(&machine, &mercury, false)
            else {
                panic!()
            };
            dt += cycles;
        }
        println!(
            "{:>6} {:>14.1} {:>14.1}",
            cpus,
            cycles_to_us(at) / samples as f64,
            cycles_to_us(dt) / samples as f64
        );
    }
    println!("\nGrowth comes from the per-peer IPI sends and the serialized");
    println!("check-in count; the paper's suggested loosely-coupled protocol");
    println!("would amortize exactly these terms.");
}
