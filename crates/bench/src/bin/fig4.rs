//! Regenerate Fig. 4: relative application performance, SMP.

use mercury_workloads::report::app_figure;

fn main() {
    let fig = app_figure(2, 2);
    println!("{}", fig.render());
}
