//! §8 extension experiment: software (paravirtual) vs hardware-assisted
//! (VT-x/EPT style) self-virtualization.
//!
//! Not a paper table — the paper lists hardware assist as future work —
//! but it quantifies the paper's §8 predictions: the VMCS makes the
//! mode switch "much easier" (here: ~50× faster) and EPT removes the
//! frame-accounting recompute entirely, while device I/O pays VM exits.

use mercury::{AssistMode, Mercury, SwitchOutcome, TrackingStrategy};
use mercury_workloads::configs::{SysKind, TestBed};
use nimbus::drivers::block::NativeBlockDriver;
use nimbus::drivers::net::NativeNetDriver;
use nimbus::kernel::{BootMode, KernelConfig};
use nimbus::Kernel;
use simx86::costs::cycles_to_us;
use simx86::{Machine, MachineConfig};
use std::sync::Arc;
use xenon::Hypervisor;

fn hw_bed() -> (Arc<Machine>, Arc<Mercury>) {
    let machine = Machine::new(MachineConfig {
        num_cpus: 1,
        mem_frames: 16 * 1024,
        disk_sectors: 96 * 1024,
    });
    let hv = Hypervisor::warm_up(&machine);
    let cpu = machine.boot_cpu();
    let pool = machine.allocator.alloc_many(cpu, 6 * 1024).unwrap();
    let kernel = Kernel::boot(
        Arc::clone(&machine),
        KernelConfig {
            pool,
            mode: BootMode::Bare,
            fs_blocks: 8 * 1024,
            fs_first_block: 1,
        },
    )
    .unwrap();
    let bounce = machine.allocator.alloc(cpu).unwrap();
    kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&machine), bounce));
    kernel.set_net_driver(NativeNetDriver::new(Arc::clone(&machine)));
    let mercury = Mercury::install_with_assist(
        kernel,
        hv,
        TrackingStrategy::RecomputeOnSwitch,
        AssistMode::HardwareAssisted,
    )
    .unwrap();
    (machine, mercury)
}

fn roundtrip_us(machine: &Arc<Machine>, mercury: &Arc<Mercury>, samples: u32) -> (f64, f64) {
    let cpu = machine.boot_cpu();
    let (mut at, mut dt) = (0u64, 0u64);
    for _ in 0..samples {
        let SwitchOutcome::Completed { cycles } = mercury.switch_to_virtual(cpu).unwrap() else {
            panic!()
        };
        at += cycles;
        let SwitchOutcome::Completed { cycles } = mercury.switch_to_native(cpu).unwrap() else {
            panic!()
        };
        dt += cycles;
    }
    (
        cycles_to_us(at) / samples as f64,
        cycles_to_us(dt) / samples as f64,
    )
}

fn main() {
    println!("Section 8 extension: software vs hardware-assisted self-virtualization\n");

    let t_sw = mercury_bench::measure_switch_times(TrackingStrategy::RecomputeOnSwitch, 10);
    let (machine, hw) = hw_bed();
    let (hw_attach, hw_detach) = roundtrip_us(&machine, &hw, 10);
    println!("mode switch times:");
    println!(
        "  software (paper's design) : attach {:>8.1} us   detach {:>8.1} us",
        t_sw.attach_us, t_sw.detach_us
    );
    println!(
        "  hardware-assisted (VT-x)  : attach {:>8.1} us   detach {:>8.1} us",
        hw_attach, hw_detach
    );

    // Virtual-mode fork: paravirtual pays hypercalls; HVM+EPT is near
    // native.
    let native = mercury_workloads::lmbench::lat_fork(&TestBed::build(SysKind::NL, 1), 8);
    let pv = mercury_workloads::lmbench::lat_fork(&TestBed::build(SysKind::MV, 1), 8);
    let (machine, hw) = hw_bed();
    hw.switch_to_virtual(machine.boot_cpu()).unwrap();
    let bed = TestBed {
        kind: SysKind::MV,
        machine,
        kernel: Arc::clone(hw.kernel()),
        hv: None,
        mercury: Some(hw),
        driver_kernel: None,
        dom: None,
    };
    let hvm = mercury_workloads::lmbench::lat_fork(&bed, 8);
    println!("\nvirtual-mode fork latency:");
    println!("  native baseline           : {native:>8.1} us");
    println!(
        "  paravirtual (M-V)         : {pv:>8.1} us  ({:.1}x)",
        pv / native
    );
    println!(
        "  hardware-assisted (HVM)   : {hvm:>8.1} us  ({:.2}x)",
        hvm / native
    );
}
