//! Regenerate the §5.1.2 ablation: recompute-on-switch vs active
//! tracking vs dirty recompute.
//!
//! Paper: "the first approach [active tracking] will incur about 2%~3%
//! performance overhead and saves only a small amount of mode switch
//! time.  Hence, we preferably choose the latter \[recompute\]."
//!
//! The third column is this repo's middle ground: snapshot validation
//! at detach, mark frames dirty on native-mode PTE writes, revalidate
//! only the dirty frames on re-attach.  Cold attach pays the full walk;
//! warm re-attaches pay only for what actually changed.

use mercury::TrackingStrategy;
use mercury_bench::measure_switch_times;
use mercury_workloads::configs::{SysKind, TestBed};
use mercury_workloads::lmbench::lat_fork;

fn main() {
    println!("Frame-accounting strategy ablation (Section 5.1.2)\n");
    for strategy in [
        TrackingStrategy::RecomputeOnSwitch,
        TrackingStrategy::ActiveTracking,
        TrackingStrategy::DirtyRecompute,
    ] {
        let t = measure_switch_times(strategy, 10);
        println!("{:?}:", strategy);
        println!(
            "  attach: {:>8.1} us (cold {:>8.1} / warm {:>8.1})    detach: {:>8.1} us",
            t.attach_us, t.cold_attach_us, t.warm_attach_us, t.detach_us
        );
    }

    // Native-mode overhead: fork latency under each strategy vs N-L.
    // The paper measures "about 2%~3% performance overhead" for active
    // tracking in native mode; dirty tracking sits between the two
    // (one page_info mark per PTE write instead of full accounting).
    let nl = lat_fork(&TestBed::build(SysKind::NL, 1), 8);
    let mn = lat_fork(&TestBed::build(SysKind::MN, 1), 8);
    let (bed_track, _m) = mercury_bench::build_mn_with_strategy(TrackingStrategy::ActiveTracking);
    let mn_track = lat_fork(&bed_track, 8);
    let (bed_dirty, _m) = mercury_bench::build_mn_with_strategy(TrackingStrategy::DirtyRecompute);
    let mn_dirty = lat_fork(&bed_dirty, 8);
    println!("\nNative-mode fork latency:");
    println!("  N-L                    : {nl:>8.1} us");
    println!(
        "  M-N (recompute)        : {mn:>8.1} us  ({:+.1} % vs N-L)",
        (mn / nl - 1.0) * 100.0
    );
    println!(
        "  M-N (active tracking)  : {mn_track:>8.1} us  ({:+.1} % vs N-L; paper: +2~3 %)",
        (mn_track / nl - 1.0) * 100.0
    );
    println!(
        "  M-N (dirty recompute)  : {mn_dirty:>8.1} us  ({:+.1} % vs N-L)",
        (mn_dirty / nl - 1.0) * 100.0
    );
}
