//! Regenerate the §5.1.2 ablation: recompute-on-switch vs active
//! tracking.
//!
//! Paper: "the first approach [active tracking] will incur about 2%~3%
//! performance overhead and saves only a small amount of mode switch
//! time.  Hence, we preferably choose the latter \[recompute\]."

use mercury::TrackingStrategy;
use mercury_bench::measure_switch_times;
use mercury_workloads::configs::{SysKind, TestBed};
use mercury_workloads::lmbench::lat_fork;

fn main() {
    println!("Frame-accounting strategy ablation (Section 5.1.2)\n");
    for strategy in [
        TrackingStrategy::RecomputeOnSwitch,
        TrackingStrategy::ActiveTracking,
    ] {
        let t = measure_switch_times(strategy, 10);
        println!("{:?}:", strategy);
        println!(
            "  attach: {:>8.1} us    detach: {:>8.1} us",
            t.attach_us, t.detach_us
        );
    }

    // Native-mode overhead: fork latency under both strategies vs N-L.
    // The paper measures "about 2%~3% performance overhead" for active
    // tracking in native mode.
    let nl = lat_fork(&TestBed::build(SysKind::NL, 1), 8);
    let mn = lat_fork(&TestBed::build(SysKind::MN, 1), 8);
    let (bed_track, _m) = mercury_bench::build_mn_with_strategy(TrackingStrategy::ActiveTracking);
    let mn_track = lat_fork(&bed_track, 8);
    println!("\nNative-mode fork latency:");
    println!("  N-L                    : {nl:>8.1} us");
    println!(
        "  M-N (recompute)        : {mn:>8.1} us  ({:+.1} % vs N-L)",
        (mn / nl - 1.0) * 100.0
    );
    println!(
        "  M-N (active tracking)  : {mn_track:>8.1} us  ({:+.1} % vs N-L; paper: +2~3 %)",
        (mn_track / nl - 1.0) * 100.0
    );
}
