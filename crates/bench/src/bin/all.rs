//! Run every experiment and dump a JSON artifact for EXPERIMENTS.md.

use mercury::TrackingStrategy;
use mercury_bench::{measure_sharded_recompute, measure_switch_times};
use mercury_workloads::lmbench::LmbenchIters;
use mercury_workloads::report::{app_figure, lmbench_table};

fn main() {
    let t1 = lmbench_table(1, LmbenchIters::default());
    println!("{}", t1.render());
    let t2 = lmbench_table(2, LmbenchIters::default());
    println!("{}", t2.render());
    let f3 = app_figure(1, 2);
    println!("{}", f3.render());
    let f4 = app_figure(2, 2);
    println!("{}", f4.render());
    let sw = measure_switch_times(TrackingStrategy::RecomputeOnSwitch, 20);
    let sw_track = measure_switch_times(TrackingStrategy::ActiveTracking, 20);
    let sw_dirty = measure_switch_times(TrackingStrategy::DirtyRecompute, 20);
    let sharded = measure_sharded_recompute(4, 10);
    println!(
        "Mode switch (recompute):   attach {:.1} us / detach {:.1} us",
        sw.attach_us, sw.detach_us
    );
    println!(
        "Mode switch (tracking):    attach {:.1} us / detach {:.1} us",
        sw_track.attach_us, sw_track.detach_us
    );
    println!(
        "Mode switch (dirty):       cold attach {:.1} us / warm {:.1} us / detach {:.1} us",
        sw_dirty.cold_attach_us, sw_dirty.warm_attach_us, sw_dirty.detach_us
    );
    println!(
        "Sharded recompute ({} CPUs): serial {:.1} us / sharded {:.1} us ({:.2}x)",
        sharded.cpus, sharded.serial_pginfo_us, sharded.sharded_pginfo_us, sharded.speedup
    );

    let artifact = serde_json::json!({
        "table1": t1, "table2": t2, "fig3": f3, "fig4": f4,
        "mode_switch": {
            "recompute": sw,
            "active_tracking": sw_track,
            "dirty_recompute": sw_dirty,
            "sharded_recompute": sharded,
        },
    });
    std::fs::write(
        "bench_results.json",
        serde_json::to_string_pretty(&artifact).unwrap(),
    )
    .expect("write bench_results.json");
    eprintln!("\nwrote bench_results.json");
}
