//! Tail latency under self-virtualization (DESIGN.md §13, EXPERIMENTS.md
//! "Serving tail latency").
//!
//! The paper argues a mode switch is invisible to running applications
//! (§7.4: ~0.22 ms attach, ~0.06 ms detach).  This binary asks the
//! operator's version of that question: *what happens to request
//! p50/p99/p999 when the machine self-virtualizes under live load?*
//!
//! Scenarios (all on the simulated cycle clock, via `mercury-servo`):
//!
//! * **steady-native / steady-virtual** at 1, 2 and 4 CPUs — the two
//!   anchors, no switching;
//! * **switch-under-load** — a uniprocessor node attaching/detaching on
//!   a fixed cadence while open-loop traffic keeps arriving (arrivals do
//!   not pause for the switch; the pause shows up as queueing);
//! * **cluster-steady / cluster-switch** — two nodes behind the
//!   least-loaded balancer, with node 0 switching on cadence in the
//!   second variant;
//! * **fault-campaign-under-load** — seeded memory bit-flips injected
//!   beneath live traffic, detected by sweep reads, answered by the
//!   watchdog's reactive attach (and detach at window end).
//!
//! Every server donates its open-loop gaps to the node's background
//! scrubber (`NodeServer::donate_gaps_to_scrubber`): while the node is
//! native, worker idle time revalidates dirty frames so the attaches in
//! the switching scenarios pay only for what the gaps didn't reach.
//! The per-scenario `scrub_revalidated` field counts those frames.
//!
//! Determinism: the whole suite runs **twice in-process** and every
//! request record (arrival/start/finish cycles, shape, worker, outcome)
//! plus every switch counter must be bit-identical before anything is
//! archived.  Switch-during-load scenarios run on uniprocessor nodes
//! only: SMP rendezvous spin cycles depend on host thread timing, so
//! multi-CPU beds are measured steady-state (their one setup switch
//! lands before the traffic-start base the records are relative to).
//!
//! The two passes double as the **skip-neutrality gate** (DESIGN.md
//! §14.3): pass 1 runs with the event clock's fast-forward on, pass 2
//! with it off (quantum ticking), and the bit-identical comparison
//! proves the skip changed no accounting.  `--no-skip` forces both
//! passes to quantum-tick (debugging aid).  Both passes are wall-clock
//! timed; outside `--quick` the simulated-Mcycles-per-host-second
//! throughput and the skip speedup are merged into `sim_speed.json`
//! under the `"serving"` key, which `tools/benchgate.py --sim-speed`
//! gates against the archived copy.  `--campaign` raises the request
//! counts ~100x for the nightly campaigns the skip makes affordable
//! (EXPERIMENTS.md "Campaign scale").
//!
//! Emits `serving_results.json`: per-scenario tail stats (cycles and
//! µs), switch counts and cycles charged during the traffic window
//! (from `SwitchStats::total_{attach,detach}_cycles` deltas), and the
//! headline p99/p999 inflation ratios against the steady-native anchor.
//!
//! Exits non-zero if the suite was non-deterministic, any scenario lost
//! a request, a switching scenario failed to switch, or a fault went
//! unrecovered.

use faultgen::{FaultSpec, FaultTarget};
use mercury_cluster::{Cluster, Node, NodeConfig, Watchdog, WatchdogPolicy};
use mercury_servo::{
    generate, tail_stats, ClusterServer, LoadConfig, NodeServer, RequestRecord, ServerConfig,
    TailStats,
};
use mercury_workloads::configs::switch_with_peers;
use mercury_workloads::mix::CostMix;
use simx86::costs::cycles_to_us;
use simx86::PhysAddr;
use std::sync::Arc;

/// Toggle the VMM every this many cycles of stream time (1 ms: long
/// enough to amortize, short enough that a 4 000-request run sees tens
/// of switches).
const SWITCH_PERIOD: u64 = 3_000_000;

/// Inject one fault every this many cycles in the fault scenario.
const FAULT_PERIOD: u64 = 1_500_000;

/// Detach (end the watchdog's holding window) every this many cycles.
const WINDOW_PERIOD: u64 = 6_000_000;

/// Scenario sizing.
struct Sizing {
    steady_requests: u32,
    switch_requests: u32,
    cluster_requests: u32,
    fault_requests: u32,
    steady_cpus: &'static [usize],
}

impl Sizing {
    fn full() -> Sizing {
        Sizing {
            steady_requests: 4_000,
            switch_requests: 4_000,
            cluster_requests: 3_000,
            fault_requests: 2_500,
            steady_cpus: &[1, 2, 4],
        }
    }

    /// CI smoke: same scenario shape, a few times cheaper.
    fn quick() -> Sizing {
        Sizing {
            steady_requests: 800,
            switch_requests: 800,
            cluster_requests: 600,
            fault_requests: 500,
            steady_cpus: &[1, 2],
        }
    }

    /// Nightly campaign: ~100x the full sizing, affordable because idle
    /// stream time fast-forwards through the event clock.  Same
    /// scenario shapes and CPU ladder, so the tails are directly
    /// comparable to the full run (EXPERIMENTS.md "Campaign scale").
    fn campaign() -> Sizing {
        Sizing {
            steady_requests: 400_000,
            switch_requests: 400_000,
            cluster_requests: 300_000,
            fault_requests: 250_000,
            steady_cpus: &[1, 2, 4],
        }
    }
}

/// Switch-engine counters relevant to serving windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SwitchSnap {
    attaches: u64,
    detaches: u64,
    attach_cycles: u64,
    detach_cycles: u64,
    /// Frames the background scrubber revalidated out of open-loop
    /// serving gaps (native mode only) — each one shaved off the next
    /// attach's dirty set.
    scrubbed: u64,
}

fn snap(node: &Node) -> SwitchSnap {
    use std::sync::atomic::Ordering::Relaxed;
    let s = &node.mercury().stats;
    SwitchSnap {
        attaches: s.attaches.load(Relaxed),
        detaches: s.detaches.load(Relaxed),
        attach_cycles: s.total_attach_cycles.load(Relaxed),
        detach_cycles: s.total_detach_cycles.load(Relaxed),
        scrubbed: node.scrubber().revalidated(),
    }
}

fn delta(node: &Node, base: SwitchSnap) -> SwitchSnap {
    let s = snap(node);
    SwitchSnap {
        attaches: s.attaches - base.attaches,
        detaches: s.detaches - base.detaches,
        attach_cycles: s.attach_cycles - base.attach_cycles,
        detach_cycles: s.detach_cycles - base.detach_cycles,
        scrubbed: s.scrubbed - base.scrubbed,
    }
}

/// Everything one scenario produced.  `PartialEq` is the determinism
/// gate: two same-seed passes must compare equal, record for record.
#[derive(Clone, PartialEq)]
struct ScenarioRun {
    name: String,
    mode: &'static str,
    cpus: usize,
    nodes: usize,
    mix: &'static str,
    records: Vec<RequestRecord>,
    switches: SwitchSnap,
    faults_recovered: u64,
}

fn node_config(cpus: usize) -> NodeConfig {
    NodeConfig {
        num_cpus: cpus,
        ..NodeConfig::default()
    }
}

fn oltp_traffic(seed: u64, workers: usize, requests: u32) -> Vec<mercury_servo::Arrival> {
    generate(&LoadConfig {
        seed,
        // Fixed per-worker offered rate: ~0.1 ms between arrivals per
        // CPU, well under saturation but busy enough to queue.
        mean_gap_cycles: 300_000 / workers as u64,
        requests,
        mix: CostMix::oltp(),
    })
}

/// Steady-state node, native or virtual, no switching during traffic.
fn scenario_steady(seed: u64, cpus: usize, virtual_mode: bool, requests: u32) -> ScenarioRun {
    let node = Node::launch("bench", &node_config(cpus));
    if virtual_mode {
        // The one setup switch; on SMP beds the rendezvous spin cycles
        // are host-timing dependent, which is why it happens *before*
        // the traffic-start base that records are measured against.
        switch_with_peers(&node.machine, &node.mercury(), true);
    }
    let mut server = NodeServer::new(
        &node,
        0,
        ServerConfig {
            workers: cpus,
            ..ServerConfig::default()
        },
    );
    server.donate_gaps_to_scrubber();
    let traffic = oltp_traffic(seed, cpus, requests);
    let base = snap(&node);
    server.run(&traffic, |_, _| {});
    let mode = if virtual_mode { "virtual" } else { "native" };
    ScenarioRun {
        name: format!("steady-{mode}-{cpus}cpu"),
        mode,
        cpus,
        nodes: 1,
        mix: "oltp",
        records: server.records().to_vec(),
        switches: delta(&node, base),
        faults_recovered: 0,
    }
}

/// Uniprocessor node toggling attach/detach on a fixed cadence while
/// open-loop traffic keeps arriving.
fn scenario_switch_under_load(seed: u64, requests: u32) -> ScenarioRun {
    let node = Node::launch("bench", &node_config(1));
    let mercury = node.mercury();
    let mut server = NodeServer::new(&node, 0, ServerConfig::default());
    // Native-phase serving gaps feed the scrubber, so every attach on
    // the cadence revalidates only the frames the gaps didn't reach.
    server.donate_gaps_to_scrubber();
    let traffic = oltp_traffic(seed, 1, requests);
    let base = snap(&node);
    let mut next = SWITCH_PERIOD;
    let mut to_virtual = true;
    server.run(&traffic, |srv, off| {
        while off >= next {
            let cpu = srv.node().machine.boot_cpu();
            let out = if to_virtual {
                mercury.switch_to_virtual(cpu)
            } else {
                mercury.switch_to_native(cpu)
            }
            .expect("mode switch under load");
            assert!(
                matches!(out, mercury::SwitchOutcome::Completed { .. }),
                "UP switch must complete: {out:?}"
            );
            to_virtual = !to_virtual;
            next += SWITCH_PERIOD;
        }
    });
    ScenarioRun {
        name: "switch-under-load-1cpu".to_string(),
        mode: "switching",
        cpus: 1,
        nodes: 1,
        mix: "oltp",
        records: server.records().to_vec(),
        switches: delta(&node, base),
        faults_recovered: 0,
    }
}

fn cluster_fleet(n: usize) -> (Cluster, ClusterServer) {
    let cluster = Cluster::launch(n, &NodeConfig::default());
    let cfg = ServerConfig {
        // The NICs carry the inter-node links; leave them wired.
        attach_echo_host: false,
        ..ServerConfig::default()
    };
    let servers = cluster
        .nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let mut s = NodeServer::new(node, i as u32, cfg);
            s.donate_gaps_to_scrubber();
            s
        })
        .collect();
    (cluster, ClusterServer::new(servers))
}

fn web_traffic(seed: u64, nodes: usize, requests: u32) -> Vec<mercury_servo::Arrival> {
    generate(&LoadConfig {
        seed,
        mean_gap_cycles: 200_000 / nodes as u64,
        requests,
        mix: CostMix::web(),
    })
}

/// Two uniprocessor nodes behind the least-loaded balancer; in the
/// switching variant node 0 toggles on cadence and the balancer routes
/// around its stall.
fn scenario_cluster(seed: u64, requests: u32, switching: bool) -> ScenarioRun {
    let (cluster, mut lb) = cluster_fleet(2);
    let traffic = web_traffic(seed, 2, requests);
    let bases: Vec<SwitchSnap> = cluster.nodes.iter().map(|n| snap(n)).collect();
    if switching {
        let mercury = cluster.node(0).mercury();
        let mut next = SWITCH_PERIOD;
        let mut to_virtual = true;
        lb.run(&traffic, |srv, off| {
            while off >= next {
                let cpu = srv.nodes()[0].node().machine.boot_cpu();
                let out = if to_virtual {
                    mercury.switch_to_virtual(cpu)
                } else {
                    mercury.switch_to_native(cpu)
                }
                .expect("node0 switch under load");
                assert!(matches!(out, mercury::SwitchOutcome::Completed { .. }));
                to_virtual = !to_virtual;
                next += SWITCH_PERIOD;
            }
        });
    } else {
        lb.run(&traffic, |_, _| {});
    }
    let mut switches = SwitchSnap::default();
    for (node, base) in cluster.nodes.iter().zip(bases) {
        let d = delta(node, base);
        switches.attaches += d.attaches;
        switches.detaches += d.detaches;
        switches.attach_cycles += d.attach_cycles;
        switches.detach_cycles += d.detach_cycles;
        switches.scrubbed += d.scrubbed;
    }
    ScenarioRun {
        name: if switching {
            "cluster-switch-2node".to_string()
        } else {
            "cluster-steady-2node".to_string()
        },
        mode: if switching { "switching" } else { "native" },
        cpus: 1,
        nodes: 2,
        mix: "web",
        records: lb.records(),
        switches,
        faults_recovered: 0,
    }
}

/// Seeded memory bit-flips injected beneath live traffic on a
/// uniprocessor node: sweep reads detect them between requests, the
/// watchdog answers with reactive attach, and `end_window` detaches on
/// cadence — all of it charged to the serving CPU's clock.
fn scenario_fault_under_load(seed: u64, requests: u32) -> ScenarioRun {
    let node = Node::launch("bench", &node_config(1));
    let mut server = NodeServer::new(&node, 0, ServerConfig::default());
    server.donate_gaps_to_scrubber();
    let traffic = oltp_traffic(seed.wrapping_add(1), 1, requests);
    let base = snap(&node);

    faultgen::reset();
    let mut rng = faultgen::rng::SplitMix64::new(seed ^ 0xfa01);
    let mut dog = Watchdog::new(
        node.mercury(),
        Arc::clone(&node.machine),
        node.kernel(),
        WatchdogPolicy {
            attach_on_fault: true,
            ..WatchdogPolicy::default()
        },
    );
    // Pre-plan the flips (high frames, one per word) so both passes
    // draw the identical fault sequence.
    let span = traffic.last().map(|a| a.offset).unwrap_or(0);
    let planned = (span / FAULT_PERIOD) as usize;
    let mut used = std::collections::BTreeSet::new();
    let mut plan = Vec::new();
    for i in 0..planned {
        let (frame, word) = loop {
            let f = 15_000 + rng.below(1_000) as u32;
            let w = rng.below(512) as u16;
            if used.insert((f, w)) {
                break (f, w);
            }
        };
        plan.push(FaultSpec {
            id: 9_000 + i as u64,
            due_cycle: 0,
            target: FaultTarget::MemWord {
                frame,
                word,
                bit: rng.below(64) as u8,
            },
        });
    }

    let mut next_fault = FAULT_PERIOD;
    let mut next_window = WINDOW_PERIOD;
    let mut cursor = 0usize;
    server.run(&traffic, |srv, off| {
        let machine = Arc::clone(&srv.node().machine);
        let cpu = machine.boot_cpu();
        while off >= next_fault && cursor < plan.len() {
            let spec = plan[cursor];
            cursor += 1;
            let FaultTarget::MemWord { frame, word, .. } = spec.target else {
                unreachable!("plan holds MemWord faults only")
            };
            faultgen::arm(vec![spec]);
            // The scrubber sweep read that trips the planted flip.
            let pa = PhysAddr(((frame as u64) << 12) + (word as u64) * 8);
            machine.mem.read_word(cpu, pa).expect("sweep read");
            dog.poll(cpu);
            next_fault += FAULT_PERIOD;
        }
        while off >= next_window {
            // End the holding window: reactive attach pays its detach.
            dog.end_window(cpu);
            next_window += WINDOW_PERIOD;
        }
    });
    {
        let cpu = node.machine.boot_cpu();
        dog.end_window(cpu);
    }
    faultgen::reset();

    let recovered = dog.reports().iter().filter(|r| r.recovered).count() as u64;
    assert_eq!(
        recovered,
        dog.reports().len() as u64,
        "every injected fault must be recovered"
    );
    ScenarioRun {
        name: "fault-campaign-under-load-1cpu".to_string(),
        mode: "reactive",
        cpus: 1,
        nodes: 1,
        mix: "oltp",
        records: server.records().to_vec(),
        switches: delta(&node, base),
        faults_recovered: recovered,
    }
}

/// One full suite pass: a pure function of `seed`.
fn run_suite(seed: u64, sizing: &Sizing) -> Vec<ScenarioRun> {
    let mut out = Vec::new();
    for &cpus in sizing.steady_cpus {
        out.push(scenario_steady(seed, cpus, false, sizing.steady_requests));
    }
    for &cpus in sizing.steady_cpus {
        out.push(scenario_steady(seed, cpus, true, sizing.steady_requests));
    }
    out.push(scenario_switch_under_load(seed, sizing.switch_requests));
    out.push(scenario_cluster(seed, sizing.cluster_requests, false));
    out.push(scenario_cluster(seed, sizing.cluster_requests, true));
    out.push(scenario_fault_under_load(seed, sizing.fault_requests));
    out
}

fn json_scenario(s: &ScenarioRun, t: &TailStats) -> String {
    format!(
        concat!(
            "    {{\"name\": \"{}\", \"mode\": \"{}\", \"cpus\": {}, \"nodes\": {}, ",
            "\"mix\": \"{}\", \"offered\": {}, \"completed\": {}, \"shed\": {}, ",
            "\"p50_cycles\": {}, \"p99_cycles\": {}, \"p999_cycles\": {}, \"max_cycles\": {}, ",
            "\"p50_us\": {:.3}, \"p99_us\": {:.3}, \"p999_us\": {:.3}, ",
            "\"mean_us\": {:.3}, \"mean_queue_us\": {:.3}, ",
            "\"attaches\": {}, \"detaches\": {}, ",
            "\"attach_cycles\": {}, \"detach_cycles\": {}, ",
            "\"scrub_revalidated\": {}, \"faults_recovered\": {}}}"
        ),
        s.name,
        s.mode,
        s.cpus,
        s.nodes,
        s.mix,
        t.offered,
        t.completed,
        t.shed,
        t.p50_cycles,
        t.p99_cycles,
        t.p999_cycles,
        t.max_cycles,
        cycles_to_us(t.p50_cycles),
        cycles_to_us(t.p99_cycles),
        cycles_to_us(t.p999_cycles),
        t.mean_cycles / simx86::costs::CYCLES_PER_US as f64,
        t.mean_queue_cycles / simx86::costs::CYCLES_PER_US as f64,
        s.switches.attaches,
        s.switches.detaches,
        s.switches.attach_cycles,
        s.switches.detach_cycles,
        s.switches.scrubbed,
        s.faults_recovered,
    )
}

fn main() {
    const {
        assert!(
            faultgen::ENABLED,
            "serving_tail needs the faultgen hooks compiled in (feature `enabled`)"
        )
    };

    let mut seed = 11u64;
    let mut quick = false;
    let mut campaign = false;
    let mut no_skip = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--quick" => quick = true,
            "--campaign" => campaign = true,
            "--no-skip" => no_skip = true,
            other => {
                panic!("unknown argument {other:?} (use --seed N / --quick / --campaign / --no-skip)")
            }
        }
    }
    assert!(
        !(quick && campaign),
        "--quick and --campaign are mutually exclusive"
    );
    let sizing = if quick {
        Sizing::quick()
    } else if campaign {
        Sizing::campaign()
    } else {
        Sizing::full()
    };
    let label = if quick {
        "quick"
    } else if campaign {
        "campaign"
    } else {
        "full"
    };

    // Pass 1 fast-forwards idle stream time through the event clock;
    // pass 2 quantum-ticks the same spans.  Bit-identical results are
    // both the determinism gate and the proof that skipping changed no
    // accounting (DESIGN.md §14.3).
    eprintln!("serving_tail: seed {seed} ({label}), skip-on + skip-off passes");
    simx86::evclock::set_default_skip(!no_skip);
    let t1 = std::time::Instant::now();
    let pass1 = run_suite(seed, &sizing);
    let host_skip_on = t1.elapsed().as_secs_f64();
    simx86::evclock::set_default_skip(false);
    let t2 = std::time::Instant::now();
    let pass2 = run_suite(seed, &sizing);
    let host_skip_off = t2.elapsed().as_secs_f64();
    simx86::evclock::set_default_skip(true);
    let deterministic = pass1 == pass2;

    let stats: Vec<TailStats> = pass1.iter().map(|s| tail_stats(&s.records)).collect();

    // -- report ----------------------------------------------------------
    println!("Serving tail latency (seed {seed})");
    println!("| scenario | cpus×nodes | offered | shed | p50 µs | p99 µs | p999 µs | switches | switch µs |");
    println!("|---|---|---:|---:|---:|---:|---:|---:|---:|");
    for (s, t) in pass1.iter().zip(&stats) {
        println!(
            "| {} | {}×{} | {} | {} | {:.1} | {:.1} | {:.1} | {} | {:.1} |",
            s.name,
            s.cpus,
            s.nodes,
            t.offered,
            t.shed,
            cycles_to_us(t.p50_cycles),
            cycles_to_us(t.p99_cycles),
            cycles_to_us(t.p999_cycles),
            s.switches.attaches + s.switches.detaches,
            cycles_to_us(s.switches.attach_cycles + s.switches.detach_cycles),
        );
    }

    // Headline inflation ratios against the steady-native UP anchor.
    let anchor = |name: &str| -> &TailStats {
        pass1
            .iter()
            .position(|s| s.name == name)
            .map(|i| &stats[i])
            .unwrap_or_else(|| panic!("missing scenario {name}"))
    };
    let native = anchor("steady-native-1cpu");
    let virt = anchor("steady-virtual-1cpu");
    let switching = anchor("switch-under-load-1cpu");
    let faulting = anchor("fault-campaign-under-load-1cpu");
    let ratio = |a: u64, b: u64| a as f64 / b.max(1) as f64;
    println!(
        "\nvs steady native (UP): virtual p99 {:.2}x | switching p99 {:.2}x p999 {:.2}x | faults p99 {:.2}x p999 {:.2}x",
        ratio(virt.p99_cycles, native.p99_cycles),
        ratio(switching.p99_cycles, native.p99_cycles),
        ratio(switching.p999_cycles, native.p999_cycles),
        ratio(faulting.p99_cycles, native.p99_cycles),
        ratio(faulting.p999_cycles, native.p999_cycles),
    );

    // -- archive ---------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"determinism\": \"{}\",\n",
        if deterministic { "verified" } else { "FAILED" }
    ));
    json.push_str("  \"inflation_vs_steady_native_1cpu\": {\n");
    json.push_str(&format!(
        "    \"steady_virtual_p99\": {:.4},\n",
        ratio(virt.p99_cycles, native.p99_cycles)
    ));
    json.push_str(&format!(
        "    \"switch_under_load_p99\": {:.4},\n",
        ratio(switching.p99_cycles, native.p99_cycles)
    ));
    json.push_str(&format!(
        "    \"switch_under_load_p999\": {:.4},\n",
        ratio(switching.p999_cycles, native.p999_cycles)
    ));
    json.push_str(&format!(
        "    \"fault_campaign_p99\": {:.4},\n",
        ratio(faulting.p99_cycles, native.p99_cycles)
    ));
    json.push_str(&format!(
        "    \"fault_campaign_p999\": {:.4}\n",
        ratio(faulting.p999_cycles, native.p999_cycles)
    ));
    json.push_str("  },\n");
    json.push_str("  \"scenarios\": [\n");
    let rows: Vec<String> = pass1
        .iter()
        .zip(&stats)
        .map(|(s, t)| json_scenario(s, t))
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("serving_results.json", &json).expect("write serving_results.json");
    eprintln!("wrote serving_results.json");

    // Simulated throughput: stream time covered per scenario is the
    // last record's finish offset — a deterministic, archived quantity
    // (machine clocks would fold in host-timing-dependent SMP
    // rendezvous spin).  Quick runs are too short to be meaningful.
    if !quick {
        let sim_cycles: u64 = pass1
            .iter()
            .map(|s| s.records.iter().map(|r| r.finish).max().unwrap_or(0))
            .sum();
        let sim_mcycles = sim_cycles as f64 / 1e6;
        mercury_bench::record_sim_speed(
            "serving",
            &mercury_bench::SimSpeed {
                sim_mcycles,
                host_seconds_skip_on: host_skip_on,
                host_seconds_skip_off: host_skip_off,
                mcycles_per_host_second: sim_mcycles / host_skip_on.max(1e-9),
                skip_speedup: host_skip_off / host_skip_on.max(1e-9),
            },
        );
    }

    // -- gates -----------------------------------------------------------
    let mut ok = true;
    let mut fail = |msg: String| {
        eprintln!("FAIL: {msg}");
        ok = false;
    };
    if !deterministic {
        fail("two same-seed passes diverged".to_string());
    }
    for (s, t) in pass1.iter().zip(&stats) {
        if t.offered != t.completed + t.shed {
            fail(format!("{}: offered {} != completed+shed", s.name, t.offered));
        }
        if t.completed == 0 {
            fail(format!("{}: no request completed", s.name));
        }
        match s.mode {
            "switching" => {
                if s.switches.attaches == 0 || s.switches.detaches == 0 {
                    fail(format!("{}: switching scenario never switched", s.name));
                }
                if s.switches.attach_cycles == 0 {
                    fail(format!("{}: no attach cycles charged", s.name));
                }
            }
            "reactive" => {
                if s.faults_recovered == 0 {
                    fail(format!("{}: no fault recovered", s.name));
                }
                if s.switches.attaches == 0 {
                    fail(format!("{}: reactive scenario never attached", s.name));
                }
            }
            _ => {
                if s.switches.attaches != 0 || s.switches.detaches != 0 {
                    fail(format!(
                        "{}: steady scenario switched during traffic",
                        s.name
                    ));
                }
            }
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
