//! Tail latency under self-virtualization (DESIGN.md §13, EXPERIMENTS.md
//! "Serving tail latency").
//!
//! The paper argues a mode switch is invisible to running applications
//! (§7.4: ~0.22 ms attach, ~0.06 ms detach).  This binary asks the
//! operator's version of that question: *what happens to request
//! p50/p99/p999 when the machine self-virtualizes under live load?*
//!
//! Scenarios (all on the simulated cycle clock, via `mercury-servo`):
//!
//! * **steady-native / steady-virtual** at 1, 2 and 4 CPUs — the two
//!   anchors, no switching;
//! * **switch-under-load** — a uniprocessor node attaching/detaching on
//!   a fixed cadence while open-loop traffic keeps arriving (arrivals do
//!   not pause for the switch; the pause shows up as queueing);
//! * **cluster-steady / cluster-switch** — two nodes behind the
//!   least-loaded balancer, with node 0 switching on cadence in the
//!   second variant;
//! * **fault-campaign-under-load** — seeded memory bit-flips injected
//!   beneath live traffic, detected by sweep reads, answered by the
//!   watchdog's reactive attach (and detach at window end);
//! * **update-under-load** (with `--live-update`) — a uniprocessor
//!   node held virtual, rolling its hypervisor v1→v2→… on the switch
//!   cadence while traffic keeps arriving (DESIGN.md §16): the update
//!   cost lands as queueing, and the `update_under_load_p99` inflation
//!   ratio is gated by `tools/benchgate.py` against a hard 2.0x
//!   ceiling, same as a mode switch.
//!
//! Every server donates its open-loop gaps to the node's background
//! scrubber (`NodeServer::donate_gaps_to_scrubber`): while the node is
//! native, worker idle time revalidates dirty frames so the attaches in
//! the switching scenarios pay only for what the gaps didn't reach.
//! The per-scenario `scrub_revalidated` field counts those frames.
//!
//! Determinism: the whole suite runs **twice in-process** and every
//! request record (arrival/start/finish cycles, shape, worker, outcome)
//! plus every switch counter must be bit-identical before anything is
//! archived.  Switch-during-load scenarios run on uniprocessor nodes
//! only: SMP rendezvous spin cycles depend on host thread timing, so
//! multi-CPU beds are measured steady-state (their one setup switch
//! lands before the traffic-start base the records are relative to).
//!
//! The two passes double as the **skip-neutrality gate** (DESIGN.md
//! §14.3): pass 1 runs with the event clock's fast-forward on, pass 2
//! with it off (quantum ticking), and the bit-identical comparison
//! proves the skip changed no accounting.  `--no-skip` forces both
//! passes to quantum-tick (debugging aid).  Both passes are wall-clock
//! timed; outside `--quick` the simulated-Mcycles-per-host-second
//! throughput and the skip speedup are merged into `sim_speed.json`
//! under the `"serving"` key, which `tools/benchgate.py --sim-speed`
//! gates against the archived copy.  `--campaign` raises the request
//! counts ~100x for the nightly campaigns the skip makes affordable
//! (EXPERIMENTS.md "Campaign scale").
//!
//! Emits `serving_results.json`: per-scenario tail stats (cycles and
//! µs), switch counts and cycles charged during the traffic window
//! (from `SwitchStats::total_{attach,detach}_cycles` deltas), and the
//! headline p99/p999 inflation ratios against the steady-native anchor.
//!
//! **`--fleet`** runs the fleet-scale scenario instead (DESIGN.md §15):
//! N simulated nodes (100 full/campaign, 24 quick) behind the
//! migration-aware `FleetServer`, with live migration as a balancing
//! action.  The timeline exercises every fleet path under live
//! traffic: a faultgen ECC storm degrades one node through its
//! fleet-bound watchdog and the fleet drains it to a healthy peer; a
//! rising-temperature trend trips a health monitor's failure
//! prediction and evacuates a second node; both re-home; then a
//! rolling "patch Tuesday" wave virtualizes, evacuates, maintains and
//! re-homes one rack at a time.  With `--live-update` a rolling
//! hypervisor live-update wave
//! (`FleetServer::patch_tuesday_live_update`) follows: every node
//! rolls v1→v2 in place, no guest drained, and the run fails unless
//! the fleet's weakest-link version converges on 2.  The same two
//! skip-on/skip-off passes
//! gate determinism, and `fleet_results.json` archives fleet-level
//! p50/p99/p999, shed counts, the migration downtime distribution,
//! evacuation makespans and wave spans — gated by
//! `tools/benchgate.py --fleet` (zero lost requests hard).
//!
//! Exits non-zero if the suite was non-deterministic, any scenario lost
//! a request, a switching scenario failed to switch, or a fault went
//! unrecovered.

use faultgen::{FaultSpec, FaultTarget};
use mercury_cluster::fleet::NodeStatus;
use mercury_cluster::{
    Cluster, HealthStatus, MigrationPolicy, Node, NodeConfig, SensorReading, Watchdog,
    WatchdogPolicy,
};
use mercury_servo::{
    generate, tail_stats, ClusterServer, FleetServer, LoadConfig, NodeServer, RequestRecord,
    ServerConfig, TailStats, FLEET_SHED_NODE,
};
use mercury_workloads::configs::switch_with_peers;
use mercury_workloads::mix::CostMix;
use simx86::costs::cycles_to_us;
use simx86::PhysAddr;
use std::sync::Arc;

/// Toggle the VMM every this many cycles of stream time (1 ms: long
/// enough to amortize, short enough that a 4 000-request run sees tens
/// of switches).
const SWITCH_PERIOD: u64 = 3_000_000;

/// Inject one fault every this many cycles in the fault scenario.
const FAULT_PERIOD: u64 = 1_500_000;

/// Roll the hypervisor forward every this many cycles in the
/// live-update scenario (same cadence as the mode switches, so the two
/// tails are directly comparable).
const UPDATE_PERIOD: u64 = 3_000_000;

/// Detach (end the watchdog's holding window) every this many cycles.
const WINDOW_PERIOD: u64 = 6_000_000;

/// Scenario sizing.
struct Sizing {
    steady_requests: u32,
    switch_requests: u32,
    cluster_requests: u32,
    fault_requests: u32,
    steady_cpus: &'static [usize],
}

impl Sizing {
    fn full() -> Sizing {
        Sizing {
            steady_requests: 4_000,
            switch_requests: 4_000,
            cluster_requests: 3_000,
            fault_requests: 2_500,
            steady_cpus: &[1, 2, 4],
        }
    }

    /// CI smoke: same scenario shape, a few times cheaper.
    fn quick() -> Sizing {
        Sizing {
            steady_requests: 800,
            switch_requests: 800,
            cluster_requests: 600,
            fault_requests: 500,
            steady_cpus: &[1, 2],
        }
    }

    /// Nightly campaign: ~100x the full sizing, affordable because idle
    /// stream time fast-forwards through the event clock.  Same
    /// scenario shapes and CPU ladder, so the tails are directly
    /// comparable to the full run (EXPERIMENTS.md "Campaign scale").
    fn campaign() -> Sizing {
        Sizing {
            steady_requests: 400_000,
            switch_requests: 400_000,
            cluster_requests: 300_000,
            fault_requests: 250_000,
            steady_cpus: &[1, 2, 4],
        }
    }
}

/// Switch-engine counters relevant to serving windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SwitchSnap {
    attaches: u64,
    detaches: u64,
    attach_cycles: u64,
    detach_cycles: u64,
    /// Completed hv-to-hv live-updates (DESIGN.md §16).
    updates: u64,
    update_cycles: u64,
    /// Frames the background scrubber revalidated out of open-loop
    /// serving gaps (native mode only) — each one shaved off the next
    /// attach's dirty set.
    scrubbed: u64,
}

fn snap(node: &Node) -> SwitchSnap {
    use std::sync::atomic::Ordering::Relaxed;
    let s = &node.mercury().stats;
    SwitchSnap {
        attaches: s.attaches.load(Relaxed),
        detaches: s.detaches.load(Relaxed),
        attach_cycles: s.total_attach_cycles.load(Relaxed),
        detach_cycles: s.total_detach_cycles.load(Relaxed),
        updates: s.live_updates.load(Relaxed),
        update_cycles: s.total_update_cycles.load(Relaxed),
        scrubbed: node.scrubber().revalidated(),
    }
}

fn delta(node: &Node, base: SwitchSnap) -> SwitchSnap {
    let s = snap(node);
    SwitchSnap {
        attaches: s.attaches - base.attaches,
        detaches: s.detaches - base.detaches,
        attach_cycles: s.attach_cycles - base.attach_cycles,
        detach_cycles: s.detach_cycles - base.detach_cycles,
        updates: s.updates - base.updates,
        update_cycles: s.update_cycles - base.update_cycles,
        scrubbed: s.scrubbed - base.scrubbed,
    }
}

/// Everything one scenario produced.  `PartialEq` is the determinism
/// gate: two same-seed passes must compare equal, record for record.
#[derive(Clone, PartialEq)]
struct ScenarioRun {
    name: String,
    mode: &'static str,
    cpus: usize,
    nodes: usize,
    mix: &'static str,
    records: Vec<RequestRecord>,
    switches: SwitchSnap,
    faults_recovered: u64,
}

fn node_config(cpus: usize) -> NodeConfig {
    NodeConfig {
        num_cpus: cpus,
        ..NodeConfig::default()
    }
}

fn oltp_traffic(seed: u64, workers: usize, requests: u32) -> Vec<mercury_servo::Arrival> {
    generate(&LoadConfig {
        seed,
        // Fixed per-worker offered rate: ~0.1 ms between arrivals per
        // CPU, well under saturation but busy enough to queue.
        mean_gap_cycles: 300_000 / workers as u64,
        requests,
        mix: CostMix::oltp(),
    })
}

/// Steady-state node, native or virtual, no switching during traffic.
fn scenario_steady(seed: u64, cpus: usize, virtual_mode: bool, requests: u32) -> ScenarioRun {
    let node = Node::launch("bench", &node_config(cpus));
    if virtual_mode {
        // The one setup switch; on SMP beds the rendezvous spin cycles
        // are host-timing dependent, which is why it happens *before*
        // the traffic-start base that records are measured against.
        switch_with_peers(&node.machine, &node.mercury(), true);
    }
    let mut server = NodeServer::new(
        &node,
        0,
        ServerConfig {
            workers: cpus,
            ..ServerConfig::default()
        },
    );
    server.donate_gaps_to_scrubber();
    let traffic = oltp_traffic(seed, cpus, requests);
    let base = snap(&node);
    server.run(&traffic, |_, _| {});
    let mode = if virtual_mode { "virtual" } else { "native" };
    ScenarioRun {
        name: format!("steady-{mode}-{cpus}cpu"),
        mode,
        cpus,
        nodes: 1,
        mix: "oltp",
        records: server.records().to_vec(),
        switches: delta(&node, base),
        faults_recovered: 0,
    }
}

/// Uniprocessor node toggling attach/detach on a fixed cadence while
/// open-loop traffic keeps arriving.
fn scenario_switch_under_load(seed: u64, requests: u32) -> ScenarioRun {
    let node = Node::launch("bench", &node_config(1));
    let mercury = node.mercury();
    let mut server = NodeServer::new(&node, 0, ServerConfig::default());
    // Native-phase serving gaps feed the scrubber, so every attach on
    // the cadence revalidates only the frames the gaps didn't reach.
    server.donate_gaps_to_scrubber();
    let traffic = oltp_traffic(seed, 1, requests);
    let base = snap(&node);
    let mut next = SWITCH_PERIOD;
    let mut to_virtual = true;
    server.run(&traffic, |srv, off| {
        while off >= next {
            let cpu = srv.node().machine.boot_cpu();
            let out = if to_virtual {
                mercury.switch_to_virtual(cpu)
            } else {
                mercury.switch_to_native(cpu)
            }
            .expect("mode switch under load");
            assert!(
                matches!(out, mercury::SwitchOutcome::Completed { .. }),
                "UP switch must complete: {out:?}"
            );
            to_virtual = !to_virtual;
            next += SWITCH_PERIOD;
        }
    });
    ScenarioRun {
        name: "switch-under-load-1cpu".to_string(),
        mode: "switching",
        cpus: 1,
        nodes: 1,
        mix: "oltp",
        records: server.records().to_vec(),
        switches: delta(&node, base),
        faults_recovered: 0,
    }
}

/// Uniprocessor node held virtual, rolling its hypervisor forward on a
/// fixed cadence while open-loop traffic keeps arriving (DESIGN.md
/// §16): the kernel never leaves virtual mode, so the whole update —
/// handshake, cold successor rebuild, commit — lands as queueing in
/// the tail, never as downtime.
fn scenario_update_under_load(seed: u64, requests: u32) -> ScenarioRun {
    let node = Node::launch("bench", &node_config(1));
    let mercury = node.mercury();
    // The one setup switch, before the traffic-start base.
    switch_with_peers(&node.machine, &mercury, true);
    let mut server = NodeServer::new(&node, 0, ServerConfig::default());
    server.donate_gaps_to_scrubber();
    let traffic = oltp_traffic(seed, 1, requests);
    let base = snap(&node);
    let mut next = UPDATE_PERIOD;
    server.run(&traffic, |srv, off| {
        while off >= next {
            let cpu = srv.node().machine.boot_cpu();
            let succ = xenon::Hypervisor::warm_up_versioned(
                &srv.node().machine,
                mercury.hv_version() + 1,
            );
            mercury.stage_update(succ).expect("stage update under load");
            let out = mercury.live_update(cpu).expect("live-update under load");
            assert!(
                matches!(out, mercury::SwitchOutcome::Completed { .. }),
                "UP live-update must complete: {out:?}"
            );
            next += UPDATE_PERIOD;
        }
    });
    assert!(mercury.hv_version() > 1, "the cadence must roll versions");
    ScenarioRun {
        name: "update-under-load-1cpu".to_string(),
        mode: "updating",
        cpus: 1,
        nodes: 1,
        mix: "oltp",
        records: server.records().to_vec(),
        switches: delta(&node, base),
        faults_recovered: 0,
    }
}

fn cluster_fleet(n: usize) -> (Cluster, ClusterServer) {
    let cluster = Cluster::launch(n, &NodeConfig::default());
    let cfg = ServerConfig {
        // The NICs carry the inter-node links; leave them wired.
        attach_echo_host: false,
        ..ServerConfig::default()
    };
    let servers = cluster
        .nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let mut s = NodeServer::new(node, i as u32, cfg);
            s.donate_gaps_to_scrubber();
            s
        })
        .collect();
    (cluster, ClusterServer::new(servers))
}

fn web_traffic(seed: u64, nodes: usize, requests: u32) -> Vec<mercury_servo::Arrival> {
    generate(&LoadConfig {
        seed,
        mean_gap_cycles: 200_000 / nodes as u64,
        requests,
        mix: CostMix::web(),
    })
}

/// Two uniprocessor nodes behind the least-loaded balancer; in the
/// switching variant node 0 toggles on cadence and the balancer routes
/// around its stall.
fn scenario_cluster(seed: u64, requests: u32, switching: bool) -> ScenarioRun {
    let (cluster, mut lb) = cluster_fleet(2);
    let traffic = web_traffic(seed, 2, requests);
    let bases: Vec<SwitchSnap> = cluster.nodes.iter().map(|n| snap(n)).collect();
    if switching {
        let mercury = cluster.node(0).mercury();
        let mut next = SWITCH_PERIOD;
        let mut to_virtual = true;
        lb.run(&traffic, |srv, off| {
            while off >= next {
                let cpu = srv.nodes()[0].node().machine.boot_cpu();
                let out = if to_virtual {
                    mercury.switch_to_virtual(cpu)
                } else {
                    mercury.switch_to_native(cpu)
                }
                .expect("node0 switch under load");
                assert!(matches!(out, mercury::SwitchOutcome::Completed { .. }));
                to_virtual = !to_virtual;
                next += SWITCH_PERIOD;
            }
        });
    } else {
        lb.run(&traffic, |_, _| {});
    }
    let mut switches = SwitchSnap::default();
    for (node, base) in cluster.nodes.iter().zip(bases) {
        let d = delta(node, base);
        switches.attaches += d.attaches;
        switches.detaches += d.detaches;
        switches.attach_cycles += d.attach_cycles;
        switches.detach_cycles += d.detach_cycles;
        switches.scrubbed += d.scrubbed;
    }
    ScenarioRun {
        name: if switching {
            "cluster-switch-2node".to_string()
        } else {
            "cluster-steady-2node".to_string()
        },
        mode: if switching { "switching" } else { "native" },
        cpus: 1,
        nodes: 2,
        mix: "web",
        records: lb.records(),
        switches,
        faults_recovered: 0,
    }
}

/// Seeded memory bit-flips injected beneath live traffic on a
/// uniprocessor node: sweep reads detect them between requests, the
/// watchdog answers with reactive attach, and `end_window` detaches on
/// cadence — all of it charged to the serving CPU's clock.
fn scenario_fault_under_load(seed: u64, requests: u32) -> ScenarioRun {
    let node = Node::launch("bench", &node_config(1));
    let mut server = NodeServer::new(&node, 0, ServerConfig::default());
    server.donate_gaps_to_scrubber();
    let traffic = oltp_traffic(seed.wrapping_add(1), 1, requests);
    let base = snap(&node);

    faultgen::reset();
    let mut rng = faultgen::rng::SplitMix64::new(seed ^ 0xfa01);
    let mut dog = Watchdog::new(
        node.mercury(),
        Arc::clone(&node.machine),
        node.kernel(),
        WatchdogPolicy {
            attach_on_fault: true,
            ..WatchdogPolicy::default()
        },
    );
    // Pre-plan the flips (high frames, one per word) so both passes
    // draw the identical fault sequence.
    let span = traffic.last().map(|a| a.offset).unwrap_or(0);
    let planned = (span / FAULT_PERIOD) as usize;
    let mut used = std::collections::BTreeSet::new();
    let mut plan = Vec::new();
    for i in 0..planned {
        let (frame, word) = loop {
            let f = 15_000 + rng.below(1_000) as u32;
            let w = rng.below(512) as u16;
            if used.insert((f, w)) {
                break (f, w);
            }
        };
        plan.push(FaultSpec {
            id: 9_000 + i as u64,
            due_cycle: 0,
            target: FaultTarget::MemWord {
                frame,
                word,
                bit: rng.below(64) as u8,
            },
        });
    }

    let mut next_fault = FAULT_PERIOD;
    let mut next_window = WINDOW_PERIOD;
    let mut cursor = 0usize;
    server.run(&traffic, |srv, off| {
        let machine = Arc::clone(&srv.node().machine);
        let cpu = machine.boot_cpu();
        while off >= next_fault && cursor < plan.len() {
            let spec = plan[cursor];
            cursor += 1;
            let FaultTarget::MemWord { frame, word, .. } = spec.target else {
                unreachable!("plan holds MemWord faults only")
            };
            faultgen::arm(vec![spec]);
            // The scrubber sweep read that trips the planted flip.
            let pa = PhysAddr(((frame as u64) << 12) + (word as u64) * 8);
            machine.mem.read_word(cpu, pa).expect("sweep read");
            dog.poll(cpu);
            next_fault += FAULT_PERIOD;
        }
        while off >= next_window {
            // End the holding window: reactive attach pays its detach.
            dog.end_window(cpu);
            next_window += WINDOW_PERIOD;
        }
    });
    {
        let cpu = node.machine.boot_cpu();
        dog.end_window(cpu);
    }
    faultgen::reset();

    let recovered = dog.reports().iter().filter(|r| r.recovered).count() as u64;
    assert_eq!(
        recovered,
        dog.reports().len() as u64,
        "every injected fault must be recovered"
    );
    ScenarioRun {
        name: "fault-campaign-under-load-1cpu".to_string(),
        mode: "reactive",
        cpus: 1,
        nodes: 1,
        mix: "oltp",
        records: server.records().to_vec(),
        switches: delta(&node, base),
        faults_recovered: recovered,
    }
}

/// One full suite pass: a pure function of `(seed, live_update)`.
fn run_suite(seed: u64, sizing: &Sizing, live_update: bool) -> Vec<ScenarioRun> {
    let mut out = Vec::new();
    for &cpus in sizing.steady_cpus {
        out.push(scenario_steady(seed, cpus, false, sizing.steady_requests));
    }
    for &cpus in sizing.steady_cpus {
        out.push(scenario_steady(seed, cpus, true, sizing.steady_requests));
    }
    out.push(scenario_switch_under_load(seed, sizing.switch_requests));
    if live_update {
        out.push(scenario_update_under_load(seed, sizing.switch_requests));
    }
    out.push(scenario_cluster(seed, sizing.cluster_requests, false));
    out.push(scenario_cluster(seed, sizing.cluster_requests, true));
    out.push(scenario_fault_under_load(seed, sizing.fault_requests));
    out
}

// --- fleet mode (DESIGN.md §15) --------------------------------------

/// Fleet sizing: node count, rack width, request count.
struct FleetSizing {
    nodes: usize,
    rack_size: usize,
    requests: u32,
}

impl FleetSizing {
    fn full() -> FleetSizing {
        FleetSizing {
            nodes: 100,
            rack_size: 10,
            requests: 20_000,
        }
    }

    fn quick() -> FleetSizing {
        FleetSizing {
            nodes: 24,
            rack_size: 6,
            requests: 3_000,
        }
    }

    fn campaign() -> FleetSizing {
        FleetSizing {
            nodes: 100,
            rack_size: 10,
            requests: 200_000,
        }
    }
}

/// Hold a rack in maintenance this long (cycles) during the wave.
const MAINT_CYCLES: u64 = 200_000;

/// Small nodes so a 100-node fleet stays within a CI runner's memory:
/// 16 MB of simulated RAM each (the default node is 64 MB).
fn fleet_node_config() -> NodeConfig {
    NodeConfig {
        num_cpus: 1,
        mem_frames: 4 * 1024,
        pool_frames: 1536,
        disk_sectors: 8 * 1024,
        fs_blocks: 512,
        ..NodeConfig::default()
    }
}

/// Everything one fleet pass produced; `PartialEq` is the
/// skip-on/skip-off determinism gate.
#[derive(Clone, PartialEq)]
struct FleetRun {
    records: Vec<RequestRecord>,
    offered: u64,
    downtimes: Vec<u64>,
    evac_makespans: Vec<u64>,
    wave_spans: Vec<u64>,
    /// Reason strings from the two triggered degradations, in order.
    degrade_reasons: Vec<String>,
    /// Every node healthy and home again at the end?
    healed: bool,
    /// The fleet's weakest-link hypervisor version at the end: 1
    /// normally, 2 after a `--live-update` rolling wave converged.
    hv_version_min: u32,
}

/// One fleet pass: traffic over N nodes with a watchdog-degraded
/// evacuation, a health-predicted evacuation, both re-homings, and the
/// rolling rack wave — all at deterministic stream offsets.  With
/// `live_update` a hypervisor live-update wave
/// ([`FleetServer::patch_tuesday_live_update`]) follows the
/// maintenance wave: every node rolls v1→v2 in place, no guest
/// drained.
fn run_fleet(seed: u64, sizing: &FleetSizing, live_update: bool) -> FleetRun {
    let cluster = Cluster::launch(sizing.nodes, &fleet_node_config());
    let cfg = ServerConfig {
        attach_echo_host: false,
        ..ServerConfig::default()
    };
    let mut fs = FleetServer::new(&cluster, sizing.rack_size, cfg, MigrationPolicy::default());
    let racks = fs.fleet().racks();

    let traffic = generate(&LoadConfig {
        seed,
        mean_gap_cycles: 400_000 / sizing.nodes as u64,
        requests: sizing.requests,
        mix: CostMix::web(),
    });
    let span = traffic.last().map(|a| a.offset).unwrap_or(0);

    // The two degradation victims: one by fault storm, one by health
    // prediction.  Distinct nodes, both clear of index 0 so the
    // least-loaded tiebreak still has its favorite.
    let fault_node = 2usize;
    let health_node = sizing.nodes / 2 + 1;
    assert_ne!(fault_node, health_node);

    // The watchdog for the fault-storm node, bound to the fleet view so
    // its degradation is what routes traffic away.
    let mut dog = Watchdog::new(
        cluster.node(fault_node).mercury(),
        Arc::clone(&cluster.node(fault_node).machine),
        cluster.node(fault_node).kernel(),
        WatchdogPolicy::default(),
    );
    dog.bind_fleet(Arc::clone(fs.fleet()), fault_node);

    // Deterministic event offsets across the stream.
    let fault_off = span * 15 / 100;
    let health_off = span * 25 / 100;
    let rehome_off = span * 45 / 100;
    let wave_start = span * 55 / 100;
    let wave_step = (span * 35 / 100) / racks as u64;
    let update_off = span * 95 / 100;

    faultgen::reset();
    let mut degrade_reasons = Vec::new();
    let mut stage = 0usize;
    let mut next_rack = 0usize;
    fs.run(&traffic, |fs, off| {
        if stage == 0 && off >= fault_off {
            stage = 1;
            // An ECC storm on the fault node: three planted bit-flips,
            // each tripped by a sweep read and recovered through the
            // watchdog's reactive attach.  Three scrubs in one window
            // is the storm threshold — the watchdog degrades the node
            // and the fleet drains it.
            let machine = Arc::clone(&fs.nodes()[fault_node].machine);
            let cpu = machine.boot_cpu();
            for k in 0..3u64 {
                faultgen::arm(vec![FaultSpec {
                    id: 7_000 + k,
                    due_cycle: 0,
                    target: FaultTarget::MemWord {
                        frame: 3_000 + k as u32,
                        word: 17,
                        bit: (k % 64) as u8,
                    },
                }]);
                let pa = PhysAddr(((3_000 + k) << 12) + 17 * 8);
                machine.mem.read_word(cpu, pa).expect("sweep read");
                dog.poll(cpu);
            }
            assert_eq!(dog.reports().len(), 3, "storm must be detected");
            assert!(dog.reports().iter().all(|r| r.recovered));
            dog.mark_degraded("ECC scrub storm: 3 corrected flips in one window");
            degrade_reasons.push(match fs.fleet().status(fault_node) {
                NodeStatus::Degraded(r) => r,
                other => panic!("watchdog must publish degradation, got {other:?}"),
            });
            let target = fs
                .drain_node(fault_node, off, None)
                .expect("fault-node evacuation");
            assert!(target.is_some(), "healthy peers must absorb the drain");
        } else if stage == 1 && off >= health_off {
            stage = 2;
            // A rising temperature trend past the warning line: the
            // health monitor predicts failure (§6.5) and the fleet
            // evacuates before the hardware dies.
            let health = &fs.nodes()[health_node].health;
            for temp in [72.0, 78.0, 84.0] {
                health.inject(SensorReading {
                    temp_c: temp,
                    ..SensorReading::default()
                });
            }
            let reason = match health.assess() {
                HealthStatus::FailurePredicted(r) => r,
                other => panic!("rising trend must predict failure, got {other:?}"),
            };
            fs.fleet()
                .set_status(health_node, NodeStatus::Degraded(reason.clone()));
            degrade_reasons.push(reason);
            let target = fs
                .drain_node(health_node, off, None)
                .expect("health-node evacuation");
            assert!(target.is_some());
        } else if stage == 2 && off >= rehome_off {
            stage = 3;
            fs.rehome_node(fault_node, off).expect("fault-node rehome");
            fs.rehome_node(health_node, off)
                .expect("health-node rehome");
        } else if stage == 3 && next_rack < racks && off >= wave_start + next_rack as u64 * wave_step
        {
            // The rolling wave: one rack per step across the stream.
            fs.maintain_rack(next_rack, off, MAINT_CYCLES)
                .expect("rack maintenance");
            next_rack += 1;
            if next_rack == racks {
                stage = 4;
            }
        } else if stage == 4 && live_update && off >= update_off {
            stage = 5;
            // The live-update wave (DESIGN.md §16): every rack rolls
            // its hypervisors v1→v2 in place.  Unlike the maintenance
            // wave no guest is drained — nodes keep serving and the
            // fleet view converges on the new version.
            let updated = fs.patch_tuesday_live_update(2);
            assert_eq!(updated, sizing.nodes, "every node must roll to v2");
            assert_eq!(
                fs.fleet().min_hv_version(),
                2,
                "the fleet must converge on v2"
            );
        }
    });
    faultgen::reset();
    assert_eq!(
        stage,
        if live_update { 5 } else { 4 },
        "every fleet event must fire within the stream"
    );
    assert_eq!(next_rack, racks, "the wave must reach every rack");

    let healed = (0..sizing.nodes)
        .all(|i| fs.fleet().status(i) == NodeStatus::Healthy && !fs.is_evacuated(i));
    let records = fs.finish();
    FleetRun {
        records,
        offered: fs.offered(),
        downtimes: fs.downtimes().to_vec(),
        evac_makespans: fs.evac_makespans().to_vec(),
        wave_spans: fs.wave_spans().to_vec(),
        degrade_reasons,
        healed,
        hv_version_min: fs.fleet().min_hv_version(),
    }
}

/// `(min, p50, max)` of a cycle-count sample.
fn dist(xs: &[u64]) -> (u64, u64, u64) {
    if xs.is_empty() {
        return (0, 0, 0);
    }
    let mut v = xs.to_vec();
    v.sort_unstable();
    (v[0], v[v.len() / 2], v[v.len() - 1])
}

/// The whole `--fleet` mode: two passes (skip on / skip off), gates,
/// and the `fleet_results.json` archive.  Returns the process exit
/// code.
fn fleet_main(seed: u64, sizing: &FleetSizing, label: &str, no_skip: bool, live_update: bool) -> i32 {
    eprintln!(
        "serving_tail --fleet: seed {seed} ({label}), {} nodes in racks of {}{}",
        sizing.nodes,
        sizing.rack_size,
        if live_update { ", live-update wave" } else { "" }
    );
    simx86::evclock::set_default_skip(!no_skip);
    let pass1 = run_fleet(seed, sizing, live_update);
    simx86::evclock::set_default_skip(false);
    let pass2 = run_fleet(seed, sizing, live_update);
    simx86::evclock::set_default_skip(true);
    let deterministic = pass1 == pass2;

    let t = tail_stats(&pass1.records);
    let fleet_sheds = pass1
        .records
        .iter()
        .filter(|r| r.node == FLEET_SHED_NODE)
        .count() as u64;
    let lost = pass1.offered - pass1.records.len() as u64;
    let evacuations = pass1.evac_makespans.len() as u64;
    let (dt_min, dt_p50, dt_max) = dist(&pass1.downtimes);
    let (mk_min, mk_p50, mk_max) = dist(&pass1.evac_makespans);

    println!(
        "fleet: {} nodes | offered {} | completed {} | shed {} (fleet-level {}) | lost {}",
        sizing.nodes, t.offered, t.completed, t.shed, fleet_sheds, lost
    );
    println!(
        "tails: p50 {:.1} µs | p99 {:.1} µs | p999 {:.1} µs",
        cycles_to_us(t.p50_cycles),
        cycles_to_us(t.p99_cycles),
        cycles_to_us(t.p999_cycles),
    );
    println!(
        "migrations: {} ({} evacuations) | downtime min/p50/max {:.1}/{:.1}/{:.1} µs | evac makespan p50 {:.1} µs",
        pass1.downtimes.len(),
        evacuations,
        cycles_to_us(dt_min),
        cycles_to_us(dt_p50),
        cycles_to_us(dt_max),
        cycles_to_us(mk_p50),
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"mode\": \"{label}\",\n"));
    json.push_str(&format!(
        "  \"determinism\": \"{}\",\n",
        if deterministic { "verified" } else { "FAILED" }
    ));
    json.push_str(&format!("  \"nodes\": {},\n", sizing.nodes));
    json.push_str(&format!("  \"rack_size\": {},\n", sizing.rack_size));
    json.push_str(&format!("  \"live_update_wave\": {live_update},\n"));
    json.push_str(&format!(
        "  \"hv_version_min\": {},\n",
        pass1.hv_version_min
    ));
    json.push_str(&format!("  \"offered\": {},\n", t.offered));
    json.push_str(&format!("  \"completed\": {},\n", t.completed));
    json.push_str(&format!("  \"shed\": {},\n", t.shed));
    json.push_str(&format!("  \"fleet_sheds\": {fleet_sheds},\n"));
    json.push_str(&format!("  \"lost\": {lost},\n"));
    json.push_str(&format!("  \"p50_cycles\": {},\n", t.p50_cycles));
    json.push_str(&format!("  \"p99_cycles\": {},\n", t.p99_cycles));
    json.push_str(&format!("  \"p999_cycles\": {},\n", t.p999_cycles));
    json.push_str(&format!("  \"p50_us\": {:.3},\n", cycles_to_us(t.p50_cycles)));
    json.push_str(&format!("  \"p99_us\": {:.3},\n", cycles_to_us(t.p99_cycles)));
    json.push_str(&format!(
        "  \"p999_us\": {:.3},\n",
        cycles_to_us(t.p999_cycles)
    ));
    json.push_str(&format!("  \"evacuations\": {evacuations},\n"));
    json.push_str(&format!("  \"migrations\": {},\n", pass1.downtimes.len()));
    json.push_str(&format!(
        "  \"downtime_cycles\": {{\"min\": {dt_min}, \"p50\": {dt_p50}, \"max\": {dt_max}}},\n"
    ));
    json.push_str(&format!(
        "  \"downtime_us\": {{\"min\": {:.3}, \"p50\": {:.3}, \"max\": {:.3}}},\n",
        cycles_to_us(dt_min),
        cycles_to_us(dt_p50),
        cycles_to_us(dt_max),
    ));
    json.push_str(&format!(
        "  \"evac_makespan_cycles\": {{\"min\": {mk_min}, \"p50\": {mk_p50}, \"max\": {mk_max}}},\n"
    ));
    json.push_str(&format!(
        "  \"wave_spans_cycles\": [{}],\n",
        pass1
            .wave_spans
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "  \"degrade_reasons\": [{}]\n",
        pass1
            .degrade_reasons
            .iter()
            .map(|r| format!("{r:?}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("}\n");
    std::fs::write("fleet_results.json", &json).expect("write fleet_results.json");
    eprintln!("wrote fleet_results.json");

    let mut ok = true;
    let mut fail = |msg: String| {
        eprintln!("FAIL: {msg}");
        ok = false;
    };
    if !deterministic {
        fail("two same-seed fleet passes diverged".to_string());
    }
    if lost != 0 {
        fail(format!("{lost} requests lost (offered vs recorded)"));
    }
    if t.offered != t.completed + t.shed {
        fail("offered != completed + shed".to_string());
    }
    if t.completed == 0 {
        fail("no request completed".to_string());
    }
    if evacuations != 2 + sizing.nodes as u64 {
        fail(format!(
            "expected {} evacuations (2 triggered + full wave), saw {evacuations}",
            2 + sizing.nodes
        ));
    }
    if pass1.downtimes.len() != 2 * evacuations as usize {
        fail(format!(
            "every evacuation re-homes: expected {} migrations, saw {}",
            2 * evacuations,
            pass1.downtimes.len()
        ));
    }
    if pass1.downtimes.iter().any(|&d| d == 0) {
        fail("a migration reported zero downtime".to_string());
    }
    if pass1.wave_spans.iter().any(|&s| s < MAINT_CYCLES) {
        fail("a wave span shorter than its maintenance window".to_string());
    }
    if pass1.degrade_reasons.len() != 2 {
        fail("both degradations must publish a reason".to_string());
    }
    if !pass1.healed {
        fail("fleet did not heal: some node not healthy and home".to_string());
    }
    if live_update && pass1.hv_version_min != 2 {
        fail(format!(
            "live-update wave did not converge: weakest-link hv version {} != 2",
            pass1.hv_version_min
        ));
    }
    if ok {
        0
    } else {
        1
    }
}

fn json_scenario(s: &ScenarioRun, t: &TailStats) -> String {
    format!(
        concat!(
            "    {{\"name\": \"{}\", \"mode\": \"{}\", \"cpus\": {}, \"nodes\": {}, ",
            "\"mix\": \"{}\", \"offered\": {}, \"completed\": {}, \"shed\": {}, ",
            "\"p50_cycles\": {}, \"p99_cycles\": {}, \"p999_cycles\": {}, \"max_cycles\": {}, ",
            "\"p50_us\": {:.3}, \"p99_us\": {:.3}, \"p999_us\": {:.3}, ",
            "\"mean_us\": {:.3}, \"mean_queue_us\": {:.3}, ",
            "\"attaches\": {}, \"detaches\": {}, ",
            "\"attach_cycles\": {}, \"detach_cycles\": {}, ",
            "\"live_updates\": {}, \"update_cycles\": {}, ",
            "\"scrub_revalidated\": {}, \"faults_recovered\": {}}}"
        ),
        s.name,
        s.mode,
        s.cpus,
        s.nodes,
        s.mix,
        t.offered,
        t.completed,
        t.shed,
        t.p50_cycles,
        t.p99_cycles,
        t.p999_cycles,
        t.max_cycles,
        cycles_to_us(t.p50_cycles),
        cycles_to_us(t.p99_cycles),
        cycles_to_us(t.p999_cycles),
        t.mean_cycles / simx86::costs::CYCLES_PER_US as f64,
        t.mean_queue_cycles / simx86::costs::CYCLES_PER_US as f64,
        s.switches.attaches,
        s.switches.detaches,
        s.switches.attach_cycles,
        s.switches.detach_cycles,
        s.switches.updates,
        s.switches.update_cycles,
        s.switches.scrubbed,
        s.faults_recovered,
    )
}

fn main() {
    const {
        assert!(
            faultgen::ENABLED,
            "serving_tail needs the faultgen hooks compiled in (feature `enabled`)"
        )
    };

    let mut seed = 11u64;
    let mut quick = false;
    let mut campaign = false;
    let mut no_skip = false;
    let mut fleet = false;
    let mut live_update = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--quick" => quick = true,
            "--campaign" => campaign = true,
            "--no-skip" => no_skip = true,
            "--fleet" => fleet = true,
            "--live-update" => live_update = true,
            other => {
                panic!("unknown argument {other:?} (use --seed N / --quick / --campaign / --no-skip / --fleet / --live-update)")
            }
        }
    }
    assert!(
        !(quick && campaign),
        "--quick and --campaign are mutually exclusive"
    );
    if fleet {
        let sizing = if quick {
            FleetSizing::quick()
        } else if campaign {
            FleetSizing::campaign()
        } else {
            FleetSizing::full()
        };
        let label = if quick {
            "quick"
        } else if campaign {
            "campaign"
        } else {
            "full"
        };
        std::process::exit(fleet_main(seed, &sizing, label, no_skip, live_update));
    }
    let sizing = if quick {
        Sizing::quick()
    } else if campaign {
        Sizing::campaign()
    } else {
        Sizing::full()
    };
    let label = if quick {
        "quick"
    } else if campaign {
        "campaign"
    } else {
        "full"
    };

    // Pass 1 fast-forwards idle stream time through the event clock;
    // pass 2 quantum-ticks the same spans.  Bit-identical results are
    // both the determinism gate and the proof that skipping changed no
    // accounting (DESIGN.md §14.3).
    eprintln!("serving_tail: seed {seed} ({label}), skip-on + skip-off passes");
    simx86::evclock::set_default_skip(!no_skip);
    let t1 = std::time::Instant::now();
    let pass1 = run_suite(seed, &sizing, live_update);
    let host_skip_on = t1.elapsed().as_secs_f64();
    simx86::evclock::set_default_skip(false);
    let t2 = std::time::Instant::now();
    let pass2 = run_suite(seed, &sizing, live_update);
    let host_skip_off = t2.elapsed().as_secs_f64();
    simx86::evclock::set_default_skip(true);
    let deterministic = pass1 == pass2;

    let stats: Vec<TailStats> = pass1.iter().map(|s| tail_stats(&s.records)).collect();

    // -- report ----------------------------------------------------------
    println!("Serving tail latency (seed {seed})");
    println!("| scenario | cpus×nodes | offered | shed | p50 µs | p99 µs | p999 µs | switches | switch µs |");
    println!("|---|---|---:|---:|---:|---:|---:|---:|---:|");
    for (s, t) in pass1.iter().zip(&stats) {
        println!(
            "| {} | {}×{} | {} | {} | {:.1} | {:.1} | {:.1} | {} | {:.1} |",
            s.name,
            s.cpus,
            s.nodes,
            t.offered,
            t.shed,
            cycles_to_us(t.p50_cycles),
            cycles_to_us(t.p99_cycles),
            cycles_to_us(t.p999_cycles),
            s.switches.attaches + s.switches.detaches,
            cycles_to_us(s.switches.attach_cycles + s.switches.detach_cycles),
        );
    }

    // Headline inflation ratios against the steady-native UP anchor.
    let anchor = |name: &str| -> &TailStats {
        pass1
            .iter()
            .position(|s| s.name == name)
            .map(|i| &stats[i])
            .unwrap_or_else(|| panic!("missing scenario {name}"))
    };
    let native = anchor("steady-native-1cpu");
    let virt = anchor("steady-virtual-1cpu");
    let switching = anchor("switch-under-load-1cpu");
    let faulting = anchor("fault-campaign-under-load-1cpu");
    let updating = live_update.then(|| anchor("update-under-load-1cpu"));
    let ratio = |a: u64, b: u64| a as f64 / b.max(1) as f64;
    println!(
        "\nvs steady native (UP): virtual p99 {:.2}x | switching p99 {:.2}x p999 {:.2}x | faults p99 {:.2}x p999 {:.2}x",
        ratio(virt.p99_cycles, native.p99_cycles),
        ratio(switching.p99_cycles, native.p99_cycles),
        ratio(switching.p999_cycles, native.p999_cycles),
        ratio(faulting.p99_cycles, native.p99_cycles),
        ratio(faulting.p999_cycles, native.p999_cycles),
    );
    if let Some(u) = updating {
        println!(
            "live-update p99 {:.2}x p999 {:.2}x vs steady native (UP)",
            ratio(u.p99_cycles, native.p99_cycles),
            ratio(u.p999_cycles, native.p999_cycles),
        );
    }

    // -- archive ---------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"determinism\": \"{}\",\n",
        if deterministic { "verified" } else { "FAILED" }
    ));
    json.push_str("  \"inflation_vs_steady_native_1cpu\": {\n");
    json.push_str(&format!(
        "    \"steady_virtual_p99\": {:.4},\n",
        ratio(virt.p99_cycles, native.p99_cycles)
    ));
    json.push_str(&format!(
        "    \"switch_under_load_p99\": {:.4},\n",
        ratio(switching.p99_cycles, native.p99_cycles)
    ));
    json.push_str(&format!(
        "    \"switch_under_load_p999\": {:.4},\n",
        ratio(switching.p999_cycles, native.p999_cycles)
    ));
    json.push_str(&format!(
        "    \"fault_campaign_p99\": {:.4},\n",
        ratio(faulting.p99_cycles, native.p99_cycles)
    ));
    match updating {
        Some(u) => {
            json.push_str(&format!(
                "    \"fault_campaign_p999\": {:.4},\n",
                ratio(faulting.p999_cycles, native.p999_cycles)
            ));
            json.push_str(&format!(
                "    \"update_under_load_p99\": {:.4},\n",
                ratio(u.p99_cycles, native.p99_cycles)
            ));
            json.push_str(&format!(
                "    \"update_under_load_p999\": {:.4}\n",
                ratio(u.p999_cycles, native.p999_cycles)
            ));
        }
        None => {
            json.push_str(&format!(
                "    \"fault_campaign_p999\": {:.4}\n",
                ratio(faulting.p999_cycles, native.p999_cycles)
            ));
        }
    }
    json.push_str("  },\n");
    json.push_str("  \"scenarios\": [\n");
    let rows: Vec<String> = pass1
        .iter()
        .zip(&stats)
        .map(|(s, t)| json_scenario(s, t))
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("serving_results.json", &json).expect("write serving_results.json");
    eprintln!("wrote serving_results.json");

    // Simulated throughput: stream time covered per scenario is the
    // last record's finish offset — a deterministic, archived quantity
    // (machine clocks would fold in host-timing-dependent SMP
    // rendezvous spin).  Quick runs are too short to be meaningful.
    if !quick {
        let sim_cycles: u64 = pass1
            .iter()
            .map(|s| s.records.iter().map(|r| r.finish).max().unwrap_or(0))
            .sum();
        let sim_mcycles = sim_cycles as f64 / 1e6;
        mercury_bench::record_sim_speed(
            "serving",
            &mercury_bench::SimSpeed {
                sim_mcycles,
                host_seconds_skip_on: host_skip_on,
                host_seconds_skip_off: host_skip_off,
                mcycles_per_host_second: sim_mcycles / host_skip_on.max(1e-9),
                skip_speedup: host_skip_off / host_skip_on.max(1e-9),
            },
        );
    }

    // -- gates -----------------------------------------------------------
    let mut ok = true;
    let mut fail = |msg: String| {
        eprintln!("FAIL: {msg}");
        ok = false;
    };
    if !deterministic {
        fail("two same-seed passes diverged".to_string());
    }
    for (s, t) in pass1.iter().zip(&stats) {
        if t.offered != t.completed + t.shed {
            fail(format!("{}: offered {} != completed+shed", s.name, t.offered));
        }
        if t.completed == 0 {
            fail(format!("{}: no request completed", s.name));
        }
        match s.mode {
            "switching" => {
                if s.switches.attaches == 0 || s.switches.detaches == 0 {
                    fail(format!("{}: switching scenario never switched", s.name));
                }
                if s.switches.attach_cycles == 0 {
                    fail(format!("{}: no attach cycles charged", s.name));
                }
            }
            "reactive" => {
                if s.faults_recovered == 0 {
                    fail(format!("{}: no fault recovered", s.name));
                }
                if s.switches.attaches == 0 {
                    fail(format!("{}: reactive scenario never attached", s.name));
                }
            }
            "updating" => {
                if s.switches.updates == 0 || s.switches.update_cycles == 0 {
                    fail(format!("{}: live-update scenario never updated", s.name));
                }
                if s.switches.attaches != 0 || s.switches.detaches != 0 {
                    fail(format!(
                        "{}: live-update scenario must never leave virtual mode",
                        s.name
                    ));
                }
            }
            _ => {
                if s.switches.attaches != 0 || s.switches.detaches != 0 {
                    fail(format!(
                        "{}: steady scenario switched during traffic",
                        s.name
                    ));
                }
            }
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
