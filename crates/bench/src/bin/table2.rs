//! Regenerate Table 2: lmbench latencies in SMP mode.

use mercury_workloads::lmbench::LmbenchIters;
use mercury_workloads::report::lmbench_table;

fn main() {
    let table = lmbench_table(2, LmbenchIters::default());
    println!("{}", table.render());
}
