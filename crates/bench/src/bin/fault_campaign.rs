//! Seeded fault-injection campaigns driving on-demand attach (§6.2/§6.3,
//! DESIGN.md §12, EXPERIMENTS.md "Fault-injection campaigns").
//!
//! Runs deterministic fault campaigns against freshly built testbeds:
//! memory bit-flips under a scrubber sweep (native / virtual / reactive
//! modes), a wedged disk plus stuck interrupt lines, corrupted IDT
//! descriptors plus spurious interrupts, failed/slow hypercalls under a
//! paravirtual workload, VMM-state corruption answered by live-update
//! to a pristine successor (`update-on-suspicion`, including one
//! deliberately rolled-back attempt), and an SMP scenario whose peer
//! CPU never reaches the rendezvous (the documented degradation path).
//! Every
//! campaign is a pure function of `--seed`: the whole run executes
//! twice in-process and the per-fault records must be bit-identical
//! before anything is archived.
//!
//! Emits `faultgen_results.json`: a summary (per-class totals, detection
//! and recovery rates, attach/detach switch counts, rendezvous
//! failures) plus one record per fault (class, injection/detection
//! cycles, recovery action, attach attempts, how it was answered).
//!
//! Exits non-zero unless the campaign was deterministic, every gate
//! below holds, and at least one fault was recovered:
//!
//! * full run: ≥200 faults over ≥4 classes, ≥95% detected, ≥95%
//!   answered (by reactive attach, an already-attached VMM, or an
//!   explicit baseline/degradation path);
//! * `--quick` (CI smoke): ≥1 recovered fault.
//!
//! The two passes double as the **skip-neutrality gate** (DESIGN.md
//! §14.3): pass 1 runs with the event clock's fast-forward on, pass 2
//! with it off, and the bit-identical record comparison proves the skip
//! changed no accounting.  `--no-skip` forces both passes to
//! quantum-tick.  Outside `--quick`, the wall-clock-timed passes yield
//! a simulated-Mcycles-per-host-second entry merged into
//! `sim_speed.json` under `"faultgen"` (gated by `tools/benchgate.py
//! --sim-speed`); the simulated-cycle numerator is the per-scenario
//! maximum `detected_cycle` — an archived, deterministic quantity.
//! `--campaign` multiplies the fault counts ~77x for the nightly
//! campaigns the skip makes affordable (EXPERIMENTS.md "Campaign scale"; hypercalls
//! scale only 10x — each one costs a live mmap page — and the SMP
//! scenario stays at 6, its rendezvous timeout burning ~5 wall-clock
//! seconds by design).

use faultgen::rng::SplitMix64;
use faultgen::{FaultSpec, FaultTarget};
use mercury_cluster::{Watchdog, WatchdogPolicy};
use mercury_workloads::configs::{SysKind, TestBed};
use simx86::cpu::vectors;
use simx86::PhysAddr;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::Arc;

/// How the watchdog answered a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Answer {
    /// Reactive on-demand attach was (or already had been) made for
    /// this campaign window.
    Attach,
    /// The VMM was already attached (virtual-mode deployment).
    AlreadyVirtual,
    /// Policy said never attach (the native baseline).
    NativeBaseline,
    /// Attach abandoned after a rendezvous timeout; recovered natively
    /// (DESIGN.md §12.4 degradation path).
    DegradedNative,
}

impl Answer {
    fn as_str(self) -> &'static str {
        match self {
            Answer::Attach => "attach",
            Answer::AlreadyVirtual => "already-virtual",
            Answer::NativeBaseline => "native-baseline",
            Answer::DegradedNative => "degraded-native",
        }
    }
}

/// One fault's outcome — everything integer/enum so two same-seed runs
/// can be compared exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Record {
    scenario: &'static str,
    mode: &'static str,
    fault_id: u64,
    class: &'static str,
    injected_cycle: u64,
    detected_cycle: u64,
    action: &'static str,
    attach_attempts: u32,
    answer: Answer,
    recovered: bool,
}

/// Switch-engine counters accumulated across every scenario of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SwitchTotals {
    attaches: u64,
    detaches: u64,
    deferrals: u64,
    rendezvous_failures: u64,
}

impl SwitchTotals {
    fn absorb(&mut self, bed: &TestBed, base: SwitchTotals) {
        let s = snapshot(bed);
        self.attaches += s.attaches - base.attaches;
        self.detaches += s.detaches - base.detaches;
        self.deferrals += s.deferrals - base.deferrals;
        self.rendezvous_failures += s.rendezvous_failures - base.rendezvous_failures;
    }
}

fn snapshot(bed: &TestBed) -> SwitchTotals {
    use std::sync::atomic::Ordering::Relaxed;
    match &bed.mercury {
        Some(m) => SwitchTotals {
            attaches: m.stats.attaches.load(Relaxed),
            detaches: m.stats.detaches.load(Relaxed),
            deferrals: m.stats.deferrals.load(Relaxed),
            rendezvous_failures: m.stats.rendezvous_failures.load(Relaxed),
        },
        None => SwitchTotals::default(),
    }
}

/// Scenario sizing: (reactive mem, native mem, virtual mem, disk
/// wedges, stuck lines, corrupt gates, spurious, hypercalls, vmm
/// corruptions, smp).
struct Sizing {
    mem_reactive: u64,
    mem_native: u64,
    mem_virtual: u64,
    disk: u64,
    stuck: u64,
    gates: u64,
    spurious: u64,
    hypercalls: u64,
    vmm: u64,
    smp: u64,
}

impl Sizing {
    fn full() -> Sizing {
        Sizing {
            mem_reactive: 48,
            mem_native: 12,
            mem_virtual: 24,
            disk: 24,
            stuck: 12,
            gates: 18,
            spurious: 18,
            hypercalls: 48,
            vmm: 12,
            smp: 6,
        }
    }

    /// CI smoke: same shape, two orders of magnitude cheaper, and no
    /// SMP-degraded scenario (its rendezvous timeout costs real
    /// wall-clock seconds by design).
    fn quick() -> Sizing {
        Sizing {
            mem_reactive: 8,
            mem_native: 3,
            mem_virtual: 4,
            disk: 6,
            stuck: 2,
            gates: 4,
            spurious: 4,
            hypercalls: 8,
            vmm: 3,
            smp: 0,
        }
    }

    /// Nightly campaign: ~77x the full fault count, affordable because
    /// the watchdog's backoff and arm deadlines fast-forward through
    /// the event clock.  Hypercalls scale only 10x (each fault costs a
    /// live page in the workload mmap) and the SMP-degraded scenario
    /// stays at 6 (its rendezvous timeout burns real wall-clock by
    /// design).
    fn campaign() -> Sizing {
        Sizing {
            mem_reactive: 4_800,
            mem_native: 1_200,
            mem_virtual: 2_400,
            disk: 2_400,
            stuck: 1_200,
            gates: 1_800,
            spurious: 1_800,
            hypercalls: 480,
            vmm: 240,
            smp: 6,
        }
    }
}

fn watchdog_for(bed: &TestBed, policy: WatchdogPolicy) -> Watchdog {
    Watchdog::new(
        Arc::clone(bed.mercury.as_ref().expect("scenario bed has mercury")),
        Arc::clone(&bed.machine),
        Arc::clone(&bed.kernel),
        policy,
    )
}

/// Drain the watchdog's reports into campaign records.
fn collect(
    out: &mut Vec<Record>,
    dog: &Watchdog,
    taken: &mut usize,
    scenario: &'static str,
    mode: &'static str,
    answer_for: impl Fn(&mercury_cluster::FaultReport) -> Answer,
) {
    for r in &dog.reports()[*taken..] {
        out.push(Record {
            scenario,
            mode,
            fault_id: r.fault_id,
            class: r.class.as_str(),
            injected_cycle: r.injected_cycle,
            detected_cycle: r.detected_cycle,
            action: r.action.as_str(),
            attach_attempts: r.attach_attempts,
            answer: answer_for(r),
            recovered: r.recovered,
        });
    }
    *taken = dog.reports().len();
}

/// Memory bit-flips detected by a scrubber sweep over high physical
/// frames, in one of the three deployment modes.
fn scenario_mem(
    records: &mut Vec<Record>,
    totals: &mut SwitchTotals,
    rng: &mut SplitMix64,
    mode: &'static str,
    count: u64,
) {
    let kind = if mode == "virtual" {
        SysKind::MV
    } else {
        SysKind::MN
    };
    let bed = TestBed::build(kind, 1);
    let base = snapshot(&bed);
    let cpu = bed.machine.boot_cpu();
    let policy = WatchdogPolicy {
        attach_on_fault: mode == "reactive",
        ..WatchdogPolicy::default()
    };
    let mut dog = watchdog_for(&bed, policy);
    let scenario: &'static str = match mode {
        "native" => "mem-scrub-native",
        "virtual" => "mem-scrub-virtual",
        _ => "mem-scrub-reactive",
    };

    // Plant flips in the scrubber's sweep window (top 1k frames of the
    // 16k-frame machine), one per word so each sweep read fires exactly
    // one fault.
    faultgen::reset();
    let mut used = BTreeSet::new();
    let mut plan = Vec::new();
    for i in 0..count {
        let (frame, word) = loop {
            let f = 15_000 + rng.below(1_000) as u32;
            let w = rng.below(512) as u16;
            if used.insert((f, w)) {
                break (f, w);
            }
        };
        plan.push(FaultSpec {
            id: 1_000 + i,
            due_cycle: 0,
            target: FaultTarget::MemWord {
                frame,
                word,
                bit: rng.below(64) as u8,
            },
        });
    }

    let mut taken = 0;
    for batch in plan.chunks(8) {
        faultgen::arm(batch.to_vec());
        // The scrub sweep: read every planted word (plus neighbours, so
        // the sweep is not a fault oracle), detect, recover.
        for spec in batch {
            if let FaultTarget::MemWord { frame, word, .. } = spec.target {
                for w in [word, (word + 1) % 512] {
                    let pa = PhysAddr(((frame as u64) << 12) + (w as u64) * 8);
                    bed.machine.mem.read_word(cpu, pa).expect("sweep read");
                }
            }
        }
        dog.poll(cpu);
        collect(records, &dog, &mut taken, scenario, mode, |r| match mode {
            "native" => Answer::NativeBaseline,
            "virtual" => Answer::AlreadyVirtual,
            _ if r.degraded => Answer::DegradedNative,
            _ => Answer::Attach,
        });
    }
    dog.end_window(cpu);
    faultgen::reset();
    totals.absorb(&bed, base);
}

/// A wedged disk (device timeouts) plus stuck interrupt lines, answered
/// by reactive attach: §6.2's device-driver-isolation shape.
fn scenario_device(
    records: &mut Vec<Record>,
    totals: &mut SwitchTotals,
    rng: &mut SplitMix64,
    disk_count: u64,
    stuck_count: u64,
) {
    use simx86::devices::disk::{DiskOp, DiskRequest};

    let bed = TestBed::build(SysKind::MN, 1);
    let base = snapshot(&bed);
    let cpu = bed.machine.boot_cpu();
    let mut dog = watchdog_for(&bed, WatchdogPolicy::default());
    let mut taken = 0;
    let answer = |r: &mercury_cluster::FaultReport| {
        if r.degraded {
            Answer::DegradedNative
        } else {
            Answer::Attach
        }
    };

    faultgen::reset();
    // Wedge `disk_count` of the driver's requests, chosen by seed.
    let total_reqs = disk_count * 3;
    let mut wedged = BTreeSet::new();
    while (wedged.len() as u64) < disk_count {
        wedged.insert(10_000 + rng.below(total_reqs));
    }
    faultgen::arm(
        wedged
            .iter()
            .enumerate()
            .map(|(i, id)| FaultSpec {
                id: 2_000 + i as u64,
                due_cycle: 0,
                target: FaultTarget::DiskRequest { req_id: *id },
            })
            .collect(),
    );
    for group in 0..disk_count {
        for k in 0..3 {
            let id = 10_000 + group * 3 + k;
            bed.machine.disk.submit(DiskRequest {
                id,
                op: DiskOp::Write,
                sector: (id - 10_000) % bed.machine.disk.sectors(),
                count: 1,
                pa: PhysAddr(0x3000),
            });
        }
        bed.machine.pump_devices();
        dog.poll(cpu);
        collect(records, &dog, &mut taken, "device-isolation", "reactive", answer);
        while bed.machine.disk.reap().is_some() {}
    }
    // A wedge can fire during a *recovery* pump; its signal is only seen
    // by the next poll, so keep pumping + polling until the queue drains.
    let mut rounds = 0;
    while bed.machine.disk.queued() > 0 {
        rounds += 1;
        assert!(rounds < 1_000, "disk drain stalled with queue wedged");
        bed.machine.pump_devices();
        dog.poll(cpu);
        collect(records, &dog, &mut taken, "device-isolation", "reactive", answer);
        while bed.machine.disk.reap().is_some() {}
    }
    assert_eq!(bed.machine.disk.queued(), 0, "disk queue fully drained");

    // Stuck lines: each service point re-asserts until the watchdog
    // masks the line.
    faultgen::arm(
        (0..stuck_count)
            .map(|i| FaultSpec {
                id: 2_500 + i,
                due_cycle: 0,
                target: FaultTarget::IrqLine {
                    cpu: 0,
                    vector: if rng.below(2) == 0 {
                        vectors::TIMER
                    } else {
                        vectors::NIC
                    },
                },
            })
            .collect(),
    );
    for _ in 0..stuck_count {
        cpu.service_pending();
        dog.poll(cpu);
        collect(records, &dog, &mut taken, "device-isolation", "reactive", answer);
    }
    dog.end_window(cpu);
    faultgen::reset();
    totals.absorb(&bed, base);
}

/// Corrupted IDT descriptors (dispatches silently swallowed until the
/// watchdog reinstalls the pristine table) plus spurious interrupts.
fn scenario_control_plane(
    records: &mut Vec<Record>,
    totals: &mut SwitchTotals,
    rng: &mut SplitMix64,
    gate_count: u64,
    spurious_count: u64,
) {
    let bed = TestBed::build(SysKind::MN, 1);
    let base = snapshot(&bed);
    let cpu = bed.machine.boot_cpu();
    let mut dog = watchdog_for(&bed, WatchdogPolicy::default());
    let mut taken = 0;
    let answer = |r: &mercury_cluster::FaultReport| {
        if r.degraded {
            Answer::DegradedNative
        } else {
            Answer::Attach
        }
    };

    faultgen::reset();
    let gates: Vec<u8> = (0..gate_count)
        .map(|_| {
            if rng.below(2) == 0 {
                vectors::DISK
            } else {
                vectors::NIC
            }
        })
        .collect();
    faultgen::arm(
        gates
            .iter()
            .enumerate()
            .map(|(i, v)| FaultSpec {
                id: 3_000 + i as u64,
                due_cycle: 0,
                target: FaultTarget::IdtGate { cpu: 0, vector: *v },
            })
            .collect(),
    );
    for v in &gates {
        // The device raises its vector; the corrupted gate swallows the
        // dispatch, which is exactly the detectable symptom.
        cpu.raise(*v);
        cpu.service_pending();
        dog.poll(cpu);
        collect(records, &dog, &mut taken, "control-plane", "reactive", answer);
    }

    faultgen::arm(
        (0..spurious_count)
            .map(|i| FaultSpec {
                id: 3_500 + i,
                due_cycle: 0,
                target: FaultTarget::Spurious {
                    cpu: 0,
                    vector: vectors::TIMER,
                },
            })
            .collect(),
    );
    for _ in 0..spurious_count {
        cpu.service_pending();
        dog.poll(cpu);
        collect(records, &dog, &mut taken, "control-plane", "reactive", answer);
    }
    dog.end_window(cpu);
    faultgen::reset();
    totals.absorb(&bed, base);
}

/// Failed and slow hypercalls under a paravirtual page-table workload
/// (the M-V deployment: the VMM is already attached).
fn scenario_hypercall(
    records: &mut Vec<Record>,
    totals: &mut SwitchTotals,
    rng: &mut SplitMix64,
    count: u64,
) {
    let bed = TestBed::build(SysKind::MV, 1);
    let base = snapshot(&bed);
    let cpu = bed.machine.boot_cpu();
    let mut dog = watchdog_for(&bed, WatchdogPolicy::default());
    let mut taken = 0;

    faultgen::reset();
    let plan: Vec<FaultSpec> = (0..count)
        .map(|i| FaultSpec {
            id: 4_000 + i,
            due_cycle: 0,
            target: FaultTarget::Hypercall {
                cpu: 0,
                penalty_cycles: rng.range(500, 5_000),
                slow: i % 2 == 1,
            },
        })
        .collect();

    let sess = bed.session(0);
    let va = sess
        .mmap(count + 1, nimbus::mm::Prot::RW, nimbus::kernel::MmapBacking::Anon)
        .expect("mmap workload buffer");
    for (i, batch) in plan.chunks(4).enumerate() {
        faultgen::arm(batch.to_vec());
        for (k, _) in batch.iter().enumerate() {
            // Touching a fresh anonymous page forces page-table update
            // hypercalls through the Xen-mode paravirt object.
            let page = (i * 4 + k) as u64;
            sess.poke(simx86::VirtAddr(va.0 + page * 4096), page)
                .expect("poke");
        }
        dog.poll(cpu);
        collect(
            records,
            &dog,
            &mut taken,
            "hypercall-storm",
            "virtual",
            |_| Answer::AlreadyVirtual,
        );
    }
    dog.end_window(cpu);
    faultgen::reset();
    totals.absorb(&bed, base);
}

/// Latent corruption inside the running VMM's own frame accounting,
/// answered by the watchdog's `update-on-suspicion` policy (DESIGN.md
/// §16): each fault wipes one frame record behind the guest's back at a
/// hypervisor service point, and the recovery is a *live-update* to a
/// pristine, newer-versioned successor — no detach, guest memory and
/// file state untouched, VMM version marching v1 → v2 → … as the
/// campaign proceeds.  When the sizing allows, the second-to-last fault
/// is handled under an injected handshake abort, so its update attempt
/// rolls back (incumbent keeps the machine, fault stays outstanding);
/// the last fault's *completed* update then clears the whole suspicion
/// backlog — one rebuilt table heals every wiped record.
fn scenario_vmm_update(
    records: &mut Vec<Record>,
    totals: &mut SwitchTotals,
    rng: &mut SplitMix64,
    count: u64,
) {
    if count == 0 {
        return;
    }
    let bed = TestBed::build(SysKind::MV, 1);
    let base = snapshot(&bed);
    let cpu = bed.machine.boot_cpu();
    let mercury = Arc::clone(bed.mercury.as_ref().expect("MV bed has mercury"));
    let mut dog = watchdog_for(&bed, WatchdogPolicy::default());
    let mut taken = 0;
    let version_before = mercury.hv_version();

    faultgen::reset();
    let sess = bed.session(0);
    let va = sess
        .mmap(count + 1, nimbus::mm::Prot::RW, nimbus::kernel::MmapBacking::Anon)
        .expect("mmap workload buffer");
    for i in 0..count {
        // One suspicion at a time: every fault earns its own update.
        faultgen::arm(vec![FaultSpec {
            id: 6_000 + i,
            due_cycle: 0,
            target: FaultTarget::VmmState {
                cpu: 0,
                frame: 8 + rng.below(4_096) as u32,
            },
        }]);
        let rollback_leg = count >= 2 && i == count - 2;
        if rollback_leg {
            mercury.inject_update_abort(Some(mercury::LiveUpdatePhase::Handshake));
        }
        // A page-table update hypercall is the hypervisor service point
        // the corruption lands on.
        sess.poke(simx86::VirtAddr(va.0 + i * 4096), i).expect("poke");
        dog.poll(cpu);
        collect(records, &dog, &mut taken, "vmm-update", "virtual", |_| {
            Answer::AlreadyVirtual
        });
        assert_eq!(sess.peek(simx86::VirtAddr(va.0 + i * 4096)).unwrap(), i);
        if rollback_leg {
            assert_eq!(
                faultgen::outstanding(),
                1,
                "rolled-back update leaves its fault outstanding"
            );
        }
    }
    assert_eq!(
        faultgen::outstanding(),
        0,
        "a completed update clears the whole suspicion backlog"
    );
    assert!(
        mercury.hv_version() > version_before,
        "live-updates must advance the VMM version"
    );
    dog.end_window(cpu);
    faultgen::reset();
    totals.absorb(&bed, base);
}

/// Two CPUs, and the peer never reaches a rendezvous service point: the
/// attach times out once, the watchdog goes sticky-degraded, and every
/// fault is recovered natively.  This is the documented degradation
/// path (DESIGN.md §12.4) — and the single genuinely slow scenario,
/// since the rendezvous timeout burns real wall-clock by design.
fn scenario_smp_degraded(
    records: &mut Vec<Record>,
    totals: &mut SwitchTotals,
    rng: &mut SplitMix64,
    count: u64,
) {
    let bed = TestBed::build(SysKind::MN, 2);
    let base = snapshot(&bed);
    let cpu = bed.machine.boot_cpu();
    let mut dog = watchdog_for(&bed, WatchdogPolicy::default());
    let mut taken = 0;

    faultgen::reset();
    let mut used = BTreeSet::new();
    let mut plan = Vec::new();
    for i in 0..count {
        let (frame, word) = loop {
            let f = 15_000 + rng.below(1_000) as u32;
            let w = rng.below(512) as u16;
            if used.insert((f, w)) {
                break (f, w);
            }
        };
        plan.push(FaultSpec {
            id: 5_000 + i,
            due_cycle: 0,
            target: FaultTarget::MemWord {
                frame,
                word,
                bit: rng.below(64) as u8,
            },
        });
    }
    faultgen::arm(plan.clone());
    for spec in &plan {
        if let FaultTarget::MemWord { frame, word, .. } = spec.target {
            let pa = PhysAddr(((frame as u64) << 12) + (word as u64) * 8);
            bed.machine.mem.read_word(cpu, pa).expect("sweep read");
        }
    }
    eprintln!("smp-degraded: expecting one ~5 s rendezvous timeout …");
    dog.poll(cpu);
    collect(
        records,
        &dog,
        &mut taken,
        "smp-degraded",
        "reactive",
        |r| {
            if r.degraded {
                Answer::DegradedNative
            } else {
                Answer::Attach
            }
        },
    );
    assert!(dog.degraded(), "peer never rendezvoused: must degrade");
    dog.end_window(cpu);
    faultgen::reset();
    totals.absorb(&bed, base);
}

/// One full campaign pass.  Everything downstream of `seed` is on the
/// simulated clock, so two calls with the same seed must return
/// identical records — `main` verifies exactly that.
fn run_campaign(seed: u64, sizing: &Sizing) -> (Vec<Record>, SwitchTotals) {
    let mut rng = SplitMix64::new(seed);
    let mut records = Vec::new();
    let mut totals = SwitchTotals::default();
    scenario_mem(&mut records, &mut totals, &mut rng, "reactive", sizing.mem_reactive);
    scenario_mem(&mut records, &mut totals, &mut rng, "native", sizing.mem_native);
    scenario_mem(&mut records, &mut totals, &mut rng, "virtual", sizing.mem_virtual);
    scenario_device(&mut records, &mut totals, &mut rng, sizing.disk, sizing.stuck);
    scenario_control_plane(&mut records, &mut totals, &mut rng, sizing.gates, sizing.spurious);
    scenario_hypercall(&mut records, &mut totals, &mut rng, sizing.hypercalls);
    scenario_vmm_update(&mut records, &mut totals, &mut rng, sizing.vmm);
    if sizing.smp > 0 {
        scenario_smp_degraded(&mut records, &mut totals, &mut rng, sizing.smp);
    }
    (records, totals)
}

fn planned_total(s: &Sizing) -> u64 {
    s.mem_reactive
        + s.mem_native
        + s.mem_virtual
        + s.disk
        + s.stuck
        + s.gates
        + s.spurious
        + s.hypercalls
        + s.vmm
        + s.smp
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    const {
        assert!(
            faultgen::ENABLED,
            "fault_campaign needs the faultgen hooks compiled in (feature `enabled`)"
        )
    };

    let mut seed = 7u64;
    let mut quick = false;
    let mut campaign = false;
    let mut no_skip = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--quick" => quick = true,
            "--campaign" => campaign = true,
            "--no-skip" => no_skip = true,
            other => {
                panic!("unknown argument {other:?} (use --seed N / --quick / --campaign / --no-skip)")
            }
        }
    }
    assert!(
        !(quick && campaign),
        "--quick and --campaign are mutually exclusive"
    );
    let sizing = if quick {
        Sizing::quick()
    } else if campaign {
        Sizing::campaign()
    } else {
        Sizing::full()
    };
    let label = if quick {
        "quick"
    } else if campaign {
        "campaign"
    } else {
        "full"
    };

    // Pass 1 fast-forwards the watchdog's dead time through the event
    // clock; pass 2 quantum-ticks the same spans.  Bit-identical
    // records are both the determinism gate and the skip-neutrality
    // proof (DESIGN.md §14.3).
    eprintln!(
        "fault_campaign: seed {seed}, {} planned faults ({label}), skip-on + skip-off passes",
        planned_total(&sizing),
    );
    simx86::evclock::set_default_skip(!no_skip);
    let t1 = std::time::Instant::now();
    let (records, totals) = run_campaign(seed, &sizing);
    let host_skip_on = t1.elapsed().as_secs_f64();
    simx86::evclock::set_default_skip(false);
    let t2 = std::time::Instant::now();
    let (records2, totals2) = run_campaign(seed, &sizing);
    let host_skip_off = t2.elapsed().as_secs_f64();
    simx86::evclock::set_default_skip(true);
    let deterministic = records == records2 && totals == totals2;

    // -- aggregate -------------------------------------------------------
    let planned = planned_total(&sizing);
    let detected = records.len() as u64;
    let recovered = records.iter().filter(|r| r.recovered).count() as u64;
    let answered = records
        .iter()
        .filter(|r| {
            r.recovered
                && matches!(
                    r.answer,
                    Answer::Attach
                        | Answer::AlreadyVirtual
                        | Answer::NativeBaseline
                        | Answer::DegradedNative
                )
        })
        .count() as u64;
    let answered_attach = records
        .iter()
        .filter(|r| matches!(r.answer, Answer::Attach | Answer::AlreadyVirtual))
        .count() as u64;
    let pct = |n: u64| 100.0 * n as f64 / planned.max(1) as f64;

    // Per-class: injected count, recovered count, mean detection latency.
    let mut by_class: BTreeMap<&'static str, (u64, u64, u64)> = BTreeMap::new();
    for r in &records {
        let e = by_class.entry(r.class).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += r.recovered as u64;
        e.2 += r.detected_cycle.saturating_sub(r.injected_cycle);
    }

    // -- report ----------------------------------------------------------
    println!("Fault campaign (seed {seed}): {detected}/{planned} detected, {recovered} recovered");
    println!("| class | injected | recovered | mean detect latency (cycles) |");
    println!("|---|---:|---:|---:|");
    for (class, (inj, rec, lat)) in &by_class {
        println!("| {class} | {inj} | {rec} | {} |", lat / inj.max(&1));
    }
    println!(
        "switches: {} attaches, {} detaches, {} deferrals, {} rendezvous failures",
        totals.attaches, totals.detaches, totals.deferrals, totals.rendezvous_failures
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"determinism\": \"{}\",\n",
        if deterministic { "verified" } else { "FAILED" }
    ));
    json.push_str("  \"summary\": {\n");
    json.push_str(&format!("    \"planned_faults\": {planned},\n"));
    json.push_str(&format!("    \"detected\": {detected},\n"));
    json.push_str(&format!("    \"detected_pct\": {:.2},\n", pct(detected)));
    json.push_str(&format!("    \"recovered\": {recovered},\n"));
    json.push_str(&format!("    \"recovery_pct\": {:.2},\n", pct(recovered)));
    json.push_str(&format!("    \"answered\": {answered},\n"));
    json.push_str(&format!("    \"answered_pct\": {:.2},\n", pct(answered)));
    json.push_str(&format!(
        "    \"answered_by_attach_or_virtual\": {answered_attach},\n"
    ));
    json.push_str(&format!("    \"attaches\": {},\n", totals.attaches));
    json.push_str(&format!("    \"detaches\": {},\n", totals.detaches));
    json.push_str(&format!("    \"deferrals\": {},\n", totals.deferrals));
    json.push_str(&format!(
        "    \"rendezvous_failures\": {},\n",
        totals.rendezvous_failures
    ));
    json.push_str("    \"by_class\": {\n");
    let rows: Vec<String> = by_class
        .iter()
        .map(|(class, (inj, rec, lat))| {
            format!(
                "      \"{class}\": {{\"injected\": {inj}, \"recovered\": {rec}, \"mean_detect_latency_cycles\": {}}}",
                lat / inj.max(&1)
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n    }\n  },\n");
    json.push_str("  \"faults\": [\n");
    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "    {{\"scenario\": \"{}\", \"mode\": \"{}\", \"fault_id\": {}, \"class\": \"{}\", \"injected_cycle\": {}, \"detected_cycle\": {}, \"action\": \"{}\", \"attach_attempts\": {}, \"answer\": \"{}\", \"recovered\": {}}}",
                json_escape(r.scenario),
                json_escape(r.mode),
                r.fault_id,
                json_escape(r.class),
                r.injected_cycle,
                r.detected_cycle,
                json_escape(r.action),
                r.attach_attempts,
                r.answer.as_str(),
                r.recovered
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("faultgen_results.json", &json).expect("write faultgen_results.json");
    eprintln!("wrote faultgen_results.json");

    // Simulated throughput: each scenario's stream time is its last
    // detection cycle — a deterministic, archived quantity (bed machine
    // clocks would fold in host-timing-dependent rendezvous spin on the
    // SMP scenario).  Quick runs are too short to be meaningful.
    if !quick {
        let mut per_scenario: BTreeMap<&'static str, u64> = BTreeMap::new();
        for r in &records {
            let e = per_scenario.entry(r.scenario).or_insert(0);
            *e = (*e).max(r.detected_cycle);
        }
        let sim_mcycles = per_scenario.values().sum::<u64>() as f64 / 1e6;
        mercury_bench::record_sim_speed(
            "faultgen",
            &mercury_bench::SimSpeed {
                sim_mcycles,
                host_seconds_skip_on: host_skip_on,
                host_seconds_skip_off: host_skip_off,
                mcycles_per_host_second: sim_mcycles / host_skip_on.max(1e-9),
                skip_speedup: host_skip_off / host_skip_on.max(1e-9),
            },
        );
    }

    // -- gates -----------------------------------------------------------
    let mut ok = true;
    let mut fail = |msg: String| {
        eprintln!("FAIL: {msg}");
        ok = false;
    };
    if !deterministic {
        fail(format!(
            "two same-seed passes diverged ({} vs {} records)",
            records.len(),
            records2.len()
        ));
    }
    if recovered == 0 {
        fail("no fault was recovered".to_string());
    }
    if !quick {
        if planned < 200 {
            fail(format!("{planned} planned faults < 200"));
        }
        if by_class.len() < 4 {
            fail(format!("{} fault classes < 4", by_class.len()));
        }
        if pct(detected) < 95.0 {
            fail(format!("detection rate {:.2}% < 95%", pct(detected)));
        }
        if pct(answered) < 95.0 {
            fail(format!("answered rate {:.2}% < 95%", pct(answered)));
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
