//! # mercury-bench — regenerating the paper's tables and figures
//!
//! Binaries (run with `cargo run -p mercury-bench --release --bin <name>`):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — lmbench latencies, uniprocessor |
//! | `table2` | Table 2 — lmbench latencies, SMP |
//! | `fig3` | Fig. 3 — relative application performance, uniprocessor |
//! | `fig4` | Fig. 4 — relative application performance, SMP |
//! | `mode_switch` | §7.4 — mode switch times, plus sharded-vs-serial attach |
//! | `ablation_tracking` | §5.1.2 — recompute vs active tracking vs dirty recompute |
//! | `switch_timeline` | §7.3 — per-phase switch decomposition (merctrace) |
//! | `fault_campaign` | DESIGN.md §12 — seeded dependability campaigns (`faultgen_results.json`) |
//! | `all` | everything above, plus a JSON dump for EXPERIMENTS.md |
//!
//! The `benches/` directory carries criterion harnesses over the same
//! workloads (host-time performance of the simulator itself).

use mercury::{Mercury, SwitchOutcome, TrackingStrategy};
use mercury_workloads::configs::{switch_with_peers, SysKind, TestBed};
use simx86::costs::cycles_to_us;
use std::sync::atomic::Ordering;

/// One campaign binary's simulated-throughput measurement, archived in
/// `sim_speed.json` and gated by `tools/benchgate.py --sim-speed`
/// (DESIGN.md §14.3, EXPERIMENTS.md "Campaign scale").
///
/// The simulated-cycle numerator always comes from deterministic
/// archived quantities (request record finish offsets, fault detection
/// cycles) — never from machine clocks, whose SMP totals include
/// host-timing-dependent rendezvous spin.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SimSpeed {
    /// Simulated mega-cycles the suite covered (one skip-on pass).
    pub sim_mcycles: f64,
    /// Host seconds for the pass with event-driven time skip on.
    pub host_seconds_skip_on: f64,
    /// Host seconds for the pass with skip off (quantum ticking).
    pub host_seconds_skip_off: f64,
    /// Headline throughput: simulated Mcycles per host second, skip on.
    pub mcycles_per_host_second: f64,
    /// `host_seconds_skip_off / host_seconds_skip_on`: wall-clock factor
    /// the event-driven skip buys on this suite.
    pub skip_speedup: f64,
}

/// Merge `entry` under `key` into `sim_speed.json` in the working
/// directory, preserving entries other binaries already wrote.  The
/// file is small and human-diffable; nightly CI uploads it and
/// `benchgate.py --sim-speed` compares it against the archived copy at
/// the repo root.
pub fn record_sim_speed(key: &str, entry: &SimSpeed) {
    let mut root: serde_json::Map<String, serde_json::Value> =
        std::fs::read_to_string("sim_speed.json")
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
            .unwrap_or_default();
    root.insert(
        key.to_string(),
        serde_json::to_value(entry).expect("serialize sim speed entry"),
    );
    let mut out =
        serde_json::to_string_pretty(&serde_json::Value::Object(root)).expect("render sim_speed");
    out.push('\n');
    std::fs::write("sim_speed.json", out).expect("write sim_speed.json");
    eprintln!(
        "sim_speed.json[{key}]: {:.1} simulated Mcycles in {:.2}s host \
         ({:.1} Mcycles/s, skip speedup {:.2}x)",
        entry.sim_mcycles,
        entry.host_seconds_skip_on,
        entry.mcycles_per_host_second,
        entry.skip_speedup,
    );
}

/// Measured mode-switch times for one strategy.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SwitchTimes {
    /// Strategy name.
    pub strategy: String,
    /// Mean native→virtual time (µs), all samples.
    pub attach_us: f64,
    /// First (cold) native→virtual time (µs).  Under the dirty-baseline
    /// strategies there is no full-table cold attach any more: the
    /// boot-time pre-cache arms the snapshot at install, so even the
    /// first attach pays only for the frames dirtied since boot.  For
    /// the legacy strategies this is the full-rate first validation.
    pub cold_attach_us: f64,
    /// Mean of the warm re-attaches (µs): every sample after the first.
    pub warm_attach_us: f64,
    /// Mean virtual→native time (µs).
    pub detach_us: f64,
    /// Samples taken.
    pub samples: u32,
}

/// Sharded-vs-serial attach-time `page_info` recompute on an SMP rig
/// (§5.4 work phase: parked rendezvous peers pull frame chunks).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ShardedRecompute {
    /// Simulated CPUs on the rig (1 control processor + peers).
    pub cpus: usize,
    /// Mean attach-time recompute cost, serial walk on the CP (µs).
    pub serial_pginfo_us: f64,
    /// Mean attach-time recompute cost, sharded across the rendezvoused
    /// peers — the CP charges the makespan, not the sum (µs).
    pub sharded_pginfo_us: f64,
    /// `serial / sharded`.
    pub speedup: f64,
    /// Samples per variant.
    pub samples: u32,
}

/// Measure attach/detach round trips on a fresh M-N system.
pub fn measure_switch_times(strategy: TrackingStrategy, samples: u32) -> SwitchTimes {
    let bed = if strategy == TrackingStrategy::RecomputeOnSwitch {
        TestBed::build(SysKind::MN, 1)
    } else {
        TestBed::build_mn_with_strategy(1, strategy)
    };
    measure_on(&bed, samples)
}

/// Build a uniprocessor M-N testbed with an explicit frame-accounting
/// strategy (the standard testbed always uses the paper's recompute
/// default).  Kept for the ablation binaries; delegates to
/// [`TestBed::build_mn_with_strategy`].
pub fn build_mn_with_strategy(strategy: TrackingStrategy) -> (TestBed, std::sync::Arc<Mercury>) {
    let bed = TestBed::build_mn_with_strategy(1, strategy);
    let mercury = std::sync::Arc::clone(bed.mercury.as_ref().expect("M-N testbed has mercury"));
    (bed, mercury)
}

/// Warm a bed the same way for every measurement: a real process and a
/// 128-page dirty mapping, so the transfer functions have work to do.
fn warm(bed: &TestBed) -> nimbus::Session {
    let sess = bed.session(0);
    sess.exec("lat_proc").expect("exec");
    let va = sess
        .mmap(128, nimbus::mm::Prot::RW, nimbus::kernel::MmapBacking::Anon)
        .expect("mmap");
    for p in 0..128u64 {
        sess.poke(simx86::VirtAddr(va.0 + p * 4096), p)
            .expect("touch");
    }
    sess
}

fn measure_on(bed: &TestBed, samples: u32) -> SwitchTimes {
    let mercury = bed.mercury.as_ref().expect("M-N testbed has mercury");
    let cpu = bed.machine.boot_cpu();
    let _sess = warm(bed);
    let mut attach_total = 0u64;
    let mut detach_total = 0u64;
    let mut cold = 0u64;
    for i in 0..samples {
        let SwitchOutcome::Completed { cycles } = mercury.switch_to_virtual(cpu).expect("attach")
        else {
            panic!("attach did not complete")
        };
        attach_total += cycles;
        if i == 0 {
            cold = cycles;
        }
        let SwitchOutcome::Completed { cycles } = mercury.switch_to_native(cpu).expect("detach")
        else {
            panic!("detach did not complete")
        };
        detach_total += cycles;
    }
    let warm_samples = samples.saturating_sub(1).max(1);
    SwitchTimes {
        strategy: format!("{:?}", mercury.strategy()),
        attach_us: cycles_to_us(attach_total) / samples as f64,
        cold_attach_us: cycles_to_us(cold),
        warm_attach_us: cycles_to_us(attach_total - cold) / warm_samples as f64,
        detach_us: cycles_to_us(detach_total) / samples as f64,
        samples,
    }
}

/// Measure the attach-time `page_info` recompute on a `cpus`-way M-N
/// rig, serial vs sharded.  The peers are serviced by temporary host
/// threads exactly as the SMP testbeds do; the measured quantity is
/// `SwitchStats::last_pginfo_cycles` — the simulated cycles the control
/// processor spent in the recompute phase (serial: the whole walk;
/// sharded: dispatch + its own fair share of chunks + the makespan
/// correction for the slowest peer).
pub fn measure_sharded_recompute(cpus: usize, samples: u32) -> ShardedRecompute {
    assert!(cpus >= 2, "sharding needs at least one peer");
    let bed = TestBed::build_mn_with_strategy(cpus, TrackingStrategy::RecomputeOnSwitch);
    let mercury = bed.mercury.as_ref().expect("M-N testbed has mercury");
    let _sess = warm(&bed);

    let mut totals = [0u64; 2]; // [serial, sharded]
    for (slot, sharded) in [(0usize, false), (1, true)] {
        mercury.set_sharded_recompute(sharded);
        for _ in 0..samples {
            let out = switch_with_peers(&bed.machine, mercury, true);
            assert!(
                matches!(out, SwitchOutcome::Completed { .. }),
                "attach did not complete"
            );
            totals[slot] += mercury.stats.last_pginfo_cycles.load(Ordering::Relaxed);
            switch_with_peers(&bed.machine, mercury, false);
        }
    }
    mercury.set_sharded_recompute(true);

    let serial_us = cycles_to_us(totals[0]) / samples as f64;
    let sharded_us = cycles_to_us(totals[1]) / samples as f64;
    ShardedRecompute {
        cpus,
        serial_pginfo_us: serial_us,
        sharded_pginfo_us: sharded_us,
        speedup: serial_us / sharded_us,
        samples,
    }
}
