//! # mercury-bench — regenerating the paper's tables and figures
//!
//! Binaries (run with `cargo run -p mercury-bench --release --bin <name>`):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — lmbench latencies, uniprocessor |
//! | `table2` | Table 2 — lmbench latencies, SMP |
//! | `fig3` | Fig. 3 — relative application performance, uniprocessor |
//! | `fig4` | Fig. 4 — relative application performance, SMP |
//! | `mode_switch` | §7.4 — mode switch times |
//! | `ablation_tracking` | §5.1.2 — recompute vs active tracking |
//! | `switch_timeline` | §7.3 — per-phase switch decomposition (merctrace) |
//! | `fault_campaign` | DESIGN.md §12 — seeded dependability campaigns (`faultgen_results.json`) |
//! | `all` | everything above, plus a JSON dump for EXPERIMENTS.md |
//!
//! The `benches/` directory carries criterion harnesses over the same
//! workloads (host-time performance of the simulator itself).

use mercury::{Mercury, SwitchOutcome, TrackingStrategy};
use mercury_workloads::configs::{SysKind, TestBed};
use simx86::costs::cycles_to_us;

/// Measured mode-switch times for one strategy.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SwitchTimes {
    /// Strategy name.
    pub strategy: String,
    /// Mean native→virtual time (µs).
    pub attach_us: f64,
    /// Mean virtual→native time (µs).
    pub detach_us: f64,
    /// Samples taken.
    pub samples: u32,
}

/// Measure attach/detach round trips on a fresh M-N system.
pub fn measure_switch_times(strategy: TrackingStrategy, samples: u32) -> SwitchTimes {
    let bed = TestBed::build(SysKind::MN, 1);
    let mercury: &std::sync::Arc<Mercury> = bed.mercury.as_ref().expect("M-N testbed has mercury");
    let cpu = bed.machine.boot_cpu();
    // Rebuild with the requested strategy if it differs.
    let mercury = if strategy == mercury.strategy() {
        std::sync::Arc::clone(mercury)
    } else {
        // Strategy is fixed at install; build a dedicated bed.
        let bed2 = build_mn_with_strategy(strategy);
        return measure_on(&bed2, samples);
    };
    measure_on_parts(&bed, &mercury, cpu, samples, strategy)
}

/// Build an M-N testbed with an explicit frame-accounting strategy
/// (the standard testbed always uses the paper's recompute default).
pub fn build_mn_with_strategy(strategy: TrackingStrategy) -> (TestBed, std::sync::Arc<Mercury>) {
    // The TestBed always uses RecomputeOnSwitch; rebuild MN manually for
    // the alternative strategy.
    use nimbus::drivers::block::NativeBlockDriver;
    use nimbus::drivers::net::NativeNetDriver;
    use nimbus::kernel::{BootMode, KernelConfig};
    use simx86::{Machine, MachineConfig};
    use std::sync::Arc;
    use xenon::Hypervisor;

    let machine = Machine::new(MachineConfig {
        num_cpus: 1,
        mem_frames: 16 * 1024,
        disk_sectors: 96 * 1024,
    });
    let hv = Hypervisor::warm_up(&machine);
    let cpu = machine.boot_cpu();
    let pool = machine.allocator.alloc_many(cpu, 6 * 1024).unwrap();
    let kernel = nimbus::Kernel::boot(
        Arc::clone(&machine),
        KernelConfig {
            pool,
            mode: BootMode::Bare,
            fs_blocks: 8 * 1024,
            fs_first_block: 1,
        },
    )
    .unwrap();
    let bounce = machine.allocator.alloc(cpu).unwrap();
    kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&machine), bounce));
    kernel.set_net_driver(NativeNetDriver::new(Arc::clone(&machine)));
    let mercury = Mercury::install(Arc::clone(&kernel), hv, strategy).unwrap();
    (
        TestBed {
            kind: SysKind::MN,
            machine,
            kernel,
            hv: None,
            mercury: Some(Arc::clone(&mercury)),
            driver_kernel: None,
            dom: None,
        },
        mercury,
    )
}

fn measure_on(parts: &(TestBed, std::sync::Arc<Mercury>), samples: u32) -> SwitchTimes {
    let (bed, mercury) = parts;
    let cpu = bed.machine.boot_cpu();
    measure_on_parts(bed, mercury, cpu, samples, mercury.strategy())
}

fn measure_on_parts(
    bed: &TestBed,
    mercury: &std::sync::Arc<Mercury>,
    cpu: &std::sync::Arc<simx86::Cpu>,
    samples: u32,
    strategy: TrackingStrategy,
) -> SwitchTimes {
    let _ = bed;
    // Exercise the system a little so real processes/tables exist.
    let sess = nimbus::Session::new(std::sync::Arc::clone(mercury.kernel()), 0);
    sess.exec("lat_proc").expect("exec");
    let va = sess
        .mmap(128, nimbus::mm::Prot::RW, nimbus::kernel::MmapBacking::Anon)
        .expect("mmap");
    for p in 0..128u64 {
        sess.poke(simx86::VirtAddr(va.0 + p * 4096), p)
            .expect("touch");
    }
    let mut attach_total = 0u64;
    let mut detach_total = 0u64;
    for _ in 0..samples {
        let SwitchOutcome::Completed { cycles } = mercury.switch_to_virtual(cpu).expect("attach")
        else {
            panic!("attach did not complete")
        };
        attach_total += cycles;
        let SwitchOutcome::Completed { cycles } = mercury.switch_to_native(cpu).expect("detach")
        else {
            panic!("detach did not complete")
        };
        detach_total += cycles;
    }
    SwitchTimes {
        strategy: format!("{strategy:?}"),
        attach_us: cycles_to_us(attach_total) / samples as f64,
        detach_us: cycles_to_us(detach_total) / samples as f64,
        samples,
    }
}
