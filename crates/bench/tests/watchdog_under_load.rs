//! Watchdog-under-load regression tests (DESIGN.md §13.4).
//!
//! The serving layer and the health watchdog share one CPU: the
//! watchdog's detect → attach → recover → detach cycle runs in the
//! scheduler's dispatch hook, charged to the same simulated clock the
//! requests run on.  These tests pin the contract of that interleaving:
//!
//! * no admitted request is ever dropped — the watchdog's switches show
//!   up as queueing delay, never as loss;
//! * a single run-to-completion worker never reorders requests, switch
//!   or no switch;
//! * the sticky-degradation path (peer CPU never reaches the
//!   rendezvous, attach abandoned) still answers both the faults and
//!   the traffic.
//!
//! Lives in the bench crate because its dependency edges compile
//! `faultgen/enabled` and `merctrace/enabled` in — the watchdog needs
//! live fault hooks, and these tests ride the same feature unification
//! as the campaign binaries.

use faultgen::rng::SplitMix64;
use faultgen::{FaultSpec, FaultTarget};
use mercury_cluster::{Node, NodeConfig, Watchdog, WatchdogPolicy};
use mercury_servo::{generate, LoadConfig, NodeServer, Outcome, ServerConfig};
use mercury_workloads::mix::CostMix;
use simx86::PhysAddr;
use std::sync::Arc;

fn traffic(seed: u64, requests: u32) -> Vec<mercury_servo::Arrival> {
    generate(&LoadConfig {
        seed,
        mean_gap_cycles: 250_000,
        requests,
        mix: CostMix::oltp(),
    })
}

/// Plan `count` distinct memory bit-flips in the scrubber's high-frame
/// sweep window.
fn plan_flips(seed: u64, count: usize) -> Vec<FaultSpec> {
    let mut rng = SplitMix64::new(seed);
    let mut used = std::collections::BTreeSet::new();
    let mut plan = Vec::new();
    for i in 0..count {
        let (frame, word) = loop {
            let f = 15_000 + rng.below(1_000) as u32;
            let w = rng.below(512) as u16;
            if used.insert((f, w)) {
                break (f, w);
            }
        };
        plan.push(FaultSpec {
            id: 7_000 + i as u64,
            due_cycle: 0,
            target: FaultTarget::MemWord {
                frame,
                word,
                bit: rng.below(64) as u8,
            },
        });
    }
    plan
}

/// Inject one planned fault: arm it, trip it with a sweep read, let the
/// watchdog poll (detect + recover, reactively attaching if policy says
/// so).
fn inject(node: &Node, dog: &mut Watchdog, spec: FaultSpec) {
    let FaultTarget::MemWord { frame, word, .. } = spec.target else {
        panic!("flip plan holds MemWord faults only")
    };
    faultgen::arm(vec![spec]);
    let cpu = node.machine.boot_cpu();
    let pa = PhysAddr(((frame as u64) << 12) + (word as u64) * 8);
    node.machine.mem.read_word(cpu, pa).expect("sweep read");
    dog.poll(cpu);
}

/// Requests keep flowing while the watchdog detects faults, attaches
/// the VMM, recovers, and detaches at window end: nothing dropped,
/// nothing reordered, every fault answered.
#[test]
fn watchdog_cycle_under_live_traffic_drops_nothing() {
    let node = Node::launch("wd", &NodeConfig::default());
    let mut server = NodeServer::new(
        &node,
        0,
        ServerConfig {
            // Deep queue: this test is about loss/order, not shedding.
            queue_capacity: 4_096,
            ..ServerConfig::default()
        },
    );
    let mut dog = Watchdog::new(
        node.mercury(),
        Arc::clone(&node.machine),
        node.kernel(),
        WatchdogPolicy {
            attach_on_fault: true,
            ..WatchdogPolicy::default()
        },
    );

    faultgen::reset();
    let stream = traffic(101, 400);
    let mut flips = plan_flips(909, 6).into_iter();
    // Fault every 60 arrivals; end the holding window (detach) every
    // 120, so the run exercises attach *and* detach mid-traffic.
    server.run(&stream, |srv, _off| {
        let n = srv.records().len();
        if n > 0 && n % 60 == 0 {
            if let Some(spec) = flips.next() {
                inject(srv.node(), &mut dog, spec);
            }
        }
        if n > 0 && n % 120 == 0 {
            let cpu = srv.node().machine.boot_cpu();
            dog.end_window(cpu);
        }
    });
    {
        let cpu = node.machine.boot_cpu();
        dog.end_window(cpu);
    }
    faultgen::reset();

    // Every offered request completed — the switches cost time, not
    // requests.
    assert_eq!(server.records().len(), 400);
    assert!(server
        .records()
        .iter()
        .all(|r| r.outcome == Outcome::Completed));

    // Run-to-completion on one worker: completion order == arrival
    // order, switches notwithstanding.
    let ids: Vec<u64> = server.records().iter().map(|r| r.id).collect();
    let mut sorted = ids.clone();
    sorted.sort();
    assert_eq!(ids, sorted, "watchdog activity must not reorder requests");

    // The watchdog actually cycled: detected faults, recovered all of
    // them, attached reactively and detached at window end.
    let reports = dog.reports();
    assert_eq!(reports.len(), 6, "all six injected faults detected");
    assert!(reports.iter().all(|r| r.recovered));
    use std::sync::atomic::Ordering::Relaxed;
    let stats = &node.mercury().stats;
    assert!(stats.attaches.load(Relaxed) >= 1, "reactive attach happened");
    assert!(stats.detaches.load(Relaxed) >= 1, "window-end detach happened");
    assert_eq!(stats.rendezvous_failures.load(Relaxed), 0);
}

/// The documented degradation path under live traffic: a 2-CPU node
/// whose peer never reaches a rendezvous service point.  The reactive
/// attach times out once (~5 s wall clock, by design), the watchdog
/// goes sticky-degraded, and both the traffic and the faults are still
/// answered natively.
#[test]
fn sticky_degradation_still_answers_traffic() {
    let node = Node::launch(
        "wd-smp",
        &NodeConfig {
            num_cpus: 2,
            ..NodeConfig::default()
        },
    );
    // One worker on CPU 0; CPU 1 exists but nobody services it, so any
    // rendezvous must time out.
    let mut server = NodeServer::new(
        &node,
        0,
        ServerConfig {
            queue_capacity: 4_096,
            ..ServerConfig::default()
        },
    );
    let mut dog = Watchdog::new(
        node.mercury(),
        Arc::clone(&node.machine),
        node.kernel(),
        WatchdogPolicy {
            attach_on_fault: true,
            ..WatchdogPolicy::default()
        },
    );

    faultgen::reset();
    let stream = traffic(202, 120);
    let mut flips = plan_flips(808, 3).into_iter();
    let mut warned = false;
    server.run(&stream, |srv, _off| {
        let n = srv.records().len();
        // Every 30 completions (the hook runs before dispatches, so the
        // final completion count is never observed — keep all three
        // injection points strictly inside the run).
        if n > 0 && n % 30 == 0 {
            if let Some(spec) = flips.next() {
                if !warned {
                    eprintln!("expecting one ~5 s rendezvous timeout (degradation path) …");
                    warned = true;
                }
                inject(srv.node(), &mut dog, spec);
            }
        }
    });
    {
        let cpu = node.machine.boot_cpu();
        dog.end_window(cpu);
    }
    faultgen::reset();

    assert!(dog.degraded(), "peer never rendezvoused: must go sticky");
    // Degraded, not dead: every request and every fault still answered.
    assert_eq!(server.records().len(), 120);
    assert!(server
        .records()
        .iter()
        .all(|r| r.outcome == Outcome::Completed));
    let reports = dog.reports();
    assert_eq!(reports.len(), 3);
    assert!(reports.iter().all(|r| r.recovered));
    use std::sync::atomic::Ordering::Relaxed;
    let stats = &node.mercury().stats;
    assert!(
        stats.rendezvous_failures.load(Relaxed) >= 1,
        "the degradation was caused by a rendezvous timeout"
    );
    assert_eq!(stats.attaches.load(Relaxed), 0, "attach never completed");
}
