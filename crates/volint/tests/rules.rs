//! Self-tests for the lint rules: each known-bad fixture under
//! `tests/fixtures/` carries `//~ RULE-ID` expectation comments, and
//! the produced diagnostics must match them exactly — nothing missing,
//! nothing extra.  The real workspace must come back clean.

use std::collections::BTreeSet;
use volint::{analyze_sources, analyze_workspace, Config, Severity};

/// Parse `//~ RULE-ID` expectation comments: (line, rule-id) pairs.
fn expectations(src: &str) -> BTreeSet<(usize, String)> {
    src.lines()
        .enumerate()
        .filter_map(|(i, l)| {
            l.split("//~").nth(1).map(|r| (i + 1, r.trim().to_string()))
        })
        .collect()
}

/// Run volint over one fixture under a neutral logical path (so the
/// `tests/` exemption does not apply) and compare against expectations.
fn check_fixture(fname: &str, src: &str) {
    let cfg = Config::mercury_defaults();
    let logical = format!("fixture://{fname}");
    let diags = analyze_sources(&[(logical, src.to_string())], &cfg);
    let got: BTreeSet<(usize, String)> = diags
        .iter()
        .map(|d| (d.line, d.rule.as_str().to_string()))
        .collect();
    let want = expectations(src);
    assert_eq!(
        got, want,
        "fixture {fname}: diagnostics do not match `//~` expectations.\n\
         reported: {diags:#?}"
    );
}

#[test]
fn vo_bypass_fixture() {
    let src = include_str!("fixtures/vo_bypass_bad.rs");
    assert!(expectations(src).iter().any(|(_, r)| r == "VO-BYPASS"));
    check_fixture("vo_bypass_bad.rs", src);
}

#[test]
fn refcount_leak_fixture() {
    let src = include_str!("fixtures/refcount_leak_bad.rs");
    assert!(expectations(src).iter().any(|(_, r)| r == "REFCOUNT-LEAK"));
    check_fixture("refcount_leak_bad.rs", src);
}

#[test]
fn dispatch_gap_fixture() {
    let src = include_str!("fixtures/dispatch_gap_bad.rs");
    assert!(expectations(src).iter().any(|(_, r)| r == "DISPATCH-GAP"));
    check_fixture("dispatch_gap_bad.rs", src);
}

#[test]
fn atomic_order_fixture() {
    let src = include_str!("fixtures/atomic_order_bad.rs");
    assert!(expectations(src).iter().any(|(_, r)| r == "ATOMIC-ORDER"));
    check_fixture("atomic_order_bad.rs", src);
}

#[test]
fn atomic_order_trace_fixture() {
    let src = include_str!("fixtures/atomic_order_trace_bad.rs");
    assert!(expectations(src).iter().any(|(_, r)| r == "ATOMIC-ORDER"));
    check_fixture("atomic_order_trace_bad.rs", src);
}

/// ATOMIC-ORDER protection also keys on the merctrace path, not just
/// the `Tracer` struct: any file under the tracing crate with a Relaxed
/// atomic is flagged.
#[test]
fn atomic_order_covers_merctrace_paths() {
    let cfg = Config::mercury_defaults();
    let src = "pub fn push(dropped: &AtomicU64) {\n    \
               dropped.fetch_add(1, Ordering::Relaxed);\n}\n";
    let diags = analyze_sources(
        &[(
            "crates/merctrace/src/ring.rs".to_string(),
            src.to_string(),
        )],
        &cfg,
    );
    assert!(
        diags
            .iter()
            .any(|d| d.rule.as_str() == "ATOMIC-ORDER" && d.line == 2),
        "Relaxed in a merctrace file must be flagged; got {diags:#?}"
    );
}

#[test]
fn fault_mask_fixture() {
    let src = include_str!("fixtures/fault_mask_bad.rs");
    assert!(expectations(src).iter().any(|(_, r)| r == "FAULT-MASK"));
    check_fixture("fault_mask_bad.rs", src);
}

#[test]
fn clean_fixture_is_clean() {
    let src = include_str!("fixtures/clean_good.rs");
    assert!(expectations(src).is_empty());
    check_fixture("clean_good.rs", src);
}

/// Tier-1 wiring: the real workspace must satisfy every invariant.
/// This is the same check `cargo run -p volint` performs in CI.
#[test]
fn real_workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("volint lives at <ws>/crates/volint")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let cfg = Config::mercury_defaults();
    let diags = analyze_workspace(&root, &cfg).expect("workspace must be readable");
    let errors: Vec<_> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(
        errors.is_empty(),
        "workspace has invariant violations:\n{}",
        errors
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The privileged-op set picked up from `simx86`'s
/// `#[doc(alias = "volint-privileged")]` markers must agree with the
/// crate's own registry names (markers are scanned here; the registry
/// side is asserted by simx86's tests).
#[test]
fn simx86_markers_are_discovered() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .unwrap()
        .to_path_buf();
    let cpu = std::fs::read_to_string(root.join("crates/simx86/src/cpu.rs")).unwrap();
    let marked = volint::markers::scan(&cpu);
    for expect in ["write_cr3", "lidt", "lgdt", "flush_tlb_local", "invlpg"] {
        assert!(
            marked.iter().any(|m| m == expect),
            "`{expect}` should carry #[doc(alias = \"volint-privileged\")] in simx86/src/cpu.rs; found {marked:?}"
        );
    }
}

// ---------------------------------------------------------------
// v2: call-graph rules (reachability from `volint::root` markers)
// ---------------------------------------------------------------

#[test]
fn switch_alloc_fixture() {
    let src = include_str!("fixtures/switch_alloc_bad.rs");
    assert!(expectations(src).iter().any(|(_, r)| r == "SWITCH-ALLOC"));
    check_fixture("switch_alloc_bad.rs", src);
}

#[test]
fn switch_panic_fixture() {
    let src = include_str!("fixtures/switch_panic_bad.rs");
    assert!(expectations(src).iter().any(|(_, r)| r == "SWITCH-PANIC"));
    check_fixture("switch_panic_bad.rs", src);
}

#[test]
fn loop_bound_fixture() {
    let src = include_str!("fixtures/loop_bound_bad.rs");
    assert!(expectations(src)
        .iter()
        .any(|(_, r)| r == "SWITCH-LOOP-BOUND"));
    check_fixture("loop_bound_bad.rs", src);
}

#[test]
fn lock_discipline_fixture() {
    let src = include_str!("fixtures/lock_discipline_bad.rs");
    assert!(expectations(src)
        .iter()
        .any(|(_, r)| r == "LOCK-DISCIPLINE"));
    check_fixture("lock_discipline_bad.rs", src);
}

#[test]
fn stale_waiver_fixture() {
    let src = include_str!("fixtures/stale_waiver_bad.rs");
    assert!(expectations(src).iter().any(|(_, r)| r == "STALE-WAIVER"));
    check_fixture("stale_waiver_bad.rs", src);
}

/// `--deny-stale-waivers` turns the advisory into a build-breaking
/// error; the *used* waiver in the same fixture must stay silent.
#[test]
fn stale_waiver_escalates_under_deny() {
    let mut cfg = Config::mercury_defaults();
    cfg.deny_stale_waivers = true;
    let src = include_str!("fixtures/stale_waiver_bad.rs");
    let diags = analyze_sources(
        &[("fixture://stale_waiver_bad.rs".to_string(), src.to_string())],
        &cfg,
    );
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule.as_str(), "STALE-WAIVER");
    assert_eq!(diags[0].severity, Severity::Error);
}

// ---------------------------------------------------------------
// v2: call-graph resolution coverage
// ---------------------------------------------------------------

/// Trait-object dispatch: the receiver field is typed `dyn Trait`, the
/// method lives on the concrete impl.  Resolution goes field-type →
/// (no trait methods recorded, signatures have no body) → unique-name
/// tier, landing on the impl — whose allocations are then on-path.
#[test]
fn callgraph_resolves_trait_object_calls() {
    let src = r#"
pub trait PvOps {
    fn commit_shadow(&self);
}

pub struct RealOps;

impl PvOps for RealOps {
    fn commit_shadow(&self) {
        let mut scratch = Vec::new(); //~ SWITCH-ALLOC
        scratch.push(0u8); //~ SWITCH-ALLOC
    }
}

pub struct Monitor {
    ops: Box<dyn PvOps>,
}

impl Monitor {
    // volint::root(SWITCH)
    pub fn handle_switch(&self) {
        self.ops.commit_shadow();
    }
}
"#;
    check_fixture("trait_object.rs", src);
}

/// Macro invocations are not call edges, and `macro_rules!` bodies do
/// not define resolvable fns: neither the fn named in the macro args
/// nor the macro-generated handler welds its allocations onto the
/// switch path.
#[test]
fn callgraph_macros_do_not_create_edges() {
    let src = r#"
pub fn expensive_rebuild() {
    let mut v = Vec::new();
    v.push(1u32);
}

macro_rules! mk_handler {
    ($name:ident) => {
        pub fn $name() {
            let mut buf = Vec::with_capacity(64);
            buf.push(0u8);
        }
    };
}

mk_handler!(gen_handler);

pub struct Ctl;

impl Ctl {
    // volint::root(SWITCH)
    pub fn handle_switch(&self) {
        deferred!(expensive_rebuild);
        gen_handler();
        self.noop();
    }
    fn noop(&self) {}
}
"#;
    check_fixture("macro_edges.rs", src);
}

/// Two impls share a method name: `self.method()` resolves to the
/// *enclosing* impl only, so the shadow impl's allocation stays
/// off-path.
#[test]
fn callgraph_shadowed_method_names_stay_separate() {
    let src = r#"
pub struct HotPath;
pub struct ColdPath;

impl HotPath {
    // volint::root(SWITCH)
    pub fn handle_switch(&self) {
        self.flush_state();
    }
    fn flush_state(&self) {
        std::hint::spin_loop();
    }
}

impl ColdPath {
    fn flush_state(&self) {
        let mut log = Vec::new();
        log.push(3u64);
    }
}
"#;
    check_fixture("shadowed_names.rs", src);
}

/// Reachability crosses crate boundaries: a root in one source file
/// reaches a free fn defined in another, and the diagnostics land in
/// the *callee's* file with the callee's lines.
#[test]
fn callgraph_crosses_crate_boundaries() {
    let core_src = "\
pub struct Switcher;

impl Switcher {
    // volint::root(SWITCH)
    pub fn handle_switch(&self) {
        xenon_recompute_frames();
    }
}
";
    let xenon_src = "\
pub fn xenon_recompute_frames() {
    let mut scratch = Vec::new();
    scratch.push(0usize);
}
";
    let cfg = Config::mercury_defaults();
    let diags = analyze_sources(
        &[
            ("fixture://core/switchx.rs".to_string(), core_src.to_string()),
            ("fixture://xenon/recompute.rs".to_string(), xenon_src.to_string()),
        ],
        &cfg,
    );
    let allocs: Vec<_> = diags
        .iter()
        .filter(|d| d.rule.as_str() == "SWITCH-ALLOC")
        .collect();
    assert_eq!(allocs.len(), 2, "{diags:#?}");
    assert!(
        allocs
            .iter()
            .all(|d| d.file == "fixture://xenon/recompute.rs"),
        "{allocs:#?}"
    );
    assert_eq!(
        allocs.iter().map(|d| d.line).collect::<BTreeSet<_>>(),
        [2usize, 3usize].into_iter().collect::<BTreeSet<_>>()
    );
}

/// Reachability starts at roots, full stop: with no root marker the
/// switch-path rules make no claims, however alloc-heavy the code.
#[test]
fn no_root_means_no_switch_path_findings() {
    let src = "\
pub fn rebuild_everything() {
    let mut v = Vec::new();
    v.push(1u32);
    let first = v.first().unwrap();
    assert!(*first == 1);
    for _ in 0..*first {
        std::hint::spin_loop();
    }
}
";
    let cfg = Config::mercury_defaults();
    let diags = analyze_sources(
        &[("fixture://no_root.rs".to_string(), src.to_string())],
        &cfg,
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

// ---------------------------------------------------------------
// v2: static cycle budget
// ---------------------------------------------------------------

/// End-to-end budget computation over sources: cost markers scale by
/// enclosing loop bounds; calls charge the callee's memoized cost; the
/// span's probe name becomes the phase key.
#[test]
fn budget_integration_costs_scale_by_bounds() {
    let src = r#"
pub struct Vm;

impl Vm {
    pub fn attach(&self, cpu: &Cpu) {
        merctrace::span_begin!(cpu.id, "switch.fixup", cpu.cycles());
        // volint::bound(4)
        for _ in frames() {
            // volint::cost(100)
            tick(cpu);
        }
        self.settle(cpu);
        merctrace::span_end!(cpu.id, "switch.fixup", cpu.cycles());
    }

    fn settle(&self, _cpu: &Cpu) {
        // volint::cost(50)
        touch();
    }
}
"#;
    let b = volint::budget_sources(&[("fixture://budget.rs".to_string(), src.to_string())]);
    // 4 * 100 from the loop, + 50 from the callee.
    assert_eq!(b.phases.get("switch.fixup"), Some(&450));
    assert!((b.us("switch.fixup").unwrap() - 0.15).abs() < 1e-9);
}

/// The committed `volint_budget.json` must be exactly what the
/// analyzer emits for the current sources — CI enforces this with a
/// byte compare, the test mirrors it so drift fails locally first.
#[test]
fn committed_budget_matches_sources() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("volint lives at <ws>/crates/volint")
        .to_path_buf();
    let committed = std::fs::read_to_string(root.join("volint_budget.json"))
        .expect("volint_budget.json must be committed at the workspace root");
    let budget = volint::budget_workspace(&root).expect("workspace must be readable");
    assert_eq!(
        committed,
        budget.to_json(),
        "volint_budget.json is stale; regenerate with \
         `cargo run -p volint -- --budget volint_budget.json`"
    );
}
