//! Self-tests for the lint rules: each known-bad fixture under
//! `tests/fixtures/` carries `//~ RULE-ID` expectation comments, and
//! the produced diagnostics must match them exactly — nothing missing,
//! nothing extra.  The real workspace must come back clean.

use std::collections::BTreeSet;
use volint::{analyze_sources, analyze_workspace, Config, Severity};

/// Parse `//~ RULE-ID` expectation comments: (line, rule-id) pairs.
fn expectations(src: &str) -> BTreeSet<(usize, String)> {
    src.lines()
        .enumerate()
        .filter_map(|(i, l)| {
            l.split("//~").nth(1).map(|r| (i + 1, r.trim().to_string()))
        })
        .collect()
}

/// Run volint over one fixture under a neutral logical path (so the
/// `tests/` exemption does not apply) and compare against expectations.
fn check_fixture(fname: &str, src: &str) {
    let cfg = Config::mercury_defaults();
    let logical = format!("fixture://{fname}");
    let diags = analyze_sources(&[(logical, src.to_string())], &cfg);
    let got: BTreeSet<(usize, String)> = diags
        .iter()
        .map(|d| (d.line, d.rule.as_str().to_string()))
        .collect();
    let want = expectations(src);
    assert_eq!(
        got, want,
        "fixture {fname}: diagnostics do not match `//~` expectations.\n\
         reported: {diags:#?}"
    );
}

#[test]
fn vo_bypass_fixture() {
    let src = include_str!("fixtures/vo_bypass_bad.rs");
    assert!(expectations(src).iter().any(|(_, r)| r == "VO-BYPASS"));
    check_fixture("vo_bypass_bad.rs", src);
}

#[test]
fn refcount_leak_fixture() {
    let src = include_str!("fixtures/refcount_leak_bad.rs");
    assert!(expectations(src).iter().any(|(_, r)| r == "REFCOUNT-LEAK"));
    check_fixture("refcount_leak_bad.rs", src);
}

#[test]
fn dispatch_gap_fixture() {
    let src = include_str!("fixtures/dispatch_gap_bad.rs");
    assert!(expectations(src).iter().any(|(_, r)| r == "DISPATCH-GAP"));
    check_fixture("dispatch_gap_bad.rs", src);
}

#[test]
fn atomic_order_fixture() {
    let src = include_str!("fixtures/atomic_order_bad.rs");
    assert!(expectations(src).iter().any(|(_, r)| r == "ATOMIC-ORDER"));
    check_fixture("atomic_order_bad.rs", src);
}

#[test]
fn atomic_order_trace_fixture() {
    let src = include_str!("fixtures/atomic_order_trace_bad.rs");
    assert!(expectations(src).iter().any(|(_, r)| r == "ATOMIC-ORDER"));
    check_fixture("atomic_order_trace_bad.rs", src);
}

/// ATOMIC-ORDER protection also keys on the merctrace path, not just
/// the `Tracer` struct: any file under the tracing crate with a Relaxed
/// atomic is flagged.
#[test]
fn atomic_order_covers_merctrace_paths() {
    let cfg = Config::mercury_defaults();
    let src = "pub fn push(dropped: &AtomicU64) {\n    \
               dropped.fetch_add(1, Ordering::Relaxed);\n}\n";
    let diags = analyze_sources(
        &[(
            "crates/merctrace/src/ring.rs".to_string(),
            src.to_string(),
        )],
        &cfg,
    );
    assert!(
        diags
            .iter()
            .any(|d| d.rule.as_str() == "ATOMIC-ORDER" && d.line == 2),
        "Relaxed in a merctrace file must be flagged; got {diags:#?}"
    );
}

#[test]
fn fault_mask_fixture() {
    let src = include_str!("fixtures/fault_mask_bad.rs");
    assert!(expectations(src).iter().any(|(_, r)| r == "FAULT-MASK"));
    check_fixture("fault_mask_bad.rs", src);
}

#[test]
fn clean_fixture_is_clean() {
    let src = include_str!("fixtures/clean_good.rs");
    assert!(expectations(src).is_empty());
    check_fixture("clean_good.rs", src);
}

/// Tier-1 wiring: the real workspace must satisfy every invariant.
/// This is the same check `cargo run -p volint` performs in CI.
#[test]
fn real_workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("volint lives at <ws>/crates/volint")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let cfg = Config::mercury_defaults();
    let diags = analyze_workspace(&root, &cfg).expect("workspace must be readable");
    let errors: Vec<_> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(
        errors.is_empty(),
        "workspace has invariant violations:\n{}",
        errors
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The privileged-op set picked up from `simx86`'s
/// `#[doc(alias = "volint-privileged")]` markers must agree with the
/// crate's own registry names (markers are scanned here; the registry
/// side is asserted by simx86's tests).
#[test]
fn simx86_markers_are_discovered() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .unwrap()
        .to_path_buf();
    let cpu = std::fs::read_to_string(root.join("crates/simx86/src/cpu.rs")).unwrap();
    let marked = volint::markers::scan(&cpu);
    for expect in ["write_cr3", "lidt", "lgdt", "flush_tlb_local", "invlpg"] {
        assert!(
            marked.iter().any(|m| m == expect),
            "`{expect}` should carry #[doc(alias = \"volint-privileged\")] in simx86/src/cpu.rs; found {marked:?}"
        );
    }
}
