//! Fixture: allocations reachable from a `volint::root(SWITCH)` fn
//! must be flagged — including through a field-typed helper — while
//! identical allocations in code the root cannot reach stay silent.

pub struct Mercury {
    depot: Depot,
}

pub struct Depot;

impl Depot {
    pub fn refill(&self) {
        let mut v = Vec::new(); //~ SWITCH-ALLOC
        v.push(1u32); //~ SWITCH-ALLOC
    }
}

impl Mercury {
    // volint::root(SWITCH)
    pub fn handle_switch(&self) {
        self.transfer();
    }

    fn transfer(&self) {
        self.depot.refill();
        let s = format!("mode={}", 1); //~ SWITCH-ALLOC
        drop(s);
    }

    // Never called from the root: the same allocator idioms must NOT
    // produce diagnostics here (reachability, not pattern matching).
    pub fn maintenance(&self) {
        let mut log = Vec::with_capacity(8);
        log.push(0u8);
        let _tag = String::from("offline");
    }
}
