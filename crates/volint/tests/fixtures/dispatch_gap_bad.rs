// Known-bad fixture: incomplete dispatch table, a Rendezvous field
// begin() never resets, and asymmetric state transfer.

pub trait PvOps {
    fn mode(&self) -> ExecMode;
    fn set_pte(&self, t: FrameNum, i: usize, v: Pte) -> Result<(), Fault>;
    fn flush_tlb(&self, cpu: &Arc<Cpu>);
    fn name(&self) -> &'static str {
        "anon" // default method: impls need not provide it
    }
}

pub struct BareOps;
impl PvOps for BareOps {
    fn mode(&self) -> ExecMode {
        ExecMode::Native
    }
    fn set_pte(&self, t: FrameNum, i: usize, v: Pte) -> Result<(), Fault> {
        Ok(())
    }
    fn flush_tlb(&self, cpu: &Arc<Cpu>) {}
}

pub struct XenOps;
impl PvOps for XenOps { //~ DISPATCH-GAP
    fn mode(&self) -> ExecMode {
        ExecMode::Paravirtual
    }
    fn set_pte(&self, t: FrameNum, i: usize, v: Pte) -> Result<(), Fault> {
        Ok(())
    }
    // flush_tlb is missing: a TLB op dispatched to this VO would fall
    // through to nothing.
}

pub struct HvmOps;
impl PvOps for HvmOps {
    fn mode(&self) -> ExecMode {
        ExecMode::Hvm
    }
    fn set_pte(&self, t: FrameNum, i: usize, v: Pte) -> Result<(), Fault> {
        Ok(())
    }
    fn flush_tlb(&self, cpu: &Arc<Cpu>) {}
}

pub struct Rendezvous {
    ready: AtomicUsize,
    go: AtomicBool,
    stale_epoch: AtomicUsize, //~ DISPATCH-GAP
}

impl Rendezvous {
    pub fn begin(&self) {
        self.ready.store(0, Ordering::Release);
        self.go.store(false, Ordering::Release);
        // stale_epoch is never reset: the next round observes garbage.
    }
}

pub fn attach_transfer(m: &Mercury, cpu: &Arc<Cpu>) -> Result<(), Fault> { //~ DISPATCH-GAP
    m.flip_table_frames(cpu)?;
    m.hv().activate(cpu);
    // fix_selectors is missing: stale selectors survive the attach.
    Ok(())
}

pub fn detach_transfer(m: &Mercury, cpu: &Arc<Cpu>) -> Result<(), Fault> {
    m.flip_table_frames(cpu)?;
    m.fix_selectors(cpu)?;
    m.hv().deactivate(cpu);
    Ok(())
}
