// Known-bad fixture: privileged primitives reached outside a VO.
// Tilde-comment markers flag the lines volint must report.

pub fn sneaky_remap(cpu: &Arc<Cpu>, mem: &Mem, t: FrameNum, v: Pte) -> Result<(), Fault> {
    cpu.write_cr3(v.0); //~ VO-BYPASS
    mem.write_pte(cpu, t, 0, v)?; //~ VO-BYPASS
    cpu.lidt(0xdead_beef); //~ VO-BYPASS
    Ok(())
}

pub fn masks_interrupts(cpu: &Arc<Cpu>) {
    cpu.cli(); //~ VO-BYPASS
    cpu.sti(); //~ VO-BYPASS
}

// Inside a PvOps impl the primitive *is* the VO: not flagged.
struct BareOps;
impl PvOps for BareOps {
    fn load_base_table(&self, cpu: &Arc<Cpu>, pgd: FrameNum) -> Result<(), Fault> {
        cpu.write_cr3(pgd.0 as u64);
        Ok(())
    }
}

// Routed through the dispatch handle: not flagged.
pub fn routed(ctx: &Ctx, va: VirtAddr) -> Result<(), Fault> {
    ctx.pv.invlpg(ctx.cpu, va)
}

// Explicitly waived: not flagged.
pub fn sanctioned(cpu: &Arc<Cpu>) {
    // volint::allow(VO-BYPASS): fixture-sanctioned bootstrap
    cpu.set_pl_raw(PrivLevel::Pl0);
}

#[cfg(test)]
mod tests {
    // Test code may poke hardware directly: not flagged.
    #[test]
    fn pokes_hardware() {
        let cpu = rig();
        cpu.lgdt(0);
    }
}
