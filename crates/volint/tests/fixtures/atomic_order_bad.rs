// Known-bad fixture: Relaxed atomics on refcount/rendezvous state.

pub struct VoRefCount {
    count: AtomicUsize,
}

impl VoRefCount {
    pub fn enter(&self) {
        self.count.fetch_add(1, Ordering::Relaxed); //~ ATOMIC-ORDER
    }

    pub fn exit(&self) {
        self.count.fetch_sub(1, Ordering::Relaxed); //~ ATOMIC-ORDER
    }

    pub fn is_idle(&self) -> bool {
        self.count.load(Ordering::Relaxed) == 0 //~ ATOMIC-ORDER
    }

    pub fn current(&self) -> usize {
        // Correct ordering: not flagged.
        self.count.load(Ordering::Acquire)
    }
}
