// Known-bad fixture: fault-injection hooks inside the mode-switch
// critical section.  The switch path must be fault-free (DESIGN.md
// §12): a campaign that can wedge `try_switch` or the transfer
// functions wedges the very mechanism meant to answer the fault.

impl Mercury {
    fn try_switch(&self, cpu: &Arc<Cpu>, target: ExecMode) -> Result<u64, SwitchError> { //~ FAULT-MASK
        // Injected hypercall penalties inside the switch would skew the
        // §7.4 latency numbers and can recurse into the watchdog.
        let penalty = faultgen::hypercall_site!(cpu.id, cpu.cycles());
        cpu.tick(penalty);
        self.rendezvous.begin()?;
        Ok(cpu.cycles())
    }

    fn reload_cpu(&self, cpu: &Arc<Cpu>, target: ExecMode) { //~ FAULT-MASK
        // A corrupted-gate hook in the reload path could swallow the
        // very trap-table install that repairs corrupted gates.
        if faultgen::gate_site!(cpu.id, cpu.cycles(), 32) {
            return;
        }
        self.install_tables(cpu, target);
    }

    fn detach_transfer(&self, cpu: &Arc<Cpu>) -> Result<(), SwitchError> {
        // Clean: no injection hooks in the critical section.
        self.flip_table_frames(cpu);
        self.fix_selectors(cpu);
        self.vmm.deactivate();
        Ok(())
    }
}
