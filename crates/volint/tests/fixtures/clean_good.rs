// Known-good fixture: everything routes through the VO layer, guards
// are balanced, orderings are acquire/release.  volint must report
// nothing here.

pub struct Driver {
    pv: Arc<dyn PvOps>,
}

impl Driver {
    pub fn map(&self, cpu: &Arc<Cpu>, t: FrameNum, i: usize, v: Pte) -> Result<(), Fault> {
        self.pv.set_pte(cpu, t, i, v)?;
        self.pv.invlpg(cpu, VirtAddr::from_parts(t.0 as usize, i));
        Ok(())
    }
}

pub fn guarded_work(rc: &Arc<VoRefCount>) -> usize {
    let g = rc.enter();
    let n = rc.current();
    drop(g);
    n
}

pub struct Counter {
    hits: AtomicUsize,
}

impl Counter {
    pub fn bump(&self) {
        // Relaxed is fine here: this file defines no rendezvous or
        // refcount state, just a stats counter.
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
