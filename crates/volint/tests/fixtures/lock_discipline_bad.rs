//! Fixture: a field marked `volint::guarded_by(rendezvous)` may only
//! be touched by fns reachable from a RENDEZVOUS root.

pub struct Coordinator {
    // volint::guarded_by(rendezvous)
    round: Mutex<Option<u32>>,
}

impl Coordinator {
    // volint::root(RENDEZVOUS)
    pub fn handle_rendezvous_peer(&self) {
        let cur = self.round.lock();
        drop(cur);
    }

    // Not on any RENDEZVOUS path: this access violates the guard.
    pub fn sneaky_reset(&self) {
        *self.round.lock() = None; //~ LOCK-DISCIPLINE
    }
}
