//! Fixture: a `volint::allow(..)` that suppresses a real diagnostic is
//! consumed silently; one that suppresses nothing is reported stale.

pub struct Relay;

impl Relay {
    // volint::root(SWITCH)
    pub fn handle_switch(&self, v: Option<u32>) {
        // volint::allow(SWITCH-PANIC): validated by the dispatcher before the trap is raised
        let _ = v.unwrap();
    }

    // volint::allow(SWITCH-ALLOC): nothing below allocates any more //~ STALE-WAIVER
    pub fn idle(&self) {}
}
