// Known-bad fixture: Relaxed atomics on merctrace-style per-CPU
// trace-buffer state.  A snapshot reader on another thread must see
// fully published records, so the armed flag and ring bookkeeping
// need acquire/release.

pub struct Tracer {
    armed: AtomicBool,
    dropped: AtomicU64,
}

impl Tracer {
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Relaxed); //~ ATOMIC-ORDER
    }

    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed) //~ ATOMIC-ORDER
    }

    pub fn note_drop(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed); //~ ATOMIC-ORDER
    }

    pub fn disarm(&self) {
        // Correct ordering: not flagged.
        self.armed.store(false, Ordering::Release);
    }
}
