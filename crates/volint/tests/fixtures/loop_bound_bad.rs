//! Fixture: loops on the switch path need a static trip count — a
//! numeric range, a `0..CONST` range over a workspace const, a
//! `.take(N)`, or an explicit `// volint::bound(N)` marker.

const LANES: u64 = 16;

pub struct Pump;

impl Pump {
    // volint::root(SWITCH)
    pub fn handle_switch(&self, n: usize) {
        self.drain(n);
    }

    fn drain(&self, n: usize) {
        for _ in 0..n { //~ SWITCH-LOOP-BOUND
            std::hint::spin_loop();
        }
        let mut left = n;
        while left > 0 { //~ SWITCH-LOOP-BOUND
            left -= 1;
        }
        // Static bound via a workspace const: clean.
        for _ in 0..LANES {
            std::hint::spin_loop();
        }
        // Explicit marker bound: clean.
        // volint::bound(8) — retries capped by the protocol
        loop {
            break;
        }
        // Literal numeric range: clean.
        for _ in 0..4 {
            std::hint::spin_loop();
        }
    }
}
