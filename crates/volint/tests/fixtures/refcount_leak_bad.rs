// Known-bad fixture: unbalanced / leaked / deadlocking VO guards.

use std::mem;

pub fn forgets_named_guard(rc: &Arc<VoRefCount>) {
    let g = rc.enter();
    mem::forget(g); //~ REFCOUNT-LEAK
}

pub fn forgets_inline(rc: &Arc<VoRefCount>) {
    std::mem::forget(rc.enter()); //~ REFCOUNT-LEAK
}

pub fn manually_drops(rc: &Arc<VoRefCount>) {
    let _keep = ManuallyDrop::new(rc.enter()); //~ REFCOUNT-LEAK
}

pub fn discards_immediately(rc: &Arc<VoRefCount>) {
    let _ = rc.enter(); //~ REFCOUNT-LEAK
    do_pagetable_work();
}

pub struct LongLived {
    guard: Option<VoGuard>, //~ REFCOUNT-LEAK
    id: usize,
}

pub fn holds_guard_across_switch(rc: &Arc<VoRefCount>, m: &Mercury, cpu: &Arc<Cpu>) {
    let g = rc.enter();
    let _ = m.switch_to_virtual(cpu); //~ REFCOUNT-LEAK
    drop(g);
}

// Balanced use: not flagged.
pub fn balanced(rc: &Arc<VoRefCount>) -> usize {
    let g = rc.enter();
    let n = rc.current();
    drop(g);
    n
}
