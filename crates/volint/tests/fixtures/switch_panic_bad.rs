//! Fixture: panic sources (unwrap/expect, unchecked indexing, panic
//! macros) on the switch path are flagged; the same idioms in
//! unreachable code are not.

pub struct Gate {
    slots: [u32; 4],
}

impl Gate {
    // volint::root(SWITCH)
    pub fn handle_switch(&self, i: usize) {
        self.commit(i);
    }

    fn commit(&self, i: usize) {
        let v = self.slots.first().unwrap(); //~ SWITCH-PANIC
        let w = self.slots[i]; //~ SWITCH-PANIC
        if *v > w {
            panic!("inverted gate order"); //~ SWITCH-PANIC
        }
    }

    // Unreachable from the root: unwrap/index tolerated here.
    pub fn offline_check(&self) {
        let last = self.slots[3];
        let first = self.slots.first().unwrap();
        assert!(first <= &last);
    }
}
