//! Workspace-wide call graph over [`parse`](crate::parse) facts.
//!
//! Resolution is deliberately conservative-but-useful: volint has no
//! type inference, so method calls resolve through a small tier of
//! heuristics (receiver `self` → enclosing impl, `Type::method` →
//! that type's methods, receiver that names a struct field → the
//! field's declared type, otherwise a name-based fallback with a
//! fan-out cap).  Unresolvable calls become *leaves* — absent from the
//! graph — which under-approximates reachability only for calls into
//! the standard library, where the switch-path rules re-gain coverage
//! by pattern (alloc ctors, `unwrap`, indexing) instead of by edge.
//!
//! Test functions and files under `tests/`/`benches/`/`examples/` are
//! never resolution *targets*: a test helper named like a production
//! fn must not graft test-only allocations onto the switch path.

use crate::parse::{FnBody, ParsedFile};
use std::collections::BTreeMap;

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee's global fn id.
    pub callee: usize,
    /// 1-based call-site line in the *caller's* file.
    pub line: usize,
}

/// A name-fallback candidate set larger than this is treated as
/// "ambiguous — leaf" rather than fanned out: names like `new` or
/// `run` would otherwise weld every subsystem onto the switch path.
/// Applies to `module::func` paths whose final segment is not a known
/// free fn; dotted calls on unknown receivers are stricter (the name
/// must be unique workspace-wide, see [`resolve`]) because receiver
/// methods like `.read()` / `.write()` / `.flush()` collide with lock
/// guards and std containers far more often than path calls do.
const NAME_FANOUT_CAP: usize = 6;

/// Method names that belong to std's container / lock / iterator
/// vocabulary.  A dotted call with one of these names is virtually
/// always the std method, so the unique-name fallback must not graft
/// it onto a workspace fn that happens to share the name.
const STD_COLLISIONS: &[&str] = &[
    "insert", "remove", "get", "push", "pop", "take", "clear", "len",
    "read", "write", "lock", "send", "recv", "extend", "collect",
    "clone", "iter", "next", "flush", "contains", "drain", "join",
];

/// The workspace call graph.  Global fn ids index into `fn_file` /
/// `fn_idx` (and the per-caller `edges` rows).
pub struct CallGraph {
    /// gid → index of the owning file in the parsed-file slice.
    pub fn_file: Vec<usize>,
    /// gid → index of the fn within its file's `fns`.
    pub fn_idx: Vec<usize>,
    /// gid → outgoing resolved edges.
    pub edges: Vec<Vec<Edge>>,
    /// Workspace-wide numeric const table (for loop bounds).
    pub consts: BTreeMap<String, u64>,
}

impl CallGraph {
    /// Build the graph.  `field_types` maps struct-field names to the
    /// first user-type identifier of their declared type (from the
    /// item scanner) and powers receiver-by-field resolution.
    pub fn build(files: &[ParsedFile], field_types: &BTreeMap<String, String>) -> CallGraph {
        let mut fn_file = Vec::new();
        let mut fn_idx = Vec::new();
        let mut consts = BTreeMap::new();
        // Resolution indices (targets exclude test code entirely).
        let mut free_fns: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut type_methods: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();

        for (fi, file) in files.iter().enumerate() {
            for (k, v) in &file.consts {
                consts.entry(k.clone()).or_insert(*v);
            }
            let file_is_test = crate::in_test_tree(&file.name);
            for (ni, f) in file.fns.iter().enumerate() {
                let gid = fn_file.len();
                fn_file.push(fi);
                fn_idx.push(ni);
                if file_is_test || f.in_test {
                    continue;
                }
                by_name.entry(&f.name).or_default().push(gid);
                match &f.impl_type {
                    Some(t) => type_methods
                        .entry((t.as_str(), f.name.as_str()))
                        .or_default()
                        .push(gid),
                    None => free_fns.entry(&f.name).or_default().push(gid),
                }
            }
        }

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fn_file.len()];
        for gid in 0..fn_file.len() {
            let file = &files[fn_file[gid]];
            let f = &file.fns[fn_idx[gid]];
            for call in &f.calls {
                if call.is_macro {
                    continue;
                }
                let targets = resolve(
                    call.name.as_str(),
                    call.qualifier.as_deref(),
                    call.via_dot,
                    f,
                    &free_fns,
                    &type_methods,
                    &by_name,
                    field_types,
                );
                for t in targets {
                    if t != gid {
                        edges[gid].push(Edge {
                            callee: t,
                            line: call.line,
                        });
                    }
                }
            }
        }

        CallGraph {
            fn_file,
            fn_idx,
            edges,
            consts,
        }
    }

    /// The [`FnBody`] behind a global fn id.
    pub fn body<'a>(&self, files: &'a [ParsedFile], gid: usize) -> &'a FnBody {
        &files[self.fn_file[gid]].fns[self.fn_idx[gid]]
    }

    /// The file owning a global fn id.
    pub fn file<'a>(&self, files: &'a [ParsedFile], gid: usize) -> &'a ParsedFile {
        &files[self.fn_file[gid]]
    }

    /// Global ids of fns carrying a `volint::root(kind)` marker.
    pub fn roots(&self, files: &[ParsedFile], kind: &str) -> Vec<usize> {
        (0..self.fn_file.len())
            .filter(|&g| {
                self.body(files, g)
                    .root_kinds
                    .iter()
                    .any(|k| k == kind)
            })
            .collect()
    }
}

/// Tiered call resolution; see the module docs.
#[allow(clippy::too_many_arguments)]
fn resolve(
    name: &str,
    qualifier: Option<&str>,
    via_dot: bool,
    caller: &FnBody,
    free_fns: &BTreeMap<&str, Vec<usize>>,
    type_methods: &BTreeMap<(&str, &str), Vec<usize>>,
    by_name: &BTreeMap<&str, Vec<usize>>,
    field_types: &BTreeMap<String, String>,
) -> Vec<usize> {
    let methods_of = |t: &str| -> Option<Vec<usize>> {
        type_methods.get(&(t, name)).cloned()
    };
    let capped_by_name = || -> Vec<usize> {
        match by_name.get(name) {
            Some(v) if v.len() <= NAME_FANOUT_CAP => v.clone(),
            _ => Vec::new(),
        }
    };
    // Dotted fallback: resolve only when the name is unique in the
    // workspace.  `rwlock.read()`, `guard.write()`, `tlb.flush()` et
    // al. share names with unrelated subsystems; fanning them out
    // welds the filesystem and driver stacks onto the switch path.
    // Names from std's container/lock vocabulary never resolve this
    // way even when unique — `map.insert()` means the BTreeMap, not
    // whichever workspace fn happens to share the name.
    let unique_by_name = || -> Vec<usize> {
        if STD_COLLISIONS.contains(&name) {
            return Vec::new();
        }
        match by_name.get(name) {
            Some(v) if v.len() == 1 => v.clone(),
            _ => Vec::new(),
        }
    };

    if via_dot {
        match qualifier {
            Some("self") => {
                // `self.method()`: the enclosing impl, its trait
                // impls sharing the type name, else a std method.
                caller
                    .impl_type
                    .as_deref()
                    .and_then(methods_of)
                    .unwrap_or_default()
            }
            Some(q) => {
                if let Some(t) = field_types.get(q) {
                    // Receiver names a struct field of known type.
                    if let Some(m) = methods_of(t) {
                        return m;
                    }
                }
                if q.starts_with(|c: char| c.is_ascii_uppercase()) {
                    // `Type.method()` is not Rust; treat as leaf.
                    return Vec::new();
                }
                // Unknown local receiver: only a workspace-unique
                // name resolves.
                unique_by_name()
            }
            None => unique_by_name(),
        }
    } else {
        match qualifier {
            Some("Self") => caller
                .impl_type
                .as_deref()
                .and_then(methods_of)
                .unwrap_or_default(),
            Some(q) if q.starts_with(|c: char| c.is_ascii_uppercase()) => {
                // `Type::assoc()`: that type's methods or a std type.
                methods_of(q).unwrap_or_default()
            }
            Some(_) => {
                // `module::func()`.
                free_fns
                    .get(name)
                    .cloned()
                    .unwrap_or_else(capped_by_name)
            }
            None => free_fns.get(name).cloned().unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn graph_of(sources: &[(&str, &str)]) -> (Vec<ParsedFile>, CallGraph, BTreeMap<String, String>) {
        let files: Vec<ParsedFile> = sources
            .iter()
            .map(|(n, s)| parse_file(n, s))
            .collect();
        let ft = BTreeMap::new();
        let g = CallGraph::build(&files, &ft);
        (files, g, ft)
    }

    fn gid(files: &[ParsedFile], g: &CallGraph, name: &str) -> usize {
        (0..g.fn_file.len())
            .find(|&i| g.body(files, i).name == name)
            .unwrap()
    }

    #[test]
    fn free_fn_and_self_method_edges() {
        let (files, g, _) = graph_of(&[(
            "a.rs",
            r#"
            fn top() { helper(); }
            fn helper() {}
            struct S;
            impl S {
                fn a(&self) { self.b(); }
                fn b(&self) {}
            }
        "#,
        )]);
        let top = gid(&files, &g, "top");
        let helper = gid(&files, &g, "helper");
        assert!(g.edges[top].iter().any(|e| e.callee == helper));
        let a = gid(&files, &g, "a");
        let b = gid(&files, &g, "b");
        assert!(g.edges[a].iter().any(|e| e.callee == b));
    }

    #[test]
    fn cross_crate_type_assoc_and_field_receiver() {
        let files: Vec<ParsedFile> = [
            (
                "crates/core/src/x.rs",
                r#"
                struct Mercury { kernel: Kernel }
                impl Mercury {
                    fn go(&self) {
                        Kernel::boot();
                        self.kernel.walk();
                    }
                }
            "#,
            ),
            (
                "crates/nimbus/src/k.rs",
                r#"
                pub struct Kernel;
                impl Kernel {
                    pub fn boot() {}
                    pub fn walk(&self) {}
                }
            "#,
            ),
        ]
        .iter()
        .map(|(n, s)| parse_file(n, s))
        .collect();
        let mut ft = BTreeMap::new();
        ft.insert("kernel".to_string(), "Kernel".to_string());
        let g = CallGraph::build(&files, &ft);
        let go = gid(&files, &g, "go");
        let boot = gid(&files, &g, "boot");
        let walk = gid(&files, &g, "walk");
        assert!(g.edges[go].iter().any(|e| e.callee == boot));
        assert!(g.edges[go].iter().any(|e| e.callee == walk));
    }

    #[test]
    fn test_fns_are_not_targets() {
        let (files, g, _) = graph_of(&[(
            "a.rs",
            r#"
            fn top() { poke(); }
            #[cfg(test)]
            mod tests {
                fn poke() { let v = Vec::new(); }
            }
        "#,
        )]);
        let top = gid(&files, &g, "top");
        assert!(g.edges[top].is_empty(), "test fn must not be a target");
    }

    #[test]
    fn roots_are_discovered() {
        let (files, g, _) = graph_of(&[(
            "a.rs",
            "// volint::root(SWITCH)\nfn handle_switch() {}\nfn other() {}",
        )]);
        let roots = g.roots(&files, "SWITCH");
        assert_eq!(roots.len(), 1);
        assert_eq!(g.body(&files, roots[0]).name, "handle_switch");
    }
}
