//! Structural scan: one pass over a token stream that recovers the
//! item structure volint's rules need — calls (with receiver and
//! argument identifiers), `let` bindings, struct fields, trait and impl
//! method sets, per-function identifier sets, `#[cfg(test)]` scoping,
//! `Ordering::Relaxed` uses and `volint::allow(...)` waiver comments.
//!
//! The scan is deliberately tolerant: unknown constructs fall through
//! as plain blocks, and nothing here can panic on malformed input.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeSet;

/// A function or method call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name (method or function identifier).
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// Identifier immediately before the `.` or `::` qualifier, if any
    /// (`cpu` in `cpu.write_cr3(..)`, `mem` in `mem::forget(..)`).
    pub qualifier: Option<String>,
    /// True for `recv.name(..)` method-call syntax.
    pub via_dot: bool,
    /// Identifiers appearing anywhere in the argument list.
    pub args: Vec<String>,
    /// The argument list contains an `.enter(` call.
    pub args_have_enter: bool,
    /// Trait name if the call is inside an `impl Trait for Type` block.
    pub impl_trait: Option<String>,
    /// Type name of the enclosing impl block, if any.
    pub impl_type: Option<String>,
    /// Index into [`FileFacts::fns`] of the enclosing function.
    pub fn_idx: Option<usize>,
    /// The call is inside `#[cfg(test)]` / `#[test]` scope.
    pub in_test: bool,
}

/// A `let` binding.
#[derive(Debug, Clone)]
pub struct LetBinding {
    /// Bound name (`"_"` for a wildcard discard).
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// The initializer contains a `.enter(` call.
    pub init_has_enter: bool,
    /// The declared type mentions `VoGuard`.
    pub type_has_voguard: bool,
    /// Index into [`FileFacts::fns`] of the enclosing function.
    pub fn_idx: Option<usize>,
    /// Inside test scope.
    pub in_test: bool,
}

/// A named-struct (or enum) field.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Owning struct name.
    pub struct_name: String,
    /// Field name.
    pub field_name: String,
    /// 1-based line.
    pub line: usize,
    /// Identifiers in the field's type.
    pub type_idents: Vec<String>,
    /// Inside test scope.
    pub in_test: bool,
}

/// A method declared by a trait.
#[derive(Debug, Clone)]
pub struct TraitMethod {
    /// Trait name.
    pub trait_name: String,
    /// Method name.
    pub method: String,
    /// 1-based line of the declaration.
    pub line: usize,
    /// The trait provides a default body.
    pub has_default: bool,
}

/// An `impl` block and the methods it defines.
#[derive(Debug, Clone)]
pub struct ImplDef {
    /// Trait being implemented, if a trait impl.
    pub trait_name: Option<String>,
    /// Implementing type.
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// Methods defined in the block.
    pub methods: Vec<String>,
    /// Inside test scope.
    pub in_test: bool,
}

/// A function definition and its body's identifier set.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Enclosing impl type, if the fn is a method.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Every identifier appearing in the body.
    pub idents: BTreeSet<String>,
    /// Inside test scope (or itself `#[test]`).
    pub in_test: bool,
}

/// A struct (or enum) definition.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// 1-based line.
    pub line: usize,
}

/// Everything volint knows about one source file.
#[derive(Debug, Default)]
pub struct FileFacts {
    /// Logical path (workspace-relative, `/`-separated).
    pub name: String,
    /// All call sites.
    pub calls: Vec<CallSite>,
    /// All `let` bindings.
    pub lets: Vec<LetBinding>,
    /// All named-struct fields.
    pub fields: Vec<FieldDef>,
    /// All trait method declarations.
    pub trait_methods: Vec<TraitMethod>,
    /// All impl blocks.
    pub impls: Vec<ImplDef>,
    /// All function definitions.
    pub fns: Vec<FnInfo>,
    /// All struct/enum definitions.
    pub structs: Vec<StructDef>,
    /// Lines with `Ordering::Relaxed` (line, in_test).
    pub relaxed: Vec<(usize, bool)>,
    /// `volint::allow(RULE, ...)` waivers: (line, rule names).
    pub waivers: Vec<(usize, Vec<String>)>,
}

impl FileFacts {
    /// Does this file define a struct or enum named `name`?
    pub fn defines_struct(&self, name: &str) -> bool {
        self.structs.iter().any(|s| s.name == name)
    }

    /// Is `rule` waived for a diagnostic on `line` (waiver on the same
    /// line or the line directly above)?
    pub fn is_waived(&self, rule: &str, line: usize) -> bool {
        self.waiver_match(rule, line).is_some()
    }

    /// The line of the waiver covering (`rule`, `line`), if any — used
    /// to track which waivers actually fire (stale-waiver detection).
    pub fn waiver_match(&self, rule: &str, line: usize) -> Option<usize> {
        self.waivers
            .iter()
            .find(|(wl, rules)| {
                (*wl == line || *wl + 1 == line)
                    && rules.iter().any(|r| r == rule || r == "*")
            })
            .map(|(wl, _)| *wl)
    }
}

#[derive(Debug)]
enum ScopeKind {
    Mod,
    Fn { idx: usize },
    Struct { name: String },
    Trait { name: String },
    Impl { idx: usize },
    Block,
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    /// Brace depth just inside this scope's `{`.
    entry_depth: usize,
    /// This scope (or an ancestor) is test-only.
    test: bool,
}

/// Item header parsed but whose `{` has not been consumed yet.
enum Pending {
    Mod { test: bool },
    Fn { idx: usize, test: bool },
    Struct { name: String, test: bool },
    Trait { name: String, test: bool },
    Impl { idx: usize, test: bool },
}

/// Scan `src`, producing facts under the logical path `name`.
pub fn scan_file(name: &str, src: &str) -> FileFacts {
    let mut facts = FileFacts {
        name: name.to_string(),
        ..FileFacts::default()
    };
    collect_waivers(src, &mut facts);
    let toks = lex(src);
    Scanner {
        toks: &toks,
        facts: &mut facts,
        stack: Vec::new(),
        depth: 0,
        pending: None,
        attrs: Vec::new(),
    }
    .run();
    facts
}

/// Pull `volint::allow(RULE, ...)` waivers out of the raw source (they
/// live in comments, which the lexer strips).  Only genuine `// volint::`
/// comments count — doc-comment examples and string literals don't
/// (see [`crate::parse::marker_comment`]).
fn collect_waivers(src: &str, facts: &mut FileFacts) {
    for (i, line) in src.lines().enumerate() {
        if let Some(text) = crate::parse::marker_comment(line) {
            let Some(rest) = text.strip_prefix("volint::allow(") else {
                continue;
            };
            if let Some(end) = rest.find(')') {
                let rules: Vec<String> = rest[..end]
                    .split(',')
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty())
                    .collect();
                if !rules.is_empty() {
                    facts.waivers.push((i + 1, rules));
                }
            }
        }
    }
}

struct Scanner<'a> {
    toks: &'a [Token],
    facts: &'a mut FileFacts,
    stack: Vec<Scope>,
    depth: usize,
    pending: Option<Pending>,
    attrs: Vec<String>,
}

impl<'a> Scanner<'a> {
    fn run(mut self) {
        let mut i = 0;
        while i < self.toks.len() {
            i = self.step(i);
        }
    }

    fn inherited_test(&self) -> bool {
        self.stack.iter().any(|s| s.test)
    }

    fn attrs_mark_test(&self) -> bool {
        self.attrs
            .iter()
            .any(|a| a == "test" || (a.starts_with("cfg") && a.contains("test")))
    }

    fn innermost_fn(&self) -> Option<usize> {
        self.stack.iter().rev().find_map(|s| match s.kind {
            ScopeKind::Fn { idx } => Some(idx),
            _ => None,
        })
    }

    fn innermost_impl(&self) -> Option<usize> {
        self.stack.iter().rev().find_map(|s| match s.kind {
            ScopeKind::Impl { idx } => Some(idx),
            _ => None,
        })
    }

    fn innermost_trait(&self) -> Option<&str> {
        self.stack.iter().rev().find_map(|s| match &s.kind {
            ScopeKind::Trait { name } => Some(name.as_str()),
            _ => None,
        })
    }

    fn innermost_struct(&self) -> Option<(&str, usize)> {
        self.stack.iter().rev().find_map(|s| match &s.kind {
            ScopeKind::Struct { name } => Some((name.as_str(), s.entry_depth)),
            _ => None,
        })
    }

    /// Process the token at `i`; return the next index.
    fn step(&mut self, i: usize) -> usize {
        let t = &self.toks[i];
        match &t.kind {
            TokenKind::Punct('#') => self.scan_attr(i),
            TokenKind::Punct('{') => {
                self.depth += 1;
                let inherited = self.inherited_test();
                let scope = match self.pending.take() {
                    Some(Pending::Mod { test }) => Scope {
                        kind: ScopeKind::Mod,
                        entry_depth: self.depth,
                        test: test || inherited,
                    },
                    Some(Pending::Fn { idx, test }) => Scope {
                        kind: ScopeKind::Fn { idx },
                        entry_depth: self.depth,
                        test: test || inherited,
                    },
                    Some(Pending::Struct { name, test }) => Scope {
                        kind: ScopeKind::Struct { name },
                        entry_depth: self.depth,
                        test: test || inherited,
                    },
                    Some(Pending::Trait { name, test }) => Scope {
                        kind: ScopeKind::Trait { name },
                        entry_depth: self.depth,
                        test: test || inherited,
                    },
                    Some(Pending::Impl { idx, test }) => Scope {
                        kind: ScopeKind::Impl { idx },
                        entry_depth: self.depth,
                        test: test || inherited,
                    },
                    None => Scope {
                        kind: ScopeKind::Block,
                        entry_depth: self.depth,
                        test: inherited,
                    },
                };
                self.stack.push(scope);
                i + 1
            }
            TokenKind::Punct('}') => {
                self.depth = self.depth.saturating_sub(1);
                self.stack.pop();
                i + 1
            }
            TokenKind::Punct(';') => {
                self.attrs.clear();
                i + 1
            }
            TokenKind::Ident(id) => match id.as_str() {
                "mod" => self.scan_mod(i),
                "fn" => self.scan_fn(i),
                "impl" => self.scan_impl(i),
                "trait" => self.scan_trait(i),
                "struct" | "enum" | "union" => self.scan_struct(i),
                "let" => self.scan_let(i),
                "use" => {
                    self.attrs.clear();
                    i + 1
                }
                _ => self.scan_expr_ident(i),
            },
            _ => i + 1,
        }
    }

    /// `#[...]` or `#![...]`: collect outer attrs, skip inner ones.
    fn scan_attr(&mut self, i: usize) -> usize {
        let mut j = i + 1;
        let inner = self.toks.get(j).is_some_and(|t| t.is_punct('!'));
        if inner {
            j += 1;
        }
        if !self.toks.get(j).is_some_and(|t| t.is_punct('[')) {
            return i + 1; // stray `#`
        }
        let mut bdepth = 0usize;
        let mut text = String::new();
        while j < self.toks.len() {
            let t = &self.toks[j];
            match &t.kind {
                TokenKind::Punct('[') => bdepth += 1,
                TokenKind::Punct(']') => {
                    bdepth -= 1;
                    if bdepth == 0 {
                        j += 1;
                        break;
                    }
                }
                TokenKind::Ident(s) => {
                    if !text.is_empty() {
                        text.push(' ');
                    }
                    text.push_str(s);
                }
                TokenKind::Str(s) => {
                    text.push(' ');
                    text.push_str(s);
                }
                TokenKind::Punct(c) => text.push(*c),
                _ => {}
            }
            j += 1;
        }
        if !inner {
            self.attrs.push(text);
        }
        j
    }

    fn scan_mod(&mut self, i: usize) -> usize {
        let test = self.attrs_mark_test();
        self.attrs.clear();
        // `mod name ;` or `mod name {`
        let mut j = i + 1;
        while j < self.toks.len() && !self.toks[j].is_punct('{') && !self.toks[j].is_punct(';') {
            j += 1;
        }
        if self.toks.get(j).is_some_and(|t| t.is_punct('{')) {
            self.pending = Some(Pending::Mod { test });
            j // let the `{` branch push the scope
        } else {
            j + 1
        }
    }

    /// Parse a `fn` item from the `fn` keyword: returns the index to
    /// resume at.  Registers trait/impl membership and, if the fn has a
    /// body, leaves a pending Fn scope for the `{` branch.
    fn scan_fn(&mut self, i: usize) -> usize {
        let test = self.attrs_mark_test() || self.inherited_test();
        self.attrs.clear();
        let name = match self.toks.get(i + 1).and_then(|t| t.ident()) {
            Some(n) => n.to_string(),
            None => return i + 1,
        };
        let line = self.toks[i].line;
        // Walk the header to the body `{` or declaration `;`.
        let mut j = i + 2;
        let mut paren = 0usize;
        let mut bracket = 0usize;
        let mut angle = 0usize;
        let mut body = None;
        while j < self.toks.len() {
            let t = &self.toks[j];
            match &t.kind {
                TokenKind::Punct('(') => paren += 1,
                TokenKind::Punct(')') => paren = paren.saturating_sub(1),
                TokenKind::Punct('[') => bracket += 1,
                TokenKind::Punct(']') => bracket = bracket.saturating_sub(1),
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') => {
                    let arrow = j > 0 && self.toks[j - 1].is_punct('-');
                    if !arrow {
                        angle = angle.saturating_sub(1);
                    }
                }
                TokenKind::Punct('{') if paren == 0 && bracket == 0 => {
                    body = Some(j);
                    break;
                }
                TokenKind::Punct(';') if paren == 0 && bracket == 0 && angle == 0 => {
                    break;
                }
                _ => {}
            }
            j += 1;
        }

        let impl_type = self
            .innermost_impl()
            .map(|idx| self.facts.impls[idx].type_name.clone());
        if let Some(trait_name) = self.innermost_trait().map(String::from) {
            self.facts.trait_methods.push(TraitMethod {
                trait_name,
                method: name.clone(),
                line,
                has_default: body.is_some(),
            });
        }
        if let Some(idx) = self.innermost_impl() {
            self.facts.impls[idx].methods.push(name.clone());
        }

        match body {
            Some(b) => {
                let idx = self.facts.fns.len();
                self.facts.fns.push(FnInfo {
                    name,
                    impl_type,
                    line,
                    idents: BTreeSet::new(),
                    in_test: test,
                });
                self.pending = Some(Pending::Fn { idx, test });
                b
            }
            None => j + 1,
        }
    }

    fn scan_impl(&mut self, i: usize) -> usize {
        let test = self.attrs_mark_test();
        self.attrs.clear();
        let line = self.toks[i].line;
        let mut j = i + 1;
        let mut angle = 0usize;
        let mut first_part: Vec<String> = Vec::new();
        let mut second_part: Vec<String> = Vec::new();
        let mut saw_for = false;
        let mut in_where = false;
        while j < self.toks.len() {
            let t = &self.toks[j];
            match &t.kind {
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') => {
                    let arrow = j > 0 && self.toks[j - 1].is_punct('-');
                    if !arrow {
                        angle = angle.saturating_sub(1);
                    }
                }
                TokenKind::Punct('{') => break,
                TokenKind::Ident(s) if angle == 0 => match s.as_str() {
                    "for" => saw_for = true,
                    "where" => in_where = true,
                    "dyn" | "mut" | "const" | "unsafe" => {}
                    _ if !in_where => {
                        if saw_for {
                            second_part.push(s.clone());
                        } else {
                            first_part.push(s.clone());
                        }
                    }
                    _ => {}
                },
                _ => {}
            }
            j += 1;
        }
        let (trait_name, type_name) = if saw_for {
            (first_part.last().cloned(), second_part.last().cloned())
        } else {
            (None, first_part.last().cloned())
        };
        let idx = self.facts.impls.len();
        self.facts.impls.push(ImplDef {
            trait_name,
            type_name: type_name.unwrap_or_default(),
            line,
            methods: Vec::new(),
            in_test: test || self.inherited_test(),
        });
        self.pending = Some(Pending::Impl { idx, test });
        j
    }

    fn scan_trait(&mut self, i: usize) -> usize {
        let test = self.attrs_mark_test();
        self.attrs.clear();
        let name = self
            .toks
            .get(i + 1)
            .and_then(|t| t.ident())
            .unwrap_or("")
            .to_string();
        let mut j = i + 1;
        while j < self.toks.len() && !self.toks[j].is_punct('{') && !self.toks[j].is_punct(';') {
            j += 1;
        }
        if self.toks.get(j).is_some_and(|t| t.is_punct('{')) {
            self.pending = Some(Pending::Trait { name, test });
            j
        } else {
            j + 1
        }
    }

    fn scan_struct(&mut self, i: usize) -> usize {
        let test = self.attrs_mark_test();
        self.attrs.clear();
        let name = match self.toks.get(i + 1).and_then(|t| t.ident()) {
            Some(n) => n.to_string(),
            None => return i + 1,
        };
        let line = self.toks[i].line;
        self.facts.structs.push(StructDef {
            name: name.clone(),
            line,
        });
        // Skip generics/parens to the body `{` or terminating `;`.
        let mut j = i + 2;
        let mut paren = 0usize;
        let mut angle = 0usize;
        while j < self.toks.len() {
            let t = &self.toks[j];
            match &t.kind {
                TokenKind::Punct('(') => paren += 1,
                TokenKind::Punct(')') => paren = paren.saturating_sub(1),
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') => angle = angle.saturating_sub(1),
                TokenKind::Punct('{') if paren == 0 => {
                    self.pending = Some(Pending::Struct { name, test });
                    return j;
                }
                TokenKind::Punct(';') if paren == 0 && angle == 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Lookahead over a `let` statement; records the binding but does
    /// not consume tokens (the initializer is re-walked for calls).
    fn scan_let(&mut self, i: usize) -> usize {
        self.attrs.clear();
        let line = self.toks[i].line;
        let mut j = i + 1;
        if self.toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let name = match self.toks.get(j).and_then(|t| t.ident()) {
            Some(n) => n.to_string(),
            None => return i + 1, // tuple/struct pattern: not tracked
        };
        j += 1;
        // Optional `: Type`
        let mut type_has_voguard = false;
        if self.toks.get(j).is_some_and(|t| t.is_punct(':'))
            && !self.toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        {
            j += 1;
            while j < self.toks.len() {
                let t = &self.toks[j];
                if t.is_punct('=') || t.is_punct(';') {
                    break;
                }
                if t.is_ident("VoGuard") {
                    type_has_voguard = true;
                }
                j += 1;
            }
        }
        // Initializer until `;` at balanced depth.
        let mut init_has_enter = false;
        if self.toks.get(j).is_some_and(|t| t.is_punct('=')) {
            j += 1;
            let mut paren = 0usize;
            let mut bracket = 0usize;
            let mut brace = 0usize;
            let mut steps = 0;
            while j < self.toks.len() && steps < 4096 {
                let t = &self.toks[j];
                match &t.kind {
                    TokenKind::Punct('(') => paren += 1,
                    TokenKind::Punct(')') => paren = paren.saturating_sub(1),
                    TokenKind::Punct('[') => bracket += 1,
                    TokenKind::Punct(']') => bracket = bracket.saturating_sub(1),
                    TokenKind::Punct('{') => brace += 1,
                    TokenKind::Punct('}') => {
                        if brace == 0 {
                            break; // malformed; bail out of the lookahead
                        }
                        brace -= 1;
                    }
                    TokenKind::Punct(';') if paren == 0 && bracket == 0 && brace == 0 => break,
                    TokenKind::Ident(s)
                        if s == "enter"
                            && j > 0
                            && self.toks[j - 1].is_punct('.')
                            && self.toks.get(j + 1).is_some_and(|t| t.is_punct('(')) =>
                    {
                        init_has_enter = true;
                    }
                    _ => {}
                }
                j += 1;
                steps += 1;
            }
        }
        self.facts.lets.push(LetBinding {
            name,
            line,
            init_has_enter,
            type_has_voguard,
            fn_idx: self.innermost_fn(),
            in_test: self.inherited_test(),
        });
        i + 1
    }

    /// A plain identifier in expression/field position.
    fn scan_expr_ident(&mut self, i: usize) -> usize {
        let id = self.toks[i].ident().unwrap().to_string();
        let line = self.toks[i].line;

        // Accumulate into the innermost function's ident set.
        if let Some(idx) = self.innermost_fn() {
            self.facts.fns[idx].idents.insert(id.clone());
        }

        // `Ordering::Relaxed`
        if id == "Relaxed"
            && i >= 3
            && self.toks[i - 1].is_punct(':')
            && self.toks[i - 2].is_punct(':')
            && self.toks[i - 3].is_ident("Ordering")
        {
            self.facts.relaxed.push((line, self.inherited_test()));
        }

        // Struct field: `name :` directly inside a struct body.
        if let Some((sname, entry_depth)) = self.innermost_struct() {
            if self.depth == entry_depth
                && self.toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && !self.toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            {
                let struct_name = sname.to_string();
                let mut type_idents = Vec::new();
                let mut j = i + 2;
                let mut angle = 0usize;
                let mut paren = 0usize;
                while j < self.toks.len() {
                    let t = &self.toks[j];
                    match &t.kind {
                        TokenKind::Punct('<') => angle += 1,
                        TokenKind::Punct('>') => angle = angle.saturating_sub(1),
                        TokenKind::Punct('(') => paren += 1,
                        TokenKind::Punct(')') => paren = paren.saturating_sub(1),
                        TokenKind::Punct(',') if angle == 0 && paren == 0 => break,
                        TokenKind::Punct('}') => break,
                        TokenKind::Ident(s) => type_idents.push(s.clone()),
                        _ => {}
                    }
                    j += 1;
                }
                let in_test = self.inherited_test();
                self.facts.fields.push(FieldDef {
                    struct_name,
                    field_name: id.clone(),
                    line,
                    type_idents,
                    in_test,
                });
            }
        }

        // Call site: `ident (`.
        if self.toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            let (qualifier, via_dot) = self.call_qualifier(i);
            let (args, args_have_enter) = self.call_args(i + 1);
            let (impl_trait, impl_type) = match self.innermost_impl() {
                Some(idx) => (
                    self.facts.impls[idx].trait_name.clone(),
                    Some(self.facts.impls[idx].type_name.clone()),
                ),
                None => (None, None),
            };
            self.facts.calls.push(CallSite {
                name: id,
                line,
                qualifier,
                via_dot,
                args,
                args_have_enter,
                impl_trait,
                impl_type,
                fn_idx: self.innermost_fn(),
                in_test: self.inherited_test(),
            });
        }
        i + 1
    }

    /// The receiver/path qualifier of a call whose name is at `i`.
    fn call_qualifier(&self, i: usize) -> (Option<String>, bool) {
        if i >= 1 && self.toks[i - 1].is_punct('.') {
            let q = if i >= 2 {
                match &self.toks[i - 2].kind {
                    TokenKind::Ident(s) => Some(s.clone()),
                    // `self.pv().invlpg(..)`: walk back through the
                    // call's parens to the function name.
                    TokenKind::Punct(')') => {
                        let mut depth = 0usize;
                        let mut k = i - 2;
                        loop {
                            match &self.toks[k].kind {
                                TokenKind::Punct(')') => depth += 1,
                                TokenKind::Punct('(') => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            if k == 0 {
                                break;
                            }
                            k -= 1;
                        }
                        if k > 0 {
                            self.toks[k - 1].ident().map(String::from)
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            } else {
                None
            };
            (q, true)
        } else if i >= 2 && self.toks[i - 1].is_punct(':') && self.toks[i - 2].is_punct(':') {
            let q = if i >= 3 {
                self.toks[i - 3].ident().map(String::from)
            } else {
                None
            };
            (q, false)
        } else {
            (None, false)
        }
    }

    /// Identifiers inside the argument list opening at `open` (a `(`).
    fn call_args(&self, open: usize) -> (Vec<String>, bool) {
        let mut args = Vec::new();
        let mut has_enter = false;
        let mut depth = 0usize;
        let mut j = open;
        while j < self.toks.len() {
            let t = &self.toks[j];
            match &t.kind {
                TokenKind::Punct('(') => depth += 1,
                TokenKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident(s) => {
                    if s == "enter"
                        && self.toks[j - 1].is_punct('.')
                        && self.toks.get(j + 1).is_some_and(|t| t.is_punct('('))
                    {
                        has_enter = true;
                    }
                    args.push(s.clone());
                }
                _ => {}
            }
            j += 1;
        }
        (args, has_enter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calls_carry_receiver_and_impl_context() {
        let src = r#"
            impl PvOps for BareOps {
                fn load_base_table(&self, cpu: &Arc<Cpu>) -> Result<(), E> {
                    cpu.write_cr3(pgd.0)?;
                    Ok(())
                }
            }
            fn free() { machine.mem.write_pte(cpu, t, 0, v); }
        "#;
        let f = scan_file("x.rs", src);
        let wc = f.calls.iter().find(|c| c.name == "write_cr3").unwrap();
        assert_eq!(wc.qualifier.as_deref(), Some("cpu"));
        assert!(wc.via_dot);
        assert_eq!(wc.impl_trait.as_deref(), Some("PvOps"));
        assert_eq!(wc.impl_type.as_deref(), Some("BareOps"));
        let wp = f.calls.iter().find(|c| c.name == "write_pte").unwrap();
        assert_eq!(wp.qualifier.as_deref(), Some("mem"));
        assert!(wp.impl_trait.is_none());
    }

    #[test]
    fn cfg_test_scopes_mark_calls() {
        let src = r#"
            fn prod() { cpu.lidt(t); }
            #[cfg(test)]
            mod tests {
                fn helper() { cpu.lidt(t); }
                #[test]
                fn case() { cpu.lgdt(g); }
            }
        "#;
        let f = scan_file("x.rs", src);
        let prod = f.calls.iter().find(|c| c.name == "lidt" && !c.in_test);
        assert!(prod.is_some());
        assert!(f
            .calls
            .iter()
            .filter(|c| c.name == "lidt")
            .any(|c| c.in_test));
        assert!(f.calls.iter().find(|c| c.name == "lgdt").unwrap().in_test);
    }

    #[test]
    fn trait_and_impl_method_sets() {
        let src = r#"
            pub trait PvOps {
                fn mode(&self) -> ExecMode;
                fn name(&self) -> &'static str { "x" }
                fn set_pte(&self, t: F, i: usize, v: P) -> Result<(), E>;
            }
            impl PvOps for BareOps {
                fn mode(&self) -> ExecMode { ExecMode::Native }
                fn set_pte(&self, t: F, i: usize, v: P) -> Result<(), E> { Ok(()) }
            }
        "#;
        let f = scan_file("x.rs", src);
        let req: Vec<_> = f
            .trait_methods
            .iter()
            .filter(|m| !m.has_default)
            .map(|m| m.method.as_str())
            .collect();
        assert_eq!(req, vec!["mode", "set_pte"]);
        let imp = f.impls.iter().find(|i| i.type_name == "BareOps").unwrap();
        assert_eq!(imp.trait_name.as_deref(), Some("PvOps"));
        assert_eq!(imp.methods, vec!["mode", "set_pte"]);
    }

    #[test]
    fn struct_fields_and_guard_lets() {
        let src = r#"
            struct Holder { guard: Option<VoGuard>, n: usize }
            fn f(rc: &Arc<VoRefCount>) {
                let g = rc.enter();
                let _ = rc.enter();
                let h: VoGuard = make();
                drop(g);
            }
        "#;
        let f = scan_file("x.rs", src);
        let fd = f.fields.iter().find(|x| x.field_name == "guard").unwrap();
        assert!(fd.type_idents.iter().any(|t| t == "VoGuard"));
        assert_eq!(f.fields.len(), 2);
        let g = f.lets.iter().find(|l| l.name == "g").unwrap();
        assert!(g.init_has_enter);
        let anon = f.lets.iter().find(|l| l.name == "_").unwrap();
        assert!(anon.init_has_enter);
        let h = f.lets.iter().find(|l| l.name == "h").unwrap();
        assert!(h.type_has_voguard);
    }

    #[test]
    fn fn_ident_sets_cover_bodies() {
        let src = r#"
            impl Rendezvous {
                pub fn begin(&self) -> Result<(), E> {
                    self.ready.store(0, Ordering::Release);
                    self.go.store(false, Ordering::Release);
                    Ok(())
                }
            }
        "#;
        let f = scan_file("x.rs", src);
        let begin = f.fns.iter().find(|x| x.name == "begin").unwrap();
        assert_eq!(begin.impl_type.as_deref(), Some("Rendezvous"));
        assert!(begin.idents.contains("ready"));
        assert!(begin.idents.contains("go"));
        assert!(!begin.idents.contains("done"));
    }

    #[test]
    fn relaxed_orderings_and_waivers() {
        let src = "fn f(x: &AtomicUsize) {\n    // volint::allow(ATOMIC-ORDER): stats only\n    x.load(Ordering::Relaxed);\n    x.store(1, Ordering::Relaxed);\n}\n";
        let f = scan_file("x.rs", src);
        assert_eq!(f.relaxed.len(), 2);
        assert!(f.is_waived("ATOMIC-ORDER", 3));
        assert!(!f.is_waived("ATOMIC-ORDER", 4));
        assert!(!f.is_waived("VO-BYPASS", 3));
    }

    #[test]
    fn fn_returning_impl_trait_is_not_an_impl_block() {
        let src = r#"
            fn make() -> impl Iterator<Item = u8> { [1u8].into_iter() }
            fn after() { cpu.write_cr3(0); }
        "#;
        let f = scan_file("x.rs", src);
        let c = f.calls.iter().find(|c| c.name == "write_cr3").unwrap();
        assert!(c.impl_trait.is_none());
        assert_eq!(f.impls.len(), 0);
    }
}
