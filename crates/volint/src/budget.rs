//! Static cycle budget for the mode-switch phases.
//!
//! The switch path is instrumented with `merctrace` spans whose probe
//! names (`switch.transfer.flip_tables`, `switch.reload_cpu`, …) are
//! exactly the phase keys of the measured `switch_timeline.json`.
//! This module walks every span region and sums a *worst-case* cycle
//! count for it:
//!
//! * each `// volint::cost(N)` marker inside the region contributes
//!   `N` cycles, multiplied by the resolved trip bounds of every
//!   enclosing loop;
//! * each call inside the region contributes the (memoized) cost of
//!   its callee — the callee's own markers and calls, recursively —
//!   again multiplied by enclosing loop bounds.  Where a call site
//!   resolves to several candidates the *most expensive* one is
//!   charged; recursion contributes zero on the back edge.
//!
//! When one probe name is opened in several functions (attach and
//! detach both emit `switch.reload_cpu`) the budget keeps the MAX.
//!
//! The emitted `volint_budget.json` is the static half of a contract
//! checked by `tools/benchgate.py`: every measured phase must fit
//! inside its budget (a breach means the cost model drifted under the
//! code), and a measurement *far* under budget flags stale bounds.

use crate::callgraph::CallGraph;
use crate::parse::{FnBody, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// Simulated clock rate; keep in sync with `simx86`'s cycle-to-µs
/// conversion (3 GHz: `switch_timeline.json` reports 2950 cycles as
/// 0.98333 µs).
pub const CYCLES_PER_US: u64 = 3000;

/// The per-phase worst-case budget, in cycles.
#[derive(Debug, Default)]
pub struct Budget {
    /// Probe name → worst-case cycles.
    pub phases: BTreeMap<String, u64>,
}

impl Budget {
    /// Budget of one phase in microseconds.
    pub fn us(&self, phase: &str) -> Option<f64> {
        self.phases
            .get(phase)
            .map(|&c| c as f64 / CYCLES_PER_US as f64)
    }

    /// Hand-rolled JSON document (volint is dependency-free).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"generated_by\": \"volint static cycle budget\",\n");
        out.push_str(&format!("  \"cycles_per_us\": {CYCLES_PER_US},\n"));
        out.push_str("  \"phases\": {\n");
        let n = self.phases.len();
        for (i, (name, cycles)) in self.phases.iter().enumerate() {
            let us = *cycles as f64 / CYCLES_PER_US as f64;
            out.push_str(&format!(
                "    \"{name}\": {{\"cycles\": {cycles}, \"us\": {us:.5}}}{}\n",
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// The product of the resolved bounds of every loop in `body` whose
/// extent contains `line`.  Loops with no resolvable bound multiply by
/// 1 — SWITCH-LOOP-BOUND reports those separately; the budget stays
/// finite rather than poisoning the whole phase.
fn loop_product(body: &FnBody, line: usize, consts: &BTreeMap<String, u64>) -> u64 {
    body.loops
        .iter()
        .filter(|l| l.line <= line && line <= l.end_line)
        .map(|l| l.resolved_bound(consts).unwrap_or(1).max(1))
        .product::<u64>()
        .max(1)
}

/// Worst-case cycles attributable to the line range `[lo, hi]` of the
/// fn `gid`: cost markers plus callee costs, loop-multiplied.
fn range_cost(
    graph: &CallGraph,
    files: &[ParsedFile],
    gid: usize,
    lo: usize,
    hi: usize,
    memo: &mut BTreeMap<usize, u64>,
    visiting: &mut BTreeSet<usize>,
) -> u64 {
    let file = graph.file(files, gid);
    let body = graph.body(files, gid);
    let mut total: u64 = 0;

    for &(line, cycles) in &file.costs {
        if line >= lo && line <= hi && line >= body.line && line <= body.end_line {
            total = total.saturating_add(
                cycles.saturating_mul(loop_product(body, line, &graph.consts)),
            );
        }
    }

    // Most-expensive candidate per call-site line.
    let mut per_line: BTreeMap<usize, u64> = BTreeMap::new();
    for e in &graph.edges[gid] {
        if e.line < lo || e.line > hi {
            continue;
        }
        let c = fn_cost(graph, files, e.callee, memo, visiting);
        let slot = per_line.entry(e.line).or_insert(0);
        *slot = (*slot).max(c);
    }
    for (line, c) in per_line {
        total = total
            .saturating_add(c.saturating_mul(loop_product(body, line, &graph.consts)));
    }
    total
}

/// Memoized whole-fn cost; recursion contributes zero on back edges.
fn fn_cost(
    graph: &CallGraph,
    files: &[ParsedFile],
    gid: usize,
    memo: &mut BTreeMap<usize, u64>,
    visiting: &mut BTreeSet<usize>,
) -> u64 {
    if let Some(&c) = memo.get(&gid) {
        return c;
    }
    if !visiting.insert(gid) {
        return 0;
    }
    let body = graph.body(files, gid);
    let c = range_cost(graph, files, gid, body.line, body.end_line, memo, visiting);
    visiting.remove(&gid);
    memo.insert(gid, c);
    c
}

/// Compute the per-phase budget over the whole workspace graph.
/// Phases that sum to zero cycles are omitted: an un-modeled span is
/// "no claim", not "claims zero".
pub fn compute(graph: &CallGraph, files: &[ParsedFile]) -> Budget {
    let mut memo = BTreeMap::new();
    let mut budget = Budget::default();
    for gid in 0..graph.fn_file.len() {
        let body = graph.body(files, gid);
        if body.in_test || crate::in_test_tree(&graph.file(files, gid).name) {
            continue;
        }
        for span in &body.phases {
            let mut visiting = BTreeSet::new();
            let cycles = range_cost(
                graph,
                files,
                gid,
                span.start_line,
                span.end_line,
                &mut memo,
                &mut visiting,
            );
            if cycles == 0 {
                continue;
            }
            let slot = budget.phases.entry(span.name.clone()).or_insert(0);
            *slot = (*slot).max(cycles);
        }
    }
    budget
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use std::collections::BTreeMap;

    fn setup(src: &str) -> (Vec<ParsedFile>, CallGraph) {
        let files = vec![parse_file("a.rs", src)];
        let g = CallGraph::build(&files, &BTreeMap::new());
        (files, g)
    }

    #[test]
    fn marker_times_loop_bounds_and_callee_cost() {
        let src = r#"
            fn attach(cpu: &Cpu) {
                merctrace::span_begin!(cpu.id, "phase.a", cpu.cycles());
                // volint::bound(4)
                for f in frames() {
                    // volint::cost(10)
                    tick(cpu);
                }
                helper(cpu);
                merctrace::span_end!(cpu.id, "phase.a", cpu.cycles());
            }
            fn helper(cpu: &Cpu) {
                // volint::cost(100)
                cpu.step();
            }
        "#;
        let (files, g) = setup(src);
        let b = compute(&g, &files);
        // 4 trips × 10 cycles + helper's flat 100.
        assert_eq!(b.phases.get("phase.a"), Some(&140));
        assert!((b.us("phase.a").unwrap() - 140.0 / 3000.0).abs() < 1e-9);
    }

    #[test]
    fn max_across_fns_and_recursion_is_finite() {
        let src = r#"
            fn a(cpu: &Cpu) {
                merctrace::span_begin!(cpu.id, "phase.x", 0);
                // volint::cost(50)
                b(cpu);
                merctrace::span_end!(cpu.id, "phase.x", 0);
            }
            fn b(cpu: &Cpu) {
                // volint::cost(30)
                a(cpu);
            }
            fn c(cpu: &Cpu) {
                merctrace::span_begin!(cpu.id, "phase.x", 0);
                // volint::cost(10)
                merctrace::span_end!(cpu.id, "phase.x", 0);
            }
        "#;
        let (files, g) = setup(src);
        let b = compute(&g, &files);
        // a's region: 50 + cost(b) where b→a recursion contributes 0
        // beyond b's own 30 + a's 50 + ... capped by the back edge.
        let x = *b.phases.get("phase.x").unwrap();
        assert!(x >= 80, "got {x}");
        assert!(x < 1000, "recursion must not diverge, got {x}");
    }

    #[test]
    fn zero_cost_phases_are_omitted_and_json_shape() {
        let src = r#"
            fn a(cpu: &Cpu) {
                merctrace::span_begin!(cpu.id, "phase.empty", 0);
                merctrace::span_end!(cpu.id, "phase.empty", 0);
                merctrace::span_begin!(cpu.id, "phase.real", 0);
                // volint::cost(3000)
                merctrace::span_end!(cpu.id, "phase.real", 0);
            }
        "#;
        let (files, g) = setup(src);
        let b = compute(&g, &files);
        assert!(!b.phases.contains_key("phase.empty"));
        let j = b.to_json();
        assert!(j.contains("\"cycles_per_us\": 3000"));
        assert!(j.contains("\"phase.real\": {\"cycles\": 3000, \"us\": 1.00000}"));
    }
}
