//! volint — the Mercury invariant checker.
//!
//! Mercury's safety story rests on invariants the Rust compiler cannot
//! see: every virtualization-sensitive operation must route through a
//! Virtualization Object (paper §4.2/§5.3), every `VoRefCount::enter`
//! must pair with an exit so the switch gate (§5.1.1) is sound, the
//! `PvOps` dispatch table must be total across VOes with symmetric
//! state transfer (§5.1.2/§5.1.3), and the SMP rendezvous protocol
//! (§5.4) must use acquire/release atomics, and the fault-injection
//! hooks (DESIGN.md §12) must stay out of the mode-switch critical
//! section.  volint enforces all five as a static pass over the
//! workspace source.
//!
//! Use it as a library ([`analyze_sources`] / [`analyze_workspace`]
//! produce structured [`Diagnostic`]s) or as a binary
//! (`cargo run -p volint`) that exits nonzero on violations.
//!
//! Sanctioned exceptions are expressed in-source with a waiver comment
//! on (or directly above) the offending line:
//!
//! ```text
//! // volint::allow(VO-BYPASS): pre-VO bootstrap, PvOps not built yet
//! cpu.set_pl_raw(PrivLevel::Pl0);
//! ```
//!
//! The crate is dependency-free by design so it can run in minimal CI
//! sandboxes and during offline bootstraps.

#![warn(missing_docs)]

pub mod budget;
pub mod callgraph;
pub mod lexer;
pub mod markers;
pub mod parse;
pub mod pathrules;
pub mod reach;
pub mod rules;
pub mod scan;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// The root kinds the reachability engine walks.  `SWITCH` tags the
/// mode-switch entry points (and the xenon hypercall dispatch);
/// `RENDEZVOUS` tags the paths that run inside a rendezvous round.
pub const ROOT_KINDS: &[&str] = &["SWITCH", "RENDEZVOUS"];

/// The invariant a diagnostic belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Privileged primitive reached outside a VO (paper §4.2/§5.3).
    VoBypass,
    /// Unbalanced / leaked / deadlocking VO guard (paper §5.1.1).
    RefcountLeak,
    /// Incomplete dispatch table or asymmetric transfer (§5.1.2/§5.1.3).
    DispatchGap,
    /// Relaxed atomics on rendezvous/refcount state (paper §5.4).
    AtomicOrder,
    /// Fault-injection hook used inside the switch critical section
    /// (DESIGN.md §12: injection must never perturb the switch itself).
    FaultMask,
    /// Heap allocation reachable from a switch root (graph rule).
    SwitchAlloc,
    /// Panic path reachable from a switch root (graph rule).
    SwitchPanic,
    /// Loop reachable from a switch root with no static trip bound
    /// (graph rule; bounds feed the static cycle budget).
    SwitchLoopBound,
    /// `guarded_by(..)` field touched outside its guard's reach set
    /// (graph rule; static complement of dyncheck's vector clocks).
    LockDiscipline,
    /// `volint::allow(..)` waiver that no longer suppresses anything.
    StaleWaiver,
}

impl Rule {
    /// Stable rule identifier, as used in waiver comments and docs.
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::VoBypass => "VO-BYPASS",
            Rule::RefcountLeak => "REFCOUNT-LEAK",
            Rule::DispatchGap => "DISPATCH-GAP",
            Rule::AtomicOrder => "ATOMIC-ORDER",
            Rule::FaultMask => "FAULT-MASK",
            Rule::SwitchAlloc => "SWITCH-ALLOC",
            Rule::SwitchPanic => "SWITCH-PANIC",
            Rule::SwitchLoopBound => "SWITCH-LOOP-BOUND",
            Rule::LockDiscipline => "LOCK-DISCIPLINE",
            Rule::StaleWaiver => "STALE-WAIVER",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; does not fail the build.
    Warning,
    /// Invariant violation; the binary exits nonzero.
    Error,
}

/// One reported invariant violation.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path (`/`-separated).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Violated rule.
    pub rule: Rule,
    /// Severity.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(
            f,
            "{}:{}: {sev}[{}]: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

impl Diagnostic {
    /// Hand-rolled JSON encoding (volint is dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"file":"{}","line":{},"rule":"{}","severity":"{}","message":"{}"}}"#,
            json_escape(&self.file),
            self.line,
            self.rule,
            match self.severity {
                Severity::Warning => "warning",
                Severity::Error => "error",
            },
            json_escape(&self.message)
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lint configuration: the privileged-op set, sanctioned paths and
/// dispatch conventions.
#[derive(Debug, Clone)]
pub struct Config {
    /// Names of privileged hardware primitives (VO-BYPASS targets).
    pub privileged: BTreeSet<String>,
    /// Path prefixes exempt from VO-BYPASS: the hardware model itself,
    /// the VMM, and the designated switch-handler module.
    pub allow_paths: Vec<String>,
    /// The paravirtualization dispatch trait.
    pub pvops_trait: String,
    /// The canonical VO implementations that must all exist.
    pub vo_impls: Vec<String>,
    /// Receiver names that denote routed-through-PvOps dispatch
    /// (`ctx.pv.invlpg(..)`).
    pub dispatch_receivers: BTreeSet<String>,
    /// Calls that block on a pending switch or rendezvous; holding a VO
    /// guard across them deadlocks (REFCOUNT-LEAK).
    pub blocking_calls: BTreeSet<String>,
    /// The `faultgen` injection-hook entry points (FAULT-MASK targets).
    pub fault_hooks: BTreeSet<String>,
    /// Functions forming the mode-switch critical section; fault hooks
    /// must not appear in their bodies (FAULT-MASK).
    pub switch_critical: BTreeSet<String>,
    /// Report stale waivers as errors instead of warnings (CI mode,
    /// `--deny-stale-waivers`).
    pub deny_stale_waivers: bool,
}

impl Config {
    /// The configuration for the Mercury workspace.
    pub fn mercury_defaults() -> Self {
        let privileged = [
            // control registers / address-space roots
            "write_cr3",
            "set_cr3_raw",
            // descriptor tables
            "lidt",
            "set_idt_raw",
            "lgdt",
            "set_gdt_raw",
            // interrupt flag + privilege level
            "cli",
            "sti",
            "set_if_raw",
            "set_pl_raw",
            "set_non_root",
            // TLB maintenance
            "flush_tlb_local",
            "invlpg",
            // page-table mutation
            "write_pte",
            // inter-processor interrupts
            "broadcast_ipi",
        ];
        let receivers = ["pv", "inner", "ops"];
        let blocking = [
            "switch_to_virtual",
            "switch_to_native",
            "wait_ready",
            "wait_done",
            "wait_ready_and_go",
            "check_in_and_wait",
            "check_in_and_wait_serving",
            "wait_drained",
        ];
        let fault_hooks = [
            "mem_read_site",
            "disk_site",
            "irq_site",
            "gate_site",
            "hypercall_site",
        ];
        let switch_critical = [
            "try_switch",
            "handle_switch",
            "handle_rendezvous_peer",
            "attach_transfer",
            "detach_transfer",
            "rollback_transfer",
            "reload_cpu",
            "sharded_recompute_phase",
            "shard_exec_one",
            "shard_poll",
        ];
        Config {
            privileged: privileged.iter().map(|s| s.to_string()).collect(),
            allow_paths: vec![
                "crates/simx86/".to_string(),
                "crates/xenon/".to_string(),
                "crates/core/src/switch.rs".to_string(),
            ],
            pvops_trait: "PvOps".to_string(),
            vo_impls: vec![
                "BareOps".to_string(),
                "XenOps".to_string(),
                "HvmOps".to_string(),
            ],
            dispatch_receivers: receivers.iter().map(|s| s.to_string()).collect(),
            blocking_calls: blocking.iter().map(|s| s.to_string()).collect(),
            fault_hooks: fault_hooks.iter().map(|s| s.to_string()).collect(),
            switch_critical: switch_critical.iter().map(|s| s.to_string()).collect(),
            deny_stale_waivers: false,
        }
    }
}

/// Diagnostic collector that also tracks which waivers actually
/// suppressed something, so unused waivers can be reported as
/// [`Rule::StaleWaiver`].
#[derive(Debug, Default)]
pub struct Sink {
    /// Collected diagnostics (unsorted; [`analyze_sources`] sorts).
    pub diags: Vec<Diagnostic>,
    /// Waivers that fired at least once: (file, waiver line).
    pub used_waivers: BTreeSet<(String, usize)>,
}

impl Sink {
    /// Fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an error-severity diagnostic, honoring (and accounting
    /// for) any waiver on or directly above the line.
    pub fn push(&mut self, f: &scan::FileFacts, rule: Rule, line: usize, message: String) {
        if let Some(wl) = f.waiver_match(rule.as_str(), line) {
            self.used_waivers.insert((f.name.clone(), wl));
            return;
        }
        self.diags.push(Diagnostic {
            file: f.name.clone(),
            line,
            rule,
            severity: Severity::Error,
            message,
        });
    }
}

/// Test-only source trees (integration tests, examples, benches) are
/// exercised under `cfg(test)`-like conditions and are exempt from
/// the production invariants.
pub(crate) fn in_test_tree(name: &str) -> bool {
    name.split('/')
        .any(|c| c == "tests" || c == "examples" || c == "benches")
}

/// Type-ident wrappers skipped when mapping a struct field to the
/// user type it holds (`shard_job: Mutex<Option<Arc<WorkQueue<..>>>>`
/// maps to `WorkQueue`).
const TYPE_WRAPPERS: &[&str] = &[
    "Arc", "Rc", "Box", "Option", "Vec", "VecDeque", "Mutex", "RwLock", "RefCell", "Cell",
    "BTreeMap", "BTreeSet", "HashMap", "HashSet", "Result",
];

/// Field name → declared user type, for receiver-by-field call
/// resolution (`self.kernel.fix_kstack_selectors()` → `Kernel`).
fn field_type_map(facts: &[scan::FileFacts]) -> BTreeMap<String, String> {
    let mut m = BTreeMap::new();
    for f in facts {
        if in_test_tree(&f.name) {
            continue;
        }
        for fd in &f.fields {
            if fd.in_test {
                continue;
            }
            if let Some(t) = fd.type_idents.iter().find(|t| {
                t.starts_with(|c: char| c.is_ascii_uppercase())
                    && !TYPE_WRAPPERS.contains(&t.as_str())
            }) {
                m.entry(fd.field_name.clone()).or_insert_with(|| t.clone());
            }
        }
    }
    m
}

/// Waivers that never fired become STALE-WAIVER diagnostics — warnings
/// by default, errors under [`Config::deny_stale_waivers`].
fn stale_waivers(facts: &[scan::FileFacts], cfg: &Config, sink: &mut Sink) {
    for f in facts {
        if in_test_tree(&f.name) {
            continue; // rules skip test trees; their waivers can't fire
        }
        for (wl, rules) in &f.waivers {
            if sink.used_waivers.contains(&(f.name.clone(), *wl)) {
                continue;
            }
            sink.diags.push(Diagnostic {
                file: f.name.clone(),
                line: *wl,
                rule: Rule::StaleWaiver,
                severity: if cfg.deny_stale_waivers {
                    Severity::Error
                } else {
                    Severity::Warning
                },
                message: format!(
                    "waiver for {} suppresses no diagnostic; remove it or \
                     re-justify it against the current rules",
                    rules.join(", ")
                ),
            });
        }
    }
}

/// Analyze in-memory sources: `(logical path, contents)` pairs.
///
/// Runs both the line-level rules (PR 1) and the call-graph rules:
/// parse → call graph → reachability → SWITCH-ALLOC / SWITCH-PANIC /
/// SWITCH-LOOP-BOUND / LOCK-DISCIPLINE, then the stale-waiver sweep.
pub fn analyze_sources(sources: &[(String, String)], cfg: &Config) -> Vec<Diagnostic> {
    let facts: Vec<_> = sources
        .iter()
        .map(|(name, src)| scan::scan_file(name, src))
        .collect();
    let parsed: Vec<_> = sources
        .iter()
        .map(|(name, src)| parse::parse_file(name, src))
        .collect();
    let field_types = field_type_map(&facts);
    let graph = callgraph::CallGraph::build(&parsed, &field_types);
    let reach = reach::compute(&graph, &parsed, ROOT_KINDS);

    let mut sink = Sink::new();
    rules::check(&facts, cfg, &mut sink);
    pathrules::check(&facts, &parsed, &graph, &reach, &field_types, &mut sink);
    stale_waivers(&facts, cfg, &mut sink);

    let mut out = sink.diags;
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    out
}

/// Compute the static switch-phase cycle budget for in-memory sources.
pub fn budget_sources(sources: &[(String, String)]) -> budget::Budget {
    let facts: Vec<_> = sources
        .iter()
        .map(|(name, src)| scan::scan_file(name, src))
        .collect();
    let parsed: Vec<_> = sources
        .iter()
        .map(|(name, src)| parse::parse_file(name, src))
        .collect();
    let field_types = field_type_map(&facts);
    let graph = callgraph::CallGraph::build(&parsed, &field_types);
    budget::compute(&graph, &parsed)
}

/// Compute the static switch-phase cycle budget for a workspace root.
pub fn budget_workspace(root: &Path) -> std::io::Result<budget::Budget> {
    Ok(budget_sources(&workspace_sources(root)?))
}

/// Walk a workspace root, analyze every `.rs` file, and return the
/// diagnostics.  The privileged-op set is augmented with every
/// `#[doc(alias = "volint-privileged")]` marker found under
/// `crates/simx86/`, so the hardware layer stays the source of truth.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> std::io::Result<Vec<Diagnostic>> {
    let sources = workspace_sources(root)?;
    let mut cfg = cfg.clone();
    for (name, src) in &sources {
        if name.starts_with("crates/simx86/") {
            for m in markers::scan(src) {
                cfg.privileged.insert(m);
            }
        }
    }
    Ok(analyze_sources(&sources, &cfg))
}

/// Every `.rs` file under `root` as `(logical path, contents)`, in
/// sorted path order.
fn workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut sources = Vec::with_capacity(files.len());
    for rel in files {
        let abs = root.join(&rel);
        let Ok(src) = std::fs::read_to_string(&abs) else {
            continue; // non-UTF8 or vanished; skip
        };
        let name = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        sources.push((name, src));
    }
    Ok(sources)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "target" | ".git" | ".github" | "fixtures" | "node_modules"
            ) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_display_and_json() {
        let d = Diagnostic {
            file: "crates/x/src/a.rs".into(),
            line: 7,
            rule: Rule::VoBypass,
            severity: Severity::Error,
            message: "privileged `lidt` outside a VO".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/x/src/a.rs:7: error[VO-BYPASS]: privileged `lidt` outside a VO"
        );
        let j = d.to_json();
        assert!(j.contains(r#""rule":"VO-BYPASS""#));
        assert!(j.contains(r#""line":7"#));
    }

    #[test]
    fn analyze_sources_end_to_end() {
        let cfg = Config::mercury_defaults();
        let bad = "fn f(cpu: &Cpu) { cpu.lidt(0); }".to_string();
        let diags = analyze_sources(&[("crates/app/src/x.rs".to_string(), bad)], &cfg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::VoBypass);

        let routed = "fn f(ctx: &Ctx) { ctx.pv.invlpg(va); }".to_string();
        let diags = analyze_sources(&[("crates/app/src/x.rs".to_string(), routed)], &cfg);
        assert!(diags.is_empty());
    }
}
