//! A small, dependency-free Rust tokenizer.
//!
//! volint needs just enough lexical structure to reason about calls,
//! items and scopes: identifiers, punctuation, literals and line
//! numbers, with comments and the interiors of string/char literals
//! stripped so they can never fake a match.  It is deliberately not a
//! full Rust lexer (`syn` is the obvious choice for that, but volint
//! must build with zero third-party dependencies so it can run in
//! minimal CI sandboxes and during offline bootstraps).

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// Token classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `impl`, `write_cr3`, `r#type`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `(`, `{`, `<`, `#`, ...).
    Punct(char),
    /// String, raw-string, byte-string or char literal (contents dropped).
    Str(String),
    /// Numeric literal (text kept verbatim).
    Num(String),
    /// A lifetime such as `'a` (name kept without the quote).
    Lifetime(String),
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(i) if i == s)
    }

    /// The string-literal contents, if this token is a string literal.
    pub fn str_lit(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Tokenize `src`, dropping comments and whitespace.
///
/// The lexer is resilient: malformed input never panics, it just
/// produces a best-effort token stream (unterminated literals run to
/// end of input).
pub fn lex(src: &str) -> Vec<Token> {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let n = bytes.len();

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                // Line comment (incl. doc comments): skip to newline.
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                // Block comment, possibly nested.
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let (content, consumed, newlines) = scan_string(&bytes[i..]);
                out.push(Token {
                    kind: TokenKind::Str(content),
                    line: start_line,
                });
                line += newlines;
                i += consumed;
            }
            'r' | 'b' if starts_raw_or_byte_string(&bytes[i..]) => {
                let start_line = line;
                let (consumed, newlines) = scan_raw_or_byte_string(&bytes[i..]);
                out.push(Token {
                    kind: TokenKind::Str(String::new()),
                    line: start_line,
                });
                line += newlines;
                i += consumed;
            }
            '\'' => {
                // Lifetime or char literal.  A lifetime is `'ident` not
                // followed by a closing quote; anything else is a char.
                if i + 1 < n && (bytes[i + 1].is_alphabetic() || bytes[i + 1] == '_') {
                    let mut j = i + 1;
                    while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    }
                    if j < n && bytes[j] == '\'' {
                        // 'a' — a char literal.
                        out.push(Token {
                            kind: TokenKind::Str(String::new()),
                            line,
                        });
                        i = j + 1;
                    } else {
                        let name: String = bytes[i + 1..j].iter().collect();
                        out.push(Token {
                            kind: TokenKind::Lifetime(name),
                            line,
                        });
                        i = j;
                    }
                } else {
                    // Escaped or punctuation char literal: '\n', '\'', '('.
                    let mut j = i + 1;
                    if j < n && bytes[j] == '\\' {
                        j += 2; // skip escape; handles '\'' and '\\'
                    } else if j < n {
                        j += 1;
                    }
                    while j < n && bytes[j] != '\'' {
                        j += 1;
                    }
                    out.push(Token {
                        kind: TokenKind::Str(String::new()),
                        line,
                    });
                    i = (j + 1).min(n);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let mut text: String = bytes[i..j].iter().collect();
                // Raw identifiers lex as `r` hitting the string check
                // above only for r" / r#"; `r#ident` lands here via the
                // fallthrough, so strip the prefix if present.
                if text == "r" && j + 1 < n && bytes[j] == '#' && is_ident_start(bytes[j + 1]) {
                    let mut k = j + 1;
                    while k < n && (bytes[k].is_alphanumeric() || bytes[k] == '_') {
                        k += 1;
                    }
                    text = bytes[j + 1..k].iter().collect();
                    i = k;
                } else {
                    i = j;
                }
                out.push(Token {
                    kind: TokenKind::Ident(text),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < n
                    && (bytes[j].is_alphanumeric() || bytes[j] == '_' || bytes[j] == '.')
                {
                    // Stop a float scan at `..` (range) or `.method()`.
                    if bytes[j] == '.'
                        && (j + 1 >= n || !bytes[j + 1].is_ascii_digit())
                    {
                        break;
                    }
                    j += 1;
                }
                out.push(Token {
                    kind: TokenKind::Num(bytes[i..j].iter().collect()),
                    line,
                });
                i = j;
            }
            c => {
                out.push(Token {
                    kind: TokenKind::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Does the input start a raw string (`r"`, `r#"`), byte string (`b"`)
/// or raw byte string (`br"`, `br#"`)?
fn starts_raw_or_byte_string(s: &[char]) -> bool {
    let mut i = 0;
    if s.first() == Some(&'b') {
        i += 1;
    }
    if s.get(i) == Some(&'r') {
        i += 1;
        while s.get(i) == Some(&'#') {
            i += 1;
        }
        return s.get(i) == Some(&'"');
    }
    // plain byte string b"..."
    s.first() == Some(&'b') && s.get(1) == Some(&'"')
}

/// Scan a plain `"..."` string starting at `s[0] == '"'`.
/// Returns (contents, chars consumed, newlines crossed).
fn scan_string(s: &[char]) -> (String, usize, usize) {
    let mut i = 1;
    let mut newlines = 0;
    let mut content = String::new();
    while i < s.len() {
        match s[i] {
            '\\' => {
                i += 2;
            }
            '"' => {
                return (content, i + 1, newlines);
            }
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                content.push(c);
                i += 1;
            }
        }
    }
    (content, s.len(), newlines)
}

/// Scan `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` starting at `s[0]`.
/// Returns (chars consumed, newlines crossed).
fn scan_raw_or_byte_string(s: &[char]) -> (usize, usize) {
    let mut i = 0;
    let mut raw = false;
    if s.get(i) == Some(&'b') {
        i += 1;
    }
    if s.get(i) == Some(&'r') {
        raw = true;
        i += 1;
    }
    let mut hashes = 0;
    while s.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(s.get(i), Some(&'"'));
    i += 1;
    let mut newlines = 0;
    while i < s.len() {
        match s[i] {
            '\\' if !raw => i += 2,
            '\n' => {
                newlines += 1;
                i += 1;
            }
            '"' => {
                // A raw string closes only on `"` followed by `hashes` #s.
                let mut ok = true;
                for k in 0..hashes {
                    if s.get(i + 1 + k) != Some(&'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    return (i + 1 + hashes, newlines);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    (s.len(), newlines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.ident().map(String::from))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = r##"
            // write_cr3 in a comment
            /* lidt /* nested */ still comment */
            let s = "cpu.write_cr3(0)";
            let r = r#"lgdt"#;
            let c = '(';
            call(); // trailing
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"write_cr3".to_string()));
        assert!(!ids.contains(&"lidt".to_string()));
        assert!(!ids.contains(&"lgdt".to_string()));
        assert!(ids.contains(&"call".to_string()));
    }

    #[test]
    fn lines_survive_multiline_constructs() {
        let src = "a\n/* x\ny */\nb\n\"s\ntring\"\nc";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.is_ident(name)).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 7);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a u8) { let c = 'x'; let d = '\\n'; }");
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Lifetime(l) if l == "a")));
        let strs = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Str(_)))
            .count();
        assert_eq!(strs, 2, "two char literals");
    }

    #[test]
    fn raw_identifiers_lose_prefix() {
        let ids = idents("let r#type = 1; r#fn();");
        assert!(ids.contains(&"type".to_string()));
        assert!(ids.contains(&"fn".to_string()));
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let toks = lex("1.max(2); 0..4; 1.5f64;");
        assert!(toks.iter().any(|t| t.is_ident("max")));
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Num(s) if s == "1.5f64")));
    }
}
