//! `cargo run -p volint` — check the Mercury workspace invariants.
//!
//! Usage: `volint [--json] [ROOT]`
//!
//! `ROOT` defaults to the workspace root (two levels above this
//! crate's manifest when built by cargo, else the current directory).
//! Exits 0 when no errors were found, 1 on violations, 2 on I/O
//! failure.

use std::path::PathBuf;
use std::process::ExitCode;
use volint::{analyze_workspace, Config, Severity};

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: volint [--json] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("volint: unknown option `{other}`");
                eprintln!("usage: volint [--json] [ROOT]");
                return ExitCode::from(2);
            }
            other => {
                if let Some(prev) = &root {
                    eprintln!(
                        "volint: multiple roots given ({} and {other}); pass exactly one",
                        prev.display()
                    );
                    return ExitCode::from(2);
                }
                root = Some(PathBuf::from(other));
            }
        }
    }
    let root = root.unwrap_or_else(default_root);

    let cfg = Config::mercury_defaults();
    let diags = match analyze_workspace(&root, &cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("volint: cannot read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("[");
        for (i, d) in diags.iter().enumerate() {
            let comma = if i + 1 == diags.len() { "" } else { "," };
            println!("  {}{comma}", d.to_json());
        }
        println!("]");
    } else {
        for d in &diags {
            println!("{d}");
        }
    }

    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    if json {
        // machine mode: the array is the whole output
    } else if errors == 0 {
        println!(
            "volint: workspace at {} is clean (0 violations)",
            root.display()
        );
    } else {
        eprintln!("volint: {errors} violation(s)");
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The workspace root: `<manifest>/../..` when built under cargo
/// (crates/volint -> workspace), else the current directory.
fn default_root() -> PathBuf {
    if let Some(manifest) = option_env!("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(ws) = p.parent().and_then(|p| p.parent()) {
            if ws.join("Cargo.toml").exists() {
                return ws.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}
