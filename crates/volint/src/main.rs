//! `cargo run -p volint` — check the Mercury workspace invariants.
//!
//! Usage: `volint [--json] [--deny-stale-waivers] [--budget PATH] [ROOT]`
//!
//! `ROOT` defaults to the workspace root (two levels above this
//! crate's manifest when built by cargo, else the current directory).
//! `--deny-stale-waivers` turns unused `volint::allow(..)` comments
//! into errors (the CI gate).  `--budget PATH` additionally emits the
//! static switch-phase cycle budget (`volint_budget.json` shape) that
//! `tools/benchgate.py` cross-checks against the measured timeline.
//! Exits 0 when no errors were found, 1 on violations, 2 on I/O
//! failure.

use std::path::PathBuf;
use std::process::ExitCode;
use volint::{analyze_workspace, budget_workspace, Config, Severity};

const USAGE: &str = "usage: volint [--json] [--deny-stale-waivers] [--budget PATH] [ROOT]";

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_stale = false;
    let mut budget_path: Option<PathBuf> = None;
    let mut want_budget_path = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        if want_budget_path {
            budget_path = Some(PathBuf::from(&arg));
            want_budget_path = false;
            continue;
        }
        match arg.as_str() {
            "--json" => json = true,
            "--deny-stale-waivers" => deny_stale = true,
            "--budget" => want_budget_path = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("volint: unknown option `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
            other => {
                if let Some(prev) = &root {
                    eprintln!(
                        "volint: multiple roots given ({} and {other}); pass exactly one",
                        prev.display()
                    );
                    return ExitCode::from(2);
                }
                root = Some(PathBuf::from(other));
            }
        }
    }
    if want_budget_path {
        eprintln!("volint: --budget requires a PATH argument");
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let root = root.unwrap_or_else(default_root);

    let mut cfg = Config::mercury_defaults();
    cfg.deny_stale_waivers = deny_stale;
    let diags = match analyze_workspace(&root, &cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("volint: cannot read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("[");
        for (i, d) in diags.iter().enumerate() {
            let comma = if i + 1 == diags.len() { "" } else { "," };
            println!("  {}{comma}", d.to_json());
        }
        println!("]");
    } else {
        for d in &diags {
            println!("{d}");
        }
    }

    if let Some(path) = &budget_path {
        let budget = match budget_workspace(&root) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("volint: cannot compute budget for {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(path, budget.to_json()) {
            eprintln!("volint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        if !json {
            println!(
                "volint: wrote static budget for {} phase(s) to {}",
                budget.phases.len(),
                path.display()
            );
        }
    }

    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    if json {
        // machine mode: the array is the whole output
    } else if errors == 0 {
        println!(
            "volint: workspace at {} is clean (0 violations)",
            root.display()
        );
    } else {
        eprintln!("volint: {errors} violation(s)");
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The workspace root: `<manifest>/../..` when built under cargo
/// (crates/volint -> workspace), else the current directory.
fn default_root() -> PathBuf {
    if let Some(manifest) = option_env!("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(ws) = p.parent().and_then(|p| p.parent()) {
            if ws.join("Cargo.toml").exists() {
                return ws.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}
