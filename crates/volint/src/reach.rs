//! Reachability over the call graph, per root kind.
//!
//! A root kind is the tag inside a `// volint::root(KIND)` marker —
//! `SWITCH` for mode-switch entry points, `RENDEZVOUS` for the peer
//! paths that run inside a rendezvous round.  Each kind gets its own
//! breadth-first walk so rules can ask both "is this fn on *any*
//! switch path?" (SWITCH-ALLOC and friends) and "is this fn under a
//! *rendezvous* root specifically?" (LOCK-DISCIPLINE).
//!
//! `// volint::prune(KIND)` markers cut individual call edges during
//! the walk: a prune on (or directly above) a call-site line stops
//! that edge from propagating the given kind.  This is how the few
//! genuinely-unreachable dispatch fan-out edges (the graph has no
//! branch sensitivity) are kept off the switch path — visibly, in the
//! caller's source, instead of inside the analyzer.

use crate::callgraph::CallGraph;
use crate::parse::ParsedFile;
use std::collections::BTreeMap;

/// Reachable-set for one root kind, with BFS parents for diagnostics.
pub struct ReachSet {
    /// gid → reachable from some root of this kind.
    pub reachable: Vec<bool>,
    /// gid → (caller gid, call-site line) on a shortest root path.
    /// Roots have no parent.
    pub parent: Vec<Option<(usize, usize)>>,
}

impl ReachSet {
    /// Human-readable shortest call chain ending at `gid`:
    /// `handle_switch → try_switch → attach_transfer`.
    pub fn chain(&self, graph: &CallGraph, files: &[ParsedFile], gid: usize) -> String {
        let mut names = vec![graph.body(files, gid).name.clone()];
        let mut cur = gid;
        let mut hops = 0;
        while let Some((p, _)) = self.parent[cur] {
            names.push(graph.body(files, p).name.clone());
            cur = p;
            hops += 1;
            if hops > 64 {
                break; // cycles cannot happen on BFS parents; belt & braces
            }
        }
        names.reverse();
        names.join(" \u{2192} ")
    }
}

/// All reach sets, keyed by root kind.
pub struct Reachability {
    /// Kind (`SWITCH`, `RENDEZVOUS`) → its reach set.
    pub kinds: BTreeMap<String, ReachSet>,
}

impl Reachability {
    /// Is `gid` reachable under *any* computed root kind?
    pub fn under_any(&self, gid: usize) -> Option<&str> {
        self.kinds
            .iter()
            .find(|(_, set)| set.reachable[gid])
            .map(|(k, _)| k.as_str())
    }

    /// Is `gid` reachable under the given kind?
    pub fn under(&self, kind: &str, gid: usize) -> bool {
        self.kinds
            .get(kind)
            .is_some_and(|s| s.reachable[gid])
    }

    /// The reach set whose chain best explains `gid` (first kind that
    /// reaches it, in `BTreeMap` order — deterministic).
    pub fn explain(&self, gid: usize) -> Option<(&str, &ReachSet)> {
        self.kinds
            .iter()
            .find(|(_, s)| s.reachable[gid])
            .map(|(k, s)| (k.as_str(), s))
    }
}

/// Walk the graph from every root of every kind in `kinds`.
pub fn compute(graph: &CallGraph, files: &[ParsedFile], kinds: &[&str]) -> Reachability {
    let n = graph.fn_file.len();
    let mut out = BTreeMap::new();
    for &kind in kinds {
        let mut reachable = vec![false; n];
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
        let mut queue: Vec<usize> = graph.roots(files, kind);
        for &r in &queue {
            reachable[r] = true;
        }
        let mut head = 0;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            let file = graph.file(files, cur);
            for e in &graph.edges[cur] {
                if reachable[e.callee] || file.is_pruned(kind, e.line) {
                    continue;
                }
                reachable[e.callee] = true;
                parent[e.callee] = Some((cur, e.line));
                queue.push(e.callee);
            }
        }
        out.insert(kind.to_string(), ReachSet { reachable, parent });
    }
    Reachability { kinds: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::parse::parse_file;
    use std::collections::BTreeMap;

    fn setup(src: &str) -> (Vec<ParsedFile>, CallGraph) {
        let files = vec![parse_file("a.rs", src)];
        let g = CallGraph::build(&files, &BTreeMap::new());
        (files, g)
    }

    fn gid(files: &[ParsedFile], g: &CallGraph, name: &str) -> usize {
        (0..g.fn_file.len())
            .find(|&i| g.body(files, i).name == name)
            .unwrap()
    }

    #[test]
    fn transitive_reach_and_chain() {
        let (files, g) = setup(
            "// volint::root(SWITCH)\nfn root_fn() { mid(); }\nfn mid() { deep(); }\nfn deep() {}\nfn unrelated() { deep(); }",
        );
        let r = compute(&g, &files, &["SWITCH"]);
        let deep = gid(&files, &g, "deep");
        let unrelated = gid(&files, &g, "unrelated");
        assert!(r.under("SWITCH", deep));
        assert!(!r.under("SWITCH", unrelated));
        let set = &r.kinds["SWITCH"];
        assert_eq!(set.chain(&g, &files, deep), "root_fn \u{2192} mid \u{2192} deep");
    }

    #[test]
    fn prune_cuts_one_kind_only() {
        let (files, g) = setup(
            "// volint::root(SWITCH, RENDEZVOUS)\nfn root_fn() {\n    // volint::prune(SWITCH)\n    deep();\n}\nfn deep() {}",
        );
        let r = compute(&g, &files, &["SWITCH", "RENDEZVOUS"]);
        let deep = gid(&files, &g, "deep");
        assert!(!r.under("SWITCH", deep), "pruned for SWITCH");
        assert!(r.under("RENDEZVOUS", deep), "not pruned for RENDEZVOUS");
        assert_eq!(r.under_any(deep), Some("RENDEZVOUS"));
    }
}
