//! The five Mercury invariant rules.
//!
//! * **VO-BYPASS** — privileged `simx86` primitives reached outside a
//!   `PvOps` impl or the allowlisted switch-handler/hardware layers
//!   (paper §4.2/§5.3: every virtualization-sensitive operation routes
//!   through a Virtualization Object).
//! * **REFCOUNT-LEAK** — `VoRefCount::enter` guards that are forgotten,
//!   immediately discarded, parked in long-lived structs, or held
//!   across a call that blocks on a pending switch (paper §5.1.1: the
//!   refcount gate is sound only if every entry pairs with an exit).
//! * **DISPATCH-GAP** — a `PvOps` method missing from a VO impl, a
//!   `Rendezvous` field `begin()` does not reset, or asymmetric
//!   attach/detach/rollback state transfer (paper §5.1.2/§5.1.3).
//! * **ATOMIC-ORDER** — `Ordering::Relaxed` on `Rendezvous` /
//!   `VoRefCount` state (paper §5.4: the IPI handshake is only correct
//!   under acquire/release ordering), and on `merctrace` per-CPU
//!   trace-buffer state (snapshot readers must observe fully published
//!   records).
//! * **FAULT-MASK** — a `faultgen` injection hook used inside the
//!   mode-switch critical section (DESIGN.md §12: the switch path must
//!   stay fault-free — injection targets the workload and device
//!   surface, never the attach/detach machinery itself, or a campaign
//!   could wedge the very mechanism meant to answer it).

use crate::in_test_tree;
use crate::scan::{FileFacts, LetBinding};
use crate::{Config, Rule, Sink};
use std::collections::BTreeSet;

/// Run every line-level rule over the scanned files.
pub fn check(files: &[FileFacts], cfg: &Config, sink: &mut Sink) {
    for f in files {
        vo_bypass(f, cfg, sink);
        refcount_leak(f, cfg, sink);
        atomic_order(f, sink);
        fault_mask(f, cfg, sink);
    }
    dispatch_gap(files, cfg, sink);
}

// ---------------------------------------------------------------- VO-BYPASS

fn vo_bypass(f: &FileFacts, cfg: &Config, sink: &mut Sink) {
    if in_test_tree(&f.name)
        || cfg
            .allow_paths
            .iter()
            .any(|p| f.name.starts_with(p.as_str()))
    {
        return;
    }
    for c in &f.calls {
        if !cfg.privileged.contains(&c.name) || c.in_test {
            continue;
        }
        // Sanctioned: the body of a PvOps impl *is* the VO.
        if c.impl_trait.as_deref() == Some(cfg.pvops_trait.as_str()) {
            continue;
        }
        // Sanctioned: routed through a PvOps dispatch handle
        // (`ctx.pv.invlpg(..)`, `self.inner.flush_tlb(..)`).
        if c.via_dot
            && c.qualifier
                .as_deref()
                .is_some_and(|q| cfg.dispatch_receivers.contains(q))
        {
            continue;
        }
        sink.push(f,
            Rule::VoBypass,
            c.line,
            format!(
                "privileged primitive `{}` called outside a `{}` impl; \
                 route it through the active virtualization object",
                c.name, cfg.pvops_trait
            ),
        );
    }
}

// ------------------------------------------------------------ REFCOUNT-LEAK

fn is_guard(l: &LetBinding) -> bool {
    l.init_has_enter || l.type_has_voguard
}

fn refcount_leak(f: &FileFacts, cfg: &Config, sink: &mut Sink) {
    if in_test_tree(&f.name) {
        return;
    }
    let basename = f.name.rsplit('/').next().unwrap_or(&f.name);

    // Immediately-discarded guards: `let _ = rc.enter()` bumps and
    // drops the count in one statement — the caller runs unprotected.
    for l in &f.lets {
        if l.in_test || !l.init_has_enter {
            continue;
        }
        if l.name == "_" {
            sink.push(f,
                Rule::RefcountLeak,
                l.line,
                "`let _ = ..enter(..)` drops the VO guard immediately; \
                 the section it was meant to protect runs ungated"
                    .to_string(),
            );
        }
    }

    // Forgotten / leaked guards.
    for c in &f.calls {
        if c.in_test {
            continue;
        }
        let forget_like = matches!(
            (c.name.as_str(), c.qualifier.as_deref()),
            ("forget", _) | ("new", Some("ManuallyDrop")) | ("leak", Some("Box"))
        );
        if !forget_like {
            continue;
        }
        let guard_arg = c.args_have_enter
            || f.lets.iter().any(|l| {
                is_guard(l) && l.fn_idx == c.fn_idx && c.args.contains(&l.name)
            });
        if guard_arg {
            sink.push(f,
                Rule::RefcountLeak,
                c.line,
                format!(
                    "VO guard leaked via `{}`: the refcount never drops \
                     back, so every future switch is deferred forever",
                    c.name
                ),
            );
        }
    }

    // Guards parked in long-lived structs outlive their section and
    // starve `try_switch`'s quiescence gate.
    for fd in &f.fields {
        if fd.in_test || basename == "refcount.rs" {
            continue;
        }
        if fd.type_idents.iter().any(|t| t == "VoGuard") {
            sink.push(f,
                Rule::RefcountLeak,
                fd.line,
                format!(
                    "struct `{}` stores a `VoGuard` in field `{}`; guards \
                     must be scoped to the protected section, not parked \
                     in long-lived state",
                    fd.struct_name, fd.field_name
                ),
            );
        }
    }

    // Re-entry deadlock: a held guard across a call that waits for the
    // refcount (or the rendezvous) wedges the pending switch.
    for l in &f.lets {
        if l.in_test || !is_guard(l) || l.name == "_" {
            continue;
        }
        for c in &f.calls {
            if c.in_test || c.fn_idx != l.fn_idx || c.line < l.line {
                continue;
            }
            if cfg.blocking_calls.contains(&c.name) {
                sink.push(f,
                    Rule::RefcountLeak,
                    c.line,
                    format!(
                        "`{}` called while VO guard `{}` (line {}) is \
                         held; a pending switch waits for the refcount \
                         and this call waits for the switch — deadlock",
                        c.name, l.name, l.line
                    ),
                );
                break;
            }
        }
    }
}

// ------------------------------------------------------------- ATOMIC-ORDER

fn atomic_order(f: &FileFacts, sink: &mut Sink) {
    let basename = f.name.rsplit('/').next().unwrap_or(&f.name);
    let protocol = f.defines_struct("Rendezvous")
        || f.defines_struct("VoRefCount")
        || basename == "rendezvous.rs"
        || basename == "refcount.rs";
    // The merctrace per-CPU buffers are read by exporters on another
    // thread: the armed flag and any ring bookkeeping must publish with
    // acquire/release, or a snapshot can observe a half-written record.
    let trace_buffers =
        f.name.contains("merctrace") || f.defines_struct("Tracer");
    if !(protocol || trace_buffers) {
        return;
    }
    let what = if protocol {
        "`Ordering::Relaxed` on rendezvous/refcount state: the IPI \
         handshake requires acquire/release ordering (paper §5.4)"
    } else {
        "`Ordering::Relaxed` on trace-buffer state: snapshot readers \
         need acquire/release to see fully published records"
    };
    for (line, _) in &f.relaxed {
        sink.push(f, Rule::AtomicOrder, *line, what.to_string());
    }
}

// --------------------------------------------------------------- FAULT-MASK

fn fault_mask(f: &FileFacts, cfg: &Config, sink: &mut Sink) {
    if in_test_tree(&f.name) {
        return;
    }
    for func in &f.fns {
        if func.in_test || !cfg.switch_critical.contains(&func.name) {
            continue;
        }
        let used: Vec<&str> = cfg
            .fault_hooks
            .iter()
            .filter(|h| func.idents.contains(h.as_str()))
            .map(String::as_str)
            .collect();
        if !used.is_empty() {
            sink.push(f,
                Rule::FaultMask,
                func.line,
                format!(
                    "switch-critical fn `{}` uses fault-injection hook(s) \
                     {}; the attach/detach path must stay fault-free \
                     (DESIGN.md §12) — a campaign must never wedge the \
                     recovery mechanism itself",
                    func.name,
                    used.join(", ")
                ),
            );
        }
    }
}

// ------------------------------------------------------------- DISPATCH-GAP

fn dispatch_gap(files: &[FileFacts], cfg: &Config, sink: &mut Sink) {
    // 1. Every required PvOps method implemented by every VO.
    let required: Vec<&str> = files
        .iter()
        .flat_map(|f| f.trait_methods.iter())
        .filter(|m| m.trait_name == cfg.pvops_trait && !m.has_default)
        .map(|m| m.method.as_str())
        .collect();
    if !required.is_empty() {
        for f in files {
            if in_test_tree(&f.name) {
                continue;
            }
            for imp in &f.impls {
                if imp.in_test || imp.trait_name.as_deref() != Some(cfg.pvops_trait.as_str()) {
                    continue;
                }
                let have: BTreeSet<&str> = imp.methods.iter().map(String::as_str).collect();
                let missing: Vec<&str> = required
                    .iter()
                    .filter(|m| !have.contains(**m))
                    .copied()
                    .collect();
                if !missing.is_empty() {
                    sink.push(f,
                        Rule::DispatchGap,
                        imp.line,
                        format!(
                            "`impl {} for {}` is missing: {}",
                            cfg.pvops_trait,
                            imp.type_name,
                            missing.join(", ")
                        ),
                    );
                }
            }
        }
        // All three canonical VOes must exist (only checked once at
        // least one of them is present, so small fixtures stay quiet).
        let present: BTreeSet<&str> = files
            .iter()
            .flat_map(|f| f.impls.iter())
            .filter(|i| i.trait_name.as_deref() == Some(cfg.pvops_trait.as_str()))
            .map(|i| i.type_name.as_str())
            .collect();
        if cfg.vo_impls.iter().any(|v| present.contains(v.as_str())) {
            for vo in &cfg.vo_impls {
                if !present.contains(vo.as_str()) {
                    if let Some((f, line)) = files.iter().find_map(|f| {
                        f.trait_methods
                            .iter()
                            .find(|m| m.trait_name == cfg.pvops_trait)
                            .map(|m| (f, m.line))
                    }) {
                        sink.push(f,
                            Rule::DispatchGap,
                            line,
                            format!(
                                "virtualization object `{vo}` has no \
                                 `{}` impl",
                                cfg.pvops_trait
                            ),
                        );
                    }
                }
            }
        }
    }

    // 2. Every *atomic* Rendezvous field reset by `begin()` — a stale
    // counter or flag from the previous round corrupts the next
    // handshake.  Non-atomic fields (the timeout, the dyncheck shadow
    // monitor) are round-invariant configuration, not protocol state.
    for f in files {
        if !f.defines_struct("Rendezvous") {
            continue;
        }
        let begin = f
            .fns
            .iter()
            .find(|x| x.name == "begin" && x.impl_type.as_deref() == Some("Rendezvous"));
        let Some(begin) = begin else { continue };
        for fd in &f.fields {
            if fd.struct_name == "Rendezvous"
                && !fd.in_test
                && fd.type_idents.iter().any(|t| t.starts_with("Atomic"))
                && !begin.idents.contains(&fd.field_name)
            {
                sink.push(f,
                    Rule::DispatchGap,
                    fd.line,
                    format!(
                        "`Rendezvous` field `{}` is not touched by \
                         `begin()`; stale state leaks into the next \
                         rendezvous round",
                        fd.field_name
                    ),
                );
            }
        }
    }

    // 3. State-transfer symmetry: attach/detach/rollback must each
    // cover the table-frame flip, the selector fixup and the VMM
    // activation toggle (paper §5.1.2/§5.1.3).
    let symmetry: [(&str, &[&str]); 3] = [
        ("attach_transfer", &["flip_table_frames", "fix_selectors", "activate"]),
        ("detach_transfer", &["flip_table_frames", "fix_selectors", "deactivate"]),
        (
            "rollback_transfer",
            &["flip_table_frames", "fix_selectors", "activate", "deactivate"],
        ),
    ];
    for (fn_name, needs) in symmetry {
        for f in files {
            if in_test_tree(&f.name) {
                continue;
            }
            for func in f.fns.iter().filter(|x| x.name == fn_name && !x.in_test) {
                let missing: Vec<&str> = needs
                    .iter()
                    .filter(|n| !func.idents.contains(**n))
                    .copied()
                    .collect();
                if !missing.is_empty() {
                    sink.push(f,
                        Rule::DispatchGap,
                        func.line,
                        format!(
                            "state-transfer fn `{fn_name}` does not cover: {}",
                            missing.join(", ")
                        ),
                    );
                }
            }
        }
    }
}
