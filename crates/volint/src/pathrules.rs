//! The call-graph-powered switch-path rules.
//!
//! All four rules consume the [`reach`](crate::reach) sets computed
//! from `// volint::root(..)` markers:
//!
//! * **SWITCH-ALLOC** — no heap allocation (`Box`/`Vec`/`String`
//!   constructors, collection growth methods, `vec!`/`format!`)
//!   reachable from a switch root.  The mode switch runs under the
//!   refcount gate with peers spinning in rendezvous; an allocator
//!   call there is unbounded latency and a potential fault point
//!   (paper §5.1: the switch must be short and predictable).
//! * **SWITCH-PANIC** — no `unwrap`/`expect`, panicking macro, or
//!   unchecked slice index reachable from a switch root.  A panic
//!   mid-transfer strands every peer CPU in the rendezvous.
//! * **SWITCH-LOOP-BOUND** — every loop reachable from a root either
//!   iterates something statically sized (`0..64`, `0..CONST`,
//!   `.take(N)`) or carries a `// volint::bound(N)` marker.  The
//!   bounds double as inputs to the static cycle budget
//!   ([`budget`](crate::budget)).
//! * **LOCK-DISCIPLINE** — fields tagged `// volint::guarded_by(
//!   rendezvous)` may only be touched from functions reachable under
//!   a `RENDEZVOUS` root: the static complement to dyncheck's runtime
//!   vector clocks.

use crate::callgraph::CallGraph;
use crate::parse::{FnBody, ParsedFile};
use crate::reach::Reachability;
use crate::scan::FileFacts;
use crate::{Rule, Sink};
use std::collections::BTreeMap;

/// Allocating constructors by type.
const ALLOC_CTORS: &[(&str, &[&str])] = &[
    ("Box", &["new"]),
    ("Rc", &["new"]),
    ("Arc", &["new"]),
    ("Vec", &["new", "with_capacity", "from"]),
    ("String", &["new", "from", "with_capacity"]),
    ("BTreeMap", &["new"]),
    ("BTreeSet", &["new"]),
    ("HashMap", &["new", "with_capacity"]),
    ("HashSet", &["new", "with_capacity"]),
    ("VecDeque", &["new", "with_capacity"]),
];

/// Methods that (re)allocate on their receiver.
const GROWTH_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "append",
    "reserve",
    "to_string",
    "to_vec",
    "to_owned",
    "collect",
    "or_insert",
    "or_insert_with",
    "or_default",
];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Panicking method calls.
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Panicking macros (`debug_assert*` compiles out of release switch
/// paths and is deliberately absent).
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Run the four graph rules.  `facts` and `parsed` are index-aligned
/// views of the same sources.
pub fn check(
    facts: &[FileFacts],
    parsed: &[ParsedFile],
    graph: &CallGraph,
    reach: &Reachability,
    field_types: &BTreeMap<String, String>,
    sink: &mut Sink,
) {
    let guarded = guarded_fields(facts, parsed);

    for gid in 0..graph.fn_file.len() {
        let file_idx = graph.fn_file[gid];
        let pf = &parsed[file_idx];
        let f = &facts[file_idx];
        let body = graph.body(parsed, gid);
        if body.in_test || crate::in_test_tree(&pf.name) {
            continue;
        }

        if let Some((kind, set)) = reach.explain(gid) {
            let chain = set.chain(graph, parsed, gid);
            switch_alloc(f, body, kind, &chain, sink);
            switch_panic(f, body, kind, &chain, sink);
            loop_bound(f, body, graph, kind, &chain, sink);
        }

        lock_discipline(f, body, gid, reach, &guarded, field_types, sink);
    }
}

fn switch_alloc(f: &FileFacts, body: &FnBody, kind: &str, chain: &str, sink: &mut Sink) {
    for c in &body.calls {
        let what = if c.is_macro {
            if ALLOC_MACROS.contains(&c.name.as_str()) {
                Some(format!("`{}!`", c.name))
            } else {
                None
            }
        } else if c.via_dot && GROWTH_METHODS.contains(&c.name.as_str()) {
            Some(format!("`.{}()`", c.name))
        } else if !c.via_dot {
            c.qualifier.as_deref().and_then(|q| {
                ALLOC_CTORS
                    .iter()
                    .find(|(t, ms)| *t == q && ms.contains(&c.name.as_str()))
                    .map(|_| format!("`{q}::{}`", c.name))
            })
        } else {
            None
        };
        if let Some(what) = what {
            sink.push(
                f,
                Rule::SwitchAlloc,
                c.line,
                format!(
                    "{what} allocates on the {kind} path ({chain}); the \
                     switch critical section must not enter the allocator"
                ),
            );
        }
    }
}

fn switch_panic(f: &FileFacts, body: &FnBody, kind: &str, chain: &str, sink: &mut Sink) {
    for c in &body.calls {
        let what = if c.is_macro {
            if PANIC_MACROS.contains(&c.name.as_str()) {
                Some(format!("`{}!`", c.name))
            } else {
                None
            }
        } else if c.via_dot && PANIC_METHODS.contains(&c.name.as_str()) {
            Some(format!("`.{}()`", c.name))
        } else {
            None
        };
        if let Some(what) = what {
            sink.push(
                f,
                Rule::SwitchPanic,
                c.line,
                format!(
                    "{what} can panic on the {kind} path ({chain}); a panic \
                     mid-transfer strands every rendezvous peer"
                ),
            );
        }
    }
    for &line in &body.index_sites {
        sink.push(
            f,
            Rule::SwitchPanic,
            line,
            format!(
                "unchecked index can panic on the {kind} path ({chain}); \
                 use `.get()` or waive with a bounds argument"
            ),
        );
    }
}

fn loop_bound(
    f: &FileFacts,
    body: &FnBody,
    graph: &CallGraph,
    kind: &str,
    chain: &str,
    sink: &mut Sink,
) {
    for l in &body.loops {
        if l.resolved_bound(&graph.consts).is_none() {
            sink.push(
                f,
                Rule::SwitchLoopBound,
                l.line,
                format!(
                    "loop on the {kind} path ({chain}) has no static trip \
                     bound; annotate `// volint::bound(N)` so the cycle \
                     budget stays finite"
                ),
            );
        }
    }
}

/// `(struct, field, guard-root-kind)` triples from joining the item
/// scanner's field table with `// volint::guarded_by(..)` markers.
fn guarded_fields(facts: &[FileFacts], parsed: &[ParsedFile]) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    for (f, pf) in facts.iter().zip(parsed) {
        for (gl, guard) in &pf.guards {
            for fd in &f.fields {
                if fd.line == *gl || fd.line == *gl + 1 {
                    out.push((
                        fd.struct_name.clone(),
                        fd.field_name.clone(),
                        guard.to_ascii_uppercase(),
                    ));
                }
            }
        }
    }
    out
}

fn lock_discipline(
    f: &FileFacts,
    body: &FnBody,
    gid: usize,
    reach: &Reachability,
    guarded: &[(String, String, String)],
    field_types: &BTreeMap<String, String>,
    sink: &mut Sink,
) {
    for fa in &body.field_accesses {
        for (owner, field, guard_kind) in guarded {
            if fa.name != *field {
                continue;
            }
            // Attribute the access to the owning struct: `self.field`
            // inside the owner's impl, or a receiver whose declared
            // field type is the owner.
            let owned = match fa.qualifier.as_deref() {
                Some("self") => body.impl_type.as_deref() == Some(owner.as_str()),
                Some(q) => field_types.get(q).map(String::as_str) == Some(owner.as_str()),
                None => false,
            };
            if !owned {
                continue;
            }
            if !reach.under(guard_kind, gid) {
                sink.push(
                    f,
                    Rule::LockDiscipline,
                    fa.line,
                    format!(
                        "field `{owner}.{field}` is `guarded_by({})` but \
                         `{}` is not reachable from any {guard_kind} root; \
                         accessing it outside the protocol races the \
                         rendezvous round",
                        guard_kind.to_ascii_lowercase(),
                        body.name
                    ),
                );
            }
        }
    }
}
