//! Extraction of the machine-readable privileged-op markers.
//!
//! `simx86` tags every privileged primitive with
//! `#[doc(alias = "volint-privileged")]`.  This module recovers the
//! marked function names from source text so the lint's privileged set
//! can be derived from the hardware layer itself instead of a
//! hand-maintained list (and so a registry/marker drift test can hold
//! the two together).

use crate::lexer::lex;

/// The `#[doc(alias = ...)]` value marking a privileged primitive.
pub const PRIVILEGED_ALIAS: &str = "volint-privileged";

/// Return the names of all functions in `src` marked with
/// `#[doc(alias = "volint-privileged")]`, in source order.
pub fn scan(src: &str) -> Vec<String> {
    let toks = lex(src);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let marked = toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("doc"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 4).is_some_and(|t| t.is_ident("alias"))
            && toks.get(i + 5).is_some_and(|t| t.is_punct('='))
            && toks
                .get(i + 6)
                .and_then(|t| t.str_lit())
                .is_some_and(|s| s == PRIVILEGED_ALIAS);
        if marked {
            // Skip forward (over visibility, other attributes, unsafe,
            // const, ...) to the next `fn` and take its name.
            let mut j = i + 7;
            while j < toks.len() {
                if toks[j].is_ident("fn") {
                    if let Some(name) = toks.get(j + 1).and_then(|t| t.ident()) {
                        out.push(name.to_string());
                    }
                    break;
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_marked_fns_and_skips_unmarked() {
        let src = r#"
            impl Cpu {
                #[doc(alias = "volint-privileged")]
                pub fn write_cr3(&self, v: u64) {}

                pub fn cycles(&self) -> u64 { 0 }

                /// Loads the IDT.
                #[doc(alias = "volint-privileged")]
                #[inline]
                pub fn lidt(&self, base: u64) {}

                #[doc(alias = "other")]
                pub fn tick(&self, c: u64) {}
            }
        "#;
        assert_eq!(scan(src), vec!["write_cr3", "lidt"]);
    }
}
