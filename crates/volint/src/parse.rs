//! Function-body parsing: the layer between the token stream and the
//! call graph.
//!
//! [`scan`](crate::scan) recovers *item* structure (impls, traits,
//! struct fields); this module recovers *body* structure for each
//! function: every call site (including macro invocations), every loop
//! with its extent and any statically knowable trip count, slice-index
//! expressions, field accesses, `merctrace` span regions, and the
//! `volint::` reachability/budget markers that live in comments:
//!
//! ```text
//! // volint::root(SWITCH, RENDEZVOUS)  — above a fn: reachability root
//! // volint::bound(64)                 — on/above a loop: worst-case trips
//! // volint::cost(8192)                — cycles statically charged here
//! // volint::guarded_by(rendezvous)    — on/above a struct field
//! // volint::prune(SWITCH)             — cut call edges on this line
//! ```
//!
//! Like the scanner, the parse is deliberately tolerant: unknown
//! constructs fall through as plain blocks and malformed input can
//! never panic, only produce fewer facts.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeMap;

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct BodyCall {
    /// Called name (function, method, or macro identifier).
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// Identifier before the `.` or `::` qualifier, if any.
    pub qualifier: Option<String>,
    /// True for `recv.name(..)` method-call syntax.
    pub via_dot: bool,
    /// True for `name!(..)` macro invocations.
    pub is_macro: bool,
}

/// A loop inside a function body.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// 1-based line of the `for`/`while`/`loop` keyword.
    pub line: usize,
    /// 1-based line of the loop body's closing brace.
    pub end_line: usize,
    /// Trip-count bound from a `// volint::bound(N)` marker.
    pub marker_bound: Option<u64>,
    /// Trip count visible in the source (`0..64`, `.take(8)`).
    pub static_bound: Option<u64>,
    /// `lo..CONST` upper bound awaiting workspace const resolution.
    pub static_end_const: Option<String>,
}

impl LoopInfo {
    /// The worst-case trip count, resolving `lo..CONST` ranges against
    /// the workspace-wide `consts` table.  `None` means unbounded.
    pub fn resolved_bound(&self, consts: &BTreeMap<String, u64>) -> Option<u64> {
        self.marker_bound
            .or(self.static_bound)
            .or_else(|| {
                self.static_end_const
                    .as_ref()
                    .and_then(|c| consts.get(c).copied())
            })
    }
}

/// A field access (`recv.field`, not followed by a call's `(`).
#[derive(Debug, Clone)]
pub struct FieldAccess {
    /// Accessed field name.
    pub name: String,
    /// Receiver identifier (`self` in `self.rv_round`).
    pub qualifier: Option<String>,
    /// 1-based line.
    pub line: usize,
}

/// A `merctrace` span region (`span_begin!`..`span_end!` with a string
/// probe name) inside one function.
#[derive(Debug, Clone)]
pub struct PhaseSpan {
    /// Probe name (`"switch.transfer.flip_tables"`).
    pub name: String,
    /// 1-based line of the `span_begin!`.
    pub start_line: usize,
    /// 1-based line of the matching `span_end!`.
    pub end_line: usize,
}

/// One function definition with its body-level facts.
#[derive(Debug, Clone, Default)]
pub struct FnBody {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` (or `trait`) type, if the fn is a method.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the body's closing brace.
    pub end_line: usize,
    /// Inside `#[cfg(test)]` / `#[test]` scope.
    pub in_test: bool,
    /// Root kinds from a `// volint::root(..)` marker (`SWITCH`, ...).
    pub root_kinds: Vec<String>,
    /// Every call in the body, in source order.
    pub calls: Vec<BodyCall>,
    /// Every loop in the body.
    pub loops: Vec<LoopInfo>,
    /// Lines with a slice/array index expression (`x[i]`).
    pub index_sites: Vec<usize>,
    /// Every field access in the body.
    pub field_accesses: Vec<FieldAccess>,
    /// `merctrace` span regions opened and closed in this body.
    pub phases: Vec<PhaseSpan>,
}

/// Body-level facts for one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Logical path (workspace-relative, `/`-separated).
    pub name: String,
    /// All function bodies.
    pub fns: Vec<FnBody>,
    /// Numeric `const NAME = N` definitions (for loop-bound resolution).
    pub consts: BTreeMap<String, u64>,
    /// `// volint::cost(N)` markers: (line, cycles).
    pub costs: Vec<(usize, u64)>,
    /// `// volint::guarded_by(NAME)` markers: (line, guard name).
    pub guards: Vec<(usize, String)>,
    /// `// volint::prune(KIND, ..)` markers: (line, root kinds).
    pub prunes: Vec<(usize, Vec<String>)>,
}

impl ParsedFile {
    /// The function whose body covers `line`, if any.
    pub fn fn_at(&self, line: usize) -> Option<&FnBody> {
        self.fns
            .iter()
            .find(|f| f.line <= line && line <= f.end_line)
    }

    /// Is the call edge at `line` pruned for root kind `kind` (marker
    /// on the same line or the line directly above)?
    pub fn is_pruned(&self, kind: &str, line: usize) -> bool {
        self.prunes.iter().any(|(pl, kinds)| {
            (*pl == line || *pl + 1 == line)
                && kinds.iter().any(|k| k == kind || k == "*")
        })
    }
}

/// All `volint::` markers found in a file's comments.
#[derive(Debug, Default)]
struct Markers {
    roots: Vec<(usize, Vec<String>)>,
    bounds: Vec<(usize, u64)>,
    costs: Vec<(usize, u64)>,
    guards: Vec<(usize, String)>,
    prunes: Vec<(usize, Vec<String>)>,
}

/// Parse the numeric value of a Rust literal (`16_384`, `0x40`,
/// `256usize`); `None` for anything else.
pub fn num_value(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x") {
        (h.to_string(), 16)
    } else if let Some(b) = t.strip_prefix("0b") {
        (b.to_string(), 2)
    } else if let Some(o) = t.strip_prefix("0o") {
        (o.to_string(), 8)
    } else {
        (t, 10)
    };
    // Strip a type suffix (`usize`, `u64`): keep the leading digits.
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    u64::from_str_radix(&digits[..end], radix).ok()
}

/// The `volint::...` text of a genuine marker comment on `line`.
///
/// Markers must live in a plain `// volint::` comment: doc comments
/// quoting marker syntax (`/// \`// volint::bound(N)\``, `//! // …`)
/// and string literals containing the needle must not register —
/// volint runs over its own sources.
pub(crate) fn marker_comment(line: &str) -> Option<&str> {
    let pos = line.find("// volint::")?;
    let prefix = &line[..pos];
    if prefix.trim_start().starts_with("//") {
        return None; // doc comment or nested comment quoting a marker
    }
    if prefix.matches('"').count() % 2 == 1 {
        return None; // inside a string literal
    }
    Some(&line[pos + 3..])
}

/// Extract the comma-separated argument list of `volint::<kind>(...)`
/// on `line`, if present as a real marker comment.
fn marker_args(line: &str, kind: &str) -> Option<Vec<String>> {
    let text = marker_comment(line)?;
    let pat = format!("volint::{kind}(");
    let rest = text.strip_prefix(pat.as_str())?;
    let end = rest.find(')')?;
    Some(
        rest[..end]
            .split(',')
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect(),
    )
}

fn collect_markers(src: &str) -> Markers {
    let mut m = Markers::default();
    for (i, line) in src.lines().enumerate() {
        let ln = i + 1;
        if let Some(kinds) = marker_args(line, "root") {
            if !kinds.is_empty() {
                m.roots.push((ln, kinds));
            }
        }
        if let Some(args) = marker_args(line, "bound") {
            if let Some(n) = args.first().and_then(|a| num_value(a)) {
                m.bounds.push((ln, n));
            }
        }
        if let Some(args) = marker_args(line, "cost") {
            if let Some(n) = args.first().and_then(|a| num_value(a)) {
                m.costs.push((ln, n));
            }
        }
        if let Some(args) = marker_args(line, "guarded_by") {
            if let Some(g) = args.first() {
                m.guards.push((ln, g.clone()));
            }
        }
        if let Some(kinds) = marker_args(line, "prune") {
            if !kinds.is_empty() {
                m.prunes.push((ln, kinds));
            }
        }
    }
    m
}

/// Parse `src` into body-level facts under the logical path `name`.
pub fn parse_file(name: &str, src: &str) -> ParsedFile {
    let markers = collect_markers(src);
    let toks = lex(src);
    let mut out = ParsedFile {
        name: name.to_string(),
        ..ParsedFile::default()
    };
    Walker {
        toks: &toks,
        out: &mut out,
        stack: Vec::new(),
        depth: 0,
        pending: None,
        pending_loop: None,
        attrs: Vec::new(),
        span_stack: Vec::new(),
        impl_types: Vec::new(),
    }
    .run();

    // Attach markers by line proximity.
    for (ml, kinds) in &markers.roots {
        // The nearest following fn (doc comments / attributes may sit
        // between the marker and the `fn` keyword).
        if let Some(f) = out
            .fns
            .iter_mut()
            .filter(|f| f.line > *ml && f.line - *ml <= 8)
            .min_by_key(|f| f.line)
        {
            for k in kinds {
                if !f.root_kinds.contains(k) {
                    f.root_kinds.push(k.clone());
                }
            }
        }
    }
    for (ml, n) in &markers.bounds {
        for f in &mut out.fns {
            for l in &mut f.loops {
                if l.line == *ml || l.line == *ml + 1 {
                    l.marker_bound = Some(*n);
                }
            }
        }
    }
    out.costs = markers.costs;
    out.guards = markers.guards;
    out.prunes = markers.prunes;
    out
}

#[derive(Debug)]
enum ScopeKind {
    Plain,
    /// An `impl`/`trait` body; its type name sits on `impl_types`.
    Impl,
    Fn { idx: usize },
    Loop { fn_idx: usize, loop_idx: usize },
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    test: bool,
}

enum Pending {
    Block { test: bool },
    Fn { idx: usize, test: bool },
    Impl { type_name: String, test: bool },
}

/// Keywords that can directly precede a `[` without forming an index
/// expression (slice patterns, mostly).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "mut", "ref", "return", "break", "if", "while", "match", "else", "move", "as",
    "box", "const", "static",
];

struct Walker<'a> {
    toks: &'a [Token],
    out: &'a mut ParsedFile,
    stack: Vec<Scope>,
    depth: usize,
    pending: Option<Pending>,
    /// A loop header was parsed; its body `{` is at this token index.
    pending_loop: Option<(usize, usize, usize)>,
    attrs: Vec<String>,
    /// Open `span_begin!` probes of the current fn: (name, line).
    span_stack: Vec<(String, usize)>,
    /// Nested `impl`/`trait` type names (innermost last).
    impl_types: Vec<String>,
}

impl<'a> Walker<'a> {
    fn run(mut self) {
        let mut i = 0;
        while i < self.toks.len() {
            i = self.step(i);
        }
    }

    fn inherited_test(&self) -> bool {
        self.stack.iter().any(|s| s.test)
    }

    fn attrs_mark_test(&self) -> bool {
        self.attrs
            .iter()
            .any(|a| a == "test" || (a.starts_with("cfg") && a.contains("test")))
    }

    fn current_fn(&self) -> Option<usize> {
        self.stack.iter().rev().find_map(|s| match s.kind {
            ScopeKind::Fn { idx } => Some(idx),
            _ => None,
        })
    }

    fn step(&mut self, i: usize) -> usize {
        let t = &self.toks[i];
        match &t.kind {
            TokenKind::Punct('#') => self.scan_attr(i),
            TokenKind::Punct('{') => {
                self.depth += 1;
                let inherited = self.inherited_test();
                let scope = if let Some((fn_idx, loop_idx, body)) = self.pending_loop {
                    if body == i {
                        self.pending_loop = None;
                        Scope {
                            kind: ScopeKind::Loop { fn_idx, loop_idx },
                            test: inherited,
                        }
                    } else {
                        Scope {
                            kind: ScopeKind::Plain,
                            test: inherited,
                        }
                    }
                } else {
                    match self.pending.take() {
                        Some(Pending::Fn { idx, test }) => Scope {
                            kind: ScopeKind::Fn { idx },
                            test: test || inherited,
                        },
                        Some(Pending::Impl { type_name, test }) => {
                            self.impl_types.push(type_name);
                            Scope {
                                kind: ScopeKind::Impl,
                                test: test || inherited,
                            }
                        }
                        Some(Pending::Block { test }) => Scope {
                            kind: ScopeKind::Plain,
                            test: test || inherited,
                        },
                        None => Scope {
                            kind: ScopeKind::Plain,
                            test: inherited,
                        },
                    }
                };
                self.stack.push(scope);
                i + 1
            }
            TokenKind::Punct('}') => {
                let line = t.line;
                if let Some(s) = self.stack.pop() {
                    match s.kind {
                        ScopeKind::Fn { idx } => {
                            self.out.fns[idx].end_line = line;
                            self.span_stack.clear();
                        }
                        ScopeKind::Loop { fn_idx, loop_idx } => {
                            self.out.fns[fn_idx].loops[loop_idx].end_line = line;
                        }
                        ScopeKind::Impl => {
                            self.impl_types.pop();
                        }
                        ScopeKind::Plain => {}
                    }
                }
                self.depth = self.depth.saturating_sub(1);
                i + 1
            }
            TokenKind::Punct(';') => {
                self.attrs.clear();
                i + 1
            }
            TokenKind::Punct('[') => {
                self.scan_index_site(i);
                i + 1
            }
            TokenKind::Ident(id) => match id.as_str() {
                "fn" => self.scan_fn(i),
                "impl" | "trait" => self.scan_impl(i),
                "mod" => self.scan_mod(i),
                "for" => self.scan_for(i),
                "while" => self.scan_while(i),
                "loop" => self.scan_loop(i),
                "const" => self.scan_const(i),
                "use" => {
                    self.attrs.clear();
                    let mut j = i + 1;
                    while j < self.toks.len() && !self.toks[j].is_punct(';') {
                        j += 1;
                    }
                    j + 1
                }
                _ => self.scan_expr_ident(i),
            },
            _ => i + 1,
        }
    }

    /// `#[...]` / `#![...]`: collect outer attribute text.
    fn scan_attr(&mut self, i: usize) -> usize {
        let mut j = i + 1;
        let inner = self.toks.get(j).is_some_and(|t| t.is_punct('!'));
        if inner {
            j += 1;
        }
        if !self.toks.get(j).is_some_and(|t| t.is_punct('[')) {
            return i + 1;
        }
        let mut bdepth = 0usize;
        let mut text = String::new();
        while j < self.toks.len() {
            match &self.toks[j].kind {
                TokenKind::Punct('[') => bdepth += 1,
                TokenKind::Punct(']') => {
                    bdepth -= 1;
                    if bdepth == 0 {
                        j += 1;
                        break;
                    }
                }
                TokenKind::Ident(s) => {
                    if !text.is_empty() {
                        text.push(' ');
                    }
                    text.push_str(s);
                }
                _ => {}
            }
            j += 1;
        }
        if !inner {
            self.attrs.push(text);
        }
        j
    }

    /// `fn name(..) {` — jump the header, open a [`FnBody`].
    fn scan_fn(&mut self, i: usize) -> usize {
        let test = self.attrs_mark_test() || self.inherited_test();
        self.attrs.clear();
        let name = match self.toks.get(i + 1).and_then(|t| t.ident()) {
            Some(n) => n.to_string(),
            None => return i + 1,
        };
        let line = self.toks[i].line;
        let mut j = i + 2;
        let mut paren = 0usize;
        let mut bracket = 0usize;
        let mut body = None;
        while j < self.toks.len() {
            match &self.toks[j].kind {
                TokenKind::Punct('(') => paren += 1,
                TokenKind::Punct(')') => paren = paren.saturating_sub(1),
                TokenKind::Punct('[') => bracket += 1,
                TokenKind::Punct(']') => bracket = bracket.saturating_sub(1),
                TokenKind::Punct('{') if paren == 0 && bracket == 0 => {
                    body = Some(j);
                    break;
                }
                TokenKind::Punct(';') if paren == 0 && bracket == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(b) = body else { return j + 1 };
        let impl_type = self.impl_type_here();
        let idx = self.out.fns.len();
        self.out.fns.push(FnBody {
            name,
            impl_type,
            line,
            end_line: line,
            in_test: test,
            ..FnBody::default()
        });
        self.pending = Some(Pending::Fn { idx, test });
        b
    }

    /// The innermost `impl`/`trait` type carried on the scope stack.
    fn impl_type_here(&self) -> Option<String> {
        self.impl_types.last().filter(|s| !s.is_empty()).cloned()
    }

    /// `impl [Trait for] Type {` / `trait Name {` — jump the header,
    /// remember the implementing type for method attribution.
    fn scan_impl(&mut self, i: usize) -> usize {
        let test = self.attrs_mark_test();
        self.attrs.clear();
        let is_trait = self.toks[i].is_ident("trait");
        let mut j = i + 1;
        let mut angle = 0usize;
        let mut names: Vec<String> = Vec::new();
        let mut in_where = false;
        while j < self.toks.len() {
            match &self.toks[j].kind {
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') => {
                    let arrow = j > 0 && self.toks[j - 1].is_punct('-');
                    if !arrow {
                        angle = angle.saturating_sub(1);
                    }
                }
                TokenKind::Punct('{') => break,
                TokenKind::Punct(';') if angle == 0 => return j + 1,
                TokenKind::Ident(s) if angle == 0 => match s.as_str() {
                    "where" => in_where = true,
                    "for" | "dyn" | "mut" | "unsafe" | "const" => {}
                    _ if !in_where => names.push(s.clone()),
                    _ => {}
                },
                _ => {}
            }
            j += 1;
        }
        if j >= self.toks.len() {
            return j;
        }
        let type_name = if is_trait {
            names.first().cloned()
        } else {
            names.last().cloned()
        };
        self.pending = Some(Pending::Impl {
            type_name: type_name.unwrap_or_default(),
            test,
        });
        j
    }

    fn scan_mod(&mut self, i: usize) -> usize {
        let test = self.attrs_mark_test();
        self.attrs.clear();
        let mut j = i + 1;
        while j < self.toks.len() && !self.toks[j].is_punct('{') && !self.toks[j].is_punct(';') {
            j += 1;
        }
        if self.toks.get(j).is_some_and(|t| t.is_punct('{')) {
            self.pending = Some(Pending::Block { test });
            j
        } else {
            j + 1
        }
    }

    /// `for <pat> in <iterable> {` inside a fn body.
    fn scan_for(&mut self, i: usize) -> usize {
        let Some(fn_idx) = self.current_fn() else {
            return i + 1;
        };
        // `for<'a>` higher-ranked bound, not a loop.
        if self.toks.get(i + 1).is_some_and(|t| t.is_punct('<')) {
            return i + 1;
        }
        // Find `in` at balanced depth, then the body `{`.
        let mut j = i + 1;
        let (mut paren, mut bracket) = (0usize, 0usize);
        let mut found_in = None;
        while j < self.toks.len() {
            match &self.toks[j].kind {
                TokenKind::Punct('(') => paren += 1,
                TokenKind::Punct(')') => paren = paren.saturating_sub(1),
                TokenKind::Punct('[') => bracket += 1,
                TokenKind::Punct(']') => bracket = bracket.saturating_sub(1),
                TokenKind::Punct('{') | TokenKind::Punct(';') if paren == 0 && bracket == 0 => {
                    break
                }
                TokenKind::Ident(s) if s == "in" && paren == 0 && bracket == 0 => {
                    found_in = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(in_idx) = found_in else { return i + 1 };
        let (mut paren, mut bracket) = (0usize, 0usize);
        let mut k = in_idx + 1;
        let mut body = None;
        while k < self.toks.len() {
            match &self.toks[k].kind {
                TokenKind::Punct('(') => paren += 1,
                TokenKind::Punct(')') => paren = paren.saturating_sub(1),
                TokenKind::Punct('[') => bracket += 1,
                TokenKind::Punct(']') => bracket = bracket.saturating_sub(1),
                TokenKind::Punct('{') if paren == 0 && bracket == 0 => {
                    body = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(body) = body else { return i + 1 };
        let (static_bound, static_end_const) = static_trip_count(&self.toks[in_idx + 1..body]);
        let loop_idx = self.out.fns[fn_idx].loops.len();
        self.out.fns[fn_idx].loops.push(LoopInfo {
            line: self.toks[i].line,
            end_line: self.toks[i].line,
            marker_bound: None,
            static_bound,
            static_end_const,
        });
        self.pending_loop = Some((fn_idx, loop_idx, body));
        i + 1 // keep scanning the header: the iterable may contain calls
    }

    /// `while <cond> {` inside a fn body.
    fn scan_while(&mut self, i: usize) -> usize {
        let Some(fn_idx) = self.current_fn() else {
            return i + 1;
        };
        let (mut paren, mut bracket) = (0usize, 0usize);
        let mut j = i + 1;
        let mut body = None;
        while j < self.toks.len() {
            match &self.toks[j].kind {
                TokenKind::Punct('(') => paren += 1,
                TokenKind::Punct(')') => paren = paren.saturating_sub(1),
                TokenKind::Punct('[') => bracket += 1,
                TokenKind::Punct(']') => bracket = bracket.saturating_sub(1),
                TokenKind::Punct('{') if paren == 0 && bracket == 0 => {
                    body = Some(j);
                    break;
                }
                TokenKind::Punct(';') if paren == 0 && bracket == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(body) = body else { return i + 1 };
        let loop_idx = self.out.fns[fn_idx].loops.len();
        self.out.fns[fn_idx].loops.push(LoopInfo {
            line: self.toks[i].line,
            end_line: self.toks[i].line,
            marker_bound: None,
            static_bound: None,
            static_end_const: None,
        });
        self.pending_loop = Some((fn_idx, loop_idx, body));
        i + 1
    }

    /// `loop {` inside a fn body.
    fn scan_loop(&mut self, i: usize) -> usize {
        let Some(fn_idx) = self.current_fn() else {
            return i + 1;
        };
        if !self.toks.get(i + 1).is_some_and(|t| t.is_punct('{')) {
            return i + 1;
        }
        let loop_idx = self.out.fns[fn_idx].loops.len();
        self.out.fns[fn_idx].loops.push(LoopInfo {
            line: self.toks[i].line,
            end_line: self.toks[i].line,
            marker_bound: None,
            static_bound: None,
            static_end_const: None,
        });
        self.pending_loop = Some((fn_idx, loop_idx, i + 1));
        i + 1
    }

    /// `const NAME: Ty = <num>;` — feed the loop-bound const table.
    fn scan_const(&mut self, i: usize) -> usize {
        self.attrs.clear();
        let Some(name) = self.toks.get(i + 1).and_then(|t| t.ident()) else {
            return i + 1;
        };
        if name == "fn" {
            return i + 1; // `const fn`
        }
        let name = name.to_string();
        let mut j = i + 2;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if t.is_punct(';') || t.is_punct('{') {
                return i + 1;
            }
            if t.is_punct('=') {
                break;
            }
            j += 1;
        }
        if let Some(TokenKind::Num(n)) = self.toks.get(j + 1).map(|t| &t.kind) {
            if self.toks.get(j + 2).is_some_and(|t| t.is_punct(';')) {
                if let Some(v) = num_value(n) {
                    self.out.consts.insert(name, v);
                }
            }
        }
        i + 1
    }

    /// `expr[..]` index site: a `[` directly after a value expression.
    fn scan_index_site(&mut self, i: usize) {
        let Some(fn_idx) = self.current_fn() else {
            return;
        };
        let Some(prev) = i.checked_sub(1).map(|p| &self.toks[p]) else {
            return;
        };
        let is_value_end = match &prev.kind {
            TokenKind::Ident(s) => !NON_INDEX_KEYWORDS.contains(&s.as_str()),
            TokenKind::Punct(')') | TokenKind::Punct(']') => true,
            _ => false,
        };
        if is_value_end {
            self.out.fns[fn_idx].index_sites.push(self.toks[i].line);
        }
    }

    /// Identifier in expression position: macro call, call, or field
    /// access.
    fn scan_expr_ident(&mut self, i: usize) -> usize {
        let Some(fn_idx) = self.current_fn() else {
            return i + 1;
        };
        let id = self.toks[i].ident().unwrap().to_string();
        if matches!(
            id.as_str(),
            "if" | "else" | "match" | "return" | "break" | "continue" | "let" | "mut" | "ref"
                | "move" | "as" | "in" | "pub" | "where" | "unsafe" | "dyn" | "static"
        ) {
            return i + 1;
        }
        let line = self.toks[i].line;
        let next = self.toks.get(i + 1);

        // Macro invocation: `name!(..)` / `name![..]` / `name!{..}`.
        if next.is_some_and(|t| t.is_punct('!'))
            && self.toks.get(i + 2).is_some_and(|t| {
                t.is_punct('(') || t.is_punct('[') || t.is_punct('{')
            })
        {
            if id == "span_begin" || id == "span_end" {
                self.scan_span_event(fn_idx, &id, line, i + 2);
            }
            self.out.fns[fn_idx].calls.push(BodyCall {
                name: id,
                line,
                qualifier: None,
                via_dot: false,
                is_macro: true,
            });
            return i + 1;
        }

        // Plain call: `name(..)`.
        if next.is_some_and(|t| t.is_punct('(')) {
            let (qualifier, via_dot) = self.call_qualifier(i);
            self.out.fns[fn_idx].calls.push(BodyCall {
                name: id,
                line,
                qualifier,
                via_dot,
                is_macro: false,
            });
            return i + 1;
        }

        // Field access: `recv.name` (not `a..b`, not `recv.name(`).
        if i >= 1
            && self.toks[i - 1].is_punct('.')
            && !(i >= 2 && self.toks[i - 2].is_punct('.'))
        {
            let qualifier = if i >= 2 {
                self.toks[i - 2].ident().map(String::from)
            } else {
                None
            };
            self.out.fns[fn_idx].field_accesses.push(FieldAccess {
                name: id,
                qualifier,
                line,
            });
        }
        i + 1
    }

    /// Record a `span_begin!`/`span_end!` probe with a literal name:
    /// pair begin/end into a [`PhaseSpan`] on the enclosing fn.
    fn scan_span_event(&mut self, fn_idx: usize, which: &str, line: usize, open: usize) {
        let mut depth = 0usize;
        let mut j = open;
        let mut name = None;
        while j < self.toks.len() {
            match &self.toks[j].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                    depth += 1
                }
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Str(s) if !s.is_empty() && name.is_none() => {
                    name = Some(s.clone());
                }
                _ => {}
            }
            j += 1;
        }
        let Some(name) = name else { return };
        if which == "span_begin" {
            self.span_stack.push((name, line));
        } else if let Some(pos) = self.span_stack.iter().rposition(|(n, _)| *n == name) {
            let (n, start) = self.span_stack.remove(pos);
            self.out.fns[fn_idx].phases.push(PhaseSpan {
                name: n,
                start_line: start,
                end_line: line,
            });
        }
    }

    /// The receiver/path qualifier of a call whose name is at `i`
    /// (mirrors [`crate::scan`]'s logic).
    fn call_qualifier(&self, i: usize) -> (Option<String>, bool) {
        if i >= 1 && self.toks[i - 1].is_punct('.') {
            let q = if i >= 2 {
                match &self.toks[i - 2].kind {
                    TokenKind::Ident(s) => Some(s.clone()),
                    TokenKind::Punct(')') => {
                        let mut depth = 0usize;
                        let mut k = i - 2;
                        loop {
                            match &self.toks[k].kind {
                                TokenKind::Punct(')') => depth += 1,
                                TokenKind::Punct('(') => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            if k == 0 {
                                break;
                            }
                            k -= 1;
                        }
                        if k > 0 {
                            self.toks[k - 1].ident().map(String::from)
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            } else {
                None
            };
            (q, true)
        } else if i >= 2 && self.toks[i - 1].is_punct(':') && self.toks[i - 2].is_punct(':') {
            let q = if i >= 3 {
                self.toks[i - 3].ident().map(String::from)
            } else {
                None
            };
            (q, false)
        } else {
            (None, false)
        }
    }
}

/// Statically visible trip count of a `for` iterable: numeric ranges
/// (`0..64`, `2..=10`), `lo..CONST` (returned for later resolution),
/// or a `.take(N)` anywhere in the chain.
fn static_trip_count(toks: &[Token]) -> (Option<u64>, Option<String>) {
    // `.take(N)` dominates whatever it wraps.
    for w in toks.windows(4) {
        if w[0].is_punct('.') && w[1].is_ident("take") && w[2].is_punct('(') {
            if let TokenKind::Num(n) = &w[3].kind {
                if let Some(v) = num_value(n) {
                    return (Some(v), None);
                }
            }
        }
    }
    // Range forms.
    let mut j = 0;
    while j + 2 < toks.len() {
        if toks[j + 1].is_punct('.') && toks[j + 2].is_punct('.') {
            let lo = match &toks[j].kind {
                TokenKind::Num(n) => num_value(n),
                _ => None,
            };
            let Some(lo) = lo else {
                j += 1;
                continue;
            };
            let mut k = j + 3;
            let mut inclusive = false;
            if toks.get(k).is_some_and(|t| t.is_punct('=')) {
                inclusive = true;
                k += 1;
            }
            match toks.get(k).map(|t| &t.kind) {
                Some(TokenKind::Num(n)) => {
                    if let Some(hi) = num_value(n) {
                        let trips = hi.saturating_sub(lo) + u64::from(inclusive);
                        return (Some(trips), None);
                    }
                }
                // `0..CONST`: resolve against the workspace table.
                Some(TokenKind::Ident(c))
                    if lo == 0
                        && !inclusive
                        && c.chars().all(|ch| {
                            ch.is_ascii_uppercase() || ch == '_' || ch.is_ascii_digit()
                        }) =>
                {
                    return (None, Some(c.clone()));
                }
                _ => {}
            }
        }
        j += 1;
    }
    (None, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_bodies_carry_calls_loops_and_extents() {
        let src = r#"
            impl Mercury {
                fn attach(&self) {
                    for f in self.kernel.all_table_frames() {
                        self.flip(f);
                    }
                    // volint::bound(64)
                    for p in procs.iter() {
                        fix(p);
                    }
                    for i in 0..16 {
                        step(i);
                    }
                }
            }
        "#;
        let p = parse_file("x.rs", src);
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "attach");
        assert_eq!(f.impl_type.as_deref(), Some("Mercury"));
        assert_eq!(f.loops.len(), 3);
        assert!(f.loops[0].marker_bound.is_none());
        assert!(f.loops[0].end_line > f.loops[0].line);
        assert_eq!(f.loops[1].marker_bound, Some(64));
        assert_eq!(f.loops[2].static_bound, Some(16));
        assert!(f.calls.iter().any(|c| c.name == "all_table_frames"));
        assert!(f.calls.iter().any(|c| c.name == "flip"));
        assert!(f.end_line > f.line);
    }

    #[test]
    fn macro_calls_and_span_regions() {
        let src = r#"
            fn attach_transfer(cpu: &Cpu) {
                merctrace::span_begin!(cpu.id, "switch.transfer.flip_tables", cpu.cycles());
                flip(cpu);
                merctrace::span_end!(cpu.id, "switch.transfer.flip_tables", cpu.cycles());
                let v = vec![1, 2];
                let s = format!("{v:?}");
            }
        "#;
        let p = parse_file("x.rs", src);
        let f = &p.fns[0];
        assert!(f.calls.iter().any(|c| c.name == "vec" && c.is_macro));
        assert!(f.calls.iter().any(|c| c.name == "format" && c.is_macro));
        assert_eq!(f.phases.len(), 1);
        assert_eq!(f.phases[0].name, "switch.transfer.flip_tables");
        assert!(f.phases[0].end_line > f.phases[0].start_line);
        // The dynamic-name span form is ignored, not mispaired.
        let src2 = "fn f(cpu: &Cpu) { merctrace::span_begin!(cpu.id, _span, cpu.cycles()); }";
        assert!(parse_file("y.rs", src2).fns[0].phases.is_empty());
    }

    #[test]
    fn index_sites_and_field_accesses() {
        let src = r#"
            fn f(&self, xs: &[u8]) -> u8 {
                let [a, b] = split(xs);
                let _ = *self.rv_round.lock();
                self.stats.deferrals.incr();
                xs[3] + a + b
            }
        "#;
        let p = parse_file("x.rs", src);
        let f = &p.fns[0];
        assert_eq!(f.index_sites.len(), 1, "slice pattern must not count");
        let rv = f.field_accesses.iter().find(|a| a.name == "rv_round");
        assert_eq!(rv.unwrap().qualifier.as_deref(), Some("self"));
        assert!(f.field_accesses.iter().any(|a| a.name == "stats"));
        // `lock()` and `incr()` are calls, not field accesses.
        assert!(!f.field_accesses.iter().any(|a| a.name == "lock"));
    }

    #[test]
    fn root_markers_attach_to_following_fn() {
        let src = r#"
            // volint::root(SWITCH, RENDEZVOUS)
            fn handle_switch(&self) {}

            fn unrooted(&self) {}
        "#;
        let p = parse_file("x.rs", src);
        assert_eq!(p.fns[0].root_kinds, vec!["SWITCH", "RENDEZVOUS"]);
        assert!(p.fns[1].root_kinds.is_empty());
    }

    #[test]
    fn consts_costs_guards_prunes() {
        let src = "pub const ENTRIES_PER_TABLE: usize = 512;\n\
                   struct S {\n    // volint::guarded_by(rendezvous)\n    job: Mutex<u8>,\n}\n\
                   fn f() {\n    // volint::cost(4_096)\n    tick();\n    // volint::prune(SWITCH)\n    helper();\n    for i in 0..ENTRIES_PER_TABLE { walk(i); }\n}\n";
        let p = parse_file("x.rs", src);
        assert_eq!(p.consts.get("ENTRIES_PER_TABLE"), Some(&512));
        assert_eq!(p.costs, vec![(7, 4096)]);
        assert_eq!(p.guards, vec![(3, "rendezvous".to_string())]);
        assert!(p.is_pruned("SWITCH", 10));
        assert!(!p.is_pruned("RENDEZVOUS", 10));
        let lp = &p.fns[0].loops[0];
        assert_eq!(lp.static_end_const.as_deref(), Some("ENTRIES_PER_TABLE"));
        assert_eq!(lp.resolved_bound(&p.consts), Some(512));
    }

    #[test]
    fn while_and_bare_loops_are_unbounded_without_marker() {
        let src = r#"
            fn f() {
                while pending() {
                    step();
                }
                // volint::bound(1000)
                loop {
                    if done() { break; }
                }
            }
        "#;
        let p = parse_file("x.rs", src);
        let f = &p.fns[0];
        assert_eq!(f.loops.len(), 2);
        assert!(f.loops[0].resolved_bound(&BTreeMap::new()).is_none());
        assert_eq!(f.loops[1].marker_bound, Some(1000));
    }

    #[test]
    fn impl_for_is_not_a_loop_and_test_scope_propagates() {
        let src = r#"
            impl PvOps for BareOps {
                fn mode(&self) -> ExecMode { ExecMode::Native }
            }
            #[cfg(test)]
            mod tests {
                fn helper() { for i in 0..4 { poke(i); } }
            }
        "#;
        let p = parse_file("x.rs", src);
        let mode = p.fns.iter().find(|f| f.name == "mode").unwrap();
        assert_eq!(mode.impl_type.as_deref(), Some("BareOps"));
        assert!(mode.loops.is_empty());
        let helper = p.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(helper.in_test);
        assert_eq!(helper.loops.len(), 1);
    }

    #[test]
    fn num_values() {
        assert_eq!(num_value("16_384"), Some(16384));
        assert_eq!(num_value("0x40"), Some(64));
        assert_eq!(num_value("256usize"), Some(256));
        assert_eq!(num_value("abc"), None);
    }
}
