//! Migration policy: who a degraded node drains to, and when pre-copy
//! has converged.
//!
//! The policy is the third leg of the fleet triangle (DESIGN.md §15):
//! the watchdog *marks* nodes in the shared [`FleetState`], the
//! balancer *reads* it for dispatch, and this module *acts* on it —
//! selecting an evacuation target among healthy idle peers and driving
//! [`evacuate`](crate::maintenance::evacuate)-style migrations whose
//! phase transitions are published back into the view, so the balancer
//! deprioritizes a node the moment its stop-and-copy begins.

use crate::fleet::{FleetState, MigrationPhase};
use crate::maintenance::{evacuate_inner, EvacuatedGuest, MaintenanceError, RoundPlan};
use crate::node::Node;
use std::sync::Arc;

/// Tunables for fleet-driven live migration.
#[derive(Debug, Clone, Copy)]
pub struct MigrationPolicy {
    /// Pre-copy round cap before forcing stop-and-copy (Clark et al.
    /// bound the iterations; an unconverging guest must not migrate
    /// forever).
    pub max_precopy_rounds: usize,
    /// A dirty-set round shipping at most this many frames counts as
    /// converged: stop-and-copy immediately while downtime is small.
    pub convergence_frames: usize,
}

impl Default for MigrationPolicy {
    fn default() -> Self {
        MigrationPolicy {
            max_precopy_rounds: 4,
            convergence_frames: 8,
        }
    }
}

impl MigrationPolicy {
    /// Pick the evacuation target for `source`: the least-loaded node
    /// that is a valid migration target in `fleet`
    /// ([`FleetState::migration_target_ok`] — healthy, no migration of
    /// its own), excluding `source` itself and, when `exclude_rack` is
    /// given, every node in that rack (the rolling wave never evacuates
    /// into the rack it is about to take down).  `load` supplies the
    /// balancer's `(queued, busy_cycles)` signal per node; ties break
    /// to the lowest index, keeping selection deterministic.
    pub fn select_target(
        &self,
        fleet: &FleetState,
        source: usize,
        exclude_rack: Option<usize>,
        load: impl Fn(usize) -> (usize, u64),
    ) -> Option<usize> {
        let mut best: Option<(usize, u64, usize)> = None;
        for i in 0..fleet.len() {
            if i == source || !fleet.migration_target_ok(i) {
                continue;
            }
            if exclude_rack == Some(fleet.rack_of(i)) {
                continue;
            }
            let (q, b) = load(i);
            let key = (q, b, i);
            if best.is_none_or(|k| key < k) {
                best = Some(key);
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Evacuate `source_node`'s OS to `target_node`, publishing each
    /// migration phase of fleet node `source_idx` into `fleet` as it
    /// happens (pre-copy → stop-and-copy → idle), with rounds governed
    /// by this policy's convergence heuristic.  On success the caller
    /// marks `source_idx` evacuated; on failure the node's phase is
    /// still reset so a degraded node cannot wedge the balancer.
    pub fn evacuate_tracked(
        &self,
        source_node: &Arc<Node>,
        target_node: &Arc<Node>,
        fleet: &FleetState,
        source_idx: usize,
    ) -> Result<EvacuatedGuest, MaintenanceError> {
        let result = evacuate_inner(
            source_node,
            target_node,
            RoundPlan::Converge {
                max: self.max_precopy_rounds,
                threshold: self.convergence_frames,
            },
            &mut |phase| fleet.set_phase(source_idx, phase),
        );
        fleet.set_phase(source_idx, MigrationPhase::Idle);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::NodeStatus;
    use crate::node::{Cluster, NodeConfig};

    #[test]
    fn target_selection_prefers_least_loaded_healthy_peers() {
        let fleet = FleetState::new(6, 3);
        let policy = MigrationPolicy::default();
        // Node 1 is busy, node 2 mid-migration, node 3 degraded.
        fleet.set_phase(2, MigrationPhase::PreCopy);
        fleet.set_status(3, NodeStatus::Degraded("hot".into()));
        let load = |i: usize| if i == 1 { (5, 1_000) } else { (0, 0) };

        // Least-loaded healthy idle peer wins; 2 and 3 are skipped.
        assert_eq!(policy.select_target(&fleet, 0, None, load), Some(4));
        // Excluding rack 1 (nodes 3..=5) leaves only the busy node 1.
        assert_eq!(policy.select_target(&fleet, 0, Some(1), load), Some(1));
        // Excluding both racks leaves nothing.
        fleet.set_status(1, NodeStatus::Draining);
        fleet.set_status(4, NodeStatus::Evacuated);
        fleet.set_status(5, NodeStatus::Maintenance);
        assert_eq!(policy.select_target(&fleet, 0, None, load), None);
    }

    #[test]
    fn tracked_evacuation_publishes_phases_and_resets() {
        let cluster = Cluster::launch(2, &NodeConfig::default());
        let fleet = FleetState::new(2, 1);
        let policy = MigrationPolicy::default();

        let guest = policy
            .evacuate_tracked(cluster.node(0), cluster.node(1), &fleet, 0)
            .unwrap();
        // Convergence: a quiet guest never needs the full round cap.
        assert!(guest.report.rounds.len() <= policy.max_precopy_rounds + 1);
        assert_eq!(
            fleet.phase(0),
            MigrationPhase::Idle,
            "phase must reset after the migration completes"
        );
        assert!(guest.report.total_frames > 0);
    }
}
