//! Reactive dependability watchdog: detection → attach → recover →
//! detach (DESIGN.md §12).
//!
//! The paper's dependability scenarios (§2, §6.2/§6.3) all follow the
//! same shape: the machine runs *native* for performance; when hardware
//! misbehaves, the VMM is attached underneath the running OS so the
//! fault can be isolated and repaired behind the virtualization layer;
//! once the danger passes the VMM detaches and the machine is native
//! again.  [`Watchdog`] is that loop.  It consumes detection signals
//! from [`faultgen`]'s injector (the simulated stand-in for ECC
//! machine-check reports, device timeouts and IDT sanity checks),
//! requests an on-demand attach through [`Mercury`], applies a
//! class-specific [`RecoveryAction`], and detaches at the end of the
//! campaign window.
//!
//! One class gets special treatment: [`FaultClass::VmmCorrupt`] means
//! the *hypervisor's own state* is damaged, so no in-place repair can
//! be trusted — the watchdog's `update-on-suspicion` policy live-
//! updates the node onto a pristine, newer-versioned VMM instance
//! ([`RecoveryAction::LiveUpdate`], DESIGN.md §16) without detaching
//! or disturbing the guest.
//!
//! Two imperfect-world paths are modelled explicitly:
//!
//! * **`Busy`/deferred switches** — if the attach is deferred by the VO
//!   reference-count gate or the rendezvous block is busy, the watchdog
//!   backs off [`WatchdogPolicy::backoff_cycles`] and retries, up to
//!   [`WatchdogPolicy::max_attach_attempts`] times.
//! * **Rendezvous timeout** — if a peer CPU never reaches a rendezvous
//!   service point, the attach is abandoned and the watchdog goes
//!   *sticky degraded*: it stops requesting attaches (each timeout
//!   costs real wall-clock in the rendezvous spin) and recovers
//!   natively instead.  [`FaultReport::degraded`] records this, and
//!   [`mercury::SwitchStats::rendezvous_failures`] counts it.

use crate::fleet::{FleetState, NodeStatus};
use faultgen::{FaultClass, FaultSignal, FaultTarget};
use mercury::rendezvous::RendezvousError;
use mercury::{ExecMode, Mercury, SwitchError, SwitchOutcome};
use nimbus::Kernel;
use simx86::{Cpu, Machine, PhysAddr};
use std::sync::Arc;
use xenon::{BackgroundScrubber, Hypervisor};

/// Watchdog tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogPolicy {
    /// Attach attempts per poll before giving up on virtualization for
    /// this batch of faults (covers `Deferred` and `Busy` outcomes).
    pub max_attach_attempts: u32,
    /// Simulated cycles to back off between attach attempts.
    pub backoff_cycles: u64,
    /// `false` = never attach: recover natively (the paper's
    /// always-native baseline; also what a pure-virtual deployment
    /// uses, where the VMM is already attached).
    pub attach_on_fault: bool,
}

impl Default for WatchdogPolicy {
    fn default() -> Self {
        WatchdogPolicy {
            max_attach_attempts: 3,
            backoff_cycles: 20_000,
            attach_on_fault: true,
        }
    }
}

/// What the watchdog did about one fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Read the flipped word back and rewrote the corrected value
    /// (ECC scrub).
    MemoryScrub,
    /// Reset the wedged device and re-pumped its queue.
    DeviceReset,
    /// Masked the stuck interrupt line.
    IrqMask,
    /// Acknowledged and dropped a spurious interrupt.
    SpuriousAck,
    /// Reinstalled the kernel's pristine trap table over the corrupted
    /// descriptor ([`Kernel::reinstall_idt`]).
    IdtRepair,
    /// Cleared a transient/slow hypercall (the caller already paid the
    /// retry penalty).
    HypercallRetry,
    /// Replaced the running hypervisor with a pristine, newer-versioned
    /// successor via live-update (DESIGN.md §16) — the
    /// `update-on-suspicion` policy for faults *inside* the VMM, where
    /// no in-place scrub can be trusted.
    LiveUpdate,
}

impl RecoveryAction {
    /// Stable identifier used in reports and `faultgen_results.json`.
    pub fn as_str(self) -> &'static str {
        match self {
            RecoveryAction::MemoryScrub => "memory-scrub",
            RecoveryAction::DeviceReset => "device-reset",
            RecoveryAction::IrqMask => "irq-mask",
            RecoveryAction::SpuriousAck => "spurious-ack",
            RecoveryAction::IdtRepair => "idt-repair",
            RecoveryAction::HypercallRetry => "hypercall-retry",
            RecoveryAction::LiveUpdate => "live-update",
        }
    }
}

/// The audit record for one handled fault.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// The fault's campaign id.
    pub fault_id: u64,
    /// Its class.
    pub class: FaultClass,
    /// Simulated cycle at which the hardware hook fired it.
    pub injected_cycle: u64,
    /// Simulated cycle at which the watchdog drained its signal.
    pub detected_cycle: u64,
    /// The recovery applied.
    pub action: RecoveryAction,
    /// Attach attempts made while handling it (0 when already virtual
    /// or when attaching is disabled/degraded).
    pub attach_attempts: u32,
    /// `true` if this fault was recovered on the degraded native path
    /// because the attach rendezvous failed.
    pub degraded: bool,
    /// Whether the recovery action succeeded.
    pub recovered: bool,
}

/// The reactive watchdog for one node.
///
/// Polling is explicit (like every service point in the simulation):
/// the campaign driver calls [`poll`](Watchdog::poll) at its service
/// points and [`end_window`](Watchdog::end_window) when the campaign
/// window closes.
///
/// ```
/// use mercury_cluster::{Node, NodeConfig, Watchdog, WatchdogPolicy};
///
/// let node = Node::launch("n0", &NodeConfig::default());
/// let mut dog = Watchdog::new(
///     node.mercury(),
///     std::sync::Arc::clone(&node.machine),
///     node.kernel(),
///     WatchdogPolicy::default(),
/// );
/// let cpu = node.machine.boot_cpu();
/// // Nothing armed: nothing detected, nothing attached.
/// assert_eq!(dog.poll(cpu), 0);
/// dog.end_window(cpu);
/// assert!(dog.reports().is_empty());
/// assert!(!dog.degraded());
/// ```
pub struct Watchdog {
    mercury: Arc<Mercury>,
    machine: Arc<Machine>,
    kernel: Arc<Kernel>,
    policy: WatchdogPolicy,
    /// We attached for isolation and owe a detach at window end.
    attached_by_us: bool,
    /// Sticky: a rendezvous timed out; stop requesting attaches.
    degraded: bool,
    reports: Vec<FaultReport>,
    /// Shared fleet view + this node's index in it, when fleet-bound.
    fleet: Option<(Arc<FleetState>, usize)>,
    /// The node's idle scrubber, when bound: a successful live-update
    /// retargets it at the successor's frame table so donated cycles
    /// keep revalidating the *live* ledger.
    scrubber: Option<Arc<BackgroundScrubber>>,
    /// `VmmCorrupt` faults whose update attempt rolled back.  They stay
    /// outstanding in the injector (the damage lives in the incumbent's
    /// tables), and the next *completed* update resolves them wholesale
    /// — one pristine successor heals the entire table, not just the
    /// record named by the triggering signal.
    suspected: Vec<u64>,
}

impl Watchdog {
    /// A watchdog for the node composed of `machine` + `kernel` +
    /// `mercury`.
    pub fn new(
        mercury: Arc<Mercury>,
        machine: Arc<Machine>,
        kernel: Arc<Kernel>,
        policy: WatchdogPolicy,
    ) -> Watchdog {
        Watchdog {
            mercury,
            machine,
            kernel,
            policy,
            attached_by_us: false,
            degraded: false,
            reports: Vec::new(),
            fleet: None,
            scrubber: None,
            suspected: Vec::new(),
        }
    }

    /// Bind the node's idle scrubber so a live-update recovery can
    /// retarget it at the successor hypervisor's frame table.
    pub fn bind_scrubber(&mut self, scrubber: Arc<BackgroundScrubber>) {
        self.scrubber = Some(scrubber);
    }

    /// Bind this watchdog to the shared fleet view as node `index`:
    /// from now on a sticky degradation (or an explicit
    /// [`mark_degraded`](Watchdog::mark_degraded)) is published as
    /// [`NodeStatus::Degraded`] so the balancer routes away and the
    /// migration policy can start draining the node.
    pub fn bind_fleet(&mut self, fleet: Arc<FleetState>, index: usize) {
        self.fleet = Some((fleet, index));
    }

    /// Degrade this node: sticky native-only recovery, published to the
    /// bound fleet view (if any).  Called internally on rendezvous
    /// timeouts; callers use it for health-signal degradations (rising
    /// temperature trend, fault storms) that the watchdog itself cannot
    /// see.
    pub fn mark_degraded(&mut self, reason: &str) {
        self.degraded = true;
        if let Some((fleet, index)) = &self.fleet {
            fleet.set_status(*index, NodeStatus::Degraded(reason.to_string()));
        }
    }

    /// Drain and handle every pending fault signal.  Returns the number
    /// of faults handled this poll.
    pub fn poll(&mut self, cpu: &Arc<Cpu>) -> usize {
        let signals = faultgen::drain_signals();
        if signals.is_empty() {
            return 0;
        }
        merctrace::counter!(
            cpu.id,
            "watchdog.fault.detected",
            signals.len() as u64,
            cpu.cycles()
        );
        // Isolation first (§6.2: get the virtualization layer between
        // the fault and the OS), then per-fault recovery.
        let attach_attempts = if self.policy.attach_on_fault {
            self.ensure_attached(cpu)
        } else {
            0
        };
        let n = signals.len();
        for signal in signals {
            let detected_cycle = cpu.cycles();
            let (action, recovered) = self.recover(cpu, &signal);
            if recovered {
                merctrace::counter!(cpu.id, "watchdog.fault.recovered", 1, cpu.cycles());
            }
            self.reports.push(FaultReport {
                fault_id: signal.fault_id,
                class: signal.class,
                injected_cycle: signal.injected_cycle,
                detected_cycle,
                action,
                attach_attempts,
                degraded: self.degraded,
                recovered,
            });
        }
        n
    }

    /// The campaign window closed: detach if this watchdog attached.
    pub fn end_window(&mut self, cpu: &Arc<Cpu>) {
        if !self.attached_by_us {
            return;
        }
        // A deferred detach is retried on the next window end via the
        // same path; for campaign runs the refcount is quiescent here.
        if let Ok(SwitchOutcome::Completed { .. }) = self.mercury.switch_to_native(cpu) {
            self.attached_by_us = false;
            merctrace::counter!(cpu.id, "watchdog.detach", 1, cpu.cycles());
        }
    }

    /// Everything handled so far, in handling order.
    pub fn reports(&self) -> &[FaultReport] {
        &self.reports
    }

    /// Has the watchdog fallen back to native-only recovery?
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Is the watchdog currently holding an attach it made?
    pub fn holding_attach(&self) -> bool {
        self.attached_by_us
    }

    /// Request an attach, retrying deferred/busy outcomes with backoff.
    /// Returns the number of attempts made.
    fn ensure_attached(&mut self, cpu: &Arc<Cpu>) -> u32 {
        if self.degraded || self.mercury.mode() == ExecMode::Virtual {
            return 0;
        }
        let mut attempts = 0;
        while attempts < self.policy.max_attach_attempts {
            attempts += 1;
            match self.mercury.switch_to_virtual(cpu) {
                Ok(SwitchOutcome::Completed { .. }) => {
                    self.attached_by_us = true;
                    merctrace::counter!(cpu.id, "watchdog.attach", 1, cpu.cycles());
                    break;
                }
                Ok(SwitchOutcome::AlreadyInMode) => break,
                // VO refcount gate or an in-flight rendezvous: register
                // the retry deadline on the event clock and fast-forward
                // the backoff to it — the charge is identical to ticking
                // the span away (DESIGN.md §14), but the wait is one
                // host operation instead of a spin.
                Ok(SwitchOutcome::Deferred { .. })
                | Err(SwitchError::Rendezvous(RendezvousError::Busy)) => {
                    let retry_at = cpu.cycles() + self.policy.backoff_cycles;
                    let ev = self.machine.evclock.schedule_for(
                        cpu.id,
                        retry_at,
                        simx86::EventKind::WatchdogRetry,
                    );
                    self.machine.evclock.advance(cpu, retry_at);
                    self.machine.evclock.cancel(ev);
                }
                // A peer CPU never reached its service point.  Each
                // timeout burns the full rendezvous wait, so go sticky:
                // recover natively from here on (documented degradation
                // path, DESIGN.md §12.4).
                Err(SwitchError::Rendezvous(RendezvousError::Timeout)) => {
                    self.mark_degraded("attach rendezvous timeout");
                    merctrace::counter!(cpu.id, "watchdog.degraded", 1, cpu.cycles());
                    break;
                }
                Err(_) => {
                    self.mark_degraded("attach failed");
                    merctrace::counter!(cpu.id, "watchdog.degraded", 1, cpu.cycles());
                    break;
                }
            }
        }
        attempts
    }

    /// Apply the class-specific recovery for one signal.
    fn recover(&mut self, cpu: &Arc<Cpu>, signal: &FaultSignal) -> (RecoveryAction, bool) {
        match signal.target {
            // ECC scrub: the signal carries the syndrome (frame, word,
            // bit), so flip the bit back and rewrite the word.
            FaultTarget::MemWord { frame, word, bit } => {
                let pa = PhysAddr(((frame as u64) << 12) + (word as u64) * 8);
                let ok = match self.machine.mem.read_word(cpu, pa) {
                    Ok(v) => self
                        .machine
                        .mem
                        .write_word(cpu, pa, v ^ (1u64 << bit))
                        .is_ok(),
                    Err(_) => false,
                };
                faultgen::resolve(signal.fault_id);
                (RecoveryAction::MemoryScrub, ok)
            }
            // Device reset: clear the wedge, then re-pump so queued
            // requests (the stalled one first) complete.
            FaultTarget::DiskRequest { .. } => {
                let ok = faultgen::resolve(signal.fault_id);
                self.machine.pump_devices();
                (RecoveryAction::DeviceReset, ok)
            }
            // Mask the stuck line: resolving stops the re-assertion;
            // one final service drains whatever is still pending.
            FaultTarget::IrqLine { .. } => {
                let ok = faultgen::resolve(signal.fault_id);
                cpu.service_pending();
                (RecoveryAction::IrqMask, ok)
            }
            FaultTarget::Spurious { .. } => {
                let ok = faultgen::resolve(signal.fault_id);
                (RecoveryAction::SpuriousAck, ok)
            }
            // Descriptor repair: reinstall the pristine trap table
            // through the active paravirt object, then clear the fault
            // so dispatches of the vector flow again.
            FaultTarget::IdtGate { .. } => {
                let repaired = self.kernel.reinstall_idt(cpu).is_ok();
                let ok = faultgen::resolve(signal.fault_id) && repaired;
                (RecoveryAction::IdtRepair, ok)
            }
            FaultTarget::Hypercall { .. } => {
                let ok = faultgen::resolve(signal.fault_id);
                (RecoveryAction::HypercallRetry, ok)
            }
            // Update-on-suspicion: the damaged component is the
            // hypervisor's own frame accounting, so no in-place scrub
            // can be trusted — the incumbent's ledger is the thing
            // under suspicion.  Live-update to a pristine successor
            // whose accounting is *recomputed* from the guest's own
            // page tables; only a completed update resolves the fault,
            // so a rollback leaves it outstanding for the next poll.
            FaultTarget::VmmState { .. } => {
                let updated = self.live_update_recover(cpu);
                let ok = updated && faultgen::resolve(signal.fault_id);
                if updated {
                    // The successor's table was rebuilt wholesale, so
                    // every earlier rolled-back suspicion is healed too.
                    for id in self.suspected.drain(..) {
                        faultgen::resolve(id);
                    }
                } else {
                    self.suspected.push(signal.fault_id);
                }
                (RecoveryAction::LiveUpdate, ok)
            }
        }
    }

    /// Recover from VMM-state corruption by live-updating onto a
    /// freshly warmed, strictly-newer-versioned hypervisor (DESIGN.md
    /// §16).  Returns `true` only if the node completed the update on
    /// the successor; a rollback or refusal leaves the incumbent
    /// running (guest untouched) and reports failure.
    fn live_update_recover(&mut self, cpu: &Arc<Cpu>) -> bool {
        // The corruption hook fires at hypervisor service points, so
        // the node is virtual when the fault lands; if it detached
        // before this poll, `ensure_attached` has already re-attached
        // (and the attach recompute would *mask* the damage — but the
        // fault stays armed until an update actually resolves it).
        if self.mercury.mode() != ExecMode::Virtual {
            return false;
        }
        let successor =
            Hypervisor::warm_up_versioned(&self.machine, self.mercury.hv_version() + 1);
        if self.mercury.stage_update(successor).is_err() {
            return false;
        }
        match self.mercury.live_update(cpu) {
            Ok(SwitchOutcome::Completed { .. }) => {
                merctrace::counter!(cpu.id, "watchdog.live_update", 1, cpu.cycles());
                if let Some(scrubber) = &self.scrubber {
                    scrubber.retarget(Arc::clone(&self.mercury.hypervisor().page_info));
                }
                true
            }
            _ => {
                // Deferred or rolled back: drop any leftover staging
                // (and its reserved successor frames) so the next poll
                // stages a fresh instance.
                self.mercury.clear_staged_update();
                merctrace::counter!(cpu.id, "watchdog.live_update_failed", 1, cpu.cycles());
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, NodeConfig};
    use faultgen::FaultSpec;

    fn dog_for(node: &Node, policy: WatchdogPolicy) -> Watchdog {
        Watchdog::new(
            node.mercury(),
            Arc::clone(&node.machine),
            node.kernel(),
            policy,
        )
    }

    #[test]
    fn quiet_system_means_quiet_watchdog() {
        let node = Node::launch("n0", &NodeConfig::default());
        let mut dog = dog_for(&node, WatchdogPolicy::default());
        let cpu = node.machine.boot_cpu();
        assert_eq!(dog.poll(cpu), 0);
        assert!(dog.reports().is_empty());
        assert!(!dog.holding_attach());
    }

    // The full injected-fault → attach → recover → detach loop is
    // exercised by the `fault_campaign` bench binary and the
    // workspace-level regression tests: hooks are compiled out in this
    // crate's default test build, so unit tests here cover the
    // no-signal and policy paths only.
    #[test]
    fn armed_but_unfired_faults_do_not_trigger_recovery() {
        let node = Node::launch("n0", &NodeConfig::default());
        let mut dog = dog_for(&node, WatchdogPolicy::default());
        let cpu = node.machine.boot_cpu();
        faultgen::reset();
        faultgen::arm(vec![FaultSpec {
            id: 1,
            due_cycle: 0,
            target: FaultTarget::MemWord {
                frame: 1,
                word: 0,
                bit: 0,
            },
        }]);
        // Default build: hooks are compiled out, so the armed fault
        // never fires and the watchdog never acts.
        assert_eq!(dog.poll(cpu), 0);
        assert_eq!(faultgen::outstanding(), 1);
        dog.end_window(cpu);
        assert_eq!(node.mercury().mode(), ExecMode::Native);
        faultgen::reset();
    }

    #[test]
    fn degradation_is_published_to_the_bound_fleet() {
        let node = Node::launch("n0", &NodeConfig::default());
        let mut dog = dog_for(&node, WatchdogPolicy::default());
        let fleet = FleetState::new(3, 3);
        dog.bind_fleet(Arc::clone(&fleet), 1);
        assert_eq!(fleet.status(1), NodeStatus::Healthy);
        dog.mark_degraded("temperature trend rising");
        assert!(dog.degraded());
        assert_eq!(
            fleet.status(1),
            NodeStatus::Degraded("temperature trend rising".into())
        );
        assert_eq!(fleet.status(0), NodeStatus::Healthy, "only the bound node");
    }
}
