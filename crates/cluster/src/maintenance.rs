//! Online hardware maintenance by evacuation (§6.3).
//!
//! "An operator could switch the machine to be maintained to the
//! full-virtual mode dynamically.  The execution environment of the
//! machine can then be live migrated to another machine that has been
//! virtualized and is in the partial-virtual mode to accommodate
//! multiple operating systems.  After the maintenance work is
//! completed, the execution environment is migrated back and the
//! machine is returned to the native mode for full speed."

use crate::node::Node;
use mercury::{ExecMode, Mercury, SwitchError, SwitchOutcome, TrackingStrategy};
use nimbus::drivers::blkback::BlkBackend;
use nimbus::drivers::block::{FrontendBlockDriver, NativeBlockDriver};
use nimbus::drivers::net::FrontendNetDriver;
use nimbus::drivers::netback::NetBackend;
use nimbus::kernel::BootMode;
use nimbus::Kernel;
use simx86::costs;
use std::sync::Arc;
use xenon::migrate::{LiveMigration, MigrationReport};
use xenon::{Domain, HvError};

/// Errors from the evacuation orchestration.
#[derive(Debug)]
pub enum MaintenanceError {
    /// A mode switch failed.
    Switch(SwitchError),
    /// A switch was deferred; retry.
    Busy,
    /// The hypervisor-level migration failed.
    Migration(HvError),
    /// The guest kernel failed to freeze/thaw.
    Kernel(nimbus::KernelError),
}

impl std::fmt::Display for MaintenanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaintenanceError::Switch(e) => write!(f, "mode switch failed: {e}"),
            MaintenanceError::Busy => write!(f, "virtualization object busy; retry"),
            MaintenanceError::Migration(e) => write!(f, "live migration failed: {e}"),
            MaintenanceError::Kernel(e) => write!(f, "guest kernel error: {e}"),
        }
    }
}

impl std::error::Error for MaintenanceError {}

/// The evacuated OS, now running as a guest on the host node.
pub struct EvacuatedGuest {
    /// The guest's kernel object (rebuilt on the host machine).
    pub kernel: Arc<Kernel>,
    /// Its domain on the host's hypervisor.
    pub dom: Arc<Domain>,
    /// A Mercury engine adopted onto the guest (usable if it migrates
    /// home and wants to go native).
    pub mercury: Arc<Mercury>,
    /// Migration statistics.
    pub report: MigrationReport,
}

fn ensure_virtual(m: &Arc<Mercury>) -> Result<(), MaintenanceError> {
    if m.mode() == ExecMode::Virtual {
        return Ok(());
    }
    match m
        .switch_to_virtual(m.kernel().machine.boot_cpu())
        .map_err(MaintenanceError::Switch)?
    {
        SwitchOutcome::Completed { .. } | SwitchOutcome::AlreadyInMode => Ok(()),
        SwitchOutcome::Deferred { .. } => Err(MaintenanceError::Busy),
    }
}

/// Copy the source disk image to the target ("networked file system"
/// stand-in: the paper's migratable disks assume shared storage; we
/// model it as a storage pre-copy over the link, charged to `cpu`).
fn migrate_storage(source: &Arc<Node>, target: &Arc<Node>) {
    let cpu = source.machine.boot_cpu();
    let sectors = source
        .machine
        .disk
        .sectors()
        .min(target.machine.disk.sectors());
    let bytes = sectors * 512;
    cpu.tick(bytes * costs::NIC_PER_BYTE + (sectors / 8) * costs::NIC_PACKET_BASE / 64);
    let image = source.machine.disk.read_raw(0, bytes as usize);
    target.machine.disk.write_raw(0, &image);
}

/// Evacuate `source`'s operating system onto `target`:
///
/// 1. both nodes self-virtualize (`source` full-virtual, `target`
///    partial-virtual);
/// 2. storage is pre-copied (shared-storage stand-in);
/// 3. iterative pre-copy live migration with `precopy_rounds` rounds;
/// 4. stop-and-copy, thaw on the target, and reconnect device
///    frontends to backends in the target's driver domain (§5.2).
pub fn evacuate(
    source: &Arc<Node>,
    target: &Arc<Node>,
    precopy_rounds: usize,
) -> Result<EvacuatedGuest, MaintenanceError> {
    let src_m = source.mercury();
    let dst_m = target.mercury();
    ensure_virtual(&src_m)?;
    ensure_virtual(&dst_m)?;

    let cpu = source.machine.boot_cpu();
    migrate_storage(source, target);

    let mut migration = LiveMigration::new(Arc::clone(&source.hv), Arc::clone(src_m.dom0()));
    for _ in 0..precopy_rounds.max(1) {
        migration.round(cpu).map_err(MaintenanceError::Migration)?;
    }

    // Freeze the guest's logical state right before stop-and-copy.
    let state = src_m
        .kernel()
        .freeze(cpu)
        .map_err(MaintenanceError::Kernel)?;
    *src_m.dom0().guest_state.lock() = Some(state);

    let (dom, report) = migration
        .finalize(cpu, &target.hv, 0)
        .map_err(MaintenanceError::Migration)?;

    // Thaw the kernel on the target machine.
    let guest_state = dom
        .guest_state
        .lock()
        .clone()
        .expect("frozen state travels with the domain");
    let kernel = Kernel::thaw(
        Arc::clone(&target.machine),
        BootMode::Guest {
            hv: Arc::clone(&target.hv),
            dom: Arc::clone(&dom),
        },
        &guest_state,
        &report.frame_map,
    )
    .map_err(MaintenanceError::Kernel)?;

    // §5.2: reconnect device frontends to the new driver domain's
    // backends after the migration completes.
    connect_split_devices(target, &kernel, &dom)?;

    let mercury = Mercury::adopt(
        Arc::clone(&kernel),
        Arc::clone(&target.hv),
        Arc::clone(&dom),
        TrackingStrategy::RecomputeOnSwitch,
    )
    .map_err(MaintenanceError::Switch)?;

    Ok(EvacuatedGuest {
        kernel,
        dom,
        mercury,
        report,
    })
}

/// Wire frontend drivers in the migrated guest to fresh backends in
/// `host`'s driver domain.
fn connect_split_devices(
    host: &Arc<Node>,
    guest_kernel: &Arc<Kernel>,
    guest_dom: &Arc<Domain>,
) -> Result<(), MaintenanceError> {
    let hv = &host.hv;
    let cpu = host.machine.boot_cpu();
    let host_dom = host.mercury().dom0().clone();

    let ring_frames = hv.take_reserved(2).map_err(MaintenanceError::Migration)?;
    for f in &ring_frames {
        host.machine
            .mem
            .zero_frame(cpu, *f)
            .map_err(|e| MaintenanceError::Migration(e.into()))?;
    }

    // Payload frames come from the guest's own memory.
    let guest_frames = guest_dom.frames();
    let blk_buf = guest_frames[guest_frames.len() - 1];
    let net_buf = guest_frames[guest_frames.len() - 2];

    let host_bounce = host
        .machine
        .allocator
        .alloc(cpu)
        .ok_or(MaintenanceError::Migration(HvError::OutOfMemory))?;
    let lower_blk = NativeBlockDriver::new(Arc::clone(&host.machine), host_bounce);
    let blk_back = BlkBackend::new(
        Arc::clone(hv),
        Arc::clone(&host_dom),
        guest_dom.id,
        lower_blk,
        ring_frames[0],
    );
    let p = hv
        .evtchn_alloc(cpu, &host_dom)
        .map_err(MaintenanceError::Migration)?;
    let pf = hv
        .evtchn_bind(cpu, guest_dom, host_dom.id, p)
        .map_err(MaintenanceError::Migration)?;
    guest_kernel.set_block_driver(FrontendBlockDriver::new(
        Arc::clone(hv),
        Arc::clone(guest_dom),
        blk_back,
        blk_buf,
        pf,
    ));

    let lower_net = nimbus::drivers::net::NativeNetDriver::new(Arc::clone(&host.machine));
    let net_back = NetBackend::new(
        Arc::clone(hv),
        Arc::clone(&host_dom),
        guest_dom.id,
        lower_net,
        ring_frames[1],
    );
    let p = hv
        .evtchn_alloc(cpu, &host_dom)
        .map_err(MaintenanceError::Migration)?;
    let pf = hv
        .evtchn_bind(cpu, guest_dom, host_dom.id, p)
        .map_err(MaintenanceError::Migration)?;
    guest_kernel.set_net_driver(FrontendNetDriver::new(
        Arc::clone(hv),
        Arc::clone(guest_dom),
        net_back,
        net_buf,
        pf,
    ));
    Ok(())
}

/// Migrate an evacuated guest back to its (maintained) home node and
/// return the node to native mode.  The home node adopts the returned
/// OS as its own.
pub fn return_home(
    guest: EvacuatedGuest,
    host: &Arc<Node>,
    home: &Arc<Node>,
) -> Result<MigrationReport, MaintenanceError> {
    let cpu = host.machine.boot_cpu();

    // Re-freeze on the host side before the move back.
    let state = guest.kernel.freeze(cpu).map_err(MaintenanceError::Kernel)?;
    *guest.dom.guest_state.lock() = Some(state);

    let mut migration = LiveMigration::new(Arc::clone(&host.hv), Arc::clone(&guest.dom));
    migration.round(cpu).map_err(MaintenanceError::Migration)?;
    migrate_storage(host, home);
    let (dom, report) = migration
        .finalize(cpu, &home.hv, 0)
        .map_err(MaintenanceError::Migration)?;

    let guest_state = dom
        .guest_state
        .lock()
        .clone()
        .expect("frozen state travels with the domain");
    let kernel = Kernel::thaw(
        Arc::clone(&home.machine),
        BootMode::Guest {
            hv: Arc::clone(&home.hv),
            dom: Arc::clone(&dom),
        },
        &guest_state,
        &report.frame_map,
    )
    .map_err(MaintenanceError::Kernel)?;

    // Back home the OS is the driver domain again: native drivers.
    let home_cpu = home.machine.boot_cpu();
    let bounce = home
        .machine
        .allocator
        .alloc(home_cpu)
        .ok_or(MaintenanceError::Migration(HvError::OutOfMemory))?;
    kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&home.machine), bounce));
    kernel.set_net_driver(nimbus::drivers::net::NativeNetDriver::new(Arc::clone(
        &home.machine,
    )));

    let mercury = Mercury::adopt(
        Arc::clone(&kernel),
        Arc::clone(&home.hv),
        dom,
        TrackingStrategy::RecomputeOnSwitch,
    )
    .map_err(MaintenanceError::Switch)?;

    // "the machine is returned to the native mode for full speed."
    match mercury
        .switch_to_native(home_cpu)
        .map_err(MaintenanceError::Switch)?
    {
        SwitchOutcome::Completed { .. } | SwitchOutcome::AlreadyInMode => {}
        SwitchOutcome::Deferred { .. } => return Err(MaintenanceError::Busy),
    }
    home.adopt_os(kernel, mercury);

    // The host may return to native speed too, now that its guest left.
    // Reflection must route to the host's own OS again first (the test
    // bed may have focused the CPU on the departed guest).
    let host_m = host.mercury();
    if host.hv.domains().len() == 1 {
        for c in &host.machine.cpus {
            host.hv.set_current(c.id, Some(host_m.dom0().id));
        }
        let _ = host_m.switch_to_native(cpu);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Cluster, NodeConfig};
    use nimbus::kernel::{MmapBacking, ReadOutcome};
    use nimbus::mm::Prot;
    use nimbus::Session;

    #[test]
    fn full_maintenance_cycle_preserves_workload_state() {
        let cluster = Cluster::launch(2, &NodeConfig::default());
        let home = cluster.node(0);
        let host = cluster.node(1);

        // Workload on the home node before maintenance.
        let sess = home.session();
        let va = sess.mmap(2, Prot::RW, MmapBacking::Anon).unwrap();
        sess.poke(va, 0xabcd).unwrap();
        let fd = sess.open("state.txt", true).unwrap();
        sess.write(fd, b"pre-maintenance").unwrap();
        sess.sync().unwrap();

        // Evacuate.
        let guest = evacuate(home, host, 2).unwrap();
        assert!(guest.report.total_frames > 0);
        assert_eq!(guest.kernel.exec_mode(), ExecMode::Virtual);
        assert_eq!(host.hv.domains().len(), 2, "host hosts its OS + the guest");

        // The evacuated OS keeps running on the host.
        let gsess = Session::new(Arc::clone(&guest.kernel), 0);
        host.hv.set_current(0, Some(guest.dom.id));
        assert_eq!(gsess.peek(va).unwrap(), 0xabcd);
        gsess.poke(va, 0xbeef).unwrap();
        // Its filesystem works through the split block driver.
        let fd2 = gsess.open("state.txt", false).unwrap();
        match gsess.read(fd2, 15).unwrap() {
            ReadOutcome::Data(d) => assert_eq!(d, b"pre-maintenance"),
            other => panic!("{other:?}"),
        }

        // ... hardware maintenance happens on `home` here ...

        // Migrate back; home returns to native mode.
        let report = return_home(guest, host, home).unwrap();
        assert!(report.downtime_cycles > 0);
        assert_eq!(home.mercury().mode(), ExecMode::Native);
        assert_eq!(home.machine.boot_cpu().pl(), simx86::PrivLevel::Pl0);

        // State modified while evacuated came back.
        let sess = home.session();
        assert_eq!(sess.peek(va).unwrap(), 0xbeef);
        assert_eq!(sess.stat("state.txt").unwrap().size, 15);

        // The host went back to native speed as well.
        assert_eq!(host.mercury().mode(), ExecMode::Native);
        assert_eq!(host.hv.domains().len(), 1);
    }
}

#[cfg(test)]
mod rolling_tests {
    use super::*;
    use crate::node::{Cluster, NodeConfig};
    use nimbus::kernel::MmapBacking;
    use nimbus::mm::Prot;
    use simx86::VirtAddr;

    /// Rolling maintenance across a three-node cluster: each node is
    /// evacuated to its neighbour, "maintained", and repopulated — the
    /// fleet-wide version of §6.3 that motivates the paper's 99.999 %
    /// availability discussion.
    #[test]
    fn rolling_maintenance_over_three_nodes() {
        let cluster = Cluster::launch(3, &NodeConfig::default());

        // Independent state on every node.
        let mut vas = Vec::new();
        for (i, node) in cluster.nodes.iter().enumerate() {
            let sess = node.session();
            let va = sess.mmap(1, Prot::RW, MmapBacking::Anon).unwrap();
            sess.poke(va, 1000 + i as u64).unwrap();
            vas.push(va);
        }

        #[allow(clippy::needless_range_loop)] // i also selects the host node
        for i in 0..3 {
            let home = cluster.node(i);
            let host = cluster.node((i + 1) % 3);
            let guest = evacuate(home, host, 1).unwrap();

            // The evacuated OS keeps mutating while its home is down.
            host.hv.set_current(0, Some(guest.dom.id));
            let gsess = nimbus::Session::new(std::sync::Arc::clone(&guest.kernel), 0);
            gsess.poke(VirtAddr(vas[i].0), 2000 + i as u64).unwrap();

            return_home(guest, host, home).unwrap();
            assert_eq!(home.mercury().mode(), mercury::ExecMode::Native);
            let sess = home.session();
            assert_eq!(sess.peek(vas[i]).unwrap(), 2000 + i as u64);
        }

        // Every node native, every hypervisor hosting nothing foreign.
        for node in &cluster.nodes {
            assert_eq!(node.mercury().mode(), mercury::ExecMode::Native);
            assert!(node.hv.domains().len() <= 1);
        }
    }
}
