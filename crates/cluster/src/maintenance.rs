//! Online hardware maintenance by evacuation (§6.3).
//!
//! "An operator could switch the machine to be maintained to the
//! full-virtual mode dynamically.  The execution environment of the
//! machine can then be live migrated to another machine that has been
//! virtualized and is in the partial-virtual mode to accommodate
//! multiple operating systems.  After the maintenance work is
//! completed, the execution environment is migrated back and the
//! machine is returned to the native mode for full speed."

use crate::fleet::MigrationPhase;
use crate::node::Node;
use mercury::{ExecMode, Mercury, SwitchError, SwitchOutcome, TrackingStrategy};
use nimbus::drivers::blkback::BlkBackend;
use nimbus::drivers::block::{FrontendBlockDriver, NativeBlockDriver};
use nimbus::drivers::net::FrontendNetDriver;
use nimbus::drivers::netback::NetBackend;
use nimbus::kernel::BootMode;
use nimbus::Kernel;
use simx86::costs;
use std::sync::Arc;
use xenon::migrate::{LiveMigration, MigrationReport};
use xenon::{Domain, HvError};

/// Errors from the evacuation orchestration.
#[derive(Debug)]
pub enum MaintenanceError {
    /// A mode switch failed.
    Switch(SwitchError),
    /// A switch was deferred; retry.
    Busy,
    /// The hypervisor-level migration failed.
    Migration(HvError),
    /// The guest kernel failed to freeze/thaw.
    Kernel(nimbus::KernelError),
}

impl std::fmt::Display for MaintenanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaintenanceError::Switch(e) => write!(f, "mode switch failed: {e}"),
            MaintenanceError::Busy => write!(f, "virtualization object busy; retry"),
            MaintenanceError::Migration(e) => write!(f, "live migration failed: {e}"),
            MaintenanceError::Kernel(e) => write!(f, "guest kernel error: {e}"),
        }
    }
}

impl std::error::Error for MaintenanceError {}

/// The evacuated OS, now running as a guest on the host node.
pub struct EvacuatedGuest {
    /// The guest's kernel object (rebuilt on the host machine).
    pub kernel: Arc<Kernel>,
    /// Its domain on the host's hypervisor.
    pub dom: Arc<Domain>,
    /// A Mercury engine adopted onto the guest (usable if it migrates
    /// home and wants to go native).
    pub mercury: Arc<Mercury>,
    /// Migration statistics.
    pub report: MigrationReport,
    /// Backend handles and host resources for the guest's split
    /// devices, kept so the departure path can quiesce the backends
    /// and return the resources to the host.
    pub devices: SplitDevices,
}

/// The host-side half of a migrated guest's split device setup:
/// backend objects (shared with the guest's frontends) plus the host
/// resources they sit on.  [`return_home`] uses the handles to drain
/// early-acked block writes before the storage copy and reclaims the
/// frames once the guest has left.
pub struct SplitDevices {
    /// The block backend in the host's driver domain.
    pub blk: Arc<BlkBackend>,
    /// The network backend in the host's driver domain.
    pub net: Arc<NetBackend>,
    /// Ring frames taken from the host hypervisor's reserved pool.
    ring_frames: Vec<simx86::mem::FrameNum>,
    /// Bounce frame the backend's lower native driver DMAs through.
    host_bounce: simx86::mem::FrameNum,
}

/// The frozen kernel image stored on a migrated domain.  A domain that
/// arrives without one is a malformed image — an error the watchdog can
/// turn into a degraded node and a re-route, not a panic that takes the
/// whole fleet process down.
fn thawed_state(dom: &Arc<Domain>) -> Result<serde_json::Value, MaintenanceError> {
    dom.guest_state.lock().clone().ok_or_else(|| {
        MaintenanceError::Migration(HvError::BadImage(
            "frozen kernel state missing from migrated domain".into(),
        ))
    })
}

fn ensure_virtual(m: &Arc<Mercury>) -> Result<(), MaintenanceError> {
    if m.mode() == ExecMode::Virtual {
        return Ok(());
    }
    match m
        .switch_to_virtual(m.kernel().machine.boot_cpu())
        .map_err(MaintenanceError::Switch)?
    {
        SwitchOutcome::Completed { .. } | SwitchOutcome::AlreadyInMode => Ok(()),
        SwitchOutcome::Deferred { .. } => Err(MaintenanceError::Busy),
    }
}

/// Copy the source disk image to the target ("networked file system"
/// stand-in: the paper's migratable disks assume shared storage; we
/// model it as a storage pre-copy over the link, charged to `cpu`).
fn migrate_storage(source: &Arc<Node>, target: &Arc<Node>) {
    let cpu = source.machine.boot_cpu();
    let sectors = source
        .machine
        .disk
        .sectors()
        .min(target.machine.disk.sectors());
    let bytes = sectors * 512;
    cpu.tick(bytes * costs::NIC_PER_BYTE + (sectors / 8) * costs::NIC_PACKET_BASE / 64);
    let image = source.machine.disk.read_raw(0, bytes as usize);
    target.machine.disk.write_raw(0, &image);
}

/// How many pre-copy rounds an evacuation runs.
pub(crate) enum RoundPlan {
    /// Exactly this many rounds (at least one).
    Fixed(usize),
    /// Up to `max` rounds, stopping early once a round ships at most
    /// `threshold` frames (the migration-policy convergence heuristic).
    Converge {
        /// Round cap before forcing stop-and-copy.
        max: usize,
        /// Frames-per-round at or below which pre-copy has converged.
        threshold: usize,
    },
}

/// Evacuate `source`'s operating system onto `target`:
///
/// 1. both nodes self-virtualize (`source` full-virtual, `target`
///    partial-virtual);
/// 2. iterative pre-copy live migration with `precopy_rounds` rounds;
/// 3. freeze, then copy storage (shared-storage stand-in) — the freeze
///    syncs the buffer cache through the still-native driver first, so
///    the shipped platter contains every acknowledged write;
/// 4. stop-and-copy, thaw on the target, and reconnect device
///    frontends to backends in the target's driver domain (§5.2).
pub fn evacuate(
    source: &Arc<Node>,
    target: &Arc<Node>,
    precopy_rounds: usize,
) -> Result<EvacuatedGuest, MaintenanceError> {
    evacuate_inner(source, target, RoundPlan::Fixed(precopy_rounds), &mut |_| {})
}

/// The full evacuation machinery: `plan` decides how many pre-copy
/// rounds run, and `observer` is told at each migration-phase boundary
/// (the migration policy wires it into the shared [`FleetState`]
/// (crate::fleet::FleetState) so the balancer sees the node's phase).
pub(crate) fn evacuate_inner(
    source: &Arc<Node>,
    target: &Arc<Node>,
    plan: RoundPlan,
    observer: &mut dyn FnMut(MigrationPhase),
) -> Result<EvacuatedGuest, MaintenanceError> {
    let src_m = source.mercury();
    let dst_m = target.mercury();
    ensure_virtual(&src_m)?;
    ensure_virtual(&dst_m)?;

    let cpu = source.machine.boot_cpu();

    let mut migration = LiveMigration::new(source.hv(), Arc::clone(src_m.dom0()));
    observer(MigrationPhase::PreCopy);
    match plan {
        RoundPlan::Fixed(n) => {
            for _ in 0..n.max(1) {
                migration.round(cpu).map_err(MaintenanceError::Migration)?;
            }
        }
        RoundPlan::Converge { max, threshold } => {
            for i in 0..max.max(1) {
                let stats = migration.round(cpu).map_err(MaintenanceError::Migration)?;
                // Round 0 ships everything; convergence is judged on
                // the dirty-set rounds after it.
                if i > 0 && stats.frames_sent <= threshold {
                    break;
                }
            }
        }
    }
    observer(MigrationPhase::StopAndCopy);

    // Freeze the guest's logical state right before stop-and-copy.
    let state = src_m
        .kernel()
        .freeze(cpu)
        .map_err(MaintenanceError::Kernel)?;
    *src_m.dom0().guest_state.lock() = Some(state);

    // Storage ships only after the freeze: freeze→sync wrote back every
    // dirty buffer-cache block, so copying earlier would ship a platter
    // missing acknowledged (but unsynced) file writes — pinned by
    // `unsynced_writes_survive_evacuation`.
    migrate_storage(source, target);

    let (dom, report) = migration
        .finalize(cpu, &target.hv(), 0)
        .map_err(MaintenanceError::Migration)?;

    // Thaw the kernel on the target machine.
    let guest_state = thawed_state(&dom)?;
    let kernel = Kernel::thaw(
        Arc::clone(&target.machine),
        BootMode::Guest {
            hv: target.hv(),
            dom: Arc::clone(&dom),
        },
        &guest_state,
        &report.frame_map,
    )
    .map_err(MaintenanceError::Kernel)?;

    // §5.2: reconnect device frontends to the new driver domain's
    // backends after the migration completes.
    let devices = connect_split_devices(target, &kernel, &dom)?;

    let mercury = Mercury::adopt(
        Arc::clone(&kernel),
        target.hv(),
        Arc::clone(&dom),
        TrackingStrategy::RecomputeOnSwitch,
    )
    .map_err(MaintenanceError::Switch)?;

    Ok(EvacuatedGuest {
        kernel,
        dom,
        mercury,
        report,
        devices,
    })
}

/// Wire frontend drivers in the migrated guest to fresh backends in
/// `host`'s driver domain.  Returns the backend handles and the host
/// resources they occupy so the departure path can quiesce and reclaim.
fn connect_split_devices(
    host: &Arc<Node>,
    guest_kernel: &Arc<Kernel>,
    guest_dom: &Arc<Domain>,
) -> Result<SplitDevices, MaintenanceError> {
    let hv = host.hv();
    let cpu = host.machine.boot_cpu();
    let host_dom = host.mercury().dom0().clone();

    let ring_frames = hv.take_reserved(2).map_err(MaintenanceError::Migration)?;
    for f in &ring_frames {
        host.machine
            .mem
            .zero_frame(cpu, *f)
            .map_err(|e| MaintenanceError::Migration(e.into()))?;
    }

    // Payload frames come from the guest's own memory.
    let guest_frames = guest_dom.frames();
    let blk_buf = guest_frames[guest_frames.len() - 1];
    let net_buf = guest_frames[guest_frames.len() - 2];

    let host_bounce = host
        .machine
        .allocator
        .alloc(cpu)
        .ok_or(MaintenanceError::Migration(HvError::OutOfMemory))?;
    let lower_blk = NativeBlockDriver::new(Arc::clone(&host.machine), host_bounce);
    let blk_back = BlkBackend::new(
        Arc::clone(hv),
        Arc::clone(&host_dom),
        guest_dom.id,
        lower_blk,
        ring_frames[0],
    );
    let p = hv
        .evtchn_alloc(cpu, &host_dom)
        .map_err(MaintenanceError::Migration)?;
    let pf = hv
        .evtchn_bind(cpu, guest_dom, host_dom.id, p)
        .map_err(MaintenanceError::Migration)?;
    guest_kernel.set_block_driver(FrontendBlockDriver::new(
        Arc::clone(hv),
        Arc::clone(guest_dom),
        Arc::clone(&blk_back),
        blk_buf,
        pf,
    ));

    let lower_net = nimbus::drivers::net::NativeNetDriver::new(Arc::clone(&host.machine));
    let net_back = NetBackend::new(
        Arc::clone(hv),
        Arc::clone(&host_dom),
        guest_dom.id,
        lower_net,
        ring_frames[1],
    );
    let p = hv
        .evtchn_alloc(cpu, &host_dom)
        .map_err(MaintenanceError::Migration)?;
    let pf = hv
        .evtchn_bind(cpu, guest_dom, host_dom.id, p)
        .map_err(MaintenanceError::Migration)?;
    guest_kernel.set_net_driver(FrontendNetDriver::new(
        Arc::clone(hv),
        Arc::clone(guest_dom),
        Arc::clone(&net_back),
        net_buf,
        pf,
    ));
    Ok(SplitDevices {
        blk: blk_back,
        net: net_back,
        ring_frames,
        host_bounce,
    })
}

/// Migrate an evacuated guest back to its (maintained) home node and
/// return the node to native mode.  The home node adopts the returned
/// OS as its own.
pub fn return_home(
    guest: EvacuatedGuest,
    host: &Arc<Node>,
    home: &Arc<Node>,
) -> Result<MigrationReport, MaintenanceError> {
    let cpu = host.machine.boot_cpu();

    // Re-freeze on the host side before the move back.
    let state = guest.kernel.freeze(cpu).map_err(MaintenanceError::Kernel)?;
    *guest.dom.guest_state.lock() = Some(state);

    // Quiesce the split block device before the storage copy: a write
    // early-acked into the backend queue but not yet flushed would miss
    // the shipped platter and be silently lost.  The freeze's sync
    // drains the queue on the normal path; this makes the invariant
    // hold even for writes issued outside the guest's own sync
    // discipline (pinned by `backend_queue_drained_before_storage_copy`).
    guest
        .devices
        .blk
        .flush(cpu)
        .map_err(MaintenanceError::Kernel)?;
    debug_assert_eq!(guest.devices.blk.queued_writes(), 0);

    let mut migration = LiveMigration::new(host.hv(), Arc::clone(&guest.dom));
    migration.round(cpu).map_err(MaintenanceError::Migration)?;
    migrate_storage(host, home);
    let (dom, report) = migration
        .finalize(cpu, &home.hv(), 0)
        .map_err(MaintenanceError::Migration)?;

    let guest_state = thawed_state(&dom)?;
    let kernel = Kernel::thaw(
        Arc::clone(&home.machine),
        BootMode::Guest {
            hv: home.hv(),
            dom: Arc::clone(&dom),
        },
        &guest_state,
        &report.frame_map,
    )
    .map_err(MaintenanceError::Kernel)?;

    // Back home the OS is the driver domain again: native drivers.
    let home_cpu = home.machine.boot_cpu();
    let bounce = home
        .machine
        .allocator
        .alloc(home_cpu)
        .ok_or(MaintenanceError::Migration(HvError::OutOfMemory))?;
    kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&home.machine), bounce));
    kernel.set_net_driver(nimbus::drivers::net::NativeNetDriver::new(Arc::clone(
        &home.machine,
    )));

    let mercury = Mercury::adopt(
        Arc::clone(&kernel),
        home.hv(),
        dom,
        TrackingStrategy::RecomputeOnSwitch,
    )
    .map_err(MaintenanceError::Switch)?;

    // "the machine is returned to the native mode for full speed."
    match mercury
        .switch_to_native(home_cpu)
        .map_err(MaintenanceError::Switch)?
    {
        SwitchOutcome::Completed { .. } | SwitchOutcome::AlreadyInMode => {}
        SwitchOutcome::Deferred { .. } => return Err(MaintenanceError::Busy),
    }
    home.adopt_os(kernel, mercury);

    // The host may return to native speed too, now that its guest left.
    // Reflection must route to the host's own OS again first (the test
    // bed may have focused the CPU on the departed guest).
    let host_m = host.mercury();
    if host.hv().domains().len() == 1 {
        for c in &host.machine.cpus {
            host.hv().set_current(c.id, Some(host_m.dom0().id));
        }
        let _ = host_m.switch_to_native(cpu);
    }

    // The guest is gone; return its split-device resources to the host.
    // Without this every evacuate/return cycle leaked two reserved ring
    // frames and a bounce frame, exhausting the pools over a rolling
    // maintenance wave (pinned by `repeated_cycles_do_not_leak_host_frames`).
    let SplitDevices {
        ring_frames,
        host_bounce,
        ..
    } = guest.devices;
    host.hv().give_reserved(ring_frames);
    host.machine.allocator.free(host_bounce);

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Cluster, NodeConfig};
    use nimbus::kernel::{MmapBacking, ReadOutcome};
    use nimbus::mm::Prot;
    use nimbus::Session;

    #[test]
    fn full_maintenance_cycle_preserves_workload_state() {
        let cluster = Cluster::launch(2, &NodeConfig::default());
        let home = cluster.node(0);
        let host = cluster.node(1);

        // Workload on the home node before maintenance.
        let sess = home.session();
        let va = sess.mmap(2, Prot::RW, MmapBacking::Anon).unwrap();
        sess.poke(va, 0xabcd).unwrap();
        let fd = sess.open("state.txt", true).unwrap();
        sess.write(fd, b"pre-maintenance").unwrap();
        sess.sync().unwrap();

        // Evacuate.
        let guest = evacuate(home, host, 2).unwrap();
        assert!(guest.report.total_frames > 0);
        assert_eq!(guest.kernel.exec_mode(), ExecMode::Virtual);
        assert_eq!(host.hv().domains().len(), 2, "host hosts its OS + the guest");

        // The evacuated OS keeps running on the host.
        let gsess = Session::new(Arc::clone(&guest.kernel), 0);
        host.hv().set_current(0, Some(guest.dom.id));
        assert_eq!(gsess.peek(va).unwrap(), 0xabcd);
        gsess.poke(va, 0xbeef).unwrap();
        // Its filesystem works through the split block driver.
        let fd2 = gsess.open("state.txt", false).unwrap();
        match gsess.read(fd2, 15).unwrap() {
            ReadOutcome::Data(d) => assert_eq!(d, b"pre-maintenance"),
            other => panic!("{other:?}"),
        }

        // ... hardware maintenance happens on `home` here ...

        // Migrate back; home returns to native mode.
        let report = return_home(guest, host, home).unwrap();
        assert!(report.downtime_cycles > 0);
        assert_eq!(home.mercury().mode(), ExecMode::Native);
        assert_eq!(home.machine.boot_cpu().pl(), simx86::PrivLevel::Pl0);

        // State modified while evacuated came back.
        let sess = home.session();
        assert_eq!(sess.peek(va).unwrap(), 0xbeef);
        assert_eq!(sess.stat("state.txt").unwrap().size, 15);

        // The host went back to native speed as well.
        assert_eq!(host.mercury().mode(), ExecMode::Native);
        assert_eq!(host.hv().domains().len(), 1);
    }

    /// The bug the fleet bench shook out: `evacuate` used to copy the
    /// disk *before* the freeze's sync wrote back dirty buffer-cache
    /// blocks, so acknowledged-but-unsynced file writes landed on the
    /// source platter after the copy and the migrated guest read stale
    /// data once its (clean) cached copies were dropped on thaw.
    #[test]
    fn unsynced_writes_survive_evacuation() {
        let cluster = Cluster::launch(2, &NodeConfig::default());
        let home = cluster.node(0);
        let host = cluster.node(1);

        let sess = home.session();
        let fd = sess.open("dirty.txt", true).unwrap();
        sess.write(fd, b"acknowledged, never synced").unwrap();
        // No sess.sync(): the write lives only in the buffer cache.

        let guest = evacuate(home, host, 1).unwrap();

        let gsess = Session::new(Arc::clone(&guest.kernel), 0);
        host.hv().set_current(0, Some(guest.dom.id));
        let fd2 = gsess.open("dirty.txt", false).unwrap();
        match gsess.read(fd2, 26).unwrap() {
            ReadOutcome::Data(d) => assert_eq!(d, b"acknowledged, never synced"),
            other => panic!("unsynced write lost in migration: {other:?}"),
        }
    }

    /// Writes early-acked by the split block backend must be on the
    /// host platter before `return_home` ships it.
    #[test]
    fn backend_queue_drained_before_storage_copy() {
        let cluster = Cluster::launch(2, &NodeConfig::default());
        let home = cluster.node(0);
        let host = cluster.node(1);

        let sess = home.session();
        let fd = sess.open("ring.txt", true).unwrap();
        sess.write(fd, b"homeward").unwrap();
        sess.sync().unwrap();

        let guest = evacuate(home, host, 1).unwrap();
        let gsess = Session::new(Arc::clone(&guest.kernel), 0);
        host.hv().set_current(0, Some(guest.dom.id));

        // Mutate the file through the split device and *sync the vfs*
        // so the blocks reach the backend, where they sit early-acked.
        let fd2 = gsess.open("ring.txt", false).unwrap();
        gsess.write(fd2, b"mutated!").unwrap();
        gsess.sync().unwrap();

        return_home(guest, host, home).unwrap();

        let sess = home.session();
        let fd3 = sess.open("ring.txt", false).unwrap();
        match sess.read(fd3, 8).unwrap() {
            ReadOutcome::Data(d) => assert_eq!(d, b"mutated!"),
            other => panic!("{other:?}"),
        }
    }

    /// Every evacuate/return cycle used to leak two reserved ring
    /// frames and a bounce frame on the host — fatal over a rolling
    /// maintenance wave.
    #[test]
    fn repeated_cycles_do_not_leak_host_frames() {
        let cluster = Cluster::launch(2, &NodeConfig::default());
        let home = cluster.node(0);
        let host = cluster.node(1);

        // One warm-up cycle so lazy first-switch allocations don't
        // pollute the baseline; the leak was per-cycle.
        let guest = evacuate(home, host, 1).unwrap();
        host.hv().set_current(0, Some(guest.dom.id));
        return_home(guest, host, home).unwrap();

        let reserved_before = host.hv().reserved_frames();
        let avail_before = host.machine.allocator.available();

        for _ in 0..3 {
            let guest = evacuate(home, host, 1).unwrap();
            host.hv().set_current(0, Some(guest.dom.id));
            return_home(guest, host, home).unwrap();
        }

        assert_eq!(
            host.hv().reserved_frames(),
            reserved_before,
            "ring frames must return to the reserved pool"
        );
        assert_eq!(
            host.machine.allocator.available(),
            avail_before,
            "bounce + guest frames must return to the allocator"
        );
    }

    /// A malformed image (no frozen state on the domain) must surface
    /// as an error the watchdog can act on, not a panic.
    #[test]
    fn missing_frozen_state_is_an_error_not_a_panic() {
        let cluster = Cluster::launch(2, &NodeConfig::default());
        let home = cluster.node(0);
        let host = cluster.node(1);

        let guest = evacuate(home, host, 1).unwrap();
        host.hv().set_current(0, Some(guest.dom.id));

        // Corrupt the image in the way a buggy migration would: the
        // domain arrives without its frozen kernel state.  return_home
        // re-freezes, so clearing *after* the freeze requires failing
        // at the thaw site; instead exercise the helper directly plus
        // the full path with a stripped domain.
        *guest.dom.guest_state.lock() = None;
        let err = super::thawed_state(&guest.dom).unwrap_err();
        assert!(
            matches!(err, MaintenanceError::Migration(HvError::BadImage(_))),
            "{err}"
        );
    }
}

#[cfg(test)]
mod rolling_tests {
    use super::*;
    use crate::node::{Cluster, NodeConfig};
    use nimbus::kernel::MmapBacking;
    use nimbus::mm::Prot;
    use simx86::VirtAddr;

    /// Rolling maintenance across a three-node cluster: each node is
    /// evacuated to its neighbour, "maintained", and repopulated — the
    /// fleet-wide version of §6.3 that motivates the paper's 99.999 %
    /// availability discussion.
    #[test]
    fn rolling_maintenance_over_three_nodes() {
        let cluster = Cluster::launch(3, &NodeConfig::default());

        // Independent state on every node.
        let mut vas = Vec::new();
        for (i, node) in cluster.nodes.iter().enumerate() {
            let sess = node.session();
            let va = sess.mmap(1, Prot::RW, MmapBacking::Anon).unwrap();
            sess.poke(va, 1000 + i as u64).unwrap();
            vas.push(va);
        }

        #[allow(clippy::needless_range_loop)] // i also selects the host node
        for i in 0..3 {
            let home = cluster.node(i);
            let host = cluster.node((i + 1) % 3);
            let guest = evacuate(home, host, 1).unwrap();

            // The evacuated OS keeps mutating while its home is down.
            host.hv().set_current(0, Some(guest.dom.id));
            let gsess = nimbus::Session::new(std::sync::Arc::clone(&guest.kernel), 0);
            gsess.poke(VirtAddr(vas[i].0), 2000 + i as u64).unwrap();

            return_home(guest, host, home).unwrap();
            assert_eq!(home.mercury().mode(), mercury::ExecMode::Native);
            let sess = home.session();
            assert_eq!(sess.peek(vas[i]).unwrap(), 2000 + i as u64);
        }

        // Every node native, every hypervisor hosting nothing foreign.
        for node in &cluster.nodes {
            assert_eq!(node.mercury().mode(), mercury::ExecMode::Native);
            assert!(node.hv().domains().len() <= 1);
        }
    }
}
