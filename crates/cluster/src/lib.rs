//! # mercury-cluster — multi-node simulation for Mercury's cluster
//! scenarios
//!
//! The paper's remaining usage scenarios need more than one machine:
//!
//! * **§6.3 online hardware maintenance** — switch the machine under
//!   maintenance to full-virtual mode, live-migrate its execution
//!   environment to a peer that self-virtualized into partial-virtual
//!   mode, maintain, migrate back, return to native speed.
//! * **§6.5 HPC cluster availability** — hardware health monitors
//!   predict failures; on a prediction the node self-virtualizes and
//!   evacuates itself to a healthy peer before dying.
//!
//! This crate provides [`Node`] (a full machine + warm hypervisor +
//! Mercury-enabled kernel), [`Cluster`] (nodes wired together with
//! simulated network links), the [`health`] monitors, the reactive
//! [`watchdog`] driving on-demand attach for fault isolation and
//! recovery (§6.2's device-driver-isolation use case, DESIGN.md §12),
//! and the [`maintenance`]/[`failover`] orchestrations.
//!
//! Fleet-scale operation (hundreds of nodes behind a balancer) builds
//! on the shared [`fleet`] state view and the [`migration_policy`]
//! target selection/convergence rules; see DESIGN.md §15.

#![deny(missing_docs)]

pub mod failover;
pub mod fleet;
pub mod health;
pub mod maintenance;
pub mod migration_policy;
pub mod node;
pub mod watchdog;

pub use failover::{auto_failover, FailoverReport};
pub use fleet::{FleetState, MigrationPhase, NodeStatus};
pub use health::{HealthMonitor, HealthStatus, SensorReading};
pub use maintenance::{evacuate, return_home, EvacuatedGuest, MaintenanceError, SplitDevices};
pub use migration_policy::MigrationPolicy;
pub use node::{Cluster, Node, NodeConfig};
pub use watchdog::{FaultReport, RecoveryAction, Watchdog, WatchdogPolicy};
