//! Hardware health monitoring and failure prediction (§6.5).
//!
//! "For high performance computing, there are usually some hardware
//! monitors to monitor the temperature, fan speed, voltage, and power
//! supplies in the system.  These can be facilitated for hardware
//! failure prediction."

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One sample from the platform sensors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorReading {
    /// CPU/board temperature in °C.
    pub temp_c: f64,
    /// Fan speed in RPM.
    pub fan_rpm: f64,
    /// Supply voltage in volts (nominal 12.0).
    pub voltage: f64,
    /// Corrected DRAM errors since the last sample.
    pub dram_ce: u32,
}

impl Default for SensorReading {
    fn default() -> Self {
        SensorReading {
            temp_c: 45.0,
            fan_rpm: 4000.0,
            voltage: 12.0,
            dram_ce: 0,
        }
    }
}

/// Assessment of the node's hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthStatus {
    /// Everything nominal.
    Healthy,
    /// Out of nominal band but not yet predictive of failure.
    Degraded(String),
    /// Failure predicted: evacuate now (§6.5's trigger).
    FailurePredicted(String),
}

/// Prediction thresholds (the policy of a Leangsuksun-style
/// "failure predictive and policy-based high availability strategy").
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// Degraded above this temperature.
    pub temp_warn: f64,
    /// Failure predicted above this temperature.
    pub temp_crit: f64,
    /// Degraded below this fan speed.
    pub fan_warn: f64,
    /// Failure predicted below this fan speed.
    pub fan_crit: f64,
    /// Allowed relative voltage deviation before warning.
    pub volt_warn_frac: f64,
    /// Failure predicted beyond this relative deviation.
    pub volt_crit_frac: f64,
    /// Corrected-error rate that predicts imminent uncorrectable ones.
    pub dram_ce_crit: u32,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            temp_warn: 70.0,
            temp_crit: 85.0,
            fan_warn: 2000.0,
            fan_crit: 800.0,
            volt_warn_frac: 0.05,
            volt_crit_frac: 0.10,
            dram_ce_crit: 16,
        }
    }
}

/// The monitor: keeps the latest reading and a short trend window.
pub struct HealthMonitor {
    thresholds: Thresholds,
    history: Mutex<Vec<SensorReading>>,
}

/// Samples kept for trend analysis.
const WINDOW: usize = 16;

impl HealthMonitor {
    /// A monitor with default thresholds, primed with one nominal
    /// reading.
    pub fn new() -> HealthMonitor {
        HealthMonitor {
            thresholds: Thresholds::default(),
            history: Mutex::new(vec![SensorReading::default()]),
        }
    }

    /// A monitor with custom thresholds.
    pub fn with_thresholds(thresholds: Thresholds) -> HealthMonitor {
        HealthMonitor {
            thresholds,
            history: Mutex::new(vec![SensorReading::default()]),
        }
    }

    /// Feed a sensor sample.
    pub fn inject(&self, reading: SensorReading) {
        let mut h = self.history.lock();
        h.push(reading);
        let len = h.len();
        if len > WINDOW {
            h.drain(..len - WINDOW);
        }
    }

    /// Latest sample.
    pub fn latest(&self) -> SensorReading {
        *self.history.lock().last().expect("primed with one reading")
    }

    /// Bridge from the fault-injection engine: fold a detected fault
    /// into the sensor stream so the §6.5 failure predictor sees it.
    /// Memory bit-flips are what ECC scrubbing reports as corrected
    /// errors, so each one bumps `dram_ce` on a fresh sample; a
    /// sustained bit-flip campaign therefore trends the monitor through
    /// [`HealthStatus::Degraded`] into
    /// [`HealthStatus::FailurePredicted`], exactly the evacuation
    /// trigger the paper describes.  Other classes are handled by the
    /// [watchdog](crate::watchdog) directly and leave the sensors
    /// untouched.
    pub fn observe_fault(&self, class: faultgen::FaultClass) {
        if class == faultgen::FaultClass::MemBitFlip {
            let mut reading = self.latest();
            reading.dram_ce += 1;
            self.inject(reading);
        }
    }

    /// Assess the node: thresholds on the latest sample plus a simple
    /// temperature-trend predictor (three consecutive rising samples
    /// already past the warning line predict failure).
    pub fn assess(&self) -> HealthStatus {
        let t = &self.thresholds;
        let h = self.history.lock();
        let r = *h.last().expect("primed");
        let volt_dev = (r.voltage - 12.0).abs() / 12.0;

        if r.temp_c >= t.temp_crit {
            return HealthStatus::FailurePredicted(format!("temperature {:.0}°C", r.temp_c));
        }
        if r.fan_rpm <= t.fan_crit {
            return HealthStatus::FailurePredicted(format!("fan at {:.0} RPM", r.fan_rpm));
        }
        if volt_dev >= t.volt_crit_frac {
            return HealthStatus::FailurePredicted(format!("voltage {:.2} V", r.voltage));
        }
        if r.dram_ce >= t.dram_ce_crit {
            return HealthStatus::FailurePredicted(format!("{} corrected DRAM errors", r.dram_ce));
        }
        // Trend: rising temperature already past the warning line.
        if h.len() >= 3 {
            let tail = &h[h.len() - 3..];
            if tail.windows(2).all(|w| w[1].temp_c > w[0].temp_c) && r.temp_c >= t.temp_warn {
                return HealthStatus::FailurePredicted(format!(
                    "temperature trending up through {:.0}°C",
                    r.temp_c
                ));
            }
        }
        if r.temp_c >= t.temp_warn {
            return HealthStatus::Degraded(format!("temperature {:.0}°C", r.temp_c));
        }
        if r.fan_rpm <= t.fan_warn {
            return HealthStatus::Degraded(format!("fan at {:.0} RPM", r.fan_rpm));
        }
        if volt_dev >= t.volt_warn_frac {
            return HealthStatus::Degraded(format!("voltage {:.2} V", r.voltage));
        }
        HealthStatus::Healthy
    }
}

impl Default for HealthMonitor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_healthy() {
        let m = HealthMonitor::new();
        assert_eq!(m.assess(), HealthStatus::Healthy);
    }

    #[test]
    fn threshold_grades() {
        let m = HealthMonitor::new();
        m.inject(SensorReading {
            temp_c: 72.0,
            ..Default::default()
        });
        assert!(matches!(m.assess(), HealthStatus::Degraded(_)));
        m.inject(SensorReading {
            temp_c: 90.0,
            ..Default::default()
        });
        assert!(matches!(m.assess(), HealthStatus::FailurePredicted(_)));
    }

    #[test]
    fn fan_voltage_and_dram_predictions() {
        let m = HealthMonitor::new();
        m.inject(SensorReading {
            fan_rpm: 500.0,
            ..Default::default()
        });
        assert!(matches!(m.assess(), HealthStatus::FailurePredicted(_)));
        m.inject(SensorReading {
            voltage: 10.0,
            ..Default::default()
        });
        assert!(matches!(m.assess(), HealthStatus::FailurePredicted(_)));
        m.inject(SensorReading {
            dram_ce: 99,
            ..Default::default()
        });
        assert!(matches!(m.assess(), HealthStatus::FailurePredicted(_)));
    }

    #[test]
    fn rising_trend_predicts_before_critical() {
        let m = HealthMonitor::new();
        for t in [68.0, 71.0, 74.0] {
            m.inject(SensorReading {
                temp_c: t,
                ..Default::default()
            });
        }
        // 74 < 85 (critical) but the trend through the warning line
        // predicts failure.
        assert!(matches!(m.assess(), HealthStatus::FailurePredicted(_)));
    }

    #[test]
    fn bit_flips_accumulate_into_a_failure_prediction() {
        let m = HealthMonitor::new();
        for _ in 0..Thresholds::default().dram_ce_crit {
            m.observe_fault(faultgen::FaultClass::MemBitFlip);
        }
        assert!(matches!(m.assess(), HealthStatus::FailurePredicted(_)));
        // Non-memory classes do not perturb the sensors.
        let before = m.latest();
        m.observe_fault(faultgen::FaultClass::DeviceTimeout);
        assert_eq!(m.latest(), before);
    }

    #[test]
    fn history_window_bounded() {
        let m = HealthMonitor::new();
        for i in 0..100 {
            m.inject(SensorReading {
                temp_c: 40.0 + (i % 3) as f64,
                ..Default::default()
            });
        }
        assert!(m.history.lock().len() <= WINDOW);
    }
}
