//! The shared fleet-state view: one place where the balancer, the
//! watchdog, and the migration policy meet.
//!
//! Before this module each of those components special-cased the
//! others (the balancer asked the watchdog, the watchdog poked the
//! balancer's node list).  Now every component reads and writes one
//! [`FleetState`]: the watchdog *marks* a node degraded, the migration
//! policy *selects* targets from the same view, and the balancer folds
//! the view into its dispatch key — a node mid-stop-and-copy must not
//! win the least-loaded tiebreak (DESIGN.md §15).
//!
//! Nodes are grouped into racks of [`FleetState::rack_size`] by index;
//! the rolling "patch Tuesday" maintenance wave virtualizes, evacuates,
//! maintains and re-homes one rack at a time, always evacuating to a
//! peer *outside* the rack under maintenance.

use parking_lot::Mutex;
use std::sync::Arc;

/// Where a node stands in the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeStatus {
    /// Serving normally; a valid dispatch and migration target.
    Healthy,
    /// The watchdog or health monitor flagged it (reason attached):
    /// route away and drain, but its OS still runs.
    Degraded(String),
    /// Being drained ahead of evacuation: serves its queue, takes no
    /// new work.
    Draining,
    /// Its OS lives on a peer; there is nothing here to dispatch to.
    Evacuated,
    /// Under maintenance (rolling wave); not dispatchable.
    Maintenance,
}

/// Migration activity on a node, as the balancer sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// No migration in flight.
    Idle,
    /// Iterative pre-copy rounds: the node serves, but every round
    /// steals cycles — deprioritize it.
    PreCopy,
    /// Paused for the final copy.  Dispatching here parks the request
    /// behind the whole stop-and-copy downtime.
    StopAndCopy,
}

#[derive(Clone)]
struct Entry {
    status: NodeStatus,
    phase: MigrationPhase,
    /// The VMM build version the node last reported
    /// ([`xenon::Hypervisor::version`]); rolling live-update waves
    /// bump it rack by rack, and the fleet is "converged" when every
    /// node reports the same one.
    hv_version: u32,
}

/// Shared, mutex-guarded per-node status + migration phase, plus the
/// static rack layout.  Cheap to clone the handle (`Arc`); all methods
/// take `&self`.
///
/// ```
/// use mercury_cluster::fleet::{FleetState, MigrationPhase, NodeStatus};
///
/// let fleet = FleetState::new(6, 3);
/// assert_eq!(fleet.racks(), 2);
/// assert_eq!(fleet.rack_of(4), 1);
/// fleet.set_phase(2, MigrationPhase::StopAndCopy);
/// // Stop-and-copy ranks behind every healthy idle node.
/// assert!(fleet.balance_class(2).unwrap() > fleet.balance_class(0).unwrap());
/// fleet.set_status(5, NodeStatus::Evacuated);
/// assert_eq!(fleet.balance_class(5), None); // nothing there to serve
/// ```
pub struct FleetState {
    entries: Mutex<Vec<Entry>>,
    rack_size: usize,
}

impl FleetState {
    /// A fleet of `nodes` healthy, idle nodes in racks of `rack_size`.
    pub fn new(nodes: usize, rack_size: usize) -> Arc<FleetState> {
        assert!(rack_size > 0, "rack size must be positive");
        Arc::new(FleetState {
            entries: Mutex::new(vec![
                Entry {
                    status: NodeStatus::Healthy,
                    phase: MigrationPhase::Idle,
                    hv_version: 1,
                };
                nodes
            ]),
            rack_size,
        })
    }

    /// Number of nodes in the view.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Is the fleet empty?
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Nodes per rack.
    pub fn rack_size(&self) -> usize {
        self.rack_size
    }

    /// Number of racks (last one may be partial).
    pub fn racks(&self) -> usize {
        self.len().div_ceil(self.rack_size)
    }

    /// The rack `node` belongs to.
    pub fn rack_of(&self, node: usize) -> usize {
        node / self.rack_size
    }

    /// Node indices in `rack`.
    pub fn rack_members(&self, rack: usize) -> Vec<usize> {
        let n = self.len();
        (rack * self.rack_size..((rack + 1) * self.rack_size).min(n)).collect()
    }

    /// Current status of `node`.
    pub fn status(&self, node: usize) -> NodeStatus {
        self.entries.lock()[node].status.clone()
    }

    /// Set the status of `node`.
    pub fn set_status(&self, node: usize, status: NodeStatus) {
        self.entries.lock()[node].status = status;
    }

    /// Current migration phase of `node`.
    pub fn phase(&self, node: usize) -> MigrationPhase {
        self.entries.lock()[node].phase
    }

    /// Set the migration phase of `node`.
    pub fn set_phase(&self, node: usize, phase: MigrationPhase) {
        self.entries.lock()[node].phase = phase;
    }

    /// The VMM build version `node` last published.
    pub fn hv_version(&self, node: usize) -> u32 {
        self.entries.lock()[node].hv_version
    }

    /// Publish `node`'s VMM build version (read off the node with
    /// [`xenon::liveupdate::status`] after launch, a live-update, or a
    /// rolling maintenance wave).
    pub fn set_hv_version(&self, node: usize, version: u32) {
        self.entries.lock()[node].hv_version = version;
    }

    /// The lowest VMM version any node still runs — the fleet's
    /// effective (weakest-link) hypervisor version.  A rolling
    /// live-update wave is done when this reaches the wave's target.
    pub fn min_hv_version(&self) -> u32 {
        self.entries
            .lock()
            .iter()
            .map(|e| e.hv_version)
            .min()
            .unwrap_or(0)
    }

    /// The balancer's first-order dispatch key for `node`:
    /// `None` when there is nothing running there to dispatch to
    /// (evacuated / under maintenance); otherwise a penalty class,
    /// lower is better.  Queue depth and busy cycles break ties
    /// *within* a class, so a node mid-stop-and-copy can never win the
    /// least-loaded tiebreak against a healthy idle peer.
    pub fn balance_class(&self, node: usize) -> Option<u64> {
        let e = &self.entries.lock()[node];
        match e.status {
            NodeStatus::Evacuated | NodeStatus::Maintenance => return None,
            NodeStatus::Healthy => {}
            // Draining and degraded nodes still run an OS, but only
            // take new work when nothing healthier exists.
            NodeStatus::Degraded(_) => return Some(3),
            NodeStatus::Draining => return Some(4),
        }
        Some(match e.phase {
            MigrationPhase::Idle => 0,
            MigrationPhase::PreCopy => 1,
            MigrationPhase::StopAndCopy => 2,
        })
    }

    /// Is `node` a valid *migration target* right now?  Stricter than
    /// dispatchability: only a healthy node with no migration of its
    /// own in flight may receive an evacuated OS.
    pub fn migration_target_ok(&self, node: usize) -> bool {
        let e = &self.entries.lock()[node];
        e.status == NodeStatus::Healthy && e.phase == MigrationPhase::Idle
    }

    /// Indices of currently healthy nodes.
    pub fn healthy_nodes(&self) -> Vec<usize> {
        self.entries
            .lock()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.status == NodeStatus::Healthy)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rack_layout_partitions_the_fleet() {
        let fleet = FleetState::new(10, 4);
        assert_eq!(fleet.racks(), 3);
        assert_eq!(fleet.rack_members(0), vec![0, 1, 2, 3]);
        assert_eq!(fleet.rack_members(2), vec![8, 9]);
        for i in 0..10 {
            assert!(fleet.rack_members(fleet.rack_of(i)).contains(&i));
        }
    }

    #[test]
    fn balance_classes_order_the_fleet() {
        let fleet = FleetState::new(5, 5);
        fleet.set_phase(1, MigrationPhase::PreCopy);
        fleet.set_phase(2, MigrationPhase::StopAndCopy);
        fleet.set_status(3, NodeStatus::Degraded("hot".into()));
        fleet.set_status(4, NodeStatus::Evacuated);
        let c = |i: usize| fleet.balance_class(i);
        assert!(c(0) < c(1), "healthy idle beats pre-copy");
        assert!(c(1) < c(2), "pre-copy beats stop-and-copy");
        assert!(c(2) < c(3), "stop-and-copy beats degraded");
        assert_eq!(c(4), None, "evacuated nodes are not dispatchable");
    }

    #[test]
    fn hv_versions_track_the_weakest_link() {
        let fleet = FleetState::new(4, 2);
        assert_eq!(fleet.min_hv_version(), 1);
        fleet.set_hv_version(0, 2);
        fleet.set_hv_version(1, 2);
        fleet.set_hv_version(3, 2);
        assert_eq!(fleet.hv_version(0), 2);
        assert_eq!(fleet.min_hv_version(), 1, "node 2 still on v1");
        fleet.set_hv_version(2, 2);
        assert_eq!(fleet.min_hv_version(), 2);
    }

    #[test]
    fn migration_targets_are_healthy_and_idle() {
        let fleet = FleetState::new(3, 3);
        assert!(fleet.migration_target_ok(0));
        fleet.set_phase(0, MigrationPhase::PreCopy);
        assert!(!fleet.migration_target_ok(0));
        fleet.set_status(1, NodeStatus::Draining);
        assert!(!fleet.migration_target_ok(1));
        assert!(fleet.migration_target_ok(2));
    }
}
