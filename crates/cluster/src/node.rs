//! Nodes and clusters: whole machines running Mercury-enabled kernels.

use crate::health::HealthMonitor;
use mercury::{ExecMode, Mercury, TrackingStrategy};
use nimbus::drivers::block::NativeBlockDriver;
use nimbus::drivers::net::NativeNetDriver;
use nimbus::kernel::{BootMode, KernelConfig};
use nimbus::{Kernel, Session};
use parking_lot::RwLock;
use simx86::devices::LinkWire;
use simx86::{Machine, MachineConfig};
use std::sync::{Arc, Weak};
use xenon::{BackgroundScrubber, Hypervisor};

/// Node sizing.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// CPUs per node.
    pub num_cpus: usize,
    /// Physical memory in frames.
    pub mem_frames: usize,
    /// Kernel pool size in frames (rest stays with the machine
    /// allocator for hosting migrated guests).
    pub pool_frames: usize,
    /// Disk sectors.
    pub disk_sectors: u64,
    /// Filesystem data blocks.
    pub fs_blocks: u64,
    /// Frame-accounting strategy for Mercury.
    pub strategy: TrackingStrategy,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            num_cpus: 1,
            mem_frames: 16 * 1024,
            pool_frames: 6 * 1024,
            disk_sectors: 64 * 1024,
            fs_blocks: 4096,
            strategy: TrackingStrategy::default(),
        }
    }
}

/// One cluster node: machine + warm hypervisor + Mercury-enabled
/// kernel + health monitor.
pub struct Node {
    /// Node name.
    pub name: String,
    /// The machine.
    pub machine: Arc<Machine>,
    /// The operating system currently running this node.  Replaced when
    /// the node's OS is evacuated and later returns.
    kernel: RwLock<Arc<Kernel>>,
    /// The Mercury engine for the current kernel.
    mercury: RwLock<Arc<Mercury>>,
    /// Background revalidator over dom0's dirty frames: idle CPU time
    /// and serving-gap cycles are donated here while the node is
    /// native, shortening the dirty set the next attach must pay for.
    scrubber: Arc<BackgroundScrubber>,
    /// Hardware health sensors.
    pub health: HealthMonitor,
}

impl Node {
    /// Build and boot a node: machine powered on, VMM warmed (dormant),
    /// kernel booted natively, Mercury installed, native drivers
    /// attached.
    pub fn launch(name: &str, config: &NodeConfig) -> Arc<Node> {
        let machine = Machine::new(MachineConfig {
            num_cpus: config.num_cpus,
            mem_frames: config.mem_frames,
            disk_sectors: config.disk_sectors,
        });
        let hv = Hypervisor::warm_up(&machine);
        let cpu = machine.boot_cpu();
        let pool = machine
            .allocator
            .alloc_many(cpu, config.pool_frames)
            .expect("node sized too small for its kernel pool");
        let kernel = Kernel::boot(
            Arc::clone(&machine),
            KernelConfig {
                pool,
                mode: BootMode::Bare,
                fs_blocks: config.fs_blocks,
                fs_first_block: 1,
            },
        )
        .expect("node kernel boot failed");
        let bounce = machine.allocator.alloc(cpu).expect("bounce frame");
        kernel.set_block_driver(NativeBlockDriver::new(Arc::clone(&machine), bounce));
        kernel.set_net_driver(NativeNetDriver::new(Arc::clone(&machine)));
        let mercury = Mercury::install(Arc::clone(&kernel), Arc::clone(&hv), config.strategy)
            .expect("mercury install failed");
        let scrubber = BackgroundScrubber::new(Arc::clone(&hv.page_info), mercury.dom0().id);
        Self::wire_idle_scrubber(&kernel, &mercury, &scrubber);
        Arc::new(Node {
            name: name.to_string(),
            machine,
            kernel: RwLock::new(kernel),
            mercury: RwLock::new(mercury),
            scrubber,
            health: HealthMonitor::new(),
        })
    }

    /// Point `kernel`'s idle loop at the node's scrubber: an idle CPU
    /// donates its quantum to dirty-frame revalidation, but only while
    /// Mercury is native — in virtual mode the frame accounting is live
    /// and there is nothing to pre-validate.
    fn wire_idle_scrubber(
        kernel: &Arc<Kernel>,
        mercury: &Arc<Mercury>,
        scrubber: &Arc<BackgroundScrubber>,
    ) {
        let merc: Weak<Mercury> = Arc::downgrade(mercury);
        let scrub = Arc::clone(scrubber);
        kernel.set_idle_task(Some(Arc::new(move |cpu, budget| {
            match merc.upgrade() {
                Some(m) if m.mode() == ExecMode::Native => scrub.donate(cpu, budget),
                _ => 0,
            }
        })));
    }

    /// The node's current kernel.
    pub fn kernel(&self) -> Arc<Kernel> {
        Arc::clone(&self.kernel.read())
    }

    /// The node's Mercury engine.
    pub fn mercury(&self) -> Arc<Mercury> {
        Arc::clone(&self.mercury.read())
    }

    /// The node's *current* hypervisor.  Read through Mercury's slot
    /// rather than cached at launch: a live-update (DESIGN.md §16)
    /// replaces the instance, and everything the cluster layer does
    /// with a hypervisor — migration rings, failover bookkeeping,
    /// health checks — must see the successor, never a decommissioned
    /// husk.
    pub fn hv(&self) -> Arc<Hypervisor> {
        self.mercury().hypervisor()
    }

    /// The node's background dirty-frame scrubber.
    pub fn scrubber(&self) -> &Arc<BackgroundScrubber> {
        &self.scrubber
    }

    /// The node machine's event clock — the deadline queue that the
    /// node's idle consumers (serving-gap donor, watchdog backoff, the
    /// kernel idle loop) register against so idle simulated time can
    /// fast-forward with bit-identical accounting (DESIGN.md §14).
    pub fn evclock(&self) -> &Arc<simx86::EvClock> {
        &self.machine.evclock
    }

    /// Replace the node's OS (after an evacuated kernel returns home).
    /// The new kernel's idle loop is rewired to the node's scrubber.
    pub fn adopt_os(&self, kernel: Arc<Kernel>, mercury: Arc<Mercury>) {
        Self::wire_idle_scrubber(&kernel, &mercury, &self.scrubber);
        *self.kernel.write() = kernel;
        *self.mercury.write() = mercury;
    }

    /// A session on the node's boot CPU.
    pub fn session(&self) -> Session {
        Session::new(self.kernel(), 0)
    }
}

/// A set of nodes with pairwise network links.
pub struct Cluster {
    /// The nodes.
    pub nodes: Vec<Arc<Node>>,
}

impl Cluster {
    /// Launch `n` identically configured nodes and wire node 0's NIC to
    /// node 1's, etc. (pairwise links between consecutive nodes; enough
    /// for evacuation flows).
    pub fn launch(n: usize, config: &NodeConfig) -> Cluster {
        let nodes: Vec<Arc<Node>> = (0..n)
            .map(|i| Node::launch(&format!("node{i}"), config))
            .collect();
        for pair in nodes.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            a.machine.nic.connect(Arc::new(LinkWire::new(
                Arc::clone(&b.machine.nic),
                Arc::clone(&b.machine.intc),
            )));
            b.machine.nic.connect(Arc::new(LinkWire::new(
                Arc::clone(&a.machine.nic),
                Arc::clone(&a.machine.intc),
            )));
        }
        Cluster { nodes }
    }

    /// Node by index.
    pub fn node(&self, i: usize) -> &Arc<Node> {
        &self.nodes[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercury::ExecMode;

    #[test]
    fn node_launches_native_with_dormant_vmm() {
        let node = Node::launch("n0", &NodeConfig::default());
        assert_eq!(node.mercury().mode(), ExecMode::Native);
        assert!(!node.hv().is_active());
        let sess = node.session();
        let fd = sess.open("boot.log", true).unwrap();
        sess.write(fd, b"up").unwrap();
        assert_eq!(sess.stat("boot.log").unwrap().size, 2);
    }

    #[test]
    fn cluster_links_carry_packets() {
        let cluster = Cluster::launch(2, &NodeConfig::default());
        let a = cluster.node(0).session();
        let b = cluster.node(1).session();
        let fa = a.socket(100).unwrap();
        let fb = b.socket(200).unwrap();
        a.sendto(fa, 200, b"hello b").unwrap();
        match b.recvfrom(fb).unwrap() {
            nimbus::kernel::RecvOutcome::Datagram(src, data) => {
                assert_eq!(src, 100);
                assert_eq!(data, b"hello b");
            }
            other => panic!("{other:?}"),
        }
        // And the reverse direction.
        b.sendto(fb, 100, b"hello a").unwrap();
        match a.recvfrom(fa).unwrap() {
            nimbus::kernel::RecvOutcome::Datagram(src, data) => {
                assert_eq!(src, 200);
                assert_eq!(data, b"hello a");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn idle_cpu_donates_to_the_scrubber() {
        let node = Node::launch(
            "n0",
            &NodeConfig {
                num_cpus: 2,
                ..NodeConfig::default()
            },
        );
        // Fault in pages on CPU 0: the PTE writes mark their table
        // frames dirty in the dormant VMM's accounting.
        let sess = node.session();
        let va = sess
            .mmap(8, nimbus::mm::Prot::RW, nimbus::kernel::MmapBacking::Anon)
            .unwrap();
        for p in 0..8u64 {
            sess.poke(
                simx86::paging::VirtAddr(va.0 + p * simx86::paging::PAGE_SIZE),
                p,
            )
            .unwrap();
        }
        assert!(node.scrubber().backlog() > 0, "pokes must dirty tables");

        // CPU 1 has nothing to run: its idle pass donates cycles to the
        // scrubber, shrinking the dirty set the next attach pays for.
        let idle = Session::new(node.kernel(), 1);
        while node.scrubber().backlog() > 0 {
            idle.idle().unwrap();
        }
        assert!(node.scrubber().revalidated() > 0);
        assert!(node.scrubber().cycles_donated() > 0);
    }

    #[test]
    fn node_hv_accessor_tracks_a_live_update() {
        let node = Node::launch("n0", &NodeConfig::default());
        let cpu = node.machine.boot_cpu();
        let m = node.mercury();
        let v1 = node.hv();
        assert_eq!(v1.version(), 1);
        m.switch_to_virtual(cpu).unwrap();
        let v2 = Hypervisor::warm_up_versioned(&node.machine, 2);
        m.stage_update(Arc::clone(&v2)).unwrap();
        assert!(matches!(
            m.live_update(cpu).unwrap(),
            mercury::SwitchOutcome::Completed { .. }
        ));
        // The accessor reads Mercury's slot, so it sees the successor;
        // a launch-time cached handle would still point at the husk.
        assert!(Arc::ptr_eq(&node.hv(), &v2));
        assert_eq!(node.hv().version(), 2);
        assert!(!v1.is_active(), "incumbent decommissioned");
        m.switch_to_native(cpu).unwrap();
    }

    #[test]
    fn node_can_switch_modes() {
        let node = Node::launch("n0", &NodeConfig::default());
        let cpu = node.machine.boot_cpu();
        let m = node.mercury();
        assert!(matches!(
            m.switch_to_virtual(cpu).unwrap(),
            mercury::SwitchOutcome::Completed { .. }
        ));
        assert!(matches!(
            m.switch_to_native(cpu).unwrap(),
            mercury::SwitchOutcome::Completed { .. }
        ));
    }
}
