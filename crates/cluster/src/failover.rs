//! Predictive failover for HPC clusters (§6.5).
//!
//! "When hardware errors are reported by the monitors, the operating
//! system immediately virtualizes itself to the full-virtual mode and
//! migrates itself to another healthy node, which in turn virtualizes
//! itself simultaneously to the partial-virtual mode to accommodate the
//! migrated operating system.  With this approach, the running programs
//! are completely shielded from the system failures, with no need to
//! stop and restart."

use crate::health::HealthStatus;
use crate::maintenance::{evacuate, EvacuatedGuest, MaintenanceError};
use crate::node::Node;
use simx86::cpu::vectors;
use std::sync::Arc;

/// Result of an automatic failover.
pub struct FailoverReport {
    /// Why the monitor triggered.
    pub trigger: String,
    /// The evacuated OS, alive on the target node.
    pub guest: EvacuatedGuest,
    /// Guest-observed downtime in microseconds.
    pub downtime_us: f64,
}

/// Failover errors.
#[derive(Debug)]
pub enum FailoverError {
    /// The monitor did not predict a failure — nothing to do.
    NoPrediction(HealthStatus),
    /// Evacuation failed.
    Evacuation(MaintenanceError),
}

impl std::fmt::Display for FailoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailoverError::NoPrediction(s) => write!(f, "no failure predicted: {s:?}"),
            FailoverError::Evacuation(e) => write!(f, "evacuation failed: {e}"),
        }
    }
}

impl std::error::Error for FailoverError {}

/// Consult the failing node's monitor and, on a failure prediction,
/// evacuate its OS to `healthy`.  Also raises a machine-check on the
/// failing node so the kernel's own view agrees something is wrong.
pub fn auto_failover(
    failing: &Arc<Node>,
    healthy: &Arc<Node>,
    precopy_rounds: usize,
) -> Result<FailoverReport, FailoverError> {
    let status = failing.health.assess();
    let HealthStatus::FailurePredicted(reason) = status else {
        return Err(FailoverError::NoPrediction(status));
    };

    // The platform reports the error to the OS as well.
    failing.machine.intc.raise(0, vectors::MACHINE_CHECK);
    failing.session().service();
    debug_assert!(failing
        .kernel()
        .mce_seen
        .load(std::sync::atomic::Ordering::Acquire));

    let guest = evacuate(failing, healthy, precopy_rounds).map_err(FailoverError::Evacuation)?;
    let downtime_us = guest.report.downtime_us();
    Ok(FailoverReport {
        trigger: reason,
        guest,
        downtime_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::SensorReading;
    use crate::node::{Cluster, NodeConfig};
    use nimbus::kernel::MmapBacking;
    use nimbus::mm::Prot;
    use nimbus::Session;

    #[test]
    fn healthy_node_does_not_fail_over() {
        let cluster = Cluster::launch(2, &NodeConfig::default());
        let Err(err) = auto_failover(cluster.node(0), cluster.node(1), 1) else {
            panic!("healthy node must not fail over");
        };
        assert!(matches!(
            err,
            FailoverError::NoPrediction(HealthStatus::Healthy)
        ));
        assert_eq!(cluster.node(0).mercury().mode(), mercury::ExecMode::Native);
    }

    #[test]
    fn predicted_failure_evacuates_with_live_state() {
        let cluster = Cluster::launch(2, &NodeConfig::default());
        let failing = cluster.node(0);
        let healthy = cluster.node(1);

        // Long-running "HPC job".
        let sess = failing.session();
        let va = sess.mmap(4, Prot::RW, MmapBacking::Anon).unwrap();
        for p in 0..4u64 {
            sess.poke(simx86::VirtAddr(va.0 + p * 4096), p * 11)
                .unwrap();
        }

        // Overheating trend.
        for t in [68.0, 73.0, 79.0] {
            failing.health.inject(SensorReading {
                temp_c: t,
                ..Default::default()
            });
        }
        let report = auto_failover(failing, healthy, 2).unwrap();
        assert!(report.trigger.contains("temperature"));
        assert!(report.downtime_us > 0.0);

        // The job's memory survived, on the other node's hardware.
        healthy.hv().set_current(0, Some(report.guest.dom.id));
        let gsess = Session::new(std::sync::Arc::clone(&report.guest.kernel), 0);
        for p in 0..4u64 {
            assert_eq!(
                gsess.peek(simx86::VirtAddr(va.0 + p * 4096)).unwrap(),
                p * 11
            );
        }
        // And the machine-check was observed by the (old) kernel.
        assert!(failing
            .kernel()
            .mce_seen
            .load(std::sync::atomic::Ordering::Acquire));
    }
}
