//! Property test over the live-migration round trip (DESIGN.md §15).
//!
//! The fleet layer leans on one invariant: a guest that is evacuated to
//! a host, *keeps serving there*, and later returns home is
//! indistinguishable from one that never moved.  This test drives that
//! invariant with randomized workloads instead of the hand-picked ones
//! in `maintenance.rs`:
//!
//! * random anonymous-memory writes before the evacuation and more
//!   **while running as a guest** (the concurrent dirty traffic that
//!   the pre-copy rounds must chase);
//! * random file appends, only some of them synced — the unsynced tail
//!   lives in the buffer cache and must travel with the image, the
//!   synced part must be on the platter *before* the storage copy (the
//!   lost-write ordering bug this PR fixed);
//! * an open file descriptor with a non-zero seek position held across
//!   both migrations — fd table and position are part of the frozen
//!   image;
//! * a small faultgen ECC campaign against the host mid-residence,
//!   recovered through the watchdog (bit flipped back in place), which
//!   must be invisible to the compared state (no-op when the `enabled`
//!   feature is off — the workspace build turns it on);
//! * both event-clock settings: the time skip is an accounting
//!   optimization and must not change a single guest-visible bit.
//!
//! Every case checks the final state against a pure-Rust model of the
//! workload, so skip-on and skip-off runs are each held to the same
//! bit-exact expectation.

use mercury_cluster::{evacuate, return_home, Cluster, NodeConfig, Watchdog, WatchdogPolicy};
use nimbus::kernel::{MmapBacking, ReadOutcome};
use nimbus::mm::Prot;
use nimbus::Session;
use proptest::collection::vec;
use proptest::prelude::*;
use simx86::{PhysAddr, VirtAddr};
use std::collections::HashMap;
use std::sync::Arc;

/// Small nodes keep a proptest case affordable: the same sizing the
/// fleet bench boots a hundred of.
fn small_node() -> NodeConfig {
    NodeConfig {
        num_cpus: 1,
        mem_frames: 4 * 1024,
        pool_frames: 1536,
        disk_sectors: 8 * 1024,
        fs_blocks: 512,
        ..NodeConfig::default()
    }
}

/// One randomized workload: word writes into a 4-page anonymous
/// mapping, file appends with a sync split, and the migration knobs.
#[derive(Debug, Clone)]
struct Case {
    pre_writes: Vec<(u16, u64)>,
    guest_writes: Vec<(u16, u64)>,
    pre_chunks: Vec<Vec<u8>>,
    synced_chunks: usize,
    guest_chunk: Vec<u8>,
    precopy_rounds: usize,
    skip: bool,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        vec((0u16..2048, any::<u64>()), 1..16),
        vec((0u16..2048, any::<u64>()), 1..16),
        vec(vec(any::<u8>(), 1..24), 1..4),
        0usize..4,
        vec(any::<u8>(), 1..24),
        1usize..4,
        any::<bool>(),
    )
        .prop_map(
            |(pre_writes, guest_writes, pre_chunks, synced, guest_chunk, rounds, skip)| Case {
                synced_chunks: synced.min(pre_chunks.len()),
                pre_writes,
                guest_writes,
                pre_chunks,
                guest_chunk,
                precopy_rounds: rounds,
                skip,
            },
        )
}

/// Word slot `i` of the mapping at `base`.
fn slot(base: VirtAddr, i: u16) -> VirtAddr {
    VirtAddr(base.0 + i as u64 * 8)
}

fn run_case(case: &Case) {
    simx86::evclock::set_default_skip(case.skip);
    faultgen::reset();

    let cluster = Cluster::launch(2, &small_node());
    let home = cluster.node(0);
    let host = cluster.node(1);

    // The model the machine must match at the end.
    let mut memory_model: HashMap<u16, u64> = HashMap::new();
    let mut file_model: Vec<u8> = Vec::new();

    // -- pre-evacuation workload on the home node ---------------------
    let sess = home.session();
    let va = sess.mmap(4, Prot::RW, MmapBacking::Anon).unwrap();
    for &(i, v) in &case.pre_writes {
        sess.poke(slot(va, i), v).unwrap();
        memory_model.insert(i, v);
    }
    let fd = sess.open("prop.txt", true).unwrap();
    for (k, chunk) in case.pre_chunks.iter().enumerate() {
        sess.write(fd, chunk).unwrap();
        file_model.extend_from_slice(chunk);
        if k < case.synced_chunks {
            sess.sync().unwrap();
        }
    }
    // Held-open fd with a mid-file position; it must still work on the
    // other side of both migrations.
    let keep_fd = sess.open("prop.txt", false).unwrap();
    let keep_pos = (file_model.len() / 2) as u64;
    sess.lseek(keep_fd, keep_pos).unwrap();

    // -- evacuate -----------------------------------------------------
    let guest = evacuate(home, host, case.precopy_rounds).unwrap();
    assert!(guest.report.total_frames > 0);

    // -- serve as a guest: concurrent dirty traffic -------------------
    let gsess = Session::new(Arc::clone(&guest.kernel), 0);
    host.hv().set_current(0, Some(guest.dom.id));
    for &(i, v) in &case.guest_writes {
        gsess.poke(slot(va, i), v).unwrap();
        memory_model.insert(i, v);
    }
    // The held fd reads from its pre-migration position.
    let expect: Vec<u8> = file_model[keep_pos as usize..].to_vec();
    if !expect.is_empty() {
        match gsess.read(keep_fd, expect.len()).unwrap() {
            ReadOutcome::Data(d) => assert_eq!(d, expect, "held fd lost its position"),
            other => panic!("held fd unusable after evacuation: {other:?}"),
        }
    }
    // Append through the split block device and sync, so the bytes sit
    // early-acked in the backend ring — the flush-before-copy path.
    let gfd = gsess.open("prop.txt", false).unwrap();
    gsess.lseek(gfd, file_model.len() as u64).unwrap();
    gsess.write(gfd, &case.guest_chunk).unwrap();
    gsess.sync().unwrap();
    file_model.extend_from_slice(&case.guest_chunk);

    // An ECC storm on the host mid-residence: planted flips, tripped by
    // sweep reads, flipped back by the watchdog.  State-neutral by
    // construction — which is exactly what the final comparison checks.
    let mut dog = Watchdog::new(
        host.mercury(),
        Arc::clone(&host.machine),
        host.kernel(),
        WatchdogPolicy::default(),
    );
    let cpu = host.machine.boot_cpu();
    for k in 0..2u64 {
        faultgen::arm(vec![faultgen::FaultSpec {
            id: 9_000 + k,
            due_cycle: 0,
            target: faultgen::FaultTarget::MemWord {
                frame: 3_000 + k as u32,
                word: 17,
                bit: (k % 64) as u8,
            },
        }]);
        let pa = PhysAddr(((3_000 + k) << 12) + 17 * 8);
        host.machine.mem.read_word(cpu, pa).expect("sweep read");
        dog.poll(cpu);
    }
    // With the faultgen hooks compiled in, both flips must have been
    // detected and corrected; without them the campaign is a no-op.
    assert!(dog.reports().iter().all(|r| r.recovered));
    faultgen::reset();

    // -- return home --------------------------------------------------
    let report = return_home(guest, host, home).unwrap();
    assert!(report.downtime_cycles > 0);

    // -- the round trip must be invisible -----------------------------
    let sess = home.session();
    for (&i, &v) in &memory_model {
        assert_eq!(sess.peek(slot(va, i)).unwrap(), v, "word {i} diverged");
    }
    // A never-written slot stays zero (no stray dirty frame landed).
    if let Some(hole) = (0u16..2048).find(|i| !memory_model.contains_key(i)) {
        assert_eq!(sess.peek(slot(va, hole)).unwrap(), 0);
    }
    assert_eq!(
        sess.stat("prop.txt").unwrap().size as usize,
        file_model.len()
    );
    let check_fd = sess.open("prop.txt", false).unwrap();
    match sess.read(check_fd, file_model.len()).unwrap() {
        ReadOutcome::Data(d) => assert_eq!(d, file_model, "file content diverged"),
        other => panic!("{other:?}"),
    }
    // The held fd consumed the pre-migration tail while a guest, so it
    // now sits exactly where the guest's append began: the next byte it
    // yields on the home node is the first guest-written one.
    match sess.read(keep_fd, 1).unwrap() {
        ReadOutcome::Data(d) => {
            assert_eq!(d, vec![case.guest_chunk[0]], "held fd position diverged")
        }
        other => panic!("held fd unusable after return: {other:?}"),
    }

    // Both nodes back to native, nothing foreign left behind.
    assert_eq!(home.mercury().mode(), mercury::ExecMode::Native);
    assert_eq!(host.mercury().mode(), mercury::ExecMode::Native);
    assert_eq!(host.hv().domains().len(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        max_shrink_iters: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn roundtrip_preserves_guest_state(case in case_strategy()) {
        run_case(&case);
        // Leave the process-global default as the benches expect it.
        simx86::evclock::set_default_skip(true);
    }
}
