//! The event-clock fast-forward must be invisible to the serving layer
//! (DESIGN.md §14.3): a same-seed run with skip on and a run with skip
//! off must produce bit-identical request records — arrival, start and
//! finish cycles, worker assignment, outcome — and identical scrubber
//! work, because both modes charge the same cycles through the same
//! code and differ only in how `EvClock::advance` walks an idle span.
//!
//! The per-clock [`EvClock::set_skip`] switch is used rather than the
//! process-wide default so these tests stay independent of each other
//! (and of any other test in the binary) under parallel execution.

use mercury_cluster::{Node, NodeConfig};
use mercury_servo::{generate, LoadConfig, NodeServer, RequestRecord, ServerConfig};
use mercury_workloads::mix::CostMix;

/// One full serving run on a fresh node, gaps donated to the scrubber.
/// Returns the records plus the scrubber's revalidation count and the
/// cycles the event clock fast-forwarded.
fn run_once(seed: u64, cpus: usize, skip: bool) -> (Vec<RequestRecord>, u64, u64) {
    let node = Node::launch(
        "skiptest",
        &NodeConfig {
            num_cpus: cpus,
            ..NodeConfig::default()
        },
    );
    node.evclock().set_skip(skip);
    let mut server = NodeServer::new(
        &node,
        0,
        ServerConfig {
            workers: cpus,
            ..ServerConfig::default()
        },
    );
    server.donate_gaps_to_scrubber();
    let traffic = generate(&LoadConfig {
        seed,
        mean_gap_cycles: 300_000 / cpus as u64,
        requests: 400,
        mix: CostMix::oltp(),
    });
    server.run(&traffic, |_, _| {});
    (
        server.records().to_vec(),
        node.scrubber().revalidated(),
        node.evclock().cycles_skipped(),
    )
}

#[test]
fn records_are_bit_identical_with_skip_on_and_off() {
    for seed in [11u64, 42, 987] {
        let (on, scrub_on, skipped_on) = run_once(seed, 1, true);
        let (off, scrub_off, skipped_off) = run_once(seed, 1, false);
        assert_eq!(on, off, "seed {seed}: skip must not change a single record");
        assert_eq!(
            scrub_on, scrub_off,
            "seed {seed}: gap donation must revalidate the same frames"
        );
        assert!(
            skipped_on > 0,
            "seed {seed}: the skip-on run must actually fast-forward"
        );
        assert_eq!(
            skipped_off, 0,
            "seed {seed}: the skip-off run must quantum-tick every span"
        );
    }
}

#[test]
fn smp_serving_is_also_skip_neutral() {
    // Steady-state SMP serving is simulation-deterministic (no switch
    // during traffic), so the neutrality contract extends across CPUs:
    // worker assignment and queueing must not shift when spans skip.
    let (on, scrub_on, _) = run_once(7, 2, true);
    let (off, scrub_off, _) = run_once(7, 2, false);
    assert_eq!(on, off, "2-cpu records must be skip-invariant");
    assert_eq!(scrub_on, scrub_off);
}
