//! Fleet-scale serving: hundreds of nodes behind one balancer, with
//! live migration as a first-class balancing action (DESIGN.md §15).
//!
//! [`FleetServer`] composes the pieces the smaller layers provide —
//! per-node [`NodeServer`]s, the shared
//! [`FleetState`](mercury_cluster::fleet::FleetState) view, and the
//! [`MigrationPolicy`] — into one serving surface:
//!
//! * **Dispatch** keys on `(balance_class, queued, busy, index)`, so a
//!   node mid-stop-and-copy or flagged degraded cannot win the
//!   least-loaded tiebreak, and evacuated/maintenance nodes are skipped.
//! * **Evacuation** ([`FleetServer::drain_node`]) drains a node's
//!   admission queue, retires its server, and live-migrates its OS to
//!   the policy-selected peer while the rest of the fleet keeps
//!   serving.  The peer keeps serving its *own* traffic too — it hosts
//!   the parked guest in partial-virtual mode, exactly the paper's
//!   §6.3 arrangement.
//! * **Re-homing** ([`FleetServer::rehome_node`]) migrates the OS back
//!   after maintenance and rebuilds the node's server; its clock
//!   restarts, so records carry a per-slot *origin* offset that rebases
//!   them onto the single fleet-wide stream.
//! * **The rolling wave** ([`FleetServer::maintain_rack`] /
//!   [`FleetServer::patch_tuesday`]) virtualizes, evacuates, maintains
//!   and re-homes one rack at a time, always evacuating *outside* the
//!   rack under maintenance.
//! * **The live-update wave** ([`FleetServer::update_rack`] /
//!   [`FleetServer::patch_tuesday_live_update`]) rolls every node's
//!   hypervisor forward rack by rack *without draining a single
//!   guest* (DESIGN.md §16): each node hv-to-hv live-updates in
//!   place and publishes its new version in the fleet view, whose
//!   [`FleetState::min_hv_version`] tells the wave when the fleet
//!   converged.
//!
//! Accounting is total: every arrival either lands on a node (and gets
//! that node's completed/shed record) or, when the view rules out every
//! node, becomes a fleet-level shed record with node id
//! [`FLEET_SHED_NODE`].  `offered == records` is the zero-lost-requests
//! invariant `benchgate.py --fleet` enforces.

use crate::loadgen::Arrival;
use crate::sched::{NodeServer, Outcome, RequestRecord, ServerConfig};
use mercury::{ExecMode, SwitchOutcome};
use mercury_cluster::fleet::{FleetState, MigrationPhase, NodeStatus};
use mercury_cluster::maintenance::{return_home, EvacuatedGuest, MaintenanceError};
use mercury_cluster::{Cluster, MigrationPolicy, Node};
use mercury_workloads::mix::RequestShape;
use std::sync::Arc;
use xenon::Hypervisor;

/// Sentinel node id on fleet-level shed records: the balancer had no
/// routable node at the arrival instant (every node evacuated, under
/// maintenance, or otherwise ruled out by the fleet view).
pub const FLEET_SHED_NODE: u32 = u32::MAX;

/// One live node server plus the stream offset it was (re)built at.
/// A re-homed node's server starts a fresh clock; `origin` rebases its
/// relative record times onto the fleet-wide stream.
struct Slot {
    server: NodeServer,
    origin: u64,
}

/// The fleet: N simulated nodes behind one migration-aware balancer.
pub struct FleetServer {
    nodes: Vec<Arc<Node>>,
    fleet: Arc<FleetState>,
    policy: MigrationPolicy,
    cfg: ServerConfig,
    /// `None` while the node's OS is parked on a peer.
    slots: Vec<Option<Slot>>,
    /// The parked OS and the index of the peer hosting it.
    parked: Vec<Option<(EvacuatedGuest, usize)>>,
    /// Harvested (rebased) records from retired servers plus fleet-level
    /// sheds; live-slot records are merged in [`FleetServer::finish`].
    records: Vec<RequestRecord>,
    offered: u64,
    downtimes: Vec<u64>,
    evac_makespans: Vec<u64>,
    wave_spans: Vec<u64>,
}

impl FleetServer {
    /// Stand up one server per cluster node (fleet index = cluster
    /// index) over a fresh all-healthy fleet view with racks of
    /// `rack_size`.
    ///
    /// `cfg.attach_echo_host` must be off: fleet nodes are rebuilt
    /// after re-homing, and a per-node echo host would be attached
    /// twice.
    pub fn new(
        cluster: &Cluster,
        rack_size: usize,
        cfg: ServerConfig,
        policy: MigrationPolicy,
    ) -> FleetServer {
        assert!(
            !cfg.attach_echo_host,
            "fleet nodes must not attach per-node echo hosts"
        );
        let nodes: Vec<Arc<Node>> = cluster.nodes.iter().map(Arc::clone).collect();
        assert!(!nodes.is_empty(), "fleet needs at least one node");
        let fleet = FleetState::new(nodes.len(), rack_size);
        let slots = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Some(Slot {
                    server: NodeServer::new(n, i as u32, cfg),
                    origin: 0,
                })
            })
            .collect();
        let parked = nodes.iter().map(|_| None).collect();
        FleetServer {
            nodes,
            fleet,
            policy,
            cfg,
            slots,
            parked,
            records: Vec::new(),
            offered: 0,
            downtimes: Vec::new(),
            evac_makespans: Vec::new(),
            wave_spans: Vec::new(),
        }
    }

    /// The shared fleet-state view (bind watchdogs and health monitors
    /// here).
    pub fn fleet(&self) -> &Arc<FleetState> {
        &self.fleet
    }

    /// The underlying cluster nodes, fleet order.
    pub fn nodes(&self) -> &[Arc<Node>] {
        &self.nodes
    }

    /// Arrivals offered so far (the zero-lost denominator).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Guest-observed downtime of every migration so far (evacuations
    /// and re-homings), in cycles.
    pub fn downtimes(&self) -> &[u64] {
        &self.downtimes
    }

    /// Wall (source-clock) makespan of every evacuation so far, in
    /// cycles: drain start to guest parked on the peer.
    pub fn evac_makespans(&self) -> &[u64] {
        &self.evac_makespans
    }

    /// Wall span of every completed rack-maintenance wave, in cycles.
    pub fn wave_spans(&self) -> &[u64] {
        &self.wave_spans
    }

    /// Is node `i` currently parked on a peer?
    pub fn is_evacuated(&self, i: usize) -> bool {
        self.parked[i].is_some()
    }

    /// The peer hosting node `i`'s parked OS, when evacuated.
    pub fn host_of(&self, i: usize) -> Option<usize> {
        self.parked[i].as_ref().map(|(_, host)| *host)
    }

    fn rebased(r: &RequestRecord, origin: u64) -> RequestRecord {
        RequestRecord {
            arrival: r.arrival + origin,
            start: r.start + origin,
            finish: r.finish + origin,
            ..*r
        }
    }

    /// Replay completions up to stream offset `offset` on every live
    /// node.
    fn advance_all(&mut self, offset: u64) {
        for slot in self.slots.iter_mut().flatten() {
            let t = slot.server.abs(offset.saturating_sub(slot.origin));
            slot.server.advance_to(t);
        }
    }

    /// Migration-aware pick: `(balance_class, queued, busy, index)`
    /// over live, dispatchable nodes; `None` when the fleet has no
    /// routable node.
    fn pick(&self, offset: u64) -> Option<usize> {
        let mut best: Option<(u64, usize, u64, usize)> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            let Some(class) = self.fleet.balance_class(i) else {
                continue;
            };
            let t = slot.server.abs(offset.saturating_sub(slot.origin));
            let key = (class, slot.server.queued(), slot.server.busy_cycles(t), i);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, _, _, i)| i)
    }

    /// Offer one arrival at stream offset `offset`: dispatch to the
    /// best routable node, or record a fleet-level shed when there is
    /// none.
    pub fn offer(&mut self, id: u64, shape: &RequestShape, offset: u64) {
        self.offered += 1;
        match self.pick(offset) {
            Some(i) => {
                let slot = self.slots[i].as_mut().expect("picked slot is live");
                let t = slot.server.abs(offset.saturating_sub(slot.origin));
                slot.server.advance_to(t);
                slot.server.offer(id, shape, t);
            }
            None => {
                merctrace::counter!(0usize, "servo.fleet_shed", 1, offset);
                self.records.push(RequestRecord {
                    id,
                    shape: shape.name,
                    node: FLEET_SHED_NODE,
                    worker: 0,
                    arrival: offset,
                    start: offset,
                    finish: offset,
                    outcome: Outcome::Shed,
                });
            }
        }
    }

    /// Serve a whole arrival stream.  `hook` runs before each dispatch
    /// with `(self, offset)` — the place to poll watchdogs, trigger
    /// evacuations, or roll a maintenance wave.  Call
    /// [`finish`](FleetServer::finish) afterwards to drain and collect.
    pub fn run(&mut self, traffic: &[Arrival], mut hook: impl FnMut(&mut FleetServer, u64)) {
        for a in traffic {
            self.advance_all(a.offset);
            hook(self, a.offset);
            self.advance_all(a.offset);
            self.offer(a.id, &a.shape, a.offset);
        }
    }

    /// Drain every live node and return all records — harvested,
    /// fleet-level and live — rebased onto the fleet stream and merged
    /// in `(arrival, id)` order.
    pub fn finish(&mut self) -> Vec<RequestRecord> {
        for slot in self.slots.iter_mut().flatten() {
            slot.server.drain();
        }
        let mut all = self.records.clone();
        for slot in self.slots.iter().flatten() {
            for r in slot.server.records() {
                all.push(Self::rebased(r, slot.origin));
            }
        }
        all.sort_by_key(|r| (r.arrival, r.id));
        all
    }

    /// Drain node `i` at stream offset `offset` and evacuate its OS to
    /// the policy-selected peer (never inside `exclude_rack`).
    ///
    /// Returns `Ok(Some(target))` on success, `Ok(None)` when the node
    /// must not move right now: no valid target exists, or the node is
    /// itself hosting a parked guest (migrating its dom0 would strand
    /// the guest domain riding on its hypervisor).  In both cases the
    /// node keeps serving — dropping its OS with nowhere to put it
    /// would be worse than riding out the degradation.  On a migration
    /// error the node is marked degraded in the fleet view — the
    /// balancer routes away and the fleet keeps serving — and the
    /// error is returned for the caller's report.
    pub fn drain_node(
        &mut self,
        i: usize,
        offset: u64,
        exclude_rack: Option<usize>,
    ) -> Result<Option<usize>, MaintenanceError> {
        assert!(self.parked[i].is_none(), "node {i} is already evacuated");
        assert!(self.slots[i].is_some(), "node {i} has no live server");
        if self.parked.iter().flatten().any(|(_, host)| *host == i) {
            return Ok(None);
        }
        let fleet = Arc::clone(&self.fleet);
        let prev = fleet.status(i);
        fleet.set_status(i, NodeStatus::Draining);

        // Pick the target before tearing anything down.  The load key
        // is hosting-aware: a peer already hosting parked guests ranks
        // behind an empty one regardless of serving load.  Without
        // this, level serving loads tie toward the lowest index and a
        // whole rack's guests pile onto one host until its frame
        // allocator runs dry mid-migration.
        let mut hosted = vec![0usize; self.nodes.len()];
        for (_, host) in self.parked.iter().flatten() {
            hosted[*host] += 1;
        }
        let target = {
            let slots = &self.slots;
            self.policy
                .select_target(&fleet, i, exclude_rack, |j| match &slots[j] {
                    Some(s) => {
                        let t = s.server.abs(offset.saturating_sub(s.origin));
                        (
                            hosted[j] * 1_000_000 + s.server.queued(),
                            s.server.busy_cycles(t),
                        )
                    }
                    None => (usize::MAX, u64::MAX),
                })
        };
        let Some(target) = target else {
            fleet.set_status(i, prev);
            return Ok(None);
        };

        // Drain the admission queue, harvest the records, retire the
        // server: its sessions die with the OS about to migrate.
        let slot = self.slots[i].take().expect("draining a live node");
        let mut slot = slot;
        let t = slot.server.abs(offset.saturating_sub(slot.origin));
        slot.server.advance_to(t);
        slot.server.drain();
        let origin = slot.origin;
        for r in slot.server.records() {
            self.records.push(Self::rebased(r, origin));
        }
        drop(slot);

        let start_cycles = self.nodes[i].machine.boot_cpu().cycles();
        match self
            .policy
            .evacuate_tracked(&self.nodes[i], &self.nodes[target], &fleet, i)
        {
            Ok(guest) => {
                let end_cycles = self.nodes[i].machine.boot_cpu().cycles();
                self.downtimes.push(guest.report.downtime_cycles);
                self.evac_makespans.push(end_cycles.saturating_sub(start_cycles));
                self.parked[i] = Some((guest, target));
                fleet.set_status(i, NodeStatus::Evacuated);
                Ok(Some(target))
            }
            Err(e) => {
                fleet.set_status(i, NodeStatus::Degraded(format!("evacuation failed: {e}")));
                Err(e)
            }
        }
    }

    /// Migrate node `i`'s parked OS back home and rebuild its server
    /// with records rebased from `offset`.
    pub fn rehome_node(&mut self, i: usize, offset: u64) -> Result<(), MaintenanceError> {
        let (guest, host) = self.parked[i]
            .take()
            .expect("rehoming a node that is not evacuated");
        match return_home(guest, &self.nodes[host], &self.nodes[i]) {
            Ok(report) => {
                self.downtimes.push(report.downtime_cycles);
                self.fleet.set_status(i, NodeStatus::Healthy);
                self.fleet.set_phase(i, MigrationPhase::Idle);
                self.slots[i] = Some(Slot {
                    server: NodeServer::new(&self.nodes[i], i as u32, self.cfg),
                    origin: offset,
                });
                Ok(())
            }
            Err(e) => {
                self.fleet
                    .set_status(i, NodeStatus::Degraded(format!("rehome failed: {e}")));
                Err(e)
            }
        }
    }

    /// One step of the rolling wave: evacuate every live node of `rack`
    /// to peers outside it, hold the rack in maintenance for
    /// `maintenance_cycles`, then re-home and rebuild.  A member with no
    /// evacuation target is skipped (it keeps serving) rather than
    /// risking the fleet.
    pub fn maintain_rack(
        &mut self,
        rack: usize,
        offset: u64,
        maintenance_cycles: u64,
    ) -> Result<(), MaintenanceError> {
        let members = self.fleet.rack_members(rack);
        let span_start = members
            .first()
            .map(|&m| self.nodes[m].machine.boot_cpu().cycles())
            .unwrap_or(0);
        for &m in &members {
            if self.slots[m].is_some() && self.parked[m].is_none() {
                self.drain_node(m, offset, Some(rack))?;
            }
        }
        for &m in &members {
            if self.parked[m].is_some() {
                self.fleet.set_status(m, NodeStatus::Maintenance);
                self.nodes[m].machine.boot_cpu().tick(maintenance_cycles);
            }
        }
        for &m in &members {
            if self.parked[m].is_some() {
                self.rehome_node(m, offset)?;
            }
        }
        let span_end = members
            .first()
            .map(|&m| self.nodes[m].machine.boot_cpu().cycles())
            .unwrap_or(0);
        self.wave_spans.push(span_end.saturating_sub(span_start));
        Ok(())
    }

    /// The whole "patch Tuesday" wave at one offset: every rack in
    /// turn.  Benches roll racks across distinct offsets instead, via
    /// [`maintain_rack`](FleetServer::maintain_rack) from the run hook.
    pub fn patch_tuesday(
        &mut self,
        offset: u64,
        maintenance_cycles: u64,
    ) -> Result<usize, MaintenanceError> {
        let racks = self.fleet.racks();
        for rack in 0..racks {
            self.maintain_rack(rack, offset, maintenance_cycles)?;
        }
        Ok(racks)
    }

    /// One step of the rolling hypervisor live-update wave (DESIGN.md
    /// §16): every live node of `rack` rolls its VMM forward to
    /// `target_version` **in place** — no drain, no evacuation; guests
    /// keep running and the node keeps serving between updates.  A
    /// native node is attached for the duration of its updates and
    /// detached again; a node already virtual (e.g. hosting a parked
    /// guest) updates under its live domains.  Each node's resulting
    /// version is read back with [`xenon::liveupdate::status`] and
    /// published in the fleet view.  Returns how many nodes rolled
    /// forward; a node whose update rolls back is marked degraded (its
    /// incumbent VMM keeps running) and skipped.
    pub fn update_rack(&mut self, rack: usize, target_version: u32) -> usize {
        let members = self.fleet.rack_members(rack);
        let mut updated = 0;
        for &m in &members {
            if self.slots[m].is_none() || self.parked[m].is_some() {
                // Its OS lives on a peer; nothing runs here to update
                // under.  The node picks up the new version when its
                // OS re-homes and the next wave reaches it.
                continue;
            }
            let node = &self.nodes[m];
            let mercury = node.mercury();
            if mercury.hv_version() >= target_version {
                let (version, _) = xenon::liveupdate::status(&node.hv());
                self.fleet.set_hv_version(m, version);
                continue;
            }
            let cpu = node.machine.boot_cpu();
            let was_native = mercury.mode() == ExecMode::Native;
            if was_native {
                let out = mercury.switch_to_virtual(cpu);
                if !matches!(out, Ok(SwitchOutcome::Completed { .. })) {
                    self.fleet.set_status(
                        m,
                        NodeStatus::Degraded(format!("live-update attach failed: {out:?}")),
                    );
                    continue;
                }
            }
            let mut ok = true;
            while ok && mercury.hv_version() < target_version {
                let guests = node.hv().domains().len();
                let succ = Hypervisor::warm_up_versioned(&node.machine, mercury.hv_version() + 1);
                ok = mercury.stage_update(succ).is_ok()
                    && matches!(
                        mercury.live_update(cpu),
                        Ok(SwitchOutcome::Completed { .. })
                    );
                if ok {
                    debug_assert_eq!(
                        node.hv().domains().len(),
                        guests,
                        "an update must carry every domain across"
                    );
                } else {
                    // A rollback consumes the staged successor; drop
                    // anything a refused stage left behind too.
                    mercury.clear_staged_update();
                }
            }
            if was_native {
                // Back to native serving; a failure here leaves the
                // node virtual, which still serves.
                let _ = mercury.switch_to_native(cpu);
            }
            let (version, _doms) = xenon::liveupdate::status(&node.hv());
            self.fleet.set_hv_version(m, version);
            if ok {
                updated += 1;
            } else {
                self.fleet.set_status(
                    m,
                    NodeStatus::Degraded("live-update rolled back".to_string()),
                );
            }
        }
        updated
    }

    /// The whole live-update wave at one instant: every rack in turn
    /// rolls to `target_version` in place.  Unlike
    /// [`patch_tuesday`](FleetServer::patch_tuesday) nothing is
    /// drained — this is the DESIGN.md §16 alternative for
    /// hypervisor-only fixes, where the fleet converges
    /// ([`FleetState::min_hv_version`]) without a single migration.
    /// Returns how many nodes rolled forward.
    pub fn patch_tuesday_live_update(&mut self, target_version: u32) -> usize {
        let racks = self.fleet.racks();
        let mut updated = 0;
        for rack in 0..racks {
            updated += self.update_rack(rack, target_version);
        }
        updated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{generate, LoadConfig};
    use mercury_cluster::NodeConfig;
    use mercury_workloads::mix::CostMix;

    fn small_fleet(n: usize, rack_size: usize) -> FleetServer {
        let cluster = Cluster::launch(n, &NodeConfig::default());
        let cfg = ServerConfig {
            attach_echo_host: false,
            ..ServerConfig::default()
        };
        FleetServer::new(&cluster, rack_size, cfg, MigrationPolicy::default())
    }

    fn traffic(seed: u64, gap: u64, n: u32) -> Vec<Arrival> {
        generate(&LoadConfig {
            seed,
            mean_gap_cycles: gap,
            requests: n,
            mix: CostMix::web(),
        })
    }

    #[test]
    fn evacuation_mid_stream_loses_no_requests() {
        let mut fs = small_fleet(3, 3);
        let t = traffic(19, 30_000, 120);
        let mid = t[60].offset;
        let mut done = false;
        fs.run(&t, |fs, offset| {
            if !done && offset >= mid {
                done = true;
                let target = fs.drain_node(0, offset, None).unwrap();
                assert!(target.is_some(), "two healthy peers must yield a target");
            }
        });
        assert!(fs.is_evacuated(0));
        assert_eq!(fs.fleet().status(0), NodeStatus::Evacuated);
        let records = fs.finish();
        assert_eq!(records.len() as u64, fs.offered(), "zero lost requests");
        assert_eq!(records.len(), 120);
        // Post-evacuation arrivals all land on the surviving nodes.
        assert!(records
            .iter()
            .filter(|r| r.arrival > mid)
            .all(|r| r.node != 0));
        assert_eq!(fs.downtimes().len(), 1);
        assert!(fs.downtimes()[0] > 0);
        assert_eq!(fs.evac_makespans().len(), 1);
    }

    #[test]
    fn rehomed_node_serves_again_with_rebased_records() {
        let mut fs = small_fleet(2, 2);
        let t = traffic(31, 40_000, 90);
        let third = t[30].offset;
        let two_thirds = t[60].offset;
        let mut stage = 0;
        fs.run(&t, |fs, offset| {
            if stage == 0 && offset >= third {
                stage = 1;
                fs.drain_node(0, offset, None).unwrap().unwrap();
            } else if stage == 1 && offset >= two_thirds {
                stage = 2;
                fs.rehome_node(0, offset).unwrap();
            }
        });
        assert!(!fs.is_evacuated(0));
        assert_eq!(fs.fleet().status(0), NodeStatus::Healthy);
        let records = fs.finish();
        assert_eq!(records.len() as u64, fs.offered(), "zero lost requests");
        // The re-homed node takes traffic again, and its rebased record
        // times stay on the fleet stream (arrival can never precede the
        // rebuild offset).
        let back: Vec<_> = records
            .iter()
            .filter(|r| r.node == 0 && r.arrival >= two_thirds)
            .collect();
        assert!(!back.is_empty(), "re-homed node must serve again");
        for r in &records {
            assert!(r.start >= r.arrival && r.finish >= r.start);
        }
        // Evacuation + re-homing: two migrations, two downtimes.
        assert_eq!(fs.downtimes().len(), 2);
    }

    #[test]
    fn patch_tuesday_rolls_every_rack_and_heals() {
        let mut fs = small_fleet(4, 2);
        let t = traffic(43, 35_000, 80);
        let mid = t[40].offset;
        let mut done = false;
        fs.run(&t, |fs, offset| {
            if !done && offset >= mid {
                done = true;
                let racks = fs.patch_tuesday(offset, 50_000).unwrap();
                assert_eq!(racks, 2);
            }
        });
        for i in 0..4 {
            assert_eq!(fs.fleet().status(i), NodeStatus::Healthy, "node {i}");
            assert!(!fs.is_evacuated(i));
        }
        assert_eq!(fs.wave_spans().len(), 2);
        assert!(fs.wave_spans().iter().all(|&s| s >= 50_000));
        let records = fs.finish();
        assert_eq!(records.len() as u64, fs.offered(), "zero lost requests");
    }

    #[test]
    fn evacuations_spread_across_hosts_and_hosts_are_pinned() {
        let mut fs = small_fleet(4, 4);
        let t = traffic(11, 40_000, 60);
        let mid = t[20].offset;
        let mut done = false;
        fs.run(&t, |fs, offset| {
            if !done && offset >= mid {
                done = true;
                let h0 = fs.drain_node(0, offset, None).unwrap().unwrap();
                let h1 = fs.drain_node(1, offset, None).unwrap().unwrap();
                assert_ne!(h0, h1, "level-load guests must spread across hosts");
                // A node hosting a parked guest must refuse to move:
                // migrating its dom0 would strand the guest.
                assert_eq!(fs.drain_node(h0, offset, None).unwrap(), None);
            }
        });
        assert!(done);
        assert_eq!(fs.host_of(0).zip(fs.host_of(1)).map(|(a, b)| a == b), Some(false));
        let records = fs.finish();
        assert_eq!(records.len() as u64, fs.offered(), "zero lost requests");
    }

    #[test]
    fn live_update_wave_rolls_versions_without_draining() {
        let mut fs = small_fleet(4, 2);
        let t = traffic(7, 35_000, 80);
        let mid = t[40].offset;
        let mut done = false;
        fs.run(&t, |fs, offset| {
            if !done && offset >= mid {
                done = true;
                let updated = fs.patch_tuesday_live_update(2);
                assert_eq!(updated, 4, "every node rolls in place");
                assert_eq!(fs.fleet().min_hv_version(), 2, "fleet converged");
            }
        });
        for i in 0..4 {
            // No drain happened: every node is healthy, home, and back
            // in native mode with a v2 hypervisor warm underneath.
            assert_eq!(fs.fleet().status(i), NodeStatus::Healthy, "node {i}");
            assert!(!fs.is_evacuated(i));
            assert_eq!(fs.nodes()[i].hv().version(), 2);
            assert_eq!(fs.nodes()[i].mercury().mode(), ExecMode::Native);
        }
        assert!(fs.downtimes().is_empty(), "a live-update wave migrates nothing");
        let records = fs.finish();
        assert_eq!(records.len() as u64, fs.offered(), "zero lost requests");
    }

    #[test]
    fn live_update_wave_updates_under_a_hosted_guest() {
        let mut fs = small_fleet(3, 3);
        let t = traffic(13, 40_000, 60);
        let mid = t[20].offset;
        let late = t[40].offset;
        let mut stage = 0;
        fs.run(&t, |fs, offset| {
            if stage == 0 && offset >= mid {
                stage = 1;
                let host = fs.drain_node(0, offset, None).unwrap().unwrap();
                // The host is virtual with a parked guest riding on its
                // hypervisor; the wave must update it in place, guest
                // and all.  The evacuated node has no OS to update
                // under and keeps its old version in the view.
                let guests = fs.nodes()[host].hv().domains().len();
                assert!(guests > 1, "host carries the parked guest");
                let updated = fs.patch_tuesday_live_update(2);
                assert_eq!(updated, 2, "both live nodes roll; the husk waits");
                assert_eq!(fs.nodes()[host].hv().version(), 2);
                assert_eq!(fs.nodes()[host].hv().domains().len(), guests);
                assert_eq!(
                    fs.nodes()[host].mercury().mode(),
                    ExecMode::Virtual,
                    "a hosting node must stay virtual through the update"
                );
                assert_eq!(fs.fleet().min_hv_version(), 1, "the evacuee lags");
            } else if stage == 1 && offset >= late {
                stage = 2;
                fs.rehome_node(0, offset).unwrap();
                // The next wave step catches the straggler.
                assert_eq!(fs.patch_tuesday_live_update(2), 1);
                assert_eq!(fs.fleet().min_hv_version(), 2);
            }
        });
        assert_eq!(stage, 2);
        let records = fs.finish();
        assert_eq!(records.len() as u64, fs.offered(), "zero lost requests");
    }

    #[test]
    fn fleet_with_no_routable_node_sheds_at_fleet_level() {
        let mut fs = small_fleet(2, 2);
        // Rule out both nodes without touching their servers.
        fs.fleet().set_status(0, NodeStatus::Maintenance);
        fs.fleet().set_status(1, NodeStatus::Maintenance);
        let t = traffic(5, 50_000, 10);
        fs.run(&t, |_, _| {});
        let records = fs.finish();
        assert_eq!(records.len() as u64, fs.offered());
        assert!(records
            .iter()
            .all(|r| r.outcome == Outcome::Shed && r.node == FLEET_SHED_NODE));
    }
}
