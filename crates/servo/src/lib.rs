//! # mercury-servo — a deterministic request-serving layer on the
//! simulated cycle clock
//!
//! The paper's headline claim — attaching and detaching the VMM is
//! invisible to running applications (§5, ~0.2 ms per switch) — has so
//! far only been measured as raw switch cycles.  A production operator
//! would measure it differently: *what happens to request tail latency
//! while the machine self-virtualizes under load?*  This crate provides
//! the serving machinery to ask exactly that question (DESIGN.md §13):
//!
//! * [`loadgen`] — an **open-loop load generator**: a seeded SplitMix64
//!   arrival process with exponential inter-arrival gaps and request
//!   shapes drawn from the weighted cost mixes in
//!   [`mercury_workloads::mix`].  Open-loop means arrivals do not slow
//!   down when the server stalls — a switch pause turns directly into
//!   queueing, as it would with real users.
//! * [`sched`] — a **per-node run-to-completion scheduler**: one worker
//!   per CPU, a bounded FIFO admission queue, and tail-drop load
//!   shedding when the queue is full.  Every request records its
//!   arrival/start/finish cycles exactly, on the simulated clock.
//! * [`balance`] — a **least-loaded balancer** dispatching one arrival
//!   stream across the [`mercury_cluster::Node`]s of a cluster.
//! * [`stats`] — **exact tail percentiles** (p50/p99/p999, nearest
//!   rank) over the recorded latencies; no sampling, no sketching.
//!
//! Everything runs on simulated cycles and a single host thread, so a
//! serving run is a pure function of its seed: the `serving_tail`
//! bench runs every scenario twice in-process and requires
//! bit-identical request records before archiving
//! `serving_results.json`.
//!
//! The scheduler interoperates with the rest of the suite: the run
//! hooks let a [`mercury_cluster::Watchdog`] poll (and attach/detach)
//! between requests, `faultgen` campaigns fire underneath live
//! traffic, and `merctrace` probes (`servo.request` spans,
//! `servo.sojourn` histograms, `servo.{offered,completed,shed}`
//! counters) span the request lifecycle.
//!
//! ```
//! use mercury_cluster::{Node, NodeConfig};
//! use mercury_servo::{generate, LoadConfig, NodeServer, ServerConfig, tail_stats};
//! use mercury_workloads::mix::CostMix;
//!
//! let node = Node::launch("n0", &NodeConfig::default());
//! let mut server = NodeServer::new(&node, 0, ServerConfig::default());
//! let traffic = generate(&LoadConfig {
//!     seed: 42,
//!     mean_gap_cycles: 60_000,
//!     requests: 40,
//!     mix: CostMix::web(),
//! });
//! server.run(&traffic, |_, _| {});
//! let stats = tail_stats(server.records());
//! assert_eq!(stats.offered, 40);
//! assert_eq!(stats.completed + stats.shed, 40);
//! assert!(stats.p999_cycles >= stats.p50_cycles);
//! ```

#![deny(missing_docs)]

pub mod balance;
pub mod fleet;
pub mod loadgen;
pub mod sched;
pub mod stats;

pub use balance::ClusterServer;
pub use fleet::{FleetServer, FLEET_SHED_NODE};
pub use loadgen::{generate, Arrival, LoadConfig};
pub use sched::{NodeServer, Outcome, RequestRecord, ServerConfig};
pub use stats::{tail_stats, TailStats};
