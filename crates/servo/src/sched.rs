//! Per-node run-to-completion scheduling with bounded admission.
//!
//! A [`NodeServer`] serves one [`Node`]: one worker per simulated CPU,
//! each with its own kernel session, working file and (optional) echo
//! socket.  Scheduling is run-to-completion — a worker executes one
//! request from arrival of CPU control to completion, with no
//! preemption — which mirrors both the simulator's explicit service
//! points and the busy-polling request loops of real serving stacks.
//!
//! Admission is a bounded FIFO queue: an arrival finding an idle worker
//! starts immediately; otherwise it queues if there is room and is
//! **shed** (tail drop) if there is not.  Shedding is recorded, never
//! silent: the denominator of every tail percentile is the *offered*
//! load (DESIGN.md §13.2).
//!
//! The event loop is strictly deterministic: workers are simulated
//! serially on one host thread, each on its own simulated-cycle clock,
//! and ties (two workers free at the same cycle) break toward the
//! lower worker index.  External machinery — a watchdog poll, an
//! explicit mode switch — runs in the [`NodeServer::run`] hook between
//! dispatches, on the boot CPU; the scheduler resynchronizes its
//! worker clock afterwards, so switch cycles charged there appear as
//! queueing delay to the requests behind them, exactly as on real
//! hardware.

use crate::loadgen::Arrival;
use mercury_cluster::Node;
use mercury_workloads::mix::RequestShape;
use nimbus::kernel::{IdleTask, ReadOutcome, WriteOutcome};
use nimbus::Session;
use simx86::devices::EchoWire;
use simx86::evclock::{EvClock, EventKind};
use std::collections::VecDeque;
use std::sync::Arc;

/// How one request left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to completion.
    Completed,
    /// Tail-dropped at admission: the queue was full.
    Shed,
}

/// The exact lifecycle of one request, all times in simulated cycles
/// relative to the node's traffic start ([`NodeServer::base`]) so two
/// same-seed runs compare bit-identically regardless of how much
/// simulated time node setup consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// Request id from the arrival stream.
    pub id: u64,
    /// Shape name (from the cost mix).
    pub shape: &'static str,
    /// Node that served (or shed) it.
    pub node: u32,
    /// Worker (CPU index) that ran it; the admitting CPU for sheds.
    pub worker: u32,
    /// Arrival offset.
    pub arrival: u64,
    /// Service start offset (equals `arrival` for sheds).
    pub start: u64,
    /// Completion offset (equals `arrival` for sheds).
    pub finish: u64,
    /// Completed or shed.
    pub outcome: Outcome,
}

impl RequestRecord {
    /// Time in system (arrival → finish); `None` for sheds.
    pub fn sojourn(&self) -> Option<u64> {
        match self.outcome {
            Outcome::Completed => Some(self.finish - self.arrival),
            Outcome::Shed => None,
        }
    }

    /// Time queued before service began; `None` for sheds.
    pub fn queue_delay(&self) -> Option<u64> {
        match self.outcome {
            Outcome::Completed => Some(self.start - self.arrival),
            Outcome::Shed => None,
        }
    }
}

/// Scheduler tuning.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Workers to run (one per CPU, from CPU 0 up).  Clamped to the
    /// node's CPU count.
    pub workers: usize,
    /// Bounded admission queue capacity (requests beyond the workers).
    pub queue_capacity: usize,
    /// Attach an in-process echo host to the node's NIC (port-swapping
    /// [`EchoWire`], as the netperf testbeds do) so `net_echoes` ops
    /// get replies.  Leave off for nodes whose NIC is wired to a
    /// cluster peer; echo sends then fall back to fire-and-forget.
    pub attach_echo_host: bool,
    /// Size of each worker's circular working-file window, bytes.
    pub io_window_bytes: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 1,
            queue_capacity: 64,
            attach_echo_host: true,
            io_window_bytes: 16 * 1024,
        }
    }
}

/// A queued, admitted request.
#[derive(Debug, Clone, Copy)]
struct Pending {
    id: u64,
    shape: RequestShape,
    arrival_abs: u64,
}

/// One serving worker: a session pinned to one CPU plus its working
/// state.
struct Worker {
    sess: Session,
    /// Working-file descriptor (in this worker's process).
    fd: usize,
    /// Echo socket, when the node has an echo host.
    sock: Option<usize>,
    /// Absolute cycle at which this worker is next idle.
    free_at: u64,
    /// Circular write position within the io window.
    wpos: u64,
    /// Circular read position within the io window.
    rpos: u64,
}

/// The run-to-completion server for one node.
///
/// ```
/// use mercury_cluster::{Node, NodeConfig};
/// use mercury_servo::sched::{NodeServer, Outcome, ServerConfig};
/// use mercury_servo::loadgen::{generate, LoadConfig};
/// use mercury_workloads::mix::CostMix;
///
/// let node = Node::launch("n0", &NodeConfig::default());
/// let mut server = NodeServer::new(&node, 0, ServerConfig::default());
/// let traffic = generate(&LoadConfig {
///     seed: 1, mean_gap_cycles: 80_000, requests: 25, mix: CostMix::web(),
/// });
/// server.run(&traffic, |_, _| {});
/// // Run-to-completion on one worker: completions preserve arrival order.
/// let ids: Vec<u64> = server.records().iter()
///     .filter(|r| r.outcome == Outcome::Completed).map(|r| r.id).collect();
/// let mut sorted = ids.clone();
/// sorted.sort();
/// assert_eq!(ids, sorted);
/// ```
pub struct NodeServer {
    node: Arc<Node>,
    node_index: u32,
    cfg: ServerConfig,
    workers: Vec<Worker>,
    queue: VecDeque<Pending>,
    records: Vec<RequestRecord>,
    /// Absolute cycle of traffic start; all record times are relative
    /// to this.
    base: u64,
    payload: Vec<u8>,
    /// Where a worker's open-loop gap (arrival later than `free_at`)
    /// is donated before the remainder is idled away; `None` blank-
    /// ticks the whole gap.
    donor: Option<IdleTask>,
    /// The node machine's event clock.  Arrivals register deadlines on
    /// it and the donor-leftover part of every open-loop gap is
    /// fast-forwarded through it, so idle serving time skips instead of
    /// ticking — with bit-identical accounting (DESIGN.md §14).
    evclock: Arc<EvClock>,
}

impl NodeServer {
    /// Build the server: fork one process per extra worker, adopt them
    /// on their CPUs, open working files, prefill the io windows, and
    /// align every worker clock to a common traffic-start cycle.
    pub fn new(node: &Arc<Node>, node_index: u32, cfg: ServerConfig) -> NodeServer {
        let kernel = node.kernel();
        let workers = cfg.workers.clamp(1, node.machine.num_cpus());
        if cfg.attach_echo_host {
            // Same in-process echo peer as the netperf testbeds: the
            // reply swaps the port header so it lands on the sender.
            node.machine.nic.connect(Arc::new(EchoWire::with_transform(
                Arc::clone(&node.machine.nic),
                Arc::clone(&node.machine.intc),
                |pkt| {
                    let mut out = pkt.to_vec();
                    if out.len() >= 4 {
                        out.swap(0, 2);
                        out.swap(1, 3);
                    }
                    out
                },
            )));
        }

        // CPU 0's boot process forks a child per extra worker; the
        // other CPUs adopt them from the run queue.
        let sess0 = Session::new(Arc::clone(&kernel), 0);
        for _ in 1..workers {
            sess0.fork().expect("fork worker process");
        }
        let window = cfg.io_window_bytes.max(4_096) as u64;
        let chunk = vec![0xA5u8; 2_048];
        let mut built = Vec::with_capacity(workers);
        for w in 0..workers {
            let sess = Session::new(Arc::clone(&kernel), w);
            if w > 0 {
                while sess.current_pid().is_none() {
                    sess.idle().expect("adopt worker process");
                }
            }
            let fd = sess
                .open(&format!("servo_n{node_index}_w{w}.log"), true)
                .expect("open working file");
            // Prefill the window so reads always hit data.
            let mut written = 0u64;
            while written < window {
                let n = chunk.len().min((window - written) as usize);
                match sess.write(fd, &chunk[..n]).expect("prefill") {
                    WriteOutcome::Wrote(k) => written += k as u64,
                    other => panic!("prefill write blocked: {other:?}"),
                }
            }
            let sock = cfg.attach_echo_host.then(|| {
                sess.socket(40_000 + node_index as u16 * 16 + w as u16)
                    .expect("bind echo socket")
            });
            built.push(Worker {
                sess,
                fd,
                sock,
                free_at: 0,
                wpos: 0,
                rpos: 0,
            });
        }

        // Align all worker clocks to the same traffic-start cycle.
        let base = built
            .iter()
            .map(|w| w.sess.cpu().cycles())
            .max()
            .expect("at least one worker");
        for w in &mut built {
            let c = w.sess.cpu();
            c.tick(base - c.cycles());
            w.free_at = base;
        }

        NodeServer {
            node: Arc::clone(node),
            node_index,
            cfg,
            workers: built,
            queue: VecDeque::new(),
            records: Vec::new(),
            base,
            payload: chunk,
            donor: None,
            evclock: Arc::clone(&node.machine.evclock),
        }
    }

    /// Install (or clear) the open-loop gap donor.  The donor is called
    /// with `(cpu, gap_cycles)` whenever a worker would otherwise idle
    /// until the next request's start, and returns the cycles it
    /// consumed (at most the gap); the scheduler idles away the rest.
    pub fn set_idle_donor(&mut self, donor: Option<IdleTask>) {
        self.donor = donor;
    }

    /// Donate open-loop gaps to the node's background scrubber —
    /// Mercury's always-on dirty tracking turns serving slack into
    /// attach-time savings.  Donation happens only while the node is
    /// native; in virtual mode the accounting is already live.
    ///
    /// Deterministic: the scrubber's take-first-dirty order and the
    /// gap lengths are pure functions of the seeded run.
    pub fn donate_gaps_to_scrubber(&mut self) {
        let node = Arc::clone(&self.node);
        self.donor = Some(Arc::new(move |cpu, gap| {
            if node.mercury().mode() == mercury::ExecMode::Native {
                node.scrubber().donate(cpu, gap)
            } else {
                0
            }
        }));
    }

    /// The node being served.
    pub fn node(&self) -> &Arc<Node> {
        &self.node
    }

    /// Absolute simulated cycle of traffic start.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Convert a stream offset to this node's absolute cycle.
    pub fn abs(&self, offset: u64) -> u64 {
        self.base + offset
    }

    /// Everything recorded so far, in completion order (sheds inline at
    /// their arrival).
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Requests currently queued (admitted, not yet started).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Remaining busy work across workers at absolute cycle `t`: the
    /// balancer's second-order load signal.
    pub fn busy_cycles(&self, t: u64) -> u64 {
        self.workers
            .iter()
            .map(|w| w.free_at.saturating_sub(t))
            .sum()
    }

    /// Fold work done outside the scheduler (watchdog polls, explicit
    /// switches in a run hook — anything that advanced a worker CPU's
    /// clock) back into that worker's availability.  Called
    /// automatically by [`advance_to`](NodeServer::advance_to) and
    /// [`offer`](NodeServer::offer).
    pub fn sync_external(&mut self) {
        for w in &mut self.workers {
            w.free_at = w.free_at.max(w.sess.cpu().cycles());
        }
    }

    /// Index of the worker with the earliest `free_at` (ties to the
    /// lowest index — the determinism rule).
    fn earliest_worker(&self) -> usize {
        let mut best = 0;
        for (i, w) in self.workers.iter().enumerate().skip(1) {
            if w.free_at < self.workers[best].free_at {
                best = i;
            }
        }
        best
    }

    /// Replay completions that happen strictly before absolute cycle
    /// `t`: any worker freeing before `t` takes the queue head at its
    /// free cycle, run-to-completion, until no worker frees before `t`
    /// or the queue is empty.
    pub fn advance_to(&mut self, t: u64) {
        self.sync_external();
        while !self.queue.is_empty() {
            let w = self.earliest_worker();
            if self.workers[w].free_at >= t {
                break;
            }
            let p = self.queue.pop_front().expect("nonempty queue");
            let start = self.workers[w].free_at;
            self.execute(w, p, start);
        }
    }

    /// Offer one arrival at absolute cycle `t` (callers must have
    /// [`advance_to`](NodeServer::advance_to)`(t)` first): start it on
    /// an idle worker, queue it, or shed it.
    pub fn offer(&mut self, id: u64, shape: &RequestShape, t: u64) {
        self.sync_external();
        merctrace::counter!(0usize, "servo.offered", 1, t);
        let p = Pending {
            id,
            shape: *shape,
            arrival_abs: t,
        };
        let w = self.earliest_worker();
        if self.workers[w].free_at <= t {
            self.execute(w, p, t);
        } else if self.queue.len() < self.cfg.queue_capacity {
            self.queue.push_back(p);
        } else {
            merctrace::counter!(0usize, "servo.shed", 1, t);
            self.records.push(RequestRecord {
                id,
                shape: shape.name,
                node: self.node_index,
                worker: 0,
                arrival: t - self.base,
                start: t - self.base,
                finish: t - self.base,
                outcome: Outcome::Shed,
            });
        }
    }

    /// Run every queued request to completion.
    pub fn drain(&mut self) {
        self.sync_external();
        while let Some(p) = self.queue.pop_front() {
            let w = self.earliest_worker();
            let start = self.workers[w].free_at.max(p.arrival_abs);
            self.execute(w, p, start);
        }
    }

    /// Serve a whole arrival stream.  `hook` runs before each dispatch
    /// with `(self, offset)` — the place to poll a watchdog, trigger a
    /// mode switch, or fire fault campaigns on the simulated clock.
    pub fn run(&mut self, traffic: &[Arrival], mut hook: impl FnMut(&mut NodeServer, u64)) {
        for a in traffic {
            let t = self.abs(a.offset);
            // Register the arrival as an event-clock deadline: any idle
            // fast-forward on this machine (a halted kernel CPU, a
            // watchdog backoff) stops at `t` rather than skipping past
            // the arrival.
            let ev = self.evclock.schedule(t, EventKind::RequestArrival);
            self.advance_to(t);
            hook(self, a.offset);
            // The hook may have advanced worker clocks (switch cycles);
            // late queued work runs first, then the new arrival lands.
            self.advance_to(t);
            self.offer(a.id, &a.shape, t);
            // Admitted (or shed): the deadline is serviced, retire it.
            self.evclock.cancel(ev);
        }
        self.drain();
    }

    /// Run one request on worker `w`, starting at absolute cycle
    /// `start` (its CPU idles forward to `start` first).
    fn execute(&mut self, w: usize, p: Pending, start: u64) {
        let window = self.cfg.io_window_bytes.max(4_096) as u64;
        let shape = p.shape;
        let io = (shape.io_bytes as usize).min(self.payload.len());
        let wk = &mut self.workers[w];
        let cpu = wk.sess.cpu();
        debug_assert!(start >= cpu.cycles(), "worker clock ran past its slot");
        let gap = start - cpu.cycles();
        if gap > 0 {
            if let Some(donor) = &self.donor {
                let used = donor(cpu, gap);
                debug_assert!(used <= gap, "idle donor overran the open-loop gap");
            }
            // Fast-forward whatever the donor left of the gap — the
            // charge is identical to ticking it away cycle by cycle
            // (the evclock neutrality contract, DESIGN.md §14).
            self.evclock.advance(cpu, start);
        }
        let started = cpu.cycles();
        merctrace::span_begin!(cpu.id, "servo.request", started);

        wk.sess.compute(shape.compute_cycles);
        for _ in 0..shape.file_appends {
            // Circular log write: bounded file, append-shaped cost.
            wk.sess.lseek(wk.fd, wk.wpos).expect("log seek");
            match wk.sess.write(wk.fd, &self.payload[..io]).expect("log write") {
                WriteOutcome::Wrote(_) => {}
                other => panic!("log write blocked: {other:?}"),
            }
            wk.wpos = (wk.wpos + io as u64) % (window - io as u64 + 1);
        }
        for _ in 0..shape.file_reads {
            wk.sess.lseek(wk.fd, wk.rpos).expect("read seek");
            match wk.sess.read(wk.fd, io).expect("log read") {
                ReadOutcome::Data(_) => {}
                other => panic!("log read blocked: {other:?}"),
            }
            wk.rpos = (wk.rpos + io as u64) % (window - io as u64 + 1);
        }
        for _ in 0..shape.net_echoes {
            // No socket (cluster-wired NIC): fire-and-forget shape.
            if let Some(fd) = wk.sock {
                let n = io.min(1_024);
                wk.sess
                    .sendto(fd, 50_000, &self.payload[..n])
                    .expect("echo send");
                // The echo host bounces synchronously; a missing
                // reply here would be a wiring bug, not load.
                wk.sess
                    .recvfrom_nonblock(fd)
                    .expect("echo recv")
                    .expect("echo host attached but no reply");
            }
        }

        let finish = cpu.cycles();
        merctrace::span_end!(cpu.id, "servo.request", finish);
        merctrace::hist!(cpu.id, "servo.sojourn", finish - p.arrival_abs, finish);
        merctrace::counter!(cpu.id, "servo.completed", 1, finish);
        wk.free_at = finish;
        self.records.push(RequestRecord {
            id: p.id,
            shape: shape.name,
            node: self.node_index,
            worker: w as u32,
            arrival: p.arrival_abs - self.base,
            start: started - self.base,
            finish: finish - self.base,
            outcome: Outcome::Completed,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{generate, LoadConfig};
    use mercury_cluster::NodeConfig;
    use mercury_workloads::mix::CostMix;

    fn traffic(seed: u64, gap: u64, n: u32) -> Vec<Arrival> {
        generate(&LoadConfig {
            seed,
            mean_gap_cycles: gap,
            requests: n,
            mix: CostMix::oltp(),
        })
    }

    #[test]
    fn every_offered_request_is_accounted() {
        let node = Node::launch("n0", &NodeConfig::default());
        let mut server = NodeServer::new(&node, 0, ServerConfig::default());
        let t = traffic(11, 40_000, 300);
        server.run(&t, |_, _| {});
        assert_eq!(server.records().len(), 300);
        let completed = server
            .records()
            .iter()
            .filter(|r| r.outcome == Outcome::Completed)
            .count();
        assert!(completed > 0);
        for r in server.records() {
            assert!(r.start >= r.arrival);
            assert!(r.finish >= r.start);
        }
    }

    #[test]
    fn single_worker_preserves_arrival_order() {
        let node = Node::launch("n0", &NodeConfig::default());
        let mut server = NodeServer::new(&node, 0, ServerConfig::default());
        let t = traffic(23, 20_000, 200);
        server.run(&t, |_, _| {});
        let ids: Vec<u64> = server
            .records()
            .iter()
            .filter(|r| r.outcome == Outcome::Completed)
            .map(|r| r.id)
            .collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "run-to-completion FIFO must not reorder");
    }

    #[test]
    fn tiny_queue_sheds_under_overload() {
        let node = Node::launch("n0", &NodeConfig::default());
        let mut server = NodeServer::new(
            &node,
            0,
            ServerConfig {
                queue_capacity: 2,
                ..ServerConfig::default()
            },
        );
        // Mean gap far below the per-request cost: the queue must fill.
        let t = traffic(7, 1_000, 200);
        server.run(&t, |_, _| {});
        let shed = server
            .records()
            .iter()
            .filter(|r| r.outcome == Outcome::Shed)
            .count();
        assert!(shed > 0, "overload with capacity 2 must shed");
        assert_eq!(server.records().len(), 200);
    }

    #[test]
    fn same_seed_runs_are_bit_identical() {
        let run = || {
            let node = Node::launch("n0", &NodeConfig::default());
            let mut server = NodeServer::new(&node, 0, ServerConfig::default());
            server.run(&traffic(5, 30_000, 150), |_, _| {});
            server.records().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn open_loop_gaps_feed_the_scrubber() {
        let node = Node::launch("n0", &NodeConfig::default());
        // Dirty some table frames natively before traffic starts.
        let sess = node.session();
        let va = sess
            .mmap(8, nimbus::mm::Prot::RW, nimbus::kernel::MmapBacking::Anon)
            .unwrap();
        for p in 0..8u64 {
            sess.poke(
                simx86::paging::VirtAddr(va.0 + p * simx86::paging::PAGE_SIZE),
                p,
            )
            .unwrap();
        }
        let backlog0 = node.scrubber().backlog();
        assert!(backlog0 > 0, "pokes must dirty tables");

        // Sparse arrivals leave open-loop gaps; with donation wired the
        // gaps retire the dirty backlog instead of idling away.
        let mut server = NodeServer::new(&node, 0, ServerConfig::default());
        server.donate_gaps_to_scrubber();
        server.run(&traffic(13, 200_000, 50), |_, _| {});
        assert!(node.scrubber().revalidated() > 0, "gaps must scrub");
        assert!(node.scrubber().backlog() < backlog0);
    }

    #[test]
    fn two_workers_beat_one_on_tail() {
        let mk = |workers| {
            let node = Node::launch(
                "n0",
                &NodeConfig {
                    num_cpus: 2,
                    ..NodeConfig::default()
                },
            );
            let mut server = NodeServer::new(
                &node,
                0,
                ServerConfig {
                    workers,
                    ..ServerConfig::default()
                },
            );
            server.run(&traffic(9, 15_000, 300), |_, _| {});
            let mut soj: Vec<u64> = server.records().iter().filter_map(|r| r.sojourn()).collect();
            soj.sort();
            soj[soj.len() * 99 / 100]
        };
        assert!(
            mk(2) <= mk(1),
            "adding a worker must not worsen the p99 at fixed load"
        );
    }
}
