//! Cluster-wide least-loaded balancing.
//!
//! A [`ClusterServer`] fronts several [`NodeServer`]s with one arrival
//! stream, dispatching each request to the least-loaded node at its
//! arrival instant.  "Least loaded" is a lexicographic key: fewest
//! queued requests first, then least remaining busy work, then lowest
//! node index — the final tiebreak is what keeps the decision
//! deterministic when nodes are exactly level.
//!
//! Each node keeps its own simulated clock (nodes boot independently,
//! so their absolute cycle counts differ); the balancer works in
//! stream *offsets* and converts per node.  This mirrors a fleet
//! behind a load balancer: the balancer sees one wall clock, each node
//! its own uptime.

use crate::loadgen::Arrival;
use crate::sched::{NodeServer, RequestRecord};
use mercury_cluster::fleet::FleetState;
use std::sync::Arc;

/// A least-loaded dispatcher over a set of node servers.
///
/// ```
/// use mercury_cluster::{Cluster, NodeConfig};
/// use mercury_servo::balance::ClusterServer;
/// use mercury_servo::loadgen::{generate, LoadConfig};
/// use mercury_servo::sched::{NodeServer, Outcome, ServerConfig};
/// use mercury_workloads::mix::CostMix;
///
/// let cluster = Cluster::launch(2, &NodeConfig::default());
/// let cfg = ServerConfig { attach_echo_host: false, ..ServerConfig::default() };
/// let mut lb = ClusterServer::new(
///     cluster.nodes.iter().enumerate()
///         .map(|(i, n)| NodeServer::new(n, i as u32, cfg))
///         .collect(),
/// );
/// let traffic = generate(&LoadConfig {
///     seed: 3, mean_gap_cycles: 12_000, requests: 60, mix: CostMix::web(),
/// });
/// lb.run(&traffic, |_, _| {});
/// let records = lb.records();
/// assert_eq!(records.len(), 60);
/// // Under load, a two-node fleet actually spreads the work.
/// assert!(records.iter().any(|r| r.node == 0));
/// assert!(records.iter().any(|r| r.node == 1));
/// ```
pub struct ClusterServer {
    nodes: Vec<NodeServer>,
    /// Optional shared fleet view: when present, dispatch is
    /// migration-aware (see [`least_loaded`](ClusterServer::least_loaded)).
    fleet: Option<Arc<FleetState>>,
}

impl ClusterServer {
    /// Wrap the given node servers (dispatch order = vector order).
    pub fn new(nodes: Vec<NodeServer>) -> ClusterServer {
        assert!(!nodes.is_empty(), "balancer needs at least one node");
        ClusterServer { nodes, fleet: None }
    }

    /// Wrap the node servers with a shared fleet-state view whose node
    /// `i` corresponds to `nodes[i]`.  Dispatch then keys on
    /// [`FleetState::balance_class`] before queue depth: a node
    /// mid-stop-and-copy cannot win the least-loaded tiebreak against a
    /// healthy idle peer, and evacuated/maintenance nodes are skipped
    /// entirely.
    pub fn with_fleet_state(nodes: Vec<NodeServer>, fleet: Arc<FleetState>) -> ClusterServer {
        assert!(!nodes.is_empty(), "balancer needs at least one node");
        assert_eq!(
            nodes.len(),
            fleet.len(),
            "fleet view must cover exactly the balanced nodes"
        );
        ClusterServer {
            nodes,
            fleet: Some(fleet),
        }
    }

    /// The node servers, for per-node inspection.
    pub fn nodes(&self) -> &[NodeServer] {
        &self.nodes
    }

    /// Mutable access to one node server (e.g. for a hook driving a
    /// switch on a specific node).
    pub fn node_mut(&mut self, i: usize) -> &mut NodeServer {
        &mut self.nodes[i]
    }

    /// All request records across nodes, merged in arrival-offset order
    /// (ties by request id — unique, so the order is total).
    pub fn records(&self) -> Vec<RequestRecord> {
        let mut all: Vec<RequestRecord> = self
            .nodes
            .iter()
            .flat_map(|n| n.records().iter().copied())
            .collect();
        all.sort_by_key(|r| (r.arrival, r.id));
        all
    }

    /// Serve a whole arrival stream across the fleet.  `hook` runs
    /// before each dispatch with `(self, offset)`, after every node has
    /// been advanced to `offset`.
    pub fn run(&mut self, traffic: &[Arrival], mut hook: impl FnMut(&mut ClusterServer, u64)) {
        for a in traffic {
            for n in &mut self.nodes {
                let t = n.abs(a.offset);
                n.advance_to(t);
            }
            hook(self, a.offset);
            let pick = self.least_loaded(a.offset);
            let n = &mut self.nodes[pick];
            let t = n.abs(a.offset);
            n.advance_to(t);
            n.offer(a.id, &a.shape, t);
        }
        for n in &mut self.nodes {
            n.drain();
        }
    }

    /// Index of the least-loaded node at stream offset `offset`.
    ///
    /// Without a fleet view this is the classic `(queued, busy, index)`
    /// key.  With one, the node's [`FleetState::balance_class`] leads
    /// the key — migration phase and degradation outrank raw load — and
    /// undispatchable nodes (class `None`) are skipped.  If the view
    /// rules out every node, dispatch falls back to plain least-loaded
    /// rather than dropping the request on the floor; fleet-level
    /// shedding is the caller's policy (`FleetServer` synthesizes shed
    /// records instead of calling in here).
    fn least_loaded(&self, offset: u64) -> usize {
        let mut best: Option<(u64, usize, u64, usize)> = None;
        for (i, n) in self.nodes.iter().enumerate() {
            let class = match &self.fleet {
                Some(fleet) => match fleet.balance_class(i) {
                    Some(c) => c,
                    None => continue,
                },
                None => 0,
            };
            let key = (class, n.queued(), n.busy_cycles(n.abs(offset)), i);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        match best {
            Some((_, _, _, i)) => i,
            None => {
                let mut fallback = 0usize;
                let mut fallback_key = (usize::MAX, u64::MAX);
                for (i, n) in self.nodes.iter().enumerate() {
                    let key = (n.queued(), n.busy_cycles(n.abs(offset)));
                    if key < fallback_key {
                        fallback_key = key;
                        fallback = i;
                    }
                }
                fallback
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{generate, LoadConfig};
    use crate::sched::{Outcome, ServerConfig};
    use mercury_cluster::{Cluster, NodeConfig};
    use mercury_workloads::mix::CostMix;

    fn fleet(n: usize) -> ClusterServer {
        let cluster = Cluster::launch(n, &NodeConfig::default());
        let cfg = ServerConfig {
            attach_echo_host: false,
            ..ServerConfig::default()
        };
        ClusterServer::new(
            cluster
                .nodes
                .iter()
                .enumerate()
                .map(|(i, node)| NodeServer::new(node, i as u32, cfg))
                .collect(),
        )
    }

    #[test]
    fn spreads_load_and_accounts_everything() {
        let mut lb = fleet(3);
        let traffic = generate(&LoadConfig {
            seed: 17,
            mean_gap_cycles: 8_000,
            requests: 400,
            mix: CostMix::oltp(),
        });
        lb.run(&traffic, |_, _| {});
        let records = lb.records();
        assert_eq!(records.len(), 400);
        for node in 0..3u32 {
            assert!(
                records.iter().any(|r| r.node == node),
                "node {node} got no traffic under sustained load"
            );
        }
    }

    #[test]
    fn fleet_runs_are_seed_deterministic() {
        let run = || {
            let mut lb = fleet(2);
            let traffic = generate(&LoadConfig {
                seed: 29,
                mean_gap_cycles: 10_000,
                requests: 200,
                mix: CostMix::web(),
            });
            lb.run(&traffic, |_, _| {});
            lb.records()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stop_and_copy_node_loses_the_level_tiebreak() {
        use mercury_cluster::fleet::{FleetState, MigrationPhase};

        let cluster = Cluster::launch(2, &NodeConfig::default());
        let cfg = ServerConfig {
            attach_echo_host: false,
            ..ServerConfig::default()
        };
        let fleet = FleetState::new(2, 2);
        // Node 0 would win every level tiebreak by index; pin it in
        // stop-and-copy and the fleet-aware key must route around it.
        fleet.set_phase(0, MigrationPhase::StopAndCopy);
        let mut lb = ClusterServer::with_fleet_state(
            cluster
                .nodes
                .iter()
                .enumerate()
                .map(|(i, node)| NodeServer::new(node, i as u32, cfg))
                .collect(),
            fleet,
        );
        let traffic = generate(&LoadConfig {
            seed: 7,
            mean_gap_cycles: 50_000,
            requests: 30,
            mix: CostMix::web(),
        });
        lb.run(&traffic, |_, _| {});
        let records = lb.records();
        assert_eq!(records.len(), 30);
        assert!(
            records.iter().all(|r| r.node == 1),
            "a node mid-stop-and-copy must not win the least-loaded tiebreak"
        );
    }

    #[test]
    fn two_nodes_shed_less_than_one() {
        let overload = |n| {
            let mut lb = fleet(n);
            let traffic = generate(&LoadConfig {
                seed: 41,
                mean_gap_cycles: 2_000,
                requests: 300,
                mix: CostMix::analytics(),
            });
            lb.run(&traffic, |_, _| {});
            lb.records()
                .iter()
                .filter(|r| r.outcome == Outcome::Shed)
                .count()
        };
        assert!(
            overload(2) <= overload(1),
            "adding a node must not increase shedding at fixed load"
        );
    }
}
