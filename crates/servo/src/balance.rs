//! Cluster-wide least-loaded balancing.
//!
//! A [`ClusterServer`] fronts several [`NodeServer`]s with one arrival
//! stream, dispatching each request to the least-loaded node at its
//! arrival instant.  "Least loaded" is a lexicographic key: fewest
//! queued requests first, then least remaining busy work, then lowest
//! node index — the final tiebreak is what keeps the decision
//! deterministic when nodes are exactly level.
//!
//! Each node keeps its own simulated clock (nodes boot independently,
//! so their absolute cycle counts differ); the balancer works in
//! stream *offsets* and converts per node.  This mirrors a fleet
//! behind a load balancer: the balancer sees one wall clock, each node
//! its own uptime.

use crate::loadgen::Arrival;
use crate::sched::{NodeServer, RequestRecord};

/// A least-loaded dispatcher over a set of node servers.
///
/// ```
/// use mercury_cluster::{Cluster, NodeConfig};
/// use mercury_servo::balance::ClusterServer;
/// use mercury_servo::loadgen::{generate, LoadConfig};
/// use mercury_servo::sched::{NodeServer, Outcome, ServerConfig};
/// use mercury_workloads::mix::CostMix;
///
/// let cluster = Cluster::launch(2, &NodeConfig::default());
/// let cfg = ServerConfig { attach_echo_host: false, ..ServerConfig::default() };
/// let mut lb = ClusterServer::new(
///     cluster.nodes.iter().enumerate()
///         .map(|(i, n)| NodeServer::new(n, i as u32, cfg))
///         .collect(),
/// );
/// let traffic = generate(&LoadConfig {
///     seed: 3, mean_gap_cycles: 12_000, requests: 60, mix: CostMix::web(),
/// });
/// lb.run(&traffic, |_, _| {});
/// let records = lb.records();
/// assert_eq!(records.len(), 60);
/// // Under load, a two-node fleet actually spreads the work.
/// assert!(records.iter().any(|r| r.node == 0));
/// assert!(records.iter().any(|r| r.node == 1));
/// ```
pub struct ClusterServer {
    nodes: Vec<NodeServer>,
}

impl ClusterServer {
    /// Wrap the given node servers (dispatch order = vector order).
    pub fn new(nodes: Vec<NodeServer>) -> ClusterServer {
        assert!(!nodes.is_empty(), "balancer needs at least one node");
        ClusterServer { nodes }
    }

    /// The node servers, for per-node inspection.
    pub fn nodes(&self) -> &[NodeServer] {
        &self.nodes
    }

    /// Mutable access to one node server (e.g. for a hook driving a
    /// switch on a specific node).
    pub fn node_mut(&mut self, i: usize) -> &mut NodeServer {
        &mut self.nodes[i]
    }

    /// All request records across nodes, merged in arrival-offset order
    /// (ties by request id — unique, so the order is total).
    pub fn records(&self) -> Vec<RequestRecord> {
        let mut all: Vec<RequestRecord> = self
            .nodes
            .iter()
            .flat_map(|n| n.records().iter().copied())
            .collect();
        all.sort_by_key(|r| (r.arrival, r.id));
        all
    }

    /// Serve a whole arrival stream across the fleet.  `hook` runs
    /// before each dispatch with `(self, offset)`, after every node has
    /// been advanced to `offset`.
    pub fn run(&mut self, traffic: &[Arrival], mut hook: impl FnMut(&mut ClusterServer, u64)) {
        for a in traffic {
            for n in &mut self.nodes {
                let t = n.abs(a.offset);
                n.advance_to(t);
            }
            hook(self, a.offset);
            let pick = self.least_loaded(a.offset);
            let n = &mut self.nodes[pick];
            let t = n.abs(a.offset);
            n.advance_to(t);
            n.offer(a.id, &a.shape, t);
        }
        for n in &mut self.nodes {
            n.drain();
        }
    }

    /// Index of the least-loaded node at stream offset `offset`.
    fn least_loaded(&self, offset: u64) -> usize {
        let mut best = 0usize;
        let mut best_key = (usize::MAX, u64::MAX);
        for (i, n) in self.nodes.iter().enumerate() {
            let key = (n.queued(), n.busy_cycles(n.abs(offset)));
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{generate, LoadConfig};
    use crate::sched::{Outcome, ServerConfig};
    use mercury_cluster::{Cluster, NodeConfig};
    use mercury_workloads::mix::CostMix;

    fn fleet(n: usize) -> ClusterServer {
        let cluster = Cluster::launch(n, &NodeConfig::default());
        let cfg = ServerConfig {
            attach_echo_host: false,
            ..ServerConfig::default()
        };
        ClusterServer::new(
            cluster
                .nodes
                .iter()
                .enumerate()
                .map(|(i, node)| NodeServer::new(node, i as u32, cfg))
                .collect(),
        )
    }

    #[test]
    fn spreads_load_and_accounts_everything() {
        let mut lb = fleet(3);
        let traffic = generate(&LoadConfig {
            seed: 17,
            mean_gap_cycles: 8_000,
            requests: 400,
            mix: CostMix::oltp(),
        });
        lb.run(&traffic, |_, _| {});
        let records = lb.records();
        assert_eq!(records.len(), 400);
        for node in 0..3u32 {
            assert!(
                records.iter().any(|r| r.node == node),
                "node {node} got no traffic under sustained load"
            );
        }
    }

    #[test]
    fn fleet_runs_are_seed_deterministic() {
        let run = || {
            let mut lb = fleet(2);
            let traffic = generate(&LoadConfig {
                seed: 29,
                mean_gap_cycles: 10_000,
                requests: 200,
                mix: CostMix::web(),
            });
            lb.run(&traffic, |_, _| {});
            lb.records()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn two_nodes_shed_less_than_one() {
        let overload = |n| {
            let mut lb = fleet(n);
            let traffic = generate(&LoadConfig {
                seed: 41,
                mean_gap_cycles: 2_000,
                requests: 300,
                mix: CostMix::analytics(),
            });
            lb.run(&traffic, |_, _| {});
            lb.records()
                .iter()
                .filter(|r| r.outcome == Outcome::Shed)
                .count()
        };
        assert!(
            overload(2) <= overload(1),
            "adding a node must not increase shedding at fixed load"
        );
    }
}
