//! Exact tail-latency statistics over recorded requests.
//!
//! Percentiles are computed by **nearest rank** over the full sorted
//! vector of completed-request sojourn times — no reservoirs, no
//! digests, no interpolation.  The runs here are small enough (10³–10⁵
//! requests) that exactness is free, and exactness is what makes two
//! same-seed runs comparable bit-for-bit.
//!
//! Sheds are excluded from the latency distribution but reported in
//! [`TailStats::shed`]: a server that hit its p99 target by dropping a
//! tenth of its traffic did not hit its p99 target.

use crate::sched::{Outcome, RequestRecord};

/// Summary of one serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailStats {
    /// Requests offered (completed + shed).
    pub offered: u64,
    /// Requests run to completion.
    pub completed: u64,
    /// Requests tail-dropped at admission.
    pub shed: u64,
    /// Median sojourn (arrival → finish), simulated cycles.
    pub p50_cycles: u64,
    /// 99th-percentile sojourn, simulated cycles.
    pub p99_cycles: u64,
    /// 99.9th-percentile sojourn, simulated cycles.
    pub p999_cycles: u64,
    /// Worst sojourn, simulated cycles.
    pub max_cycles: u64,
    /// Mean sojourn, simulated cycles.
    pub mean_cycles: f64,
    /// Mean queueing delay (arrival → start), simulated cycles.
    pub mean_queue_cycles: f64,
}

/// Nearest-rank percentile of an ascending-sorted slice: the smallest
/// value with at least `permille`/1000 of the mass at or below it.
/// Integer arithmetic throughout — `0.999 * 1000` under f64 ceils to
/// 1000, and an off-by-one at the extreme tail is exactly the value
/// this crate exists to get right.
fn nearest_rank(sorted: &[u64], permille: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (permille * n).div_ceil(1000);
    sorted[rank.clamp(1, n) as usize - 1]
}

/// Compute [`TailStats`] over a run's records.
///
/// ```
/// use mercury_servo::sched::{Outcome, RequestRecord};
/// use mercury_servo::stats::tail_stats;
///
/// let rec = |id, arrival, finish| RequestRecord {
///     id, shape: "probe", node: 0, worker: 0,
///     arrival, start: arrival, finish, outcome: Outcome::Completed,
/// };
/// // 100 one-cycle requests and one 500-cycle straggler.
/// let mut records: Vec<_> = (0..100).map(|i| rec(i, i, i + 1)).collect();
/// records.push(rec(100, 100, 600));
/// let s = tail_stats(&records);
/// assert_eq!(s.offered, 101);
/// assert_eq!(s.p50_cycles, 1);
/// assert_eq!(s.p999_cycles, 500); // the straggler owns the extreme tail
/// assert_eq!(s.max_cycles, 500);
/// ```
pub fn tail_stats(records: &[RequestRecord]) -> TailStats {
    let mut sojourns: Vec<u64> = Vec::with_capacity(records.len());
    let mut queue_sum = 0u128;
    let mut shed = 0u64;
    for r in records {
        match r.outcome {
            Outcome::Completed => {
                sojourns.push(r.finish - r.arrival);
                queue_sum += (r.start - r.arrival) as u128;
            }
            Outcome::Shed => shed += 1,
        }
    }
    sojourns.sort_unstable();
    let completed = sojourns.len() as u64;
    let sum: u128 = sojourns.iter().map(|&v| v as u128).sum();
    TailStats {
        offered: completed + shed,
        completed,
        shed,
        p50_cycles: nearest_rank(&sojourns, 500),
        p99_cycles: nearest_rank(&sojourns, 990),
        p999_cycles: nearest_rank(&sojourns, 999),
        max_cycles: sojourns.last().copied().unwrap_or(0),
        mean_cycles: if completed == 0 {
            0.0
        } else {
            sum as f64 / completed as f64
        },
        mean_queue_cycles: if completed == 0 {
            0.0
        } else {
            queue_sum as f64 / completed as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completed(id: u64, arrival: u64, start: u64, finish: u64) -> RequestRecord {
        RequestRecord {
            id,
            shape: "t",
            node: 0,
            worker: 0,
            arrival,
            start,
            finish,
            outcome: Outcome::Completed,
        }
    }

    #[test]
    fn empty_input_is_all_zero() {
        let s = tail_stats(&[]);
        assert_eq!(s.offered, 0);
        assert_eq!(s.p999_cycles, 0);
        assert_eq!(s.mean_cycles, 0.0);
    }

    #[test]
    fn nearest_rank_matches_hand_computation() {
        // Sojourns 1..=1000: p50 = 500, p99 = 990, p999 = 999.
        let records: Vec<_> = (1..=1000).map(|v| completed(v, 0, 0, v)).collect();
        let s = tail_stats(&records);
        assert_eq!(s.p50_cycles, 500);
        assert_eq!(s.p99_cycles, 990);
        assert_eq!(s.p999_cycles, 999);
        assert_eq!(s.max_cycles, 1000);
        assert_eq!(s.mean_cycles, 500.5);
    }

    #[test]
    fn sheds_count_against_offered_not_latency() {
        let mut records = vec![completed(0, 0, 5, 10)];
        records.push(RequestRecord {
            id: 1,
            shape: "t",
            node: 0,
            worker: 0,
            arrival: 3,
            start: 3,
            finish: 3,
            outcome: Outcome::Shed,
        });
        let s = tail_stats(&records);
        assert_eq!(s.offered, 2);
        assert_eq!(s.completed, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.max_cycles, 10);
        assert_eq!(s.mean_queue_cycles, 5.0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = tail_stats(&[completed(0, 0, 0, 42)]);
        assert_eq!(s.p50_cycles, 42);
        assert_eq!(s.p99_cycles, 42);
        assert_eq!(s.p999_cycles, 42);
    }
}
