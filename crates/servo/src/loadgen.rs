//! Open-loop arrival generation.
//!
//! The generator is *open loop*: request arrival times are fixed by
//! the seed before the server runs, and do not react to server state.
//! When the server stalls (a mode switch, a fault-recovery window),
//! arrivals keep coming and queue up — which is precisely how a switch
//! pause becomes visible as tail latency.  Closed-loop generators
//! (issue → wait → issue) hide such pauses by slowing down with the
//! server; the distinction matters enough in serving benchmarks that
//! we only implement the honest one.
//!
//! Inter-arrival gaps are exponentially distributed (a Poisson
//! process) with a configurable mean, inverted from one SplitMix64
//! draw per arrival; the request shape is drawn from a weighted
//! [`CostMix`] with exactly one more draw.  Two draws per request,
//! total — the stream position is a pure function of the request
//! index, so same-seed runs are bit-identical.

use faultgen::rng::SplitMix64;
use mercury_workloads::mix::{CostMix, RequestShape};

/// Truncate exponential gaps at this multiple of the mean so one
/// extreme draw cannot dwarf the whole run (documented distortion:
/// less than 1e-5 of the mass for the exponential).
const GAP_CAP_MULTIPLE: u64 = 12;

/// Configuration of one arrival stream.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// RNG seed; the entire stream is a function of it.
    pub seed: u64,
    /// Mean inter-arrival gap in simulated cycles (3 000 cycles =
    /// 1 µs).  The offered rate is `3e9 / mean_gap_cycles` requests
    /// per simulated second.
    pub mean_gap_cycles: u64,
    /// Number of requests to generate.
    pub requests: u32,
    /// Cost mix the request shapes are drawn from.
    pub mix: CostMix,
}

/// One generated arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Request id, dense from 0 in arrival order.
    pub id: u64,
    /// Arrival time as an offset from traffic start, in simulated
    /// cycles.  Strictly non-decreasing in `id`.
    pub offset: u64,
    /// The work this request performs.
    pub shape: RequestShape,
}

/// Map one `u64` draw to a uniform in `(0, 1]` (53 mantissa bits; the
/// `+1` excludes zero so `ln` is always finite).
fn unit_open(draw: u64) -> f64 {
    ((draw >> 11) + 1) as f64 / (1u64 << 53) as f64
}

/// Generate the arrival stream for `cfg`.
///
/// ```
/// use mercury_servo::loadgen::{generate, LoadConfig};
/// use mercury_workloads::mix::CostMix;
///
/// let cfg = LoadConfig { seed: 7, mean_gap_cycles: 30_000, requests: 500, mix: CostMix::web() };
/// let a = generate(&cfg);
/// let b = generate(&cfg);
/// assert_eq!(a, b); // same seed, bit-identical stream
/// assert!(a.windows(2).all(|w| w[0].offset <= w[1].offset));
/// let mean = a.last().unwrap().offset / (a.len() as u64 - 1);
/// assert!((15_000..60_000).contains(&mean), "mean gap {mean} off target");
/// ```
pub fn generate(cfg: &LoadConfig) -> Vec<Arrival> {
    assert!(cfg.mean_gap_cycles > 0, "mean gap must be nonzero");
    let mut rng = SplitMix64::new(cfg.seed);
    let cap = cfg.mean_gap_cycles.saturating_mul(GAP_CAP_MULTIPLE);
    let mut at = 0u64;
    let mut out = Vec::with_capacity(cfg.requests as usize);
    for id in 0..cfg.requests as u64 {
        // Inverse-CDF exponential on the simulated clock.  f64 math is
        // IEEE-deterministic for a given build, and the archived gate
        // only compares runs within one process.
        let gap = (-(cfg.mean_gap_cycles as f64) * unit_open(rng.next_u64()).ln()).round() as u64;
        at += gap.min(cap);
        let shape = *cfg.mix.pick(rng.next_u64());
        out.push(Arrival {
            id,
            offset: at,
            shape,
        });
    }
    out
}

/// The stream's horizon: the offset of the last arrival, or 0 for an
/// empty stream.  This is the open-loop span the server will cover —
/// the bench binaries divide the simulated cycles actually consumed by
/// host seconds to get the Mcycles/host-second throughput metric, and
/// the event clock guarantees every idle gap inside the horizon is
/// charged whether skipped or walked.
///
/// ```
/// use mercury_servo::loadgen::{generate, horizon, LoadConfig};
/// use mercury_workloads::mix::CostMix;
///
/// let t = generate(&LoadConfig {
///     seed: 7, mean_gap_cycles: 30_000, requests: 100, mix: CostMix::web(),
/// });
/// assert_eq!(horizon(&t), t.last().unwrap().offset);
/// assert_eq!(horizon(&[]), 0);
/// ```
pub fn horizon(traffic: &[Arrival]) -> u64 {
    traffic.last().map(|a| a.offset).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_seed_deterministic_and_monotone() {
        let cfg = LoadConfig {
            seed: 99,
            mean_gap_cycles: 10_000,
            requests: 2_000,
            mix: CostMix::oltp(),
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].offset <= w[1].offset));
        assert_eq!(a.len(), 2_000);
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            generate(&LoadConfig {
                seed,
                mean_gap_cycles: 10_000,
                requests: 64,
                mix: CostMix::web(),
            })
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn mean_gap_lands_near_target() {
        let cfg = LoadConfig {
            seed: 5,
            mean_gap_cycles: 50_000,
            requests: 4_000,
            mix: CostMix::web(),
        };
        let a = generate(&cfg);
        let mean = a.last().unwrap().offset / (a.len() as u64 - 1);
        // Exponential with n=4000: the sample mean sits well within
        // ±20% of the true mean.
        assert!((40_000..60_000).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn gaps_are_capped() {
        let cfg = LoadConfig {
            seed: 3,
            mean_gap_cycles: 1,
            requests: 10_000,
            mix: CostMix::web(),
        };
        let a = generate(&cfg);
        for w in a.windows(2) {
            assert!(w[1].offset - w[0].offset <= GAP_CAP_MULTIPLE);
        }
    }
}
