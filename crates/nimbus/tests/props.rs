//! Property-based tests for the kernel's core structures: the frame
//! pool's reference counting and the filesystem against a flat-file
//! reference model.

use nimbus::fs::Vfs;
use nimbus::mm::FramePool;
use proptest::prelude::*;
use simx86::mem::FrameNum;
use simx86::Cpu;
use std::collections::HashMap;
use std::sync::Arc;

/// A host-memory block driver (no cost model needed here).
struct MemDriver(parking_lot::Mutex<HashMap<u64, Vec<u8>>>);
impl nimbus::drivers::block::BlockDriver for MemDriver {
    fn read_block(&self, _c: &Arc<Cpu>, b: u64, out: &mut [u8]) -> Result<(), nimbus::KernelError> {
        match self.0.lock().get(&b) {
            Some(d) => out.copy_from_slice(d),
            None => out.fill(0),
        }
        Ok(())
    }
    fn write_block(&self, _c: &Arc<Cpu>, b: u64, d: &[u8]) -> Result<(), nimbus::KernelError> {
        self.0.lock().insert(b, d.to_vec());
        Ok(())
    }
    fn flush(&self, _c: &Arc<Cpu>) -> Result<(), nimbus::KernelError> {
        Ok(())
    }
    fn kind(&self) -> &'static str {
        "prop-mem"
    }
}

proptest! {
    /// Pool conservation: allocations + frees with random COW sharing
    /// never lose or duplicate frames.
    #[test]
    fn pool_conserves_frames(ops in proptest::collection::vec(0u8..3, 1..200)) {
        let total = 32u32;
        let mut pool = FramePool::new((1..=total).map(FrameNum).collect());
        let cpu = Arc::new(Cpu::new(0));
        let mut live: Vec<FrameNum> = Vec::new(); // one entry per reference
        for op in ops {
            match op {
                0 => {
                    if let Some(f) = pool.alloc(&cpu) {
                        prop_assert!(!live.contains(&f), "allocated a live frame");
                        live.push(f);
                    }
                }
                1 => {
                    if let Some(&f) = live.last() {
                        pool.incref(f);
                        live.push(f);
                    }
                }
                _ => {
                    if let Some(f) = live.pop() {
                        pool.decref(f);
                    }
                }
            }
            // Reference counts in the pool match the model exactly.
            let mut counts: HashMap<u32, u32> = HashMap::new();
            for f in &live {
                *counts.entry(f.0).or_default() += 1;
            }
            for (&f, &c) in &counts {
                prop_assert_eq!(pool.refcount(FrameNum(f)), c);
            }
            let distinct = counts.len();
            prop_assert_eq!(pool.available(), total as usize - distinct);
        }
    }

    /// The filesystem behaves like a map of flat byte vectors under
    /// random create/write/read/truncate/unlink sequences.
    #[test]
    fn vfs_matches_reference_model(
        ops in proptest::collection::vec(
            (0u8..5, 0u8..4, 0u16..12000, proptest::collection::vec(any::<u8>(), 0..300)),
            1..60
        )
    ) {
        let driver = MemDriver(parking_lot::Mutex::new(HashMap::new()));
        let mut fs = Vfs::mkfs(1, 512);
        let cpu = Arc::new(Cpu::new(0));
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();

        for (op, file, pos, data) in ops {
            let name = format!("f{file}");
            let pos = pos as u64;
            match op {
                0 => {
                    let created = fs.create(&cpu, &name).is_ok();
                    prop_assert_eq!(created, !model.contains_key(&name));
                    if created {
                        model.insert(name, Vec::new());
                    }
                }
                1 => {
                    if let Some(mf) = model.get_mut(&name) {
                        let ino = fs.lookup(&cpu, &name).unwrap();
                        if fs.write(&cpu, &driver, ino, pos, &data).is_ok() {
                            let end = pos as usize + data.len();
                            if mf.len() < end {
                                mf.resize(end, 0);
                            }
                            mf[pos as usize..end].copy_from_slice(&data);
                        }
                    }
                }
                2 => {
                    if let Some(mf) = model.get(&name) {
                        let ino = fs.lookup(&cpu, &name).unwrap();
                        let got = fs.read(&cpu, &driver, ino, pos, 200).unwrap();
                        let expect: Vec<u8> = mf
                            .iter()
                            .copied()
                            .skip(pos as usize)
                            .take(200.min(mf.len().saturating_sub(pos as usize)))
                            .collect();
                        prop_assert_eq!(got, expect);
                        prop_assert_eq!(fs.stat(&cpu, ino).unwrap().size, mf.len() as u64);
                    }
                }
                3 => {
                    if model.remove(&name).is_some() {
                        fs.unlink(&cpu, &name).unwrap();
                    } else {
                        prop_assert!(fs.unlink(&cpu, &name).is_err());
                    }
                }
                _ => {
                    if let Some(mf) = model.get_mut(&name) {
                        let ino = fs.lookup(&cpu, &name).unwrap();
                        fs.truncate(&cpu, ino).unwrap();
                        mf.clear();
                    }
                }
            }
        }
        // Directory listing matches.
        let mut names: Vec<String> = model.keys().cloned().collect();
        names.sort();
        prop_assert_eq!(fs.list(), names);
    }
}
