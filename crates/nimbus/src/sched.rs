//! Scheduler bookkeeping: run queue and per-CPU current process.
//!
//! The mechanics of an actual context switch (CR3 load, kernel-stack
//! selector handling) live in `kernel.rs`; this module is the pure
//! state, so it can serialize into checkpoints.

use crate::process::Pid;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Scheduler state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedState {
    /// Ready processes, FIFO.
    pub runq: VecDeque<Pid>,
    /// Current process per CPU.
    pub current: Vec<Option<Pid>>,
    /// Preemption requested per CPU (set by the timer tick).
    pub need_resched: Vec<bool>,
    /// Timer ticks observed.
    pub jiffies: u64,
}

impl SchedState {
    /// Fresh state for `num_cpus` CPUs.
    pub fn new(num_cpus: usize) -> SchedState {
        SchedState {
            runq: VecDeque::new(),
            current: vec![None; num_cpus],
            need_resched: vec![false; num_cpus],
            jiffies: 0,
        }
    }

    /// Queue a process if not already queued.
    pub fn enqueue(&mut self, pid: Pid) {
        if !self.runq.iter().any(|&p| p == pid) {
            // volint::allow(SWITCH-ALLOC): run-queue append; reached from the live-update path only through the name-shared hypervisor enqueue, and the deque capacity is pre-grown by the process table
            self.runq.push_back(pid);
        }
    }

    /// Remove a process from the queue (exit, external block).
    pub fn remove(&mut self, pid: Pid) {
        self.runq.retain(|&p| p != pid);
    }

    /// Pop the next ready process.
    pub fn pick_next(&mut self) -> Option<Pid> {
        self.runq.pop_front()
    }

    /// The process on `cpu`.
    pub fn current(&self, cpu: usize) -> Option<Pid> {
        self.current[cpu]
    }

    /// Is `pid` on any CPU?
    pub fn is_on_cpu(&self, pid: Pid) -> bool {
        self.current.contains(&Some(pid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_no_duplicates() {
        let mut s = SchedState::new(1);
        s.enqueue(Pid(1));
        s.enqueue(Pid(2));
        s.enqueue(Pid(1));
        assert_eq!(s.pick_next(), Some(Pid(1)));
        assert_eq!(s.pick_next(), Some(Pid(2)));
        assert_eq!(s.pick_next(), None);
    }

    #[test]
    fn remove_and_on_cpu() {
        let mut s = SchedState::new(2);
        s.enqueue(Pid(1));
        s.remove(Pid(1));
        assert_eq!(s.pick_next(), None);
        s.current[1] = Some(Pid(9));
        assert!(s.is_on_cpu(Pid(9)));
        assert!(!s.is_on_cpu(Pid(1)));
        assert_eq!(s.current(1), Some(Pid(9)));
    }
}
