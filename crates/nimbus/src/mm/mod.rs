//! Memory management: the frame pool and per-process address spaces.

pub mod addrspace;
pub mod pool;

pub use addrspace::{AddressSpace, FaultFix, MmCtx, Prot, Vma, VmaKind};
pub use pool::FramePool;
