//! The kernel's frame pool: free-list plus sharing counts.
//!
//! The pool manages the frames the kernel was booted with (its domain
//! quota under a hypervisor; effectively all of RAM on bare hardware).
//! Data frames are reference-counted so copy-on-write sharing after
//! `fork` can free frames only when the last mapping goes away.

use serde::{Deserialize, Serialize};
use simx86::costs;
use simx86::mem::FrameNum;
use simx86::Cpu;
use std::collections::HashMap;

/// The pool.  Lives inside the big kernel lock; not internally locked.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FramePool {
    free: Vec<FrameNum>,
    refs: HashMap<u32, u32>,
    total: usize,
}

impl FramePool {
    /// A pool over the given frames, all free.
    pub fn new(mut frames: Vec<FrameNum>) -> FramePool {
        // Descending, so pop() hands out low frames first (stable tests).
        frames.sort_unstable_by_key(|f| std::cmp::Reverse(f.0));
        let total = frames.len();
        FramePool {
            free: frames,
            refs: HashMap::new(),
            total,
        }
    }

    /// Allocate one frame with reference count 1.
    pub fn alloc(&mut self, cpu: &Cpu) -> Option<FrameNum> {
        cpu.tick(costs::FRAME_ALLOC);
        let f = self.free.pop()?;
        self.refs.insert(f.0, 1);
        Some(f)
    }

    /// Take another reference to a shared frame (COW fork).
    pub fn incref(&mut self, frame: FrameNum) {
        *self.refs.entry(frame.0).or_insert(0) += 1;
    }

    /// Drop a reference; frees the frame when it was the last one.
    /// Returns true if the frame was actually freed.
    pub fn decref(&mut self, frame: FrameNum) -> bool {
        match self.refs.get_mut(&frame.0) {
            Some(r) if *r > 1 => {
                *r -= 1;
                false
            }
            Some(_) => {
                self.refs.remove(&frame.0);
                self.free.push(frame);
                true
            }
            None => {
                debug_assert!(false, "decref of untracked frame {}", frame.0);
                false
            }
        }
    }

    /// Current reference count (0 = free or untracked).
    pub fn refcount(&self, frame: FrameNum) -> u32 {
        self.refs.get(&frame.0).copied().unwrap_or(0)
    }

    /// Frames currently free.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Frames currently allocated.
    pub fn in_use(&self) -> usize {
        self.total - self.free.len()
    }

    /// Total frames managed.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Every frame this pool manages, free or not (ascending).
    pub fn all_frames(&self) -> Vec<FrameNum> {
        let mut v: Vec<FrameNum> = self.free.clone();
        // volint::allow(SWITCH-ALLOC): pool-frame enumeration buffer, built on the CP before the accounting scan starts
        v.extend(self.refs.keys().map(|&f| FrameNum(f)));
        v.sort_unstable();
        v
    }

    /// Remap every frame number through `map` (restore/migration: the
    /// domain landed in different physical frames).
    pub fn translate(&mut self, map: &HashMap<u32, u32>) {
        for f in self.free.iter_mut() {
            if let Some(n) = map.get(&f.0) {
                *f = FrameNum(*n);
            }
        }
        self.refs = self
            .refs
            .iter()
            .map(|(&f, &c)| (*map.get(&f).unwrap_or(&f), c))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pool(n: u32) -> FramePool {
        FramePool::new((1..=n).map(FrameNum).collect())
    }

    #[test]
    fn alloc_low_first_and_counts() {
        let mut p = pool(4);
        let cpu = Arc::new(Cpu::new(0));
        assert_eq!(p.alloc(&cpu), Some(FrameNum(1)));
        assert_eq!(p.available(), 3);
        assert_eq!(p.in_use(), 1);
        assert_eq!(p.refcount(FrameNum(1)), 1);
    }

    #[test]
    fn cow_sharing_frees_only_on_last_drop() {
        let mut p = pool(2);
        let cpu = Arc::new(Cpu::new(0));
        let f = p.alloc(&cpu).unwrap();
        p.incref(f);
        assert_eq!(p.refcount(f), 2);
        assert!(!p.decref(f));
        assert_eq!(p.available(), 1);
        assert!(p.decref(f));
        assert_eq!(p.available(), 2);
        assert_eq!(p.refcount(f), 0);
    }

    #[test]
    fn exhaustion() {
        let mut p = pool(1);
        let cpu = Arc::new(Cpu::new(0));
        p.alloc(&cpu).unwrap();
        assert_eq!(p.alloc(&cpu), None);
    }

    #[test]
    fn translate_remaps_everything() {
        let mut p = pool(3);
        let cpu = Arc::new(Cpu::new(0));
        let f1 = p.alloc(&cpu).unwrap();
        let map: HashMap<u32, u32> = [(1u32, 10u32), (2, 20), (3, 30)].into();
        p.translate(&map);
        assert_eq!(p.refcount(FrameNum(10)), 1);
        assert_eq!(p.refcount(f1), 0);
        let mut all = p.all_frames();
        all.sort_unstable();
        assert_eq!(all, vec![FrameNum(10), FrameNum(20), FrameNum(30)]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut p = pool(3);
        let cpu = Arc::new(Cpu::new(0));
        p.alloc(&cpu).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let q: FramePool = serde_json::from_str(&json).unwrap();
        assert_eq!(q.available(), p.available());
        assert_eq!(q.refcount(FrameNum(1)), 1);
    }
}
