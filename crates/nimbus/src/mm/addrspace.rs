//! Per-process address spaces: real two-level page tables with COW fork,
//! demand paging and protection changes — all routed through the
//! paravirt layer so the same code runs in native and virtual mode.

use crate::error::KernelError;
use crate::mm::pool::FramePool;
use crate::paravirt::{KernelMap, PvOps};
use serde::{Deserialize, Serialize};
use simx86::fault::AccessKind;
use simx86::mem::{FrameNum, PhysMemory};
use simx86::paging::{Pte, VirtAddr, PAGE_SIZE, USER_TOP};
use simx86::{costs, Cpu};
use std::collections::HashMap;
use std::sync::Arc;

/// Protection of a VMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prot {
    /// May user code write?
    pub write: bool,
}

impl Prot {
    /// Read-only.
    pub const RO: Prot = Prot { write: false };
    /// Read-write.
    pub const RW: Prot = Prot { write: true };
}

/// What backs a VMA.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmaKind {
    /// Demand-zero anonymous memory.
    Anon,
    /// A file mapping (`mmap` of an inode at `offset`).
    File {
        /// Backing inode.
        inode: u32,
        /// Byte offset of the mapping's first page within the file.
        offset: u64,
    },
    /// Program text/data, shared from a program image's page cache.
    Image {
        /// Program name in the registry.
        prog: String,
        /// First image page this VMA covers.
        page_off: usize,
        /// Pages that are private (copied) rather than shared: writable
        /// data segments.
        private: bool,
    },
}

/// One virtual memory area.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vma {
    /// First byte.
    pub start: u64,
    /// One past the last byte (page aligned).
    pub end: u64,
    /// Protection.
    pub prot: Prot,
    /// Backing.
    pub kind: VmaKind,
}

impl Vma {
    /// Does the VMA contain `va`?
    pub fn contains(&self, va: VirtAddr) -> bool {
        (self.start..self.end).contains(&va.0)
    }

    /// Pages spanned.
    pub fn pages(&self) -> u64 {
        (self.end - self.start) / PAGE_SIZE
    }
}

/// Everything an MM operation needs: the CPU to charge, the active
/// paravirt object, memory, the frame pool and the direct-map locator.
pub struct MmCtx<'a> {
    /// CPU executing the operation.
    pub cpu: &'a Arc<Cpu>,
    /// Active virtualization-sensitive operation table.
    pub pv: &'a Arc<dyn PvOps>,
    /// Physical memory.
    pub mem: &'a PhysMemory,
    /// The kernel's frame pool.
    pub pool: &'a mut FramePool,
    /// Direct-map locator (for page-table registration).
    pub kmap: &'a KernelMap,
}

/// How a page fault was resolved (telemetry for tests and benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultFix {
    /// Demand-zero page mapped.
    DemandZero,
    /// COW broken: private copy made.
    CowCopy,
    /// COW resolved in place (sole owner).
    CowReuse,
    /// File/image page mapped (caller supplied the frame).
    Mapped,
    /// The access violates the VMA's protection: deliver a signal.
    Signal,
}

/// A process address space.
///
/// Serializable: checkpoint/restore carries it in the guest state, with
/// frame numbers translated through the relocation map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AddressSpace {
    /// Base (L2) table frame.
    pub pgd: FrameNum,
    /// User-region L1 tables, keyed by L2 index.
    pub user_l1s: Vec<(usize, FrameNum)>,
    /// The VMA list.
    pub vmas: Vec<Vma>,
    /// Has the base table been pinned (and therefore validated)?
    pub pinned: bool,
}

impl AddressSpace {
    /// Build a fresh address space: a zeroed base table carrying the
    /// shared kernel mappings.  Call [`AddressSpace::pin`] once the
    /// initial user mappings are in place.
    pub fn new(
        ctx: &mut MmCtx<'_>,
        kernel_pdes: &[(usize, Pte)],
    ) -> Result<AddressSpace, KernelError> {
        let pgd = ctx.pool.alloc(ctx.cpu).ok_or(KernelError::NoMem)?;
        ctx.mem.zero_frame(ctx.cpu, pgd)?;
        // Kernel mappings are written directly: the table is not yet
        // validated, so this is legal in both modes.
        for &(idx, pde) in kernel_pdes {
            ctx.pv.set_pte(ctx.cpu, pgd, idx, pde)?;
        }
        ctx.pv.register_page_table(ctx.cpu, ctx.kmap, pgd)?;
        Ok(AddressSpace {
            pgd,
            user_l1s: Vec::new(),
            vmas: Vec::new(),
            pinned: false,
        })
    }

    /// Pin the base table (validates the whole tree in virtual mode).
    pub fn pin(&mut self, ctx: &mut MmCtx<'_>) -> Result<(), KernelError> {
        if !self.pinned {
            ctx.pv.pin_base_table(ctx.cpu, self.pgd)?;
            self.pinned = true;
        }
        Ok(())
    }

    /// The L1 table covering `va`, creating it if needed.
    pub fn ensure_l1(
        &mut self,
        ctx: &mut MmCtx<'_>,
        va: VirtAddr,
    ) -> Result<FrameNum, KernelError> {
        let l2 = va.l2_index();
        if let Some((_, f)) = self.user_l1s.iter().find(|(i, _)| *i == l2) {
            return Ok(*f);
        }
        let l1 = ctx.pool.alloc(ctx.cpu).ok_or(KernelError::NoMem)?;
        ctx.mem.zero_frame(ctx.cpu, l1)?;
        ctx.pv.register_page_table(ctx.cpu, ctx.kmap, l1)?;
        ctx.pv.set_pte(
            ctx.cpu,
            self.pgd,
            l2,
            Pte::new(l1.0, Pte::WRITABLE | Pte::USER),
        )?;
        self.user_l1s.push((l2, l1));
        Ok(l1)
    }

    fn l1_of(&self, va: VirtAddr) -> Option<FrameNum> {
        self.user_l1s
            .iter()
            .find(|(i, _)| *i == va.l2_index())
            .map(|(_, f)| *f)
    }

    /// Read the leaf PTE for `va`, if mapped.
    pub fn lookup(&self, ctx: &MmCtx<'_>, va: VirtAddr) -> Result<Option<Pte>, KernelError> {
        let Some(l1) = self.l1_of(va) else {
            return Ok(None);
        };
        let pte = ctx.mem.read_pte(ctx.cpu, l1, va.l1_index())?;
        Ok(pte.present().then_some(pte))
    }

    /// Install a leaf mapping.  The frame must already be owned by the
    /// caller (pool-tracked for Anon, page-cache for images).
    pub fn map_page(
        &mut self,
        ctx: &mut MmCtx<'_>,
        va: VirtAddr,
        frame: FrameNum,
        flags: u64,
    ) -> Result<(), KernelError> {
        debug_assert!(va.0 < USER_TOP, "user mapping outside user region");
        let l1 = self.ensure_l1(ctx, va)?;
        ctx.pv.set_pte(
            ctx.cpu,
            l1,
            va.l1_index(),
            Pte::new(frame.0, flags | Pte::USER),
        )?;
        Ok(())
    }

    /// Remove the mapping at `va`.  Returns the frame that was mapped
    /// (the caller decides whether to decref it).
    pub fn unmap_page(
        &mut self,
        ctx: &mut MmCtx<'_>,
        va: VirtAddr,
    ) -> Result<Option<FrameNum>, KernelError> {
        let Some(l1) = self.l1_of(va) else {
            return Ok(None);
        };
        let pte = ctx.mem.read_pte(ctx.cpu, l1, va.l1_index())?;
        if !pte.present() {
            return Ok(None);
        }
        ctx.pv.set_pte(ctx.cpu, l1, va.l1_index(), Pte::ABSENT)?;
        ctx.pv.invlpg(ctx.cpu, va.vpn());
        Ok(Some(FrameNum(pte.frame())))
    }

    /// Add a VMA covering `[start, start + pages*4K)`.
    pub fn add_vma(&mut self, vma: Vma) {
        debug_assert!(vma.start.is_multiple_of(PAGE_SIZE) && vma.end.is_multiple_of(PAGE_SIZE));
        self.vmas.push(vma);
    }

    /// The VMA containing `va`.
    pub fn vma_at(&self, va: VirtAddr) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.contains(va))
    }

    /// Change protection over a page range (mprotect).  Updates both
    /// the VMA records and any present PTEs, batched per table.
    pub fn protect_range(
        &mut self,
        ctx: &mut MmCtx<'_>,
        start: VirtAddr,
        pages: u64,
        prot: Prot,
    ) -> Result<(), KernelError> {
        let end = start.0 + pages * PAGE_SIZE;
        // Update VMA records (split not supported: whole-VMA protection
        // changes only, which is what the benchmarks need).
        for vma in self.vmas.iter_mut() {
            if vma.start >= start.0 && vma.end <= end {
                vma.prot = prot;
            }
        }
        // Update live PTEs.
        let mut per_table: HashMap<u32, Vec<(usize, Pte)>> = HashMap::new();
        for p in 0..pages {
            let va = VirtAddr(start.0 + p * PAGE_SIZE);
            let Some(l1) = self.l1_of(va) else { continue };
            let pte = ctx.mem.read_pte(ctx.cpu, l1, va.l1_index())?;
            if !pte.present() {
                continue;
            }
            let new = if prot.write {
                // COW pages stay read-only until the fault breaks them.
                if pte.cow() {
                    pte
                } else {
                    pte.with_flags(Pte::WRITABLE)
                }
            } else {
                pte.without_flags(Pte::WRITABLE)
            };
            if new != pte {
                per_table
                    .entry(l1.0)
                    .or_default()
                    .push((va.l1_index(), new));
            }
        }
        for (l1, updates) in per_table {
            ctx.pv.set_ptes(ctx.cpu, FrameNum(l1), &updates)?;
        }
        // Permissions tightened: every core must drop stale entries.
        ctx.pv.flush_tlb_all(ctx.cpu);
        Ok(())
    }

    /// Unmap a page range, dropping frame references and removing
    /// covered VMAs.  Returns the number of pages that were present.
    pub fn unmap_range(
        &mut self,
        ctx: &mut MmCtx<'_>,
        start: VirtAddr,
        pages: u64,
    ) -> Result<u64, KernelError> {
        let end = start.0 + pages * PAGE_SIZE;
        let mut per_table: HashMap<u32, Vec<(usize, Pte)>> = HashMap::new();
        let mut freed = 0;
        for p in 0..pages {
            let va = VirtAddr(start.0 + p * PAGE_SIZE);
            let Some(l1) = self.l1_of(va) else { continue };
            let pte = ctx.mem.read_pte(ctx.cpu, l1, va.l1_index())?;
            if !pte.present() {
                continue;
            }
            per_table
                .entry(l1.0)
                .or_default()
                .push((va.l1_index(), Pte::ABSENT));
            // Image-shared pages are not pool-tracked (the registry owns
            // them); pool-tracked frames get their ref dropped.
            if ctx.pool.refcount(FrameNum(pte.frame())) > 0 {
                ctx.pool.decref(FrameNum(pte.frame()));
            }
            freed += 1;
        }
        for (l1, updates) in per_table {
            ctx.pv.set_ptes(ctx.cpu, FrameNum(l1), &updates)?;
        }
        // Freed frames may be reused immediately: shoot down all TLBs.
        ctx.pv.flush_tlb_all(ctx.cpu);
        self.vmas.retain(|v| !(v.start >= start.0 && v.end <= end));
        Ok(freed)
    }

    /// Copy-on-write fork: build a child space sharing every present
    /// page read-only.  Writable anonymous pages in both spaces become
    /// COW; the parent's live PTEs are downgraded through the paravirt
    /// layer (a batched `mmu_update` storm in virtual mode — the fork
    /// row of Table 1).
    pub fn fork_from(
        &mut self,
        ctx: &mut MmCtx<'_>,
        kernel_pdes: &[(usize, Pte)],
    ) -> Result<AddressSpace, KernelError> {
        let mut child = AddressSpace::new(ctx, kernel_pdes)?;
        child.vmas = self.vmas.clone();

        for (l2, parent_l1) in self.user_l1s.clone() {
            // Child L1: built with direct writes, registered, hooked in.
            let child_l1 = ctx.pool.alloc(ctx.cpu).ok_or(KernelError::NoMem)?;
            ctx.mem.zero_frame(ctx.cpu, child_l1)?;

            let mut parent_updates: Vec<(usize, Pte)> = Vec::new();
            for idx in 0..simx86::paging::ENTRIES_PER_TABLE {
                let pte = ctx.mem.read_pte(ctx.cpu, parent_l1, idx)?;
                if !pte.present() {
                    continue;
                }
                let frame = FrameNum(pte.frame());
                let shared = if pte.writable() {
                    // Downgrade both sides to COW read-only.
                    let cow = pte.without_flags(Pte::WRITABLE).with_flags(Pte::COW);
                    parent_updates.push((idx, cow));
                    cow
                } else {
                    pte
                };
                // Direct write: child table is unvalidated while built.
                ctx.cpu.tick(costs::PTE_WRITE_NATIVE);
                // volint::allow(VO-BYPASS): table not yet registered with any VO
                ctx.mem.write_pte(ctx.cpu, child_l1, idx, shared)?;
                if ctx.pool.refcount(frame) > 0 {
                    ctx.pool.incref(frame);
                }
            }
            if !parent_updates.is_empty() {
                ctx.pv.set_ptes(ctx.cpu, parent_l1, &parent_updates)?;
            }
            ctx.pv.register_page_table(ctx.cpu, ctx.kmap, child_l1)?;
            ctx.pv.set_pte(
                ctx.cpu,
                child.pgd,
                l2,
                Pte::new(child_l1.0, Pte::WRITABLE | Pte::USER),
            )?;
            child.user_l1s.push((l2, child_l1));
        }
        // Parent's downgraded translations must leave the TLB.
        ctx.pv.flush_tlb(ctx.cpu);
        child.pin(ctx)?;
        Ok(child)
    }

    /// Resolve a page fault at `va` for `access`.
    ///
    /// Handles demand-zero and COW; image/file-backed faults return
    /// [`FaultFix::Signal`] only if the access is illegal, otherwise the
    /// caller (the kernel, which can reach the filesystem and program
    /// registry) supplies the frame via [`AddressSpace::map_page`].
    pub fn handle_anon_fault(
        &mut self,
        ctx: &mut MmCtx<'_>,
        va: VirtAddr,
        access: AccessKind,
    ) -> Result<FaultFix, KernelError> {
        ctx.cpu.tick(costs::PF_HANDLER);
        let Some(vma) = self.vma_at(va).cloned() else {
            return Ok(FaultFix::Signal);
        };
        if access == AccessKind::Write && !vma.prot.write {
            ctx.cpu.tick(costs::PROT_FAULT_HANDLER);
            return Ok(FaultFix::Signal);
        }

        // COW break?
        if let Some(pte) = self.lookup(ctx, va)? {
            if pte.cow() && access == AccessKind::Write {
                let old = FrameNum(pte.frame());
                let fix = if ctx.pool.refcount(old) == 1 {
                    // Sole owner: upgrade in place.
                    let l1 = self.l1_of(va).expect("mapped page has an L1");
                    ctx.pv.set_pte(
                        ctx.cpu,
                        l1,
                        va.l1_index(),
                        pte.without_flags(Pte::COW).with_flags(Pte::WRITABLE),
                    )?;
                    FaultFix::CowReuse
                } else {
                    let copy = ctx.pool.alloc(ctx.cpu).ok_or(KernelError::NoMem)?;
                    ctx.mem.copy_frame(ctx.cpu, old, copy)?;
                    let l1 = self.l1_of(va).expect("mapped page has an L1");
                    ctx.pv.set_pte(
                        ctx.cpu,
                        l1,
                        va.l1_index(),
                        Pte::new(
                            copy.0,
                            Pte::WRITABLE | Pte::USER | Pte::DIRTY | Pte::ACCESSED,
                        ),
                    )?;
                    ctx.pool.decref(old);
                    FaultFix::CowCopy
                };
                ctx.pv.invlpg(ctx.cpu, va.vpn());
                return Ok(fix);
            }
            // Present, compatible: spurious (stale TLB) — flush and go.
            ctx.pv.invlpg(ctx.cpu, va.vpn());
            return Ok(FaultFix::Mapped);
        }

        match vma.kind {
            VmaKind::Anon => {
                let frame = ctx.pool.alloc(ctx.cpu).ok_or(KernelError::NoMem)?;
                ctx.mem.zero_frame(ctx.cpu, frame)?;
                let flags = if vma.prot.write {
                    Pte::WRITABLE | Pte::ACCESSED
                } else {
                    Pte::ACCESSED
                };
                self.map_page(ctx, va.page_base(), frame, flags)?;
                Ok(FaultFix::DemandZero)
            }
            // Backed kinds are the kernel's job (needs fs / registry).
            VmaKind::File { .. } | VmaKind::Image { .. } => Ok(FaultFix::Signal),
        }
    }

    /// Tear the space down: unmap everything, unpin, unregister and free
    /// the table frames.
    pub fn destroy(mut self, ctx: &mut MmCtx<'_>) -> Result<(), KernelError> {
        // Free user data frames.
        let vmas = std::mem::take(&mut self.vmas);
        for vma in &vmas {
            let pages = vma.pages();
            self.unmap_range(ctx, VirtAddr(vma.start), pages)?;
        }
        if self.pinned {
            ctx.pv.unpin_base_table(ctx.cpu, self.pgd)?;
        }
        for (_, l1) in &self.user_l1s {
            ctx.pv.unregister_page_table(ctx.cpu, ctx.kmap, *l1)?;
            ctx.pool.decref(*l1);
        }
        ctx.pv.unregister_page_table(ctx.cpu, ctx.kmap, self.pgd)?;
        ctx.pool.decref(self.pgd);
        Ok(())
    }

    /// All page-table frames of this space (pgd + user L1s) — what
    /// Mercury's state transfer flips between RO and RW (§5.1.2).
    pub fn table_frames(&self) -> Vec<FrameNum> {
        // volint::allow(SWITCH-ALLOC): per-aspace table list (pgd + ≤ 16 user L1s), feeds the CP-side enumeration buffer
        let mut v = vec![self.pgd];
        // volint::allow(SWITCH-ALLOC): extends the same per-aspace table list
        v.extend(self.user_l1s.iter().map(|(_, f)| *f));
        v
    }

    /// Remap all frame references through the restore relocation map.
    pub fn translate(&mut self, map: &HashMap<u32, u32>) {
        if let Some(n) = map.get(&self.pgd.0) {
            self.pgd = FrameNum(*n);
        }
        for (_, f) in self.user_l1s.iter_mut() {
            if let Some(n) = map.get(&f.0) {
                *f = FrameNum(*n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paravirt::BareOps;
    use simx86::{Machine, MachineConfig};

    struct Rig {
        machine: Arc<Machine>,
        pv: Arc<dyn PvOps>,
        pool: FramePool,
        kmap: KernelMap,
    }

    impl Rig {
        fn new() -> Rig {
            let machine = Machine::new(MachineConfig {
                num_cpus: 1,
                mem_frames: 512,
                disk_sectors: 64,
            });
            let frames = machine
                .allocator
                .alloc_many(machine.boot_cpu(), 256)
                .unwrap();
            Rig {
                pv: BareOps::new(Arc::clone(&machine)) as Arc<dyn PvOps>,
                machine,
                pool: FramePool::new(frames),
                kmap: KernelMap::default(),
            }
        }

        fn ctx(&mut self) -> MmCtx<'_> {
            MmCtx {
                cpu: self.machine.boot_cpu(),
                pv: &self.pv,
                mem: &self.machine.mem,
                pool: &mut self.pool,
                kmap: &self.kmap,
            }
        }
    }

    const KPDE: &[(usize, Pte)] = &[];

    fn anon_vma(start: u64, pages: u64, prot: Prot) -> Vma {
        Vma {
            start,
            end: start + pages * PAGE_SIZE,
            prot,
            kind: VmaKind::Anon,
        }
    }

    #[test]
    fn demand_zero_fault_maps_page() {
        let mut rig = Rig::new();
        let mut ctx = rig.ctx();
        let mut asp = AddressSpace::new(&mut ctx, KPDE).unwrap();
        asp.add_vma(anon_vma(0x10000, 4, Prot::RW));
        let va = VirtAddr(0x10000);
        assert!(asp.lookup(&ctx, va).unwrap().is_none());
        let fix = asp
            .handle_anon_fault(&mut ctx, va, AccessKind::Write)
            .unwrap();
        assert_eq!(fix, FaultFix::DemandZero);
        let pte = asp.lookup(&ctx, va).unwrap().unwrap();
        assert!(pte.writable() && pte.user());
    }

    #[test]
    fn fault_outside_vma_is_signal() {
        let mut rig = Rig::new();
        let mut ctx = rig.ctx();
        let mut asp = AddressSpace::new(&mut ctx, KPDE).unwrap();
        let fix = asp
            .handle_anon_fault(&mut ctx, VirtAddr(0x999000), AccessKind::Read)
            .unwrap();
        assert_eq!(fix, FaultFix::Signal);
    }

    #[test]
    fn write_to_readonly_vma_is_signal() {
        let mut rig = Rig::new();
        let mut ctx = rig.ctx();
        let mut asp = AddressSpace::new(&mut ctx, KPDE).unwrap();
        asp.add_vma(anon_vma(0x10000, 1, Prot::RO));
        let fix = asp
            .handle_anon_fault(&mut ctx, VirtAddr(0x10000), AccessKind::Write)
            .unwrap();
        assert_eq!(fix, FaultFix::Signal);
        // Reads are fine.
        let fix = asp
            .handle_anon_fault(&mut ctx, VirtAddr(0x10000), AccessKind::Read)
            .unwrap();
        assert_eq!(fix, FaultFix::DemandZero);
    }

    #[test]
    fn cow_fork_shares_then_copies() {
        let mut rig = Rig::new();
        let mut ctx = rig.ctx();
        let mut parent = AddressSpace::new(&mut ctx, KPDE).unwrap();
        parent.add_vma(anon_vma(0x20000, 2, Prot::RW));
        parent
            .handle_anon_fault(&mut ctx, VirtAddr(0x20000), AccessKind::Write)
            .unwrap();
        let parent_pte = parent.lookup(&ctx, VirtAddr(0x20000)).unwrap().unwrap();
        let shared_frame = FrameNum(parent_pte.frame());
        // Put a value in the page.
        ctx.mem
            .write_word(ctx.cpu, shared_frame.base(), 77)
            .unwrap();

        let mut child = parent.fork_from(&mut ctx, KPDE).unwrap();
        // Both sides read-only COW on the same frame, refcount 2.
        let p = parent.lookup(&ctx, VirtAddr(0x20000)).unwrap().unwrap();
        let c = child.lookup(&ctx, VirtAddr(0x20000)).unwrap().unwrap();
        assert!(p.cow() && !p.writable());
        assert!(c.cow() && !c.writable());
        assert_eq!(p.frame(), c.frame());
        assert_eq!(ctx.pool.refcount(shared_frame), 2);

        // Child writes: gets a private copy with the same contents.
        let fix = child
            .handle_anon_fault(&mut ctx, VirtAddr(0x20000), AccessKind::Write)
            .unwrap();
        assert_eq!(fix, FaultFix::CowCopy);
        let c2 = child.lookup(&ctx, VirtAddr(0x20000)).unwrap().unwrap();
        assert_ne!(c2.frame(), p.frame());
        assert!(c2.writable());
        assert_eq!(
            ctx.mem
                .read_word(ctx.cpu, FrameNum(c2.frame()).base())
                .unwrap(),
            77
        );
        assert_eq!(ctx.pool.refcount(shared_frame), 1);

        // Parent writes: sole owner now, upgrades in place.
        let fix = parent
            .handle_anon_fault(&mut ctx, VirtAddr(0x20000), AccessKind::Write)
            .unwrap();
        assert_eq!(fix, FaultFix::CowReuse);
        let p2 = parent.lookup(&ctx, VirtAddr(0x20000)).unwrap().unwrap();
        assert_eq!(p2.frame(), parent_pte.frame());
        assert!(p2.writable() && !p2.cow());
    }

    #[test]
    fn protect_range_flips_writable() {
        let mut rig = Rig::new();
        let mut ctx = rig.ctx();
        let mut asp = AddressSpace::new(&mut ctx, KPDE).unwrap();
        asp.add_vma(anon_vma(0x30000, 2, Prot::RW));
        asp.handle_anon_fault(&mut ctx, VirtAddr(0x30000), AccessKind::Write)
            .unwrap();
        asp.protect_range(&mut ctx, VirtAddr(0x30000), 2, Prot::RO)
            .unwrap();
        let pte = asp.lookup(&ctx, VirtAddr(0x30000)).unwrap().unwrap();
        assert!(!pte.writable());
        // And a write now signals.
        let fix = asp
            .handle_anon_fault(&mut ctx, VirtAddr(0x30000), AccessKind::Write)
            .unwrap();
        assert_eq!(fix, FaultFix::Signal);
        // Back to RW.
        asp.protect_range(&mut ctx, VirtAddr(0x30000), 2, Prot::RW)
            .unwrap();
        let pte = asp.lookup(&ctx, VirtAddr(0x30000)).unwrap().unwrap();
        assert!(pte.writable());
    }

    #[test]
    fn unmap_range_frees_frames_and_vma() {
        let mut rig = Rig::new();
        let mut ctx = rig.ctx();
        let mut asp = AddressSpace::new(&mut ctx, KPDE).unwrap();
        asp.add_vma(anon_vma(0x40000, 3, Prot::RW));
        for p in 0..3 {
            asp.handle_anon_fault(
                &mut ctx,
                VirtAddr(0x40000 + p * PAGE_SIZE),
                AccessKind::Write,
            )
            .unwrap();
        }
        let avail_before = ctx.pool.available();
        let n = asp.unmap_range(&mut ctx, VirtAddr(0x40000), 3).unwrap();
        assert_eq!(n, 3);
        assert_eq!(ctx.pool.available(), avail_before + 3);
        assert!(asp.vma_at(VirtAddr(0x40000)).is_none());
        assert!(asp.lookup(&ctx, VirtAddr(0x40000)).unwrap().is_none());
    }

    #[test]
    fn destroy_returns_all_frames() {
        let mut rig = Rig::new();
        let mut ctx = rig.ctx();
        let before = ctx.pool.available();
        let mut asp = AddressSpace::new(&mut ctx, KPDE).unwrap();
        asp.add_vma(anon_vma(0x50000, 2, Prot::RW));
        asp.handle_anon_fault(&mut ctx, VirtAddr(0x50000), AccessKind::Write)
            .unwrap();
        asp.pin(&mut ctx).unwrap();
        asp.destroy(&mut ctx).unwrap();
        assert_eq!(ctx.pool.available(), before);
    }

    #[test]
    fn table_frames_lists_pgd_and_l1s() {
        let mut rig = Rig::new();
        let mut ctx = rig.ctx();
        let mut asp = AddressSpace::new(&mut ctx, KPDE).unwrap();
        asp.add_vma(anon_vma(0x10000, 1, Prot::RW));
        asp.handle_anon_fault(&mut ctx, VirtAddr(0x10000), AccessKind::Read)
            .unwrap();
        let tf = asp.table_frames();
        assert_eq!(tf.len(), 2); // pgd + one L1
        assert_eq!(tf[0], asp.pgd);
    }

    #[test]
    fn translate_remaps_table_frames() {
        let mut rig = Rig::new();
        let mut ctx = rig.ctx();
        let mut asp = AddressSpace::new(&mut ctx, KPDE).unwrap();
        asp.add_vma(anon_vma(0x10000, 1, Prot::RW));
        asp.handle_anon_fault(&mut ctx, VirtAddr(0x10000), AccessKind::Read)
            .unwrap();
        let old_pgd = asp.pgd;
        let map: HashMap<u32, u32> = asp
            .table_frames()
            .iter()
            .map(|f| (f.0, f.0 + 1000))
            .collect();
        asp.translate(&map);
        assert_eq!(asp.pgd, FrameNum(old_pgd.0 + 1000));
    }
}
