//! Datagram sockets over the network driver.
//!
//! A deliberately small UDP-like layer: sockets bind ports, datagrams
//! carry a four-byte port header.  Enough surface for the paper's ping
//! (round-trip latency) and Iperf (throughput) benchmarks.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Maximum payload per datagram (fits one frame with the header).
pub const MAX_PAYLOAD: usize = 4088;

/// A bound socket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Socket {
    /// Socket id.
    pub id: u32,
    /// Bound port.
    pub port: u16,
    /// Received datagrams: (source port, payload).
    pub rx: VecDeque<(u16, Vec<u8>)>,
}

/// The socket table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SocketTable {
    socks: HashMap<u32, Socket>,
    ports: HashMap<u16, u32>,
    next_id: u32,
}

impl SocketTable {
    /// Bind a new socket to `port`.  Fails if the port is taken.
    pub fn bind(&mut self, port: u16) -> Option<u32> {
        if self.ports.contains_key(&port) {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.socks.insert(
            id,
            Socket {
                id,
                port,
                rx: VecDeque::new(),
            },
        );
        self.ports.insert(port, id);
        Some(id)
    }

    /// Close a socket.
    pub fn close(&mut self, id: u32) {
        if let Some(s) = self.socks.remove(&id) {
            self.ports.remove(&s.port);
        }
    }

    /// The socket bound to `port`.
    pub fn by_port(&mut self, port: u16) -> Option<&mut Socket> {
        let id = *self.ports.get(&port)?;
        self.socks.get_mut(&id)
    }

    /// Socket by id.
    pub fn get(&mut self, id: u32) -> Option<&mut Socket> {
        self.socks.get_mut(&id)
    }

    /// Deliver a parsed datagram; returns false if no socket is bound.
    pub fn deliver(&mut self, dst: u16, src: u16, payload: Vec<u8>) -> bool {
        match self.by_port(dst) {
            Some(s) => {
                s.rx.push_back((src, payload));
                true
            }
            None => false,
        }
    }
}

/// Wrap a payload with the `[dst, src]` port header.
pub fn encode_packet(dst: u16, src: u16, payload: &[u8]) -> Vec<u8> {
    let mut pkt = Vec::with_capacity(4 + payload.len());
    pkt.extend_from_slice(&dst.to_le_bytes());
    pkt.extend_from_slice(&src.to_le_bytes());
    pkt.extend_from_slice(payload);
    pkt
}

/// Parse a packet into `(dst, src, payload)`.
pub fn decode_packet(pkt: &[u8]) -> Option<(u16, u16, &[u8])> {
    if pkt.len() < 4 {
        return None;
    }
    let dst = u16::from_le_bytes([pkt[0], pkt[1]]);
    let src = u16::from_le_bytes([pkt[2], pkt[3]]);
    Some((dst, src, &pkt[4..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_roundtrip() {
        let pkt = encode_packet(80, 1234, b"payload");
        let (dst, src, body) = decode_packet(&pkt).unwrap();
        assert_eq!((dst, src), (80, 1234));
        assert_eq!(body, b"payload");
        assert!(decode_packet(&[1, 2]).is_none());
    }

    #[test]
    fn bind_deliver_close() {
        let mut t = SocketTable::default();
        let id = t.bind(7000).unwrap();
        assert!(t.bind(7000).is_none(), "double bind rejected");
        assert!(t.deliver(7000, 9, b"hi".to_vec()));
        assert!(!t.deliver(7001, 9, b"nobody".to_vec()));
        let s = t.get(id).unwrap();
        assert_eq!(s.rx.pop_front().unwrap(), (9, b"hi".to_vec()));
        t.close(id);
        assert!(!t.deliver(7000, 9, b"gone".to_vec()));
        // Port is free again.
        assert!(t.bind(7000).is_some());
    }
}
